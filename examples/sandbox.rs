//! Sandboxing with address spaces (a Section 7 application: "using
//! different address spaces to limit access only to trusted code").
//!
//! A host process keeps secrets in one VAS and runs an untrusted plugin
//! against another, restricted VAS that contains only an exchange
//! segment. Isolation holds on three levels: ACLs keep the plugin from
//! attaching the secret VAS at all; inside its sandbox the secret's
//! addresses simply do not translate; and on Barrelfish the host can
//! revoke the plugin's root-page-table capability at any time, cutting
//! it off mid-flight.
//!
//! Run with: `cargo run --example sandbox`

use spacejmp::prelude::*;

fn main() -> SjResult<()> {
    // Barrelfish flavor: switches are capability invocations.
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::Barrelfish, MachineId::M2));

    let host = sj.kernel_mut().spawn("host", Creds::new(10, 10))?;
    let plugin = sj.kernel_mut().spawn("plugin", Creds::new(6666, 6666))?;
    sj.kernel_mut().activate(host)?;
    sj.kernel_mut().activate(plugin)?;

    // The host's secret VAS: owner-only permissions.
    let secret_va = VirtAddr::new(0x1000_0000_0000);
    let secret_vid = sj.vas_create(host, "host-secrets", Mode(0o600))?;
    let secret_sid = sj.seg_alloc(host, "secret-seg", secret_va, 1 << 20, Mode(0o600))?;
    sj.seg_attach(host, secret_vid, secret_sid, AttachMode::ReadWrite)?;
    let host_vh = sj.vas_attach(host, secret_vid)?;
    sj.vas_switch(host, host_vh)?;
    sj.kernel_mut().store_u64(host, secret_va, 0x5EC237)?;
    sj.vas_switch_home(host)?;
    println!("host:    stored a secret in 'host-secrets' (mode 600)");

    // The sandbox VAS: world-readable exchange segment in its own slot.
    let exch_va = VirtAddr::new(0x1080_0000_0000);
    let sandbox_vid = sj.vas_create(host, "sandbox", Mode(0o666))?;
    let exch_sid = sj.seg_alloc(host, "exchange-seg", exch_va, 64 << 10, Mode(0o666))?;
    sj.seg_attach(host, sandbox_vid, exch_sid, AttachMode::ReadWrite)?;

    // Layer 1: the ACL stops the plugin from even attaching the secrets.
    match sj.vas_attach(plugin, secret_vid) {
        Err(SjError::PermissionDenied) => {
            println!("plugin:  attach('host-secrets') -> permission denied")
        }
        other => panic!("expected denial, got {other:?}"),
    }

    // The plugin runs inside the sandbox and uses the exchange segment.
    let plugin_vh = sj.vas_attach(plugin, sandbox_vid)?;
    sj.vas_switch(plugin, plugin_vh)?;
    sj.kernel_mut().store_u64(plugin, exch_va, 0x9E110)?;
    println!("plugin:  wrote a request into the exchange segment");

    // Layer 2: inside the sandbox, the secret's address does not exist.
    match sj.kernel_mut().load_u64(plugin, secret_va) {
        Err(e) => println!("plugin:  load(secret address) -> {e}"),
        Ok(v) => panic!("isolation broken: read {v:#x}"),
    }
    sj.vas_switch_home(plugin)?;

    // The host serves the request from its side.
    let host_sandbox_vh = sj.vas_attach(host, sandbox_vid)?;
    sj.vas_switch(host, host_sandbox_vh)?;
    let req = sj.kernel_mut().load_u64(host, exch_va)?;
    sj.kernel_mut().store_u64(host, exch_va.add(8), req + 1)?;
    sj.vas_switch_home(host)?;
    println!("host:    served request {req:#x} through the exchange segment");

    // Layer 3 (Barrelfish): revoke the plugin's root-page-table
    // capability — it can never switch into the sandbox again.
    sj.revoke_attachment(host, plugin_vh)?;
    match sj.vas_switch(plugin, plugin_vh) {
        Err(e) => println!("plugin:  switch after revocation -> {e}"),
        Ok(()) => panic!("revocation did not hold"),
    }
    Ok(())
}
