//! Quickstart: the paper's Figure 4 in runnable form.
//!
//! Creates a virtual address space, reserves a large segment at a fixed
//! virtual address, attaches, switches in, and uses ordinary pointers —
//! then shows a *second* process finding the VAS by name and reading the
//! same data at the same addresses.
//!
//! Run with: `cargo run --example quickstart`

use spacejmp::prelude::*;

fn main() -> SjResult<()> {
    // Boot a DragonFly-flavored kernel on the paper's machine M2.
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));

    // --- process one: create and populate -------------------------------
    let p0 = sj.kernel_mut().spawn("writer", Creds::new(100, 100))?;

    // Figure 4: va = 0xC0DE...; sz = 1 << 35 (scaled to 32 MiB here);
    // vid = vas_create("v0", 660); sid = seg_alloc("s0", va, sz, 660);
    // seg_attach(vid, sid);
    let va = VirtAddr::new(0x1000_0000_C000);
    let vid = sj.vas_create(p0, "v0", Mode(0o660))?;
    let sid = sj.seg_alloc(p0, "s0", va, 32 << 20, Mode(0o660))?;
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite)?;

    // vid = vas_find("v0"); vh = vas_attach(vid); vas_switch(vh);
    let found = sj.vas_find("v0")?;
    let vh = sj.vas_attach(p0, found)?;
    sj.vas_switch(p0, vh)?;

    // t = malloc(...); *t = 42;  — via the segment-resident heap.
    let heap = VasHeap::format(&mut sj, p0, sid)?;
    let t = heap.malloc(&mut sj, p0, 64)?;
    sj.kernel_mut().store_u64(p0, t, 42)?;
    heap.set_root(&mut sj, p0, t)?;
    println!("writer:  allocated {t} in VAS 'v0' and stored 42");

    // Leave the address space (releasing the segment's write lock) and
    // exit — the VAS and its contents live on.
    sj.vas_switch_home(p0)?;
    sj.vas_detach(p0, vh)?;
    sj.kernel_mut().exit(p0)?;

    // --- process two: attach later and read -----------------------------
    let p1 = sj.kernel_mut().spawn("reader", Creds::new(100, 100))?;
    let vid = sj.vas_find("v0")?;
    let vh = sj.vas_attach(p1, vid)?;
    sj.vas_switch(p1, vh)?;

    let sid = sj.seg_find("s0")?;
    let heap = VasHeap::open(&mut sj, p1, sid)?;
    let t = heap.root(&mut sj, p1)?;
    let value = sj.kernel_mut().load_u64(p1, t)?;
    println!("reader:  found the allocation at {t}, value = {value}");
    assert_eq!(value, 42);

    let switch_cost = sj
        .kernel()
        .cost()
        .vas_switch(KernelFlavor::DragonFly, false);
    println!(
        "stats:   {} switches so far, {} cycles each (Table 2)",
        sj.stats().switches,
        switch_cost
    );
    Ok(())
}
