//! Surviving a process that dies inside a shared VAS.
//!
//! A writer crashes mid-`vas_switch` — inside the kernel, holding the
//! segment's exclusive lock. The corpse blocks every other switcher
//! until `reap_process` reclaims it; the survivor then switches in and
//! finds the victim's last committed write still there, because segment
//! memory is pinned and outlives any process. A whole-system invariant
//! audit runs after every step.
//!
//! Run with: `cargo run --example crash_recovery`

use spacejmp::os::{FaultPlan, FaultSite, OsError};
use spacejmp::prelude::*;

fn audit(sj: &mut SpaceJmp, when: &str) {
    let problems = sj.check_invariants();
    assert!(problems.is_empty(), "audit {when}: {problems:?}");
    println!("  audit clean ({when})");
}

fn main() -> SjResult<()> {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));

    let victim = sj.kernel_mut().spawn("victim", Creds::new(100, 100))?;
    sj.kernel_mut().activate(victim)?;
    let survivor = sj.kernel_mut().spawn("survivor", Creds::new(100, 100))?;
    sj.kernel_mut().activate(survivor)?;

    // One shared VAS with a read-write (exclusive-on-switch) segment.
    let base = VirtAddr::new(0x1000_0000_0000);
    let vid = sj.vas_create(victim, "shared", Mode(0o666))?;
    let sid = sj.seg_alloc(victim, "data", base, 1 << 20, Mode(0o666))?;
    sj.seg_attach(victim, vid, sid, AttachMode::ReadWrite)?;
    let vh_victim = sj.vas_attach(victim, vid)?;
    let vh_survivor = sj.vas_attach(survivor, vid)?;

    // The victim switches in, writes, and switches home.
    sj.vas_switch(victim, vh_victim)?;
    sj.kernel_mut().store_u64(victim, base, 0xC0FFEE)?;
    sj.vas_switch_home(victim)?;
    println!("victim wrote 0xC0FFEE into the shared segment");

    // Arm the fault plan: the victim's next switch crashes inside the
    // kernel — after the SpaceJMP layer acquired the exclusive lock.
    sj.kernel_mut()
        .set_fault_plan(Some(FaultPlan::new(42).crash_nth(FaultSite::Switch, 1)));
    match sj.vas_switch(victim, vh_victim) {
        Err(SjError::Os(OsError::Crashed)) => println!("victim crashed mid-switch"),
        other => panic!("expected a crash, got {other:?}"),
    }
    audit(&mut sj, "zombie holding the lock");

    // The corpse still holds the exclusive lock: the survivor bounces,
    // and bounded retry reports WouldBlock instead of spinning forever.
    let policy = RetryPolicy::default();
    match sj.vas_switch_retry(survivor, vh_survivor, &policy) {
        Err(SjError::WouldBlock) => println!("survivor blocked by the corpse's lock"),
        other => panic!("expected WouldBlock, got {other:?}"),
    }

    // Reclaim the corpse: locks released, attachments removed, vmspaces
    // destroyed, private memory freed. Segment memory is pinned and
    // survives.
    sj.reap_process(victim)?;
    audit(&mut sj, "after reap");

    sj.vas_switch_retry(survivor, vh_survivor, &policy)?;
    let v = sj.kernel_mut().load_u64(survivor, base)?;
    println!("survivor switched in and read {v:#x}");
    assert_eq!(v, 0xC0FFEE);
    audit(&mut sj, "after recovery");

    let stats = sj.stats();
    println!(
        "stats: {} switches, {} reaps, {} retried switches, {} deadlocks",
        stats.switches, stats.reaps, stats.retried_switches, stats.deadlocks
    );
    Ok(())
}
