//! Server-less sharing: the RedisJMP pattern (Section 5.3).
//!
//! Three client processes share a key-value store with **no server
//! process at all**: the store lives in a lockable segment inside a
//! shared VAS, readers switch in through a read-only mapping (shared
//! lock), writers through a writable mapping (exclusive lock).
//!
//! Run with: `cargo run --example shared_store`

use spacejmp::kv::JmpClient;
use spacejmp::prelude::*;

fn main() -> SjResult<()> {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));

    // Three independent client processes join the same store. The first
    // one lazily initializes the segment, heap, and hash table.
    let mut clients = Vec::new();
    for i in 0..3 {
        let pid = sj
            .kernel_mut()
            .spawn(&format!("client-{i}"), Creds::new(100, 100))?;
        sj.kernel_mut().activate(pid)?;
        clients.push(JmpClient::join(&mut sj, pid, "demo", i)?);
    }
    println!("three clients joined the store (first one initialized it)");

    // Client 0 writes; everyone reads the same bytes directly.
    clients[0].set(&mut sj, b"motd", b"no sockets were harmed")?;
    for (i, c) in clients.iter_mut().enumerate() {
        let v = c.get(&mut sj, b"motd")?.expect("key exists");
        println!("client-{i} GET motd -> {}", String::from_utf8_lossy(&v));
    }

    // The segment lock enforces single-writer/multi-reader: park client 1
    // inside the read-only VAS and watch a writer bounce.
    let (p1, rh) = (clients[1].pid(), clients[1].read_handle());
    sj.vas_switch(p1, rh)?;
    match clients[2].set(&mut sj, b"motd", b"contended") {
        Err(SjError::WouldBlock) => {
            println!("writer blocked while a reader is switched in (lock held)")
        }
        other => panic!("expected WouldBlock, got {other:?}"),
    }
    sj.vas_switch_home(p1)?;
    clients[2].set(&mut sj, b"motd", b"updated after reader left")?;
    let v = clients[0].get(&mut sj, b"motd")?.expect("key exists");
    println!("client-0 GET motd -> {}", String::from_utf8_lossy(&v));

    // Throughput context: this is why the paper's Figure 10 shows
    // RedisJMP several times ahead of socket-served Redis.
    let costs = spacejmp::kv::measure_costs(false)?;
    println!(
        "measured visit costs: GET {} cycles, SET {} cycles (vs ~36k cycles of socket round trip)",
        costs.jmp_get, costs.jmp_set
    );
    Ok(())
}
