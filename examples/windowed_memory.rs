//! Addressing more memory than the virtual address space exposes
//! (Section 5.2's motivation, the GUPS pattern).
//!
//! One process addresses a "huge" logical table by splitting it into
//! windows, one VAS per window, all mapped at the *same* virtual address
//! — so a single pointer expression reaches any part of the table after
//! a cheap switch, with no remapping on the critical path.
//!
//! Run with: `cargo run --example windowed_memory`

use spacejmp::prelude::*;

const WINDOWS: usize = 8;
const WINDOW_BYTES: u64 = 4 << 20;
const WINDOW_VA: u64 = 0x1000_0000_0000;

fn main() -> SjResult<()> {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M3));
    let pid = sj.kernel_mut().spawn("windowed", Creds::new(1, 1))?;

    // Build one VAS + segment per window. Every segment sits at the same
    // virtual base — in one traditional address space they would
    // conflict; as separate VASes they coexist.
    let mut windows = Vec::new();
    for w in 0..WINDOWS {
        let vid = sj.vas_create(pid, &format!("window-{w}"), Mode(0o600))?;
        let sid = sj.seg_alloc(
            pid,
            &format!("window-seg-{w}"),
            VirtAddr::new(WINDOW_VA),
            WINDOW_BYTES,
            Mode(0o600),
        )?;
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
        windows.push(sj.vas_attach(pid, vid)?);
    }
    println!(
        "one process, {} windows x {} MiB at the same VA {:#x} = {} MiB of reach",
        WINDOWS,
        WINDOW_BYTES >> 20,
        WINDOW_VA,
        (WINDOWS as u64 * WINDOW_BYTES) >> 20
    );

    // Write a signature into every window through the same pointer.
    let slot = VirtAddr::new(WINDOW_VA + 0x100);
    for (w, vh) in windows.iter().enumerate() {
        sj.vas_switch(pid, *vh)?;
        sj.kernel_mut().store_u64(pid, slot, 0xA0u64 + w as u64)?;
        sj.vas_switch_home(pid)?;
    }

    // Read them back, counting cycles per switch.
    let clock = sj.kernel().clock().clone();
    let t0 = clock.now();
    for (w, vh) in windows.iter().enumerate() {
        sj.vas_switch(pid, *vh)?;
        let v = sj.kernel_mut().load_u64(pid, slot)?;
        assert_eq!(v, 0xA0u64 + w as u64);
        sj.vas_switch_home(pid)?;
    }
    let per_round_trip = clock.since(t0) / WINDOWS as u64;
    println!("window round trip (switch in + load + switch home): ~{per_round_trip} cycles");
    println!("compare: remapping a window with mmap costs ~100x more (see fig8_gups)");
    Ok(())
}
