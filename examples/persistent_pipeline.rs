//! Pointer-rich data beyond process lifetimes: the SAMTools pattern
//! (Section 5.4).
//!
//! A chain of short-lived "tool" processes operates on one dataset that
//! lives in a persistent VAS: the loader builds a pointer-rich record
//! store and exits; a sorter attaches, sorts in place, and exits; an
//! indexer attaches and builds an index. No serialization, no pointer
//! swizzling — every process sees the same structures at the same
//! addresses.
//!
//! Run with: `cargo run --example persistent_pipeline`

use spacejmp::genome::{generate, RecStore, WorkloadConfig};
use spacejmp::prelude::*;

const SEG_BASE: u64 = 0x1000_0000_0000;

fn tool<T>(
    sj: &mut SpaceJmp,
    name: &str,
    op: impl FnOnce(&mut SpaceJmp, Pid, RecStore) -> SjResult<T>,
) -> SjResult<T> {
    // Each tool is a brand-new process: spawn, attach, switch, work,
    // detach, exit.
    let pid = sj.kernel_mut().spawn(name, Creds::new(1, 1))?;
    sj.kernel_mut().activate(pid)?;
    let vid = sj.vas_find("alignments")?;
    let vh = sj.vas_attach(pid, vid)?;
    sj.vas_switch(pid, vh)?;
    let sid = sj.seg_find("alignments-seg")?;
    let heap = VasHeap::open(sj, pid, sid)?;
    let store = RecStore::open(sj, pid, heap)?;
    let out = op(sj, pid, store)?;
    sj.vas_switch_home(pid)?;
    sj.vas_detach(pid, vh)?;
    sj.kernel_mut().exit(pid)?;
    Ok(out)
}

fn main() -> SjResult<()> {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));

    // --- tool 1: the loader ------------------------------------------------
    let loader = sj.kernel_mut().spawn("loader", Creds::new(1, 1))?;
    sj.kernel_mut().activate(loader)?;
    let vid = sj.vas_create(loader, "alignments", Mode(0o660))?;
    let sid = sj.seg_alloc(
        loader,
        "alignments-seg",
        VirtAddr::new(SEG_BASE),
        16 << 20,
        Mode(0o660),
    )?;
    sj.seg_attach(loader, vid, sid, AttachMode::ReadWrite)?;
    let vh = sj.vas_attach(loader, vid)?;
    sj.vas_switch(loader, vh)?;
    let heap = VasHeap::format(&mut sj, loader, sid)?;
    let (_dict, records) = generate(&WorkloadConfig {
        records: 3000,
        ..WorkloadConfig::default()
    });
    let store = RecStore::create(&mut sj, loader, heap, records.len() as u64)?;
    for r in &records {
        store.append(&mut sj, loader, r)?;
    }
    println!(
        "loader:  stored {} pointer-rich records and exited",
        records.len()
    );
    sj.vas_switch_home(loader)?;
    sj.vas_detach(loader, vh)?;
    sj.kernel_mut().exit(loader)?;

    // --- tool 2: flagstat ----------------------------------------------------
    let fs = tool(&mut sj, "flagstat", |sj, pid, store| {
        Ok(store.flagstat(sj, pid)?.0)
    })?;
    println!(
        "flagstat: {} records, {} mapped, {} proper pairs",
        fs.total, fs.mapped, fs.proper_pair
    );

    // --- tool 3: coordinate sort (in place, results persist) ---------------
    tool(&mut sj, "sorter", |sj, pid, store| {
        store.coordinate_sort(sj, pid)
    })?;
    println!("sorter:  coordinate-sorted the store in place and exited");

    // --- tool 4: index over the sorted data ---------------------------------
    let index = tool(&mut sj, "indexer", |sj, pid, store| {
        Ok(store.build_index(sj, pid, 4)?.0)
    })?;
    let windows: usize = index.refs.iter().map(|r| r.len()).sum();
    println!("indexer: built a linear index with {windows} windows");

    // --- verify the persistence claim ---------------------------------------
    let (first, second) = tool(&mut sj, "verifier", |sj, pid, store| {
        Ok((
            store.read_record(sj, pid, 0)?,
            store.read_record(sj, pid, 1)?,
        ))
    })?;
    assert!(
        first.coord_key() <= second.coord_key(),
        "sorted order persisted"
    );
    println!("verifier: records still sorted — no tool serialized a single byte");
    Ok(())
}
