//! Translation-backend parity: the host-side walk cache must be
//! invisible to the simulation, and the no-VM base+bound backend must
//! be a strict lower bound on translation cost.
//!
//! CI runs this as part of the `backend-parity-smoke` job alongside a
//! byte-level comparison of `fig8_gups --quick` output with the cache
//! forced off via `SJMP_HOST_WALK_CACHE=0`.

use spacejmp::gups::{run as run_gups, Design, GupsConfig};
use spacejmp::mem::TranslationKind;

fn small_cfg(backend: TranslationKind) -> GupsConfig {
    GupsConfig {
        windows: 4,
        window_bytes: 4 << 20,
        epochs: 24,
        backend,
        ..GupsConfig::default()
    }
}

/// Disabling the host walk cache changes host wall time only: every
/// simulated observable — cycles, updates, transitions, TLB misses —
/// is bit-identical.
#[test]
fn host_walk_cache_is_invisible_to_the_simulation() {
    let cached = run_gups(Design::Jmp, &small_cfg(TranslationKind::FourLevel)).unwrap();
    let uncached = run_gups(Design::Jmp, &small_cfg(TranslationKind::FourLevelUncached)).unwrap();
    assert_eq!(
        (
            cached.cycles,
            cached.updates,
            cached.transitions,
            cached.tlb_misses
        ),
        (
            uncached.cycles,
            uncached.updates,
            uncached.transitions,
            uncached.tlb_misses
        ),
        "host walk cache leaked into the simulation"
    );
}

/// The base+bound backend pays a flat bounds check per access — no
/// walks, no TLB — so it must complete the same workload in strictly
/// fewer cycles than the four-level walker.
#[test]
fn no_vm_baseline_is_a_strict_lower_bound() {
    let walked = run_gups(Design::Jmp, &small_cfg(TranslationKind::FourLevel)).unwrap();
    let novm = run_gups(Design::Jmp, &small_cfg(TranslationKind::NoVm)).unwrap();
    assert_eq!(novm.updates, walked.updates, "same work in both runs");
    assert!(
        novm.cycles < walked.cycles,
        "no-VM must undercut the walker: {} vs {}",
        novm.cycles,
        walked.cycles
    );
    assert_eq!(novm.tlb_misses, 0, "base+bound translation has no TLB");
}
