//! Integration tests asserting the paper's headline claims end-to-end,
//! across all crates of the workspace.

use spacejmp::gups::{run as gups_run, Design, GupsConfig};
use spacejmp::kv::{measure_costs, JmpClient};
use spacejmp::prelude::*;
use spacejmp::rpc::SimSocket;

/// Table 2: the full vas_switch costs, measured through the real stack.
#[test]
fn table2_switch_costs() {
    for (flavor, tagging, expected) in [
        (KernelFlavor::DragonFly, false, 1127u64),
        (KernelFlavor::DragonFly, true, 807),
        (KernelFlavor::Barrelfish, false, 664),
        (KernelFlavor::Barrelfish, true, 462),
    ] {
        let mut sj = SpaceJmp::new(Kernel::new(flavor, MachineId::M2));
        sj.kernel_mut().set_tagging(tagging);
        let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
        if tagging {
            sj.vas_ctl(pid, VasCtl::RequestTag, vid).unwrap();
        }
        let vh = sj.vas_attach(pid, vid).unwrap();
        let t0 = sj.kernel().clock().now();
        sj.vas_switch(pid, vh).unwrap();
        assert_eq!(
            sj.kernel().clock().since(t0),
            expected,
            "{flavor:?} tagged={tagging}"
        );
    }
}

/// Section 1: "if an application wishes to address larger physical
/// memory than virtual address bits allow" — a process reaches N
/// disjoint physical windows through one VA.
#[test]
fn addresses_beyond_a_single_va_window() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M3));
    let pid = sj.kernel_mut().spawn("big", Creds::new(1, 1)).unwrap();
    let va = VirtAddr::new(0x1000_0000_0000);
    let mut handles = Vec::new();
    for w in 0..12 {
        let vid = sj.vas_create(pid, &format!("w{w}"), Mode(0o600)).unwrap();
        let sid = sj
            .seg_alloc(pid, &format!("s{w}"), va, 1 << 20, Mode(0o600))
            .unwrap();
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
        handles.push(sj.vas_attach(pid, vid).unwrap());
    }
    for (w, vh) in handles.iter().enumerate() {
        sj.vas_switch(pid, *vh).unwrap();
        sj.kernel_mut().store_u64(pid, va, w as u64).unwrap();
        sj.vas_switch_home(pid).unwrap();
    }
    for (w, vh) in handles.iter().enumerate() {
        sj.vas_switch(pid, *vh).unwrap();
        assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), w as u64);
        sj.vas_switch_home(pid).unwrap();
    }
}

/// Section 5.2: switching beats remapping; remapping cost grows with the
/// window, switching does not.
#[test]
fn switching_beats_remapping() {
    let cfg = GupsConfig {
        windows: 8,
        updates_per_set: 16,
        epochs: 48,
        ..GupsConfig::default()
    };
    let jmp = gups_run(Design::Jmp, &cfg).unwrap();
    let map = gups_run(Design::Map, &cfg).unwrap();
    assert!(
        jmp.mups > 2.0 * map.mups,
        "JMP {} vs MAP {}",
        jmp.mups,
        map.mups
    );
}

/// Section 5.3: two switches are far cheaper than a socket round trip —
/// the premise of RedisJMP — and the measured visit confirms it.
#[test]
fn switch_pair_beats_socket_round_trip() {
    let cost = spacejmp::mem::CostModel::default();
    let socket = SimSocket::round_trip_cost(&cost, 32, 16);
    let costs = measure_costs(false).unwrap();
    assert!(
        costs.jmp_get < socket,
        "full RedisJMP visit ({}) must beat the socket round trip ({})",
        costs.jmp_get,
        socket
    );
}

/// Section 3.1: lockable segments give readers parallelism and writers
/// exclusion across *processes*.
#[test]
fn lockable_segments_across_processes() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
    let mut clients = Vec::new();
    for i in 0..3 {
        let pid = sj
            .kernel_mut()
            .spawn(&format!("c{i}"), Creds::new(100, 100))
            .unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        clients.push(JmpClient::join(&mut sj, pid, "locks", i).unwrap());
    }
    clients[0].set(&mut sj, b"k", b"v").unwrap();
    // Two readers in simultaneously.
    let (p0, r0) = (clients[0].pid(), clients[0].read_handle());
    let (p1, r1) = (clients[1].pid(), clients[1].read_handle());
    sj.vas_switch(p0, r0).unwrap();
    sj.vas_switch(p1, r1).unwrap();
    // Writer excluded.
    assert_eq!(
        clients[2].set(&mut sj, b"k", b"w"),
        Err(SjError::WouldBlock)
    );
    sj.vas_switch_home(p0).unwrap();
    sj.vas_switch_home(p1).unwrap();
    clients[2].set(&mut sj, b"k", b"w").unwrap();
    assert_eq!(clients[0].get(&mut sj, b"k").unwrap(), Some(b"w".to_vec()));
}

/// Section 2.2 / 5.4: pointer-rich structures survive process lifetimes
/// with pointers intact (no serialization, no swizzling).
#[test]
fn pointers_survive_process_lifetimes() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let seg_base = VirtAddr::new(0x1000_0000_0000);

    // Process A builds a linked list in a VAS-resident heap.
    let pa = sj.kernel_mut().spawn("builder", Creds::new(7, 7)).unwrap();
    sj.kernel_mut().activate(pa).unwrap();
    let vid = sj.vas_create(pa, "list-vas", Mode(0o660)).unwrap();
    let sid = sj
        .seg_alloc(pa, "list-seg", seg_base, 1 << 20, Mode(0o660))
        .unwrap();
    sj.seg_attach(pa, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pa, vid).unwrap();
    sj.vas_switch(pa, vh).unwrap();
    let heap = VasHeap::format(&mut sj, pa, sid).unwrap();
    // Nodes: [value, next_ptr], linked head -> 0 -> 1 -> 2.
    let mut next = VirtAddr::NULL;
    for v in (0..3u64).rev() {
        let node = heap.malloc(&mut sj, pa, 16).unwrap();
        sj.kernel_mut().store_u64(pa, node, v * 100).unwrap();
        sj.kernel_mut()
            .store_u64(pa, node.add(8), next.raw())
            .unwrap();
        next = node;
    }
    heap.set_root(&mut sj, pa, next).unwrap();
    sj.vas_switch_home(pa).unwrap();
    sj.vas_detach(pa, vh).unwrap();
    sj.kernel_mut().exit(pa).unwrap();

    // Process B walks the list by raw pointers.
    let pb = sj.kernel_mut().spawn("walker", Creds::new(7, 7)).unwrap();
    sj.kernel_mut().activate(pb).unwrap();
    let vid = sj.vas_find("list-vas").unwrap();
    let vh = sj.vas_attach(pb, vid).unwrap();
    sj.vas_switch(pb, vh).unwrap();
    let sid = sj.seg_find("list-seg").unwrap();
    let heap = VasHeap::open(&mut sj, pb, sid).unwrap();
    let mut node = heap.root(&mut sj, pb).unwrap();
    let mut values = Vec::new();
    while node != VirtAddr::NULL {
        values.push(sj.kernel_mut().load_u64(pb, node).unwrap());
        node = VirtAddr::new(sj.kernel_mut().load_u64(pb, node.add(8)).unwrap());
    }
    assert_eq!(values, vec![0, 100, 200]);
}

/// Section 4.4 + Figure 6: tags retain translations across switches.
#[test]
fn tags_retain_translations() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.kernel_mut().set_tagging(true);
    let pid = sj.kernel_mut().spawn("t", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let va = VirtAddr::new(0x1000_0000_0000);
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    sj.vas_ctl(pid, VasCtl::RequestTag, vid).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o600)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 1).unwrap();
    let core = sj.kernel().process(pid).unwrap().core();
    let before = sj.kernel_mut().core_mem(core).0.stats().walks;
    for _ in 0..10 {
        sj.vas_switch_home(pid).unwrap();
        sj.vas_switch(pid, vh).unwrap();
        sj.kernel_mut().load_u64(pid, va).unwrap();
    }
    let after = sj.kernel_mut().core_mem(core).0.stats().walks;
    assert_eq!(
        after, before,
        "ten tagged round trips, zero extra page walks"
    );
}

/// The safety tool chain, end to end: a cross-VAS bug is caught by the
/// inserted check, and the fixed version runs clean with zero checks.
#[test]
fn safety_toolchain_end_to_end() {
    use spacejmp::safety::{
        analysis::Analysis,
        checks::{insert_checks, CheckPolicy},
        interp::{Interp, Trap},
        ir::{AbstractVas, BlockId, Function, Inst, Module, VasName},
    };

    // Buggy: allocate in VAS 0, dereference while in VAS 1.
    let mut buggy = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    f.push(BlockId(0), Inst::Switch(VasName(1)));
    f.push(BlockId(0), Inst::Load { dst: x, addr: p });
    f.push(BlockId(0), Inst::Ret(None));
    buggy.add_function(f);

    let entry: spacejmp::safety::VasSet = [AbstractVas::Vas(VasName(0))].into_iter().collect();
    let analysis = Analysis::run(&buggy, entry.clone());
    let report = insert_checks(&mut buggy, &analysis, CheckPolicy::Analyzed);
    assert_eq!(report.deref_checks, 1);
    let mut interp = Interp::new(&buggy, VasName(0));
    assert!(matches!(
        interp.run(&[]).unwrap_err(),
        Trap::CheckFailed { .. }
    ));

    // Fixed: switch back before dereferencing.
    let mut fixed = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 5 });
    f.push(BlockId(0), Inst::Store { addr: p, val: c });
    f.push(BlockId(0), Inst::Switch(VasName(1)));
    f.push(BlockId(0), Inst::Switch(VasName(0)));
    f.push(BlockId(0), Inst::Load { dst: x, addr: p });
    f.push(BlockId(0), Inst::Ret(Some(x)));
    fixed.add_function(f);
    let analysis = Analysis::run(&fixed, entry);
    let report = insert_checks(&mut fixed, &analysis, CheckPolicy::Analyzed);
    assert_eq!(
        report.deref_checks + report.store_checks,
        0,
        "provably safe"
    );
    let mut interp = Interp::new(&fixed, VasName(0));
    assert_eq!(
        interp.run(&[]).unwrap(),
        Some(spacejmp::safety::Value::Int(5))
    );
}
