//! Crash-fault injection and recovery: processes dying abruptly inside
//! shared VASes must never wedge the system. Deterministic fault plans
//! ([`spacejmp::os::FaultPlan`]) inject frame exhaustion, mid-mmap
//! failures, and abrupt process death; [`SpaceJmp::reap_process`]
//! reclaims the corpses; `SpaceJmp::check_invariants` audits the whole
//! system (frame accounting, refcounts, lock/attachment bookkeeping)
//! after every disturbance.

use spacejmp::gups::{run_jmp_shared_on, GupsConfig};
use spacejmp::kv::JmpClient;
use spacejmp::os::{FaultPlan, FaultSite, OsError};
use spacejmp::prelude::*;
use spacejmp::sim::SimRng;

const SEG_BASE: u64 = 0x1000_0000_0000;
const SLOT: u64 = 1 << 39;

fn boot() -> SpaceJmp {
    SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1))
}

fn spawn(sj: &mut SpaceJmp, name: &str) -> Pid {
    let pid = sj.kernel_mut().spawn(name, Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    pid
}

/// Shared VAS with one read-write (exclusive-on-switch) segment; both
/// processes attached. Returns (vid, their handles).
fn shared_rw_vas(
    sj: &mut SpaceJmp,
    p1: Pid,
    p2: Pid,
    name: &str,
    base: u64,
) -> (VasId, VasHandle, VasHandle) {
    let vid = sj
        .vas_create(p1, &format!("{name}-v"), Mode(0o666))
        .unwrap();
    let sid = sj
        .seg_alloc(
            p1,
            &format!("{name}-s"),
            VirtAddr::new(base),
            256 << 10,
            Mode(0o666),
        )
        .unwrap();
    sj.seg_attach(p1, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    let vh2 = sj.vas_attach(p2, vid).unwrap();
    (vid, vh1, vh2)
}

fn assert_clean(sj: &mut SpaceJmp) {
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "audit failed:\n{}",
        problems.join("\n")
    );
}

// ---- the headline acceptance scenario ----------------------------------

#[test]
fn killed_exclusive_holder_is_reaped_and_the_vas_recovered() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "victim");
    let p2 = spawn(&mut sj, "survivor");
    let (_, vh1, vh2) = shared_rw_vas(&mut sj, p1, p2, "acc", SEG_BASE);

    // p1 switches in and now holds the segment lock exclusively.
    sj.vas_switch(p1, vh1).unwrap();
    sj.kernel_mut()
        .store_u64(p1, VirtAddr::new(SEG_BASE), 0xdead)
        .unwrap();
    assert_eq!(sj.vas_switch(p2, vh2), Err(SjError::WouldBlock));

    // p1 is killed without any cooperation — no exit path runs.
    sj.reap_process(p1).unwrap();
    assert!(sj.kernel().process(p1).is_err(), "corpse fully reclaimed");
    assert_clean(&mut sj);

    // The survivor can now switch in and sees the victim's last write.
    sj.vas_switch(p2, vh2).unwrap();
    assert_eq!(
        sj.kernel_mut()
            .load_u64(p2, VirtAddr::new(SEG_BASE))
            .unwrap(),
        0xdead
    );
    sj.kernel_mut()
        .store_u64(p2, VirtAddr::new(SEG_BASE), 1)
        .unwrap();
    assert_clean(&mut sj);
}

#[test]
fn injected_crash_leaves_an_auditable_zombie_until_reaped() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "doomed");
    let p2 = spawn(&mut sj, "other");
    let (_, vh1, vh2) = shared_rw_vas(&mut sj, p1, p2, "zomb", SEG_BASE);

    // The first switch dies inside the kernel, after the SpaceJMP layer
    // acquired the segment lock: the corpse holds it.
    sj.kernel_mut()
        .set_fault_plan(Some(FaultPlan::new(1).crash_nth(FaultSite::Switch, 1)));
    assert_eq!(sj.vas_switch(p1, vh1), Err(SjError::Os(OsError::Crashed)));
    assert!(sj.kernel().process(p1).is_ok(), "zombie stays registered");
    assert_eq!(
        sj.vas_switch(p2, vh2),
        Err(SjError::WouldBlock),
        "zombie's lock blocks others"
    );
    assert_clean(&mut sj); // a zombie is a consistent state

    sj.reap_process(p1).unwrap();
    assert_eq!(
        sj.reap_process(p1),
        Err(SjError::Os(OsError::NoSuchProcess)),
        "double reap"
    );
    sj.vas_switch(p2, vh2).unwrap();
    assert_clean(&mut sj);
}

// ---- exit_process edge cases -------------------------------------------

#[test]
fn exit_while_holding_exclusive_locks_spanning_vases() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "locker");
    let p2 = spawn(&mut sj, "blocked");
    // One segment mapped read-write into two different VASes; p1 switched
    // into the first, p2 wants the second — same lock.
    let vid_a = sj.vas_create(p1, "span-a", Mode(0o666)).unwrap();
    let vid_b = sj.vas_create(p1, "span-b", Mode(0o666)).unwrap();
    let sid = sj
        .seg_alloc(p1, "span-s", VirtAddr::new(SEG_BASE), 64 << 10, Mode(0o666))
        .unwrap();
    sj.seg_attach(p1, vid_a, sid, AttachMode::ReadWrite)
        .unwrap();
    sj.seg_attach(p1, vid_b, sid, AttachMode::ReadWrite)
        .unwrap();
    // p1 additionally holds a process-local scratch segment's lock.
    let scratch = sj
        .seg_alloc(
            p1,
            "span-scratch",
            VirtAddr::new(SEG_BASE + SLOT),
            64 << 10,
            Mode(0o600),
        )
        .unwrap();
    let vh_a = sj.vas_attach(p1, vid_a).unwrap();
    sj.seg_attach_local(p1, vh_a, scratch, AttachMode::ReadWrite)
        .unwrap();
    let vh_b = sj.vas_attach(p2, vid_b).unwrap();

    sj.vas_switch(p1, vh_a).unwrap();
    assert!(sj.segment(sid).unwrap().lock().held_by(p1));
    assert!(sj.segment(scratch).unwrap().lock().held_by(p1));
    assert_eq!(sj.vas_switch(p2, vh_b), Err(SjError::WouldBlock));

    sj.exit_process(p1).unwrap();
    assert!(sj.segment(sid).unwrap().lock().is_free());
    assert!(sj.segment(scratch).unwrap().lock().is_free());
    sj.vas_switch(p2, vh_b).unwrap();
    assert_clean(&mut sj);
}

#[test]
fn exit_with_a_pending_would_block_waiter() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "holder");
    let p2 = spawn(&mut sj, "waiter");
    let (_, vh1, vh2) = shared_rw_vas(&mut sj, p1, p2, "wait", SEG_BASE);

    sj.vas_switch(p1, vh1).unwrap();
    // p2 gives up after its retries but stays registered as a waiter.
    let policy = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    assert_eq!(
        sj.vas_switch_retry(p2, vh2, &policy),
        Err(SjError::WouldBlock)
    );

    // The holder exits cleanly; the waiter's next attempt succeeds and
    // the waiter registration is consumed.
    sj.exit_process(p1).unwrap();
    sj.vas_switch_retry(p2, vh2, &policy).unwrap();
    assert_clean(&mut sj);
}

#[test]
fn double_exit_reports_no_such_process() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "once");
    let (_, vh1, _) = {
        let p2 = spawn(&mut sj, "bystander");
        shared_rw_vas(&mut sj, p1, p2, "dbl", SEG_BASE)
    };
    sj.vas_switch(p1, vh1).unwrap();
    sj.exit_process(p1).unwrap();
    assert_eq!(
        sj.exit_process(p1),
        Err(SjError::Os(OsError::NoSuchProcess))
    );
    assert_clean(&mut sj);
}

// ---- deadlock detection ------------------------------------------------

#[test]
fn cyclic_waiters_get_deadlock_not_livelock() {
    let mut sj = boot();
    let p1 = spawn(&mut sj, "dl1");
    let p2 = spawn(&mut sj, "dl2");
    // Segments X and Y; VAS A = {X}, VAS B = {Y}, VAS AB = {X, Y}.
    let vid_a = sj.vas_create(p1, "dl-a", Mode(0o666)).unwrap();
    let vid_b = sj.vas_create(p1, "dl-b", Mode(0o666)).unwrap();
    let vid_ab = sj.vas_create(p1, "dl-ab", Mode(0o666)).unwrap();
    let x = sj
        .seg_alloc(p1, "dl-x", VirtAddr::new(SEG_BASE), 64 << 10, Mode(0o666))
        .unwrap();
    let y = sj
        .seg_alloc(
            p1,
            "dl-y",
            VirtAddr::new(SEG_BASE + SLOT),
            64 << 10,
            Mode(0o666),
        )
        .unwrap();
    sj.seg_attach(p1, vid_a, x, AttachMode::ReadWrite).unwrap();
    sj.seg_attach(p1, vid_b, y, AttachMode::ReadWrite).unwrap();
    sj.seg_attach(p1, vid_ab, x, AttachMode::ReadWrite).unwrap();
    sj.seg_attach(p1, vid_ab, y, AttachMode::ReadWrite).unwrap();
    let vh_a = sj.vas_attach(p1, vid_a).unwrap();
    let vh_b = sj.vas_attach(p2, vid_b).unwrap();
    let vh_ab1 = sj.vas_attach(p1, vid_ab).unwrap();
    let vh_ab2 = sj.vas_attach(p2, vid_ab).unwrap();

    // p1 holds X, p2 holds Y; each then wants both.
    sj.vas_switch(p1, vh_a).unwrap();
    sj.vas_switch(p2, vh_b).unwrap();
    let policy = RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::default()
    };
    // p1 blocks on Y (held by p2) and stays registered as a waiter.
    assert_eq!(
        sj.vas_switch_retry(p1, vh_ab1, &policy),
        Err(SjError::WouldBlock)
    );
    // p2 blocks on X (held by p1): the waits-for graph now has the cycle
    // p2 -> p1 -> p2, reported instead of burning retries.
    assert_eq!(
        sj.vas_switch_retry(p2, vh_ab2, &policy),
        Err(SjError::Deadlock)
    );

    // Breaking the cycle (p2 backs off home) lets p1 through.
    sj.vas_switch_home(p2).unwrap();
    sj.vas_switch_retry(p1, vh_ab1, &policy).unwrap();
    assert_clean(&mut sj);
}

// ---- randomized crash-injection harness --------------------------------

/// One GUPS round under a seeded fault plan. Returns injected faults.
fn gups_round(seed: u64) -> u64 {
    let cfg = GupsConfig {
        windows: 4,
        window_bytes: 128 << 10,
        updates_per_set: 8,
        epochs: 96,
        seed,
        ..GupsConfig::default()
    };
    let mut sj = SpaceJmp::new(Kernel::new(cfg.flavor, cfg.machine));
    sj.kernel_mut().set_fault_plan(Some(
        FaultPlan::new(seed)
            .crash_with_probability(FaultSite::Switch, 0.04)
            .fail_with_probability(FaultSite::Switch, 0.08)
            .fail_with_probability(FaultSite::SpaceAlloc, 0.02)
            .fail_with_probability(FaultSite::MapRegion, 0.03),
    ));
    // Injected faults may abort the run early (e.g. during setup); what
    // must never happen is a panic, a livelock, or a failed audit.
    let result = run_jmp_shared_on(&mut sj, &cfg, 3);
    if let Ok(r) = &result {
        assert_eq!(r.crashes, sj.stats().reaps, "every crash was reaped");
    }
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "GUPS seed {seed}: audit failed:\n{}",
        problems.join("\n")
    );
    sj.kernel()
        .fault_plan()
        .expect("plan installed")
        .stats()
        .total()
}

/// One KV round: clients hammer a shared store while faults kill them;
/// crashed clients are reaped and replaced. Returns injected faults.
fn kv_round(seed: u64) -> u64 {
    let mut sj = boot();
    let mut clients = Vec::new();
    for i in 0..2 {
        let pid = spawn(&mut sj, &format!("kv-{i}"));
        clients.push(JmpClient::join(&mut sj, pid, "crash-store", i).unwrap());
    }
    sj.kernel_mut().set_fault_plan(Some(
        FaultPlan::new(seed)
            .crash_with_probability(FaultSite::Switch, 0.02)
            .fail_with_probability(FaultSite::Switch, 0.05)
            .fail_with_probability(FaultSite::ObjectAlloc, 0.02)
            .fail_with_probability(FaultSite::MapRegion, 0.03)
            .fail_with_probability(FaultSite::SpaceAlloc, 0.02),
    ));

    let mut rng = SimRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut next_idx = 2usize;
    let mut crashes = 0u64;
    for op in 0..150 {
        if clients.is_empty() {
            // Best effort replacement; an injected fault just delays it.
            // Pinned scratch segments of reaped clients are never freed
            // (segments outlive processes), so a long crash streak can
            // legitimately exhaust the small machine — end the round.
            let name = format!("kv-r{next_idx}");
            let Ok(pid) = sj.kernel_mut().spawn(&name, Creds::new(100, 100)) else {
                break;
            };
            sj.kernel_mut().activate(pid).unwrap();
            match JmpClient::join(&mut sj, pid, "crash-store", next_idx) {
                Ok(c) => clients.push(c),
                Err(SjError::Os(OsError::Crashed)) => {
                    sj.reap_process(pid).unwrap();
                    crashes += 1;
                }
                Err(_) => {
                    let _ = sj.exit_process(pid);
                }
            }
            next_idx += 1;
            continue;
        }
        let ci = rng.index(clients.len());
        let key = format!("k{}", rng.index(16));
        let outcome = match rng.index(3) {
            0 => clients[ci].get(&mut sj, key.as_bytes()).map(|_| ()),
            1 => clients[ci].set(&mut sj, key.as_bytes(), format!("v{op}").as_bytes()),
            _ => clients[ci].del(&mut sj, key.as_bytes()).map(|_| ()),
        };
        match outcome {
            Ok(()) => {}
            Err(SjError::Os(OsError::Crashed)) => {
                let pid = clients[ci].pid();
                sj.reap_process(pid).unwrap();
                clients.remove(ci);
                crashes += 1;
            }
            Err(_) => {} // transient injected failure; command dropped
        }
        if op % 25 == 0 {
            let problems = sj.check_invariants();
            assert!(
                problems.is_empty(),
                "KV seed {seed}: audit failed:\n{}",
                problems.join("\n")
            );
        }
    }
    assert_eq!(crashes, sj.stats().reaps, "every crash was reaped");
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "KV seed {seed}: final audit failed:\n{}",
        problems.join("\n")
    );
    sj.kernel()
        .fault_plan()
        .expect("plan installed")
        .stats()
        .total()
}

#[test]
fn randomized_crash_harness_survives_at_least_100_faults() {
    let mut faults = 0u64;
    for seed in 0..10u64 {
        faults += gups_round(0xFA11_0000 + seed);
        faults += kv_round(0xC4A5_0000 + seed);
    }
    assert!(
        faults >= 100,
        "only {faults} faults injected; raise rates or rounds"
    );
}
