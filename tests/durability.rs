//! Durability tests: crash-consistent VAS snapshot/restore on the
//! simulated block device. `vas_save` must commit atomically through
//! the write-ahead journal — after a crash at *any* block boundary,
//! torn write, or dropped flush barrier, recovery yields exactly the
//! old or the new snapshot, never a hybrid — and `vas_load` on a
//! freshly booted machine must reproduce segment contents byte for
//! byte, evicted swap pages included. Every recovery is followed by
//! the whole-system invariant audit and the `sjmp-analyze` kernel
//! linter.

use spacejmp::analyze::lint_kernel;
use spacejmp::kv::JmpClient;
use spacejmp::mem::PAGE_SIZE;
use spacejmp::os::{FaultPlan, FaultSite, OsError};
use spacejmp::prelude::*;

const SEG_BASE: u64 = 0x1000_0000_0000;

fn boot() -> SpaceJmp {
    SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1))
}

fn spawn(sj: &mut SpaceJmp, name: &str) -> Pid {
    let pid = sj.kernel_mut().spawn(name, Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    pid
}

/// Simulated power loss + reboot: the block device (losing every
/// unflushed block) is carried to a freshly booted kernel, which runs
/// snapshot recovery in `attach_disk`. Returns the new machine and the
/// number of journal replays recovery performed.
fn restart(mut sj: SpaceJmp) -> (SpaceJmp, u64) {
    let mut dev = sj.kernel_mut().take_disk();
    dev.crash();
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M1);
    let replays = kernel.attach_disk(dev);
    (SpaceJmp::new(kernel), replays)
}

fn assert_clean(sj: &mut SpaceJmp) {
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "audit failed:\n{}",
        problems.join("\n")
    );
    let findings = lint_kernel(sj);
    assert!(findings.is_empty(), "lint failed:\n{findings:?}");
}

fn va(page: u64) -> VirtAddr {
    VirtAddr::new(SEG_BASE + page * PAGE_SIZE)
}

/// Creates VAS `name` holding one segment `name-s` of `pages` pages,
/// switches in, stores `value(page)` into every page, switches home.
fn build_vas(
    sj: &mut SpaceJmp,
    pid: Pid,
    name: &str,
    pages: u64,
    swappable: bool,
    value: impl Fn(u64) -> u64,
) -> (VasId, SegId) {
    let vid = sj.vas_create(pid, name, Mode(0o660)).unwrap();
    let seg_name = format!("{name}-s");
    let sid = if swappable {
        sj.seg_alloc_swappable(
            pid,
            &seg_name,
            VirtAddr::new(SEG_BASE),
            pages * PAGE_SIZE,
            Mode(0o660),
        )
        .unwrap()
    } else {
        sj.seg_alloc(
            pid,
            &seg_name,
            VirtAddr::new(SEG_BASE),
            pages * PAGE_SIZE,
            Mode(0o660),
        )
        .unwrap()
    };
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    for page in 0..pages {
        sj.kernel_mut()
            .store_u64(pid, va(page), value(page))
            .unwrap();
    }
    sj.vas_switch_home(pid).unwrap();
    (vid, sid)
}

/// Rewrites every page of the (already attached) VAS with `value(page)`.
fn rewrite_vas(sj: &mut SpaceJmp, pid: Pid, vid: VasId, pages: u64, value: impl Fn(u64) -> u64) {
    let vh = sj
        .attachment_handles()
        .into_iter()
        .find(|vh| {
            let att = sj.attachment(*vh).unwrap();
            att.pid == pid && att.vid == vid
        })
        .unwrap();
    sj.vas_switch(pid, vh).unwrap();
    for page in 0..pages {
        sj.kernel_mut()
            .store_u64(pid, va(page), value(page))
            .unwrap();
    }
    sj.vas_switch_home(pid).unwrap();
}

/// Loads VAS `name` on `sj`, switches in, and returns the first word of
/// each of `pages` pages.
fn load_and_read(sj: &mut SpaceJmp, pid: Pid, name: &str, pages: u64) -> Vec<u64> {
    let vid = sj.vas_load(pid, name).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    let values = (0..pages)
        .map(|page| sj.kernel_mut().load_u64(pid, va(page)).unwrap())
        .collect();
    sj.vas_switch_home(pid).unwrap();
    values
}

// ---- the round trip ------------------------------------------------------

#[test]
fn vas_save_load_round_trips_across_restart() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "saver");
    const PAGES: u64 = 8;
    let (vid, sid) = build_vas(&mut sj, pid, "durable", PAGES, false, |p| 0xBEEF_0000 + p);
    sj.seg_ctl(pid, sid, SegCtl::SetLockable(false)).unwrap();
    let image_before = sj.save_segment(pid, sid).unwrap();

    let generation = sj.vas_save(pid, vid).unwrap();
    assert_eq!(generation, 1, "first commit is generation 1");
    assert_clean(&mut sj);

    let (mut sj2, replays) = restart(sj);
    assert_eq!(replays, 0, "clean shutdown needs no journal replay");
    let pid2 = spawn(&mut sj2, "loader");
    let values = load_and_read(&mut sj2, pid2, "durable", PAGES);
    for (page, got) in values.iter().enumerate() {
        assert_eq!(*got, 0xBEEF_0000 + page as u64);
    }

    // The restored segment is byte-identical, keeps its name, mode, and
    // lockability.
    let sid2 = sj2.seg_find("durable-s").unwrap();
    assert_eq!(sj2.save_segment(pid2, sid2).unwrap(), image_before);
    let seg = sj2.segment(sid2).unwrap();
    assert_eq!(seg.acl().mode(), Mode(0o660));
    assert!(!seg.lockable(), "lockability survives the round trip");
    assert_clean(&mut sj2);
}

#[test]
fn loading_a_never_saved_name_is_not_found() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "p");
    assert_eq!(sj.vas_load(pid, "ghost"), Err(SjError::NotFound));
}

#[test]
fn saving_twice_preserves_other_catalog_entries() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "p");
    let (vid_a, _) = build_vas(&mut sj, pid, "cat-a", 2, false, |p| 100 + p);
    let vid_b = sj.vas_create(pid, "cat-b", Mode(0o660)).unwrap();
    let sid_b = sj
        .seg_alloc(
            pid,
            "cat-b-s",
            VirtAddr::new(SEG_BASE + (1 << 32)),
            2 * PAGE_SIZE,
            Mode(0o660),
        )
        .unwrap();
    sj.seg_attach(pid, vid_b, sid_b, AttachMode::ReadWrite)
        .unwrap();

    assert_eq!(sj.vas_save(pid, vid_a).unwrap(), 1);
    assert_eq!(sj.vas_save(pid, vid_b).unwrap(), 2);
    assert_eq!(sj.vas_save(pid, vid_a).unwrap(), 3, "re-save supersedes");

    let (mut sj2, _) = restart(sj);
    let pid2 = spawn(&mut sj2, "q");
    let values = load_and_read(&mut sj2, pid2, "cat-a", 2);
    assert_eq!(values, vec![100, 101]);
    sj2.vas_load(pid2, "cat-b").unwrap();
    assert_clean(&mut sj2);
}

// ---- swappable segments (the lifted PR 2 restriction) --------------------

#[test]
fn swappable_segment_with_evicted_pages_survives_restart() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "swapper");
    const PAGES: u64 = 32;
    let (vid, sid) = build_vas(&mut sj, pid, "swp", PAGES, true, |p| 0xAB_0000 + p);

    // Evict everything to the swap device; the save must read the
    // contents back through it without faulting pages in.
    let evicted = sj.kernel_mut().sys_reclaim(PAGES);
    assert!(evicted > 0, "reclaim evicted nothing");
    let swapped_before = sj.kernel_mut().sys_phys_stats().swap_slots_used;
    assert!(swapped_before > 0);

    // save_segment on a swappable segment (previously refused).
    let image = sj.save_segment(pid, sid).unwrap();
    assert_eq!(
        sj.kernel_mut().sys_phys_stats().swap_slots_used,
        swapped_before,
        "saving must not disturb evicted pages"
    );
    assert!(!image.is_empty());

    assert_eq!(sj.vas_save(pid, vid).unwrap(), 1);
    assert_clean(&mut sj);

    let (mut sj2, _) = restart(sj);
    let pid2 = spawn(&mut sj2, "reader");
    let values = load_and_read(&mut sj2, pid2, "swp", PAGES);
    for (page, got) in values.iter().enumerate() {
        assert_eq!(*got, 0xAB_0000 + page as u64, "page {page}");
    }
    // Swappability survives: the restored segment is demand-paged.
    let sid2 = sj2.seg_find("swp-s").unwrap();
    let obj = sj2.segment(sid2).unwrap().object();
    assert!(sj2.kernel().vmobject(obj).unwrap().swappable());
    assert_clean(&mut sj2);
}

#[test]
fn swappable_segment_clones_preserving_evicted_pages() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "cloner");
    const PAGES: u64 = 16;
    let (_, sid) = build_vas(&mut sj, pid, "cl", PAGES, true, |p| 0xC0_0000 + p);
    let evicted = sj.kernel_mut().sys_reclaim(PAGES);
    assert!(evicted > 0);
    let before = sj.kernel_mut().sys_phys_stats();

    // seg_clone on a swappable segment (previously refused): page
    // states are copied — evicted pages land in fresh swap slots, no
    // page of either side is faulted in.
    let clone_sid = sj.seg_clone(pid, sid, "cl-copy").unwrap();
    let after = sj.kernel_mut().sys_phys_stats();
    assert!(
        after.swap_slots_used > before.swap_slots_used,
        "clone copied swap slots: {} -> {}",
        before.swap_slots_used,
        after.swap_slots_used
    );
    assert_eq!(
        after.major_faults, before.major_faults,
        "cloning faulted pages in"
    );

    // Attach the clone to its own VAS and read every page.
    let cvid = sj.vas_create(pid, "cl-copy-v", Mode(0o660)).unwrap();
    sj.seg_attach(pid, cvid, clone_sid, AttachMode::ReadWrite)
        .unwrap();
    let cvh = sj.vas_attach(pid, cvid).unwrap();
    sj.vas_switch(pid, cvh).unwrap();
    for page in 0..PAGES {
        assert_eq!(
            sj.kernel_mut().load_u64(pid, va(page)).unwrap(),
            0xC0_0000 + page,
            "clone page {page}"
        );
    }
    sj.vas_switch_home(pid).unwrap();
    assert_clean(&mut sj);
}

// ---- crash-point injection ----------------------------------------------

/// Kills the machine at every block-write boundary during a save that
/// supersedes an existing snapshot. Recovery must always yield exactly
/// the old or the new contents — and both outcomes must occur across
/// the sweep.
#[test]
fn crash_at_every_block_write_recovers_old_or_new() {
    const PAGES: u64 = 4;
    let old = |p: u64| 0x01D_0000 + p;
    let new = |p: u64| 0x4E4_0000 + p;
    let (mut saw_old, mut saw_new) = (0u32, 0u32);
    for n in 1..=64u64 {
        let mut sj = boot();
        let pid = spawn(&mut sj, "w");
        let (vid, _) = build_vas(&mut sj, pid, "cp", PAGES, false, old);
        assert_eq!(sj.vas_save(pid, vid).unwrap(), 1);
        rewrite_vas(&mut sj, pid, vid, PAGES, new);

        sj.kernel_mut()
            .set_fault_plan(Some(FaultPlan::new(n).crash_nth(FaultSite::BlkWrite, n)));
        let result = sj.vas_save(pid, vid);
        sj.kernel_mut().set_fault_plan(None);
        let crashed = match result {
            Err(SjError::Os(OsError::Crashed)) => true,
            Ok(2) => false,
            other => panic!("write {n}: unexpected save result {other:?}"),
        };

        let (mut sj2, _) = restart(sj);
        let pid2 = spawn(&mut sj2, "r");
        let values = load_and_read(&mut sj2, pid2, "cp", PAGES);
        let all_old: Vec<u64> = (0..PAGES).map(old).collect();
        let all_new: Vec<u64> = (0..PAGES).map(new).collect();
        if values == all_old {
            saw_old += 1;
        } else if values == all_new {
            saw_new += 1;
        } else {
            panic!("crash at write {n}: torn hybrid recovered: {values:#x?}");
        }
        assert!(
            crashed || values == all_new,
            "uncrashed save must be durable"
        );
        assert_clean(&mut sj2);
        if !crashed {
            // n exceeded the commit's write count: sweep is exhaustive.
            break;
        }
    }
    assert!(saw_old > 0, "no crash point preserved the old snapshot");
    assert!(saw_new > 0, "no crash point reached the new snapshot");
}

/// Kills the machine at each of the commit's three flush barriers.
/// Before the journal is durable recovery keeps the old snapshot; once
/// it is, recovery replays to the new one.
#[test]
fn crash_at_each_flush_barrier_recovers_old_or_new() {
    const PAGES: u64 = 4;
    let old = |p: u64| 0xAAA_0000 + p;
    let new = |p: u64| 0xBBB_0000 + p;
    for n in 1..=3u64 {
        let mut sj = boot();
        let pid = spawn(&mut sj, "w");
        let (vid, _) = build_vas(&mut sj, pid, "fp", PAGES, false, old);
        assert_eq!(sj.vas_save(pid, vid).unwrap(), 1);
        rewrite_vas(&mut sj, pid, vid, PAGES, new);

        sj.kernel_mut()
            .set_fault_plan(Some(FaultPlan::new(n).crash_nth(FaultSite::BlkFlush, n)));
        assert_eq!(sj.vas_save(pid, vid), Err(SjError::Os(OsError::Crashed)));
        sj.kernel_mut().set_fault_plan(None);

        let (mut sj2, replays) = restart(sj);
        let pid2 = spawn(&mut sj2, "r");
        let values = load_and_read(&mut sj2, pid2, "fp", PAGES);
        let want: Vec<u64> = match n {
            // Payload / journal flush: the journal never became
            // durable, the old superblock wins.
            1 | 2 => (0..PAGES).map(old).collect(),
            // Superblock flush: the journal is durable, recovery
            // replays it into the superblock.
            _ => (0..PAGES).map(new).collect(),
        };
        assert_eq!(values, want, "flush {n}");
        assert_eq!(replays, u64::from(n == 3), "flush {n} replay count");
        assert_clean(&mut sj2);
    }
}

/// Seeded randomized torn writes and dropped flush barriers: the device
/// acks everything, so the save *appears* to succeed — only recovery's
/// checksums discover the damage. Recovery must still produce exactly
/// the old or the new contents.
#[test]
fn seeded_torn_and_dropped_faults_never_corrupt_recovery() {
    const PAGES: u64 = 4;
    let old = |p: u64| 0x50_0000 + p;
    let new = |p: u64| 0x51_0000 + p;
    let (mut saw_old, mut saw_new) = (0u32, 0u32);
    for seed in 0..12u64 {
        let mut sj = boot();
        let pid = spawn(&mut sj, "w");
        let (vid, sid) = build_vas(&mut sj, pid, "tz", PAGES, false, old);
        assert_eq!(sj.vas_save(pid, vid).unwrap(), 1);
        let old_image = sj.save_segment(pid, sid).unwrap();
        rewrite_vas(&mut sj, pid, vid, PAGES, new);
        let new_image = sj.save_segment(pid, sid).unwrap();

        sj.kernel_mut().set_fault_plan(Some(
            FaultPlan::new(seed)
                .fail_with_probability(FaultSite::BlkWrite, 0.25)
                .fail_with_probability(FaultSite::BlkFlush, 0.5),
        ));
        sj.vas_save(pid, vid)
            .expect("torn writes and dropped flushes are silent");
        sj.kernel_mut().set_fault_plan(None);

        let (mut sj2, _) = restart(sj);
        let pid2 = spawn(&mut sj2, "r");
        let values = load_and_read(&mut sj2, pid2, "tz", PAGES);
        let all_old: Vec<u64> = (0..PAGES).map(old).collect();
        let all_new: Vec<u64> = (0..PAGES).map(new).collect();
        if values == all_old {
            saw_old += 1;
        } else if values == all_new {
            saw_new += 1;
        } else {
            panic!("seed {seed}: torn hybrid recovered: {values:#x?}");
        }
        // Byte-level check: the recovered segment matches one of the
        // two pre-crash images exactly.
        let sid2 = sj2.seg_find("tz-s").unwrap();
        let recovered = sj2.save_segment(pid2, sid2).unwrap();
        assert!(
            recovered == old_image || recovered == new_image,
            "seed {seed}: recovered image matches neither snapshot"
        );
        assert_clean(&mut sj2);
    }
    assert!(saw_old + saw_new == 12);
    assert!(saw_new > 0, "some fault-free-enough run must commit");
}

// ---- metrics -------------------------------------------------------------

#[test]
fn blk_counters_surface_in_kernel_stats() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "m");
    let (vid, _) = build_vas(&mut sj, pid, "met", 4, false, |p| p + 1);
    sj.vas_save(pid, vid).unwrap();

    let m = sj.kernel_mut().sys_stats().to_metrics();
    assert!(m.counter("blk.writes") >= 3, "payload+journal+superblock");
    assert_eq!(m.counter("blk.flushes"), 3, "three barriers per commit");
    assert_eq!(m.counter("blk.torn_writes"), 0);
    assert_eq!(m.counter("blk.journal_replays"), 0);

    // Drop the final (superblock) flush, then crash: recovery on the
    // next boot must replay the journal, and say so in the counters.
    rewrite_vas(&mut sj, pid, vid, 4, |p| p + 100);
    sj.kernel_mut()
        .set_fault_plan(Some(FaultPlan::new(1).fail_nth(FaultSite::BlkFlush, 3)));
    sj.vas_save(pid, vid).unwrap();
    sj.kernel_mut().set_fault_plan(None);

    let (mut sj2, replays) = restart(sj);
    assert_eq!(replays, 1);
    let m2 = sj2.kernel_mut().sys_stats().to_metrics();
    assert_eq!(m2.counter("blk.journal_replays"), 1);
    assert!(m2.counter("blk.reads") > 0, "recovery read the payload");
    let pid2 = spawn(&mut sj2, "r");
    let values = load_and_read(&mut sj2, pid2, "met", 4);
    assert_eq!(values, vec![100, 101, 102, 103], "replayed to the new");
    assert_clean(&mut sj2);
}

// ---- the RedisJMP warm restart ------------------------------------------

#[test]
fn warm_restarted_store_serves_identical_values() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "client");
    let mut client = JmpClient::join(&mut sj, pid, "wr", 0).unwrap();
    for i in 0..32u32 {
        client
            .set(
                &mut sj,
                format!("key:{i:04}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .unwrap();
    }

    // Persist the store through a dedicated VAS holding only the store
    // segment (the clients' own VASes hold per-process scratch).
    let store_sid = sj.seg_find("jmp-store-wr").unwrap();
    let pvid = sj.vas_create(pid, "kvstore-wr", Mode(0o660)).unwrap();
    sj.seg_attach(pid, pvid, store_sid, AttachMode::ReadWrite)
        .unwrap();
    sj.vas_save(pid, pvid).unwrap();

    // Power loss, reboot, reload: the store segment reappears at its
    // fixed base, so the pointer-rich dict inside it works unchanged.
    let (mut sj2, _) = restart(sj);
    let pid2 = spawn(&mut sj2, "client2");
    sj2.vas_load(pid2, "kvstore-wr").unwrap();
    let mut client2 = JmpClient::join(&mut sj2, pid2, "wr", 0).unwrap();
    for i in 0..32u32 {
        assert_eq!(
            client2
                .get(&mut sj2, format!("key:{i:04}").as_bytes())
                .unwrap(),
            Some(format!("value-{i}").into_bytes()),
            "key {i} after warm restart"
        );
    }
    assert_clean(&mut sj2);
}
