//! Invariants of the `sjmp-trace` event stream, checked against real
//! workloads driven through the full simulated stack:
//!
//! * every `Begin` has a matching `End` (no unmatched ends, no spans
//!   left open once the workload returns to steady state);
//! * timestamps are monotonic per hardware thread;
//! * events are attributed to the hardware thread that executed them —
//!   a syscall running on core 1 never claims core 0;
//! * the per-switch cycle breakdown reconstructed from the trace agrees
//!   with the cost model's Table 2 decomposition within 1%;
//! * installing a tracer changes **zero** modeled cycles — the clock
//!   readings of a traced run are bit-identical to an untraced one.

use spacejmp::gups::{run_jmp, run_jmp_shared, GupsConfig};
use spacejmp::prelude::*;
use spacejmp::trace::{Event, EventKind, Phase, Tracer};

/// A small multi-VAS workload touching the paths the tracer
/// instruments: attach, switch, segment locks, faults, TLB traffic.
/// Returns the final simulated cycle count.
fn workload(tracer: Tracer) -> u64 {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.set_tracer(tracer);
    let pid = sj
        .kernel_mut()
        .spawn("inv", Creds::new(100, 100))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");

    let mut handles = Vec::new();
    for w in 0..3u64 {
        let va = VirtAddr::new(0x1000_0000_0000 + (w << 32));
        let vid = sj
            .vas_create(pid, &format!("v{w}"), Mode(0o660))
            .expect("vas");
        let sid = sj
            .seg_alloc(pid, &format!("s{w}"), va, 1 << 20, Mode(0o660))
            .expect("seg");
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
            .expect("seg attach");
        handles.push((sj.vas_attach(pid, vid).expect("vas attach"), va));
    }
    for round in 0..4u64 {
        for &(vh, va) in &handles {
            sj.vas_switch(pid, vh).expect("switch");
            sj.kernel_mut()
                .store_u64(pid, va.add(round * 4096), round)
                .expect("store");
        }
    }
    sj.vas_switch_home(pid).expect("home");
    for &(vh, _) in &handles {
        sj.vas_detach(pid, vh).expect("detach");
    }
    sj.kernel().clock().now()
}

/// A durability workload: build a VAS, save it twice (the second time
/// with the final flush barrier dropped), power-cycle the machine, run
/// journal-replay recovery, and load the VAS back. Touches every blk
/// and snapshot event kind. Returns the combined cycle count of both
/// boots (for the zero-cost-tracing check).
fn durable_workload(tracer: Tracer) -> u64 {
    use spacejmp::os::{FaultPlan, FaultSite};

    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.set_tracer(tracer.clone());
    let pid = sj
        .kernel_mut()
        .spawn("dur", Creds::new(100, 100))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");

    let base = VirtAddr::new(0x1000_0000_0000);
    let vid = sj.vas_create(pid, "dur-v", Mode(0o660)).expect("vas");
    let sid = sj
        .seg_alloc(pid, "dur-s", base, 4 << 12, Mode(0o660))
        .expect("seg");
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
        .expect("seg attach");
    let vh = sj.vas_attach(pid, vid).expect("vas attach");
    sj.vas_switch(pid, vh).expect("switch");
    for page in 0..4u64 {
        sj.kernel_mut()
            .store_u64(pid, base.add(page * 4096), page + 1)
            .expect("store");
    }
    sj.vas_switch_home(pid).expect("home");
    sj.vas_save(pid, vid).expect("save");
    // Second save with the superblock flush dropped: the journal is
    // durable but the superblock is not, so the next boot replays.
    sj.kernel_mut()
        .set_fault_plan(Some(FaultPlan::new(3).fail_nth(FaultSite::BlkFlush, 3)));
    sj.vas_save(pid, vid).expect("save with dropped flush");
    sj.kernel_mut().set_fault_plan(None);
    let first_boot = sj.kernel().clock().now();

    // Power loss + reboot: recovery and the reload are traced too.
    let mut dev = sj.kernel_mut().take_disk();
    dev.crash();
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    kernel.set_tracer(tracer);
    let replays = kernel.attach_disk(dev);
    assert_eq!(replays, 1, "dropped superblock flush must replay");
    let mut sj2 = SpaceJmp::new(kernel);
    let pid2 = sj2
        .kernel_mut()
        .spawn("dur2", Creds::new(100, 100))
        .expect("spawn 2");
    sj2.kernel_mut().activate(pid2).expect("activate 2");
    sj2.vas_load(pid2, "dur-v").expect("load");
    first_boot + sj2.kernel().clock().now()
}

#[test]
fn every_begin_has_a_matching_end() {
    let tracer = Tracer::new(1 << 16);
    workload(tracer.clone());
    assert!(!tracer.events().is_empty(), "workload produced no events");
    assert_eq!(tracer.dropped(), 0, "ring too small for the workload");
    assert_eq!(tracer.unmatched_ends(), 0, "End without a Begin");
    assert!(
        tracer.open_spans().is_empty(),
        "spans left open: {:?}",
        tracer.open_spans()
    );
    // Replay the stream with a per-(core, kind) depth counter: it must
    // never go negative and must finish at zero everywhere.
    let mut depth = std::collections::HashMap::new();
    for ev in tracer.events() {
        let d = depth.entry((ev.core, ev.kind)).or_insert(0i64);
        match ev.phase {
            Phase::Begin => *d += 1,
            Phase::End => {
                *d -= 1;
                assert!(*d >= 0, "unbalanced {:?} on core {}", ev.kind, ev.core);
            }
            Phase::Instant => {}
        }
    }
    for ((core, kind), d) in depth {
        assert_eq!(d, 0, "{kind:?} on core {core} ended at depth {d}");
    }
}

#[test]
fn timestamps_are_monotonic_per_core() {
    let tracer = Tracer::new(1 << 16);
    workload(tracer.clone());
    let mut last = std::collections::HashMap::new();
    for ev in tracer.events() {
        let prev = last.insert(ev.core, ev.ts);
        if let Some(prev) = prev {
            assert!(
                ev.ts >= prev,
                "time ran backwards on core {}: {} -> {}",
                ev.core,
                prev,
                ev.ts
            );
        }
    }
}

#[test]
fn kernel_events_claim_the_executing_core() {
    // The first process pins to core 0, the second to core 1. Everything
    // the second does goes through kernel paths that once hard-coded
    // `core: 0` in their trace events; none of them may claim core 0
    // while executing on another hardware thread.
    let tracer = Tracer::new(1 << 16);
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.set_tracer(tracer.clone());
    let _first = sj
        .kernel_mut()
        .spawn("boot-core", Creds::new(1, 1))
        .expect("spawn");
    let pid = sj
        .kernel_mut()
        .spawn("second-core", Creds::new(1, 1))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let core = sj.kernel().ctx_of(pid).expect("ctx").core as u32;
    assert_ne!(core, 0, "the second process must pin off the boot core");

    let va = VirtAddr::new(0x2000_0000_0000);
    let vid = sj.vas_create(pid, "v", Mode(0o660)).expect("vas");
    let sid = sj
        .seg_alloc(pid, "s", va, 1 << 20, Mode(0o660))
        .expect("seg");
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
        .expect("seg attach");
    let vh = sj.vas_attach(pid, vid).expect("vas attach");
    tracer.clear();
    sj.vas_switch(pid, vh).expect("switch");
    for i in 0..4u64 {
        sj.kernel_mut()
            .store_u64(pid, va.add(i * 4096), i)
            .expect("store");
    }
    sj.vas_switch_home(pid).expect("home");
    sj.vas_detach(pid, vh).expect("detach");

    let events = tracer.events();
    assert!(!events.is_empty(), "workload produced no events");
    for ev in &events {
        assert_eq!(
            ev.core, core,
            "{:?} executed on core {core} but was attributed to core {}",
            ev.kind, ev.core
        );
    }
}

/// Replays the lock events of `events` against per-(pid, segment) hold
/// depths: a `LockRelease` must match a prior `LockAcquire` (re-entrant
/// acquires are legal and stack), every hold must be released by the
/// end, and lock events must be monotonically ordered per core.
fn check_lock_events(events: &[Event]) -> usize {
    let mut depth = std::collections::HashMap::new();
    let mut last_ts = std::collections::HashMap::new();
    let mut lock_events = 0usize;
    for ev in events {
        let is_lock = matches!(
            ev.kind,
            EventKind::LockAcquire
                | EventKind::LockRelease
                | EventKind::LockContention
                | EventKind::LockSkip
        );
        if !is_lock {
            continue;
        }
        lock_events += 1;
        // (sid, pid) = (arg0, arg1) on every lock event kind.
        let key = (ev.arg1, ev.arg0);
        match ev.kind {
            EventKind::LockAcquire => *depth.entry(key).or_insert(0i64) += 1,
            EventKind::LockRelease => {
                let d = depth.entry(key).or_insert(0i64);
                *d -= 1;
                assert!(
                    *d >= 0,
                    "pid {} released segment {} it did not hold",
                    ev.arg1,
                    ev.arg0
                );
            }
            _ => {}
        }
        if let Some(prev) = last_ts.insert(ev.core, ev.ts) {
            assert!(
                ev.ts >= prev,
                "lock events ran backwards on core {}: {} -> {}",
                ev.core,
                prev,
                ev.ts
            );
        }
    }
    for ((pid, sid), d) in depth {
        assert_eq!(d, 0, "pid {pid} left segment {sid} held at depth {d}");
    }
    lock_events
}

#[test]
fn lock_events_pair_and_stay_ordered_per_core() {
    // Single process cycling three lockable-segment VASes: every switch
    // acquires the target's lock and releases the previous one.
    let tracer = Tracer::new(1 << 16);
    workload(tracer.clone());
    assert_eq!(tracer.dropped(), 0, "ring too small for the workload");
    let n = check_lock_events(&tracer.events());
    assert!(n > 0, "multi-VAS workload took no segment locks");

    // Multi-core: a shared-VAS GUPS run hands window locks between
    // workers pinned to different cores; the same pairing and per-core
    // ordering invariants must hold across the hand-offs.
    let tracer = Tracer::new(1 << 16);
    let cfg = GupsConfig {
        windows: 2,
        window_bytes: 1 << 20,
        updates_per_set: 4,
        epochs: 24,
        tracer: tracer.clone(),
        ..GupsConfig::default()
    };
    run_jmp_shared(&cfg, 3).expect("shared gups");
    assert_eq!(tracer.dropped(), 0, "ring too small for the workload");
    let events = tracer.events();
    let n = check_lock_events(&events);
    assert!(n > 0, "shared GUPS took no window locks");
    let cores: std::collections::HashSet<u32> = events
        .iter()
        .filter(|ev| ev.kind == EventKind::LockAcquire)
        .map(|ev| ev.core)
        .collect();
    assert!(cores.len() >= 2, "lock traffic stayed on one core");
}

#[test]
fn trace_breakdown_matches_cost_model_within_one_percent() {
    use spacejmp::mem::cost::CostModel;
    use spacejmp::mem::KernelFlavor as Flavor;

    let model = CostModel::default();
    for (flavor, tagged) in [
        (Flavor::DragonFly, false),
        (Flavor::DragonFly, true),
        (Flavor::Barrelfish, false),
        (Flavor::Barrelfish, true),
    ] {
        let tracer = Tracer::new(4096);
        let mut sj = SpaceJmp::new(Kernel::new(flavor, MachineId::M2));
        sj.set_tracer(tracer.clone());
        if tagged {
            sj.kernel_mut().set_tagging(true);
        }
        let pid = sj
            .kernel_mut()
            .spawn("t2", Creds::new(1, 1))
            .expect("spawn");
        sj.kernel_mut().activate(pid).expect("activate");
        let vid = sj.vas_create(pid, "v", Mode(0o600)).expect("vas");
        if tagged {
            sj.vas_ctl(pid, VasCtl::RequestTag, vid).expect("tag");
        }
        let vh = sj.vas_attach(pid, vid).expect("attach");
        tracer.clear();
        let t0 = sj.kernel().clock().now();
        sj.vas_switch(pid, vh).expect("switch");
        let switch_cycles = sj.kernel().clock().since(t0);

        let snap = tracer.snapshot();
        let sum = |name: &str| snap.histogram(name).map_or(0, |h| h.sum);
        let derived = sum("kernel_entry") + sum("switch_book") + sum("cr3_load");
        let err = switch_cycles.abs_diff(derived);
        assert!(
            err * 100 <= switch_cycles,
            "{flavor:?} tagged={tagged}: trace-derived {derived} vs measured \
             {switch_cycles} (> 1% apart)"
        );
        // The entry and CR3 phases individually match the Table 2 model.
        assert_eq!(sum("kernel_entry"), model.kernel_entry(flavor));
        assert_eq!(sum("cr3_load"), model.cr3_load(tagged));
        // The whole switch appears as one enclosing vas_switch span.
        assert_eq!(sum("vas_switch"), switch_cycles);
    }
}

/// Block-IO and snapshot spans obey the same pairing discipline as
/// every other span, and the stream carries the full durability story:
/// reads, writes, flushes, the `SnapshotCommit`s, and the
/// `JournalReplay` of the post-crash boot. The encoded chrome trace
/// round-trips through the parser (`sjmp_lint`'s ingestion path), so
/// offline tooling accepts the new event kinds.
#[test]
fn blk_and_snapshot_spans_pair_and_round_trip() {
    use spacejmp::trace::chrome::{chrome_trace, parse_chrome_trace};

    let tracer = Tracer::new(1 << 18);
    durable_workload(tracer.clone());
    assert_eq!(tracer.dropped(), 0, "ring too small for the workload");
    let events = tracer.events();

    let span_kinds = [
        EventKind::BlkRead,
        EventKind::BlkWrite,
        EventKind::BlkFlush,
        EventKind::SnapshotSave,
        EventKind::SnapshotLoad,
    ];
    let mut depth = std::collections::HashMap::new();
    let mut seen = std::collections::HashMap::new();
    for ev in &events {
        if !span_kinds.contains(&ev.kind) {
            continue;
        }
        *seen.entry(ev.kind).or_insert(0u64) += 1;
        let d = depth.entry((ev.core, ev.kind)).or_insert(0i64);
        match ev.phase {
            Phase::Begin => *d += 1,
            Phase::End => {
                *d -= 1;
                assert!(*d >= 0, "unbalanced {:?} on core {}", ev.kind, ev.core);
            }
            Phase::Instant => panic!("{:?} must be a span, not an instant", ev.kind),
        }
    }
    for ((core, kind), d) in depth {
        assert_eq!(d, 0, "{kind:?} on core {core} ended at depth {d}");
    }
    for kind in span_kinds {
        assert!(
            seen.get(&kind).copied().unwrap_or(0) >= 2,
            "workload emitted no {kind:?} pair"
        );
    }
    let commits = events
        .iter()
        .filter(|ev| ev.kind == EventKind::SnapshotCommit)
        .count();
    assert_eq!(commits, 2, "one SnapshotCommit instant per vas_save");
    let replay = events
        .iter()
        .find(|ev| ev.kind == EventKind::JournalReplay)
        .expect("recovery emitted no JournalReplay");
    assert_eq!(replay.phase, Phase::Instant);
    assert_eq!(replay.arg0, 1, "exactly one replay");

    // The offline path: encode → parse must keep every event.
    let doc = chrome_trace(&events, 2.5e9, tracer.dropped());
    let parsed = parse_chrome_trace(&doc).expect("lint ingestion rejected the trace");
    assert_eq!(parsed.events.len(), events.len());
}

#[test]
fn tracing_adds_zero_modeled_cycles() {
    let untraced = workload(Tracer::disabled());
    let traced = workload(Tracer::new(1 << 16));
    assert_eq!(
        untraced, traced,
        "enabling the tracer perturbed the modeled clock"
    );

    // The durability paths (block IO, journal replay, snapshot
    // save/load) charge unconditionally too: a traced save/restart/load
    // cycle ends at the same combined clock as an untraced one.
    let untraced = durable_workload(Tracer::disabled());
    let traced = durable_workload(Tracer::new(1 << 18));
    assert_eq!(
        untraced, traced,
        "tracing the durability paths perturbed the modeled clock"
    );

    // Same property across a full GUPS run: MUPS and cycle totals are
    // derived from the clock, so they must be bit-identical too.
    let cfg = GupsConfig {
        windows: 4,
        updates_per_set: 16,
        epochs: 32,
        ..GupsConfig::default()
    };
    let plain = run_jmp(&cfg).expect("untraced gups");
    let traced_cfg = GupsConfig {
        tracer: Tracer::new(1 << 18),
        ..cfg
    };
    let traced = run_jmp(&traced_cfg).expect("traced gups");
    assert_eq!(plain.cycles, traced.cycles, "GUPS cycle totals diverged");
    assert!((plain.mups - traced.mups).abs() < f64::EPSILON);
}

/// A live sharded-KV workload with request tracing: returns the final
/// kernel cycle count so traced/untraced runs can be compared.
fn kv_workload(tracer: Tracer) -> (u64, Vec<Event>) {
    use spacejmp::kv::ShardedKv;

    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
    sj.set_tracer(tracer);
    let pid = sj
        .kernel_mut()
        .spawn("kvreq", Creds::new(100, 100))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let mut kv = ShardedKv::join(&mut sj, pid, "reqtrace", 0, 2).expect("join");
    for i in 0..24u32 {
        let k = format!("key:{i:03}");
        kv.set(&mut sj, k.as_bytes(), b"v").expect("set");
        assert!(kv.get(&mut sj, k.as_bytes()).expect("get").is_some());
    }
    // One rejection so the stream carries a ReqShed too.
    assert!(matches!(
        kv.get_by(&mut sj, b"key:000", Some(0)),
        Err(spacejmp::kv::ShardError::Rejected(_))
    ));
    let events = sj.tracer().events();
    (sj.kernel().clocks().now(), events)
}

/// Request-lifecycle instants nest the VAS-switch spans: every served
/// request brackets at least one `VasSwitch` span between its
/// `ReqDispatch` and `ReqComplete`, and the whole stream (new `Req*`
/// kinds included) survives the Chrome export/parse round trip
/// losslessly.
#[test]
fn request_spans_nest_switches_and_round_trip() {
    use spacejmp::trace::chrome::{chrome_trace, parse_chrome_trace};
    use spacejmp::trace::{assemble_requests, ReqOutcome};

    let (_, events) = kv_workload(Tracer::new(1 << 18));

    let spans = assemble_requests(&events);
    assert_eq!(spans.len(), 49, "24 sets + 24 gets + 1 rejected get");
    let served: Vec<_> = spans
        .iter()
        .filter(|s| matches!(s.outcome, ReqOutcome::Completed(_)))
        .collect();
    assert_eq!(served.len(), 48);
    for span in served {
        let dispatch = span
            .events
            .iter()
            .find(|e| e.kind == EventKind::ReqDispatch)
            .expect("served request has a dispatch");
        let complete = span
            .events
            .iter()
            .find(|e| e.kind == EventKind::ReqComplete)
            .expect("served request has a completion");
        // At least one VAS-switch span begins inside the service window.
        let nested = events.iter().any(|e| {
            e.kind == EventKind::VasSwitch
                && e.phase == Phase::Begin
                && e.ts >= dispatch.ts
                && e.ts <= complete.ts
        });
        assert!(
            nested,
            "request {} service window [{}, {}] wraps no VasSwitch",
            span.id, dispatch.ts, complete.ts
        );
    }

    let doc = chrome_trace(&events, 2.66e9, 0);
    let parsed = parse_chrome_trace(&doc).expect("Req* kinds must round-trip");
    assert_eq!(parsed.events, events, "chrome export must be lossless");
}

/// Request tracing is pure observation on the live path too: with the
/// tracer disabled no ids are minted and no cycles move; with it
/// enabled the modeled clock is bit-identical to the untraced run.
#[test]
fn request_tracing_adds_zero_modeled_cycles_live() {
    let (untraced, ev_off) = kv_workload(Tracer::disabled());
    let (traced, ev_on) = kv_workload(Tracer::new(1 << 18));
    assert_eq!(
        untraced, traced,
        "request tracing perturbed the modeled clock"
    );
    assert!(ev_off.is_empty());
    assert!(ev_on.iter().any(|e| e.kind == EventKind::ReqArrive));
}
