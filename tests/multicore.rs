//! Multi-core behavior of the unified simulation machine: one MMU per
//! hardware thread, per-core cycle clocks, and bit-level determinism.
//!
//! The machine model (see `DESIGN.md`, "Multi-core machine model") pins
//! process `pid` to core `(pid - 1) % total_cores`; every syscall charges
//! the executing core's clock, and wall-clock time under concurrency is
//! the per-core maximum while the consolidated `KernelSnapshot` reports
//! the per-core sum.

use spacejmp::gups::{self, GupsConfig};
use spacejmp::kv::{run_classic, run_jmp as kv_run_jmp, KvBenchConfig};
use spacejmp::prelude::*;

/// Spawns a process, gives it a one-segment VAS at `va`, and switches it
/// in. With two spawns this exercises two distinct cores.
fn switched_in_worker(sj: &mut SpaceJmp, name: &str, va: VirtAddr) -> (Pid, VasHandle) {
    let pid = sj
        .kernel_mut()
        .spawn(name, Creds::new(1, 1))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let vid = sj
        .vas_create(pid, &format!("{name}-v"), Mode(0o660))
        .expect("vas");
    let sid = sj
        .seg_alloc(pid, &format!("{name}-s"), va, 1 << 20, Mode(0o660))
        .expect("seg");
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
        .expect("seg attach");
    let vh = sj.vas_attach(pid, vid).expect("vas attach");
    sj.vas_switch(pid, vh).expect("switch");
    sj.kernel_mut().store_u64(pid, va, 1).expect("warm");
    (pid, vh)
}

#[test]
fn tags_off_switch_flushes_only_the_switching_core() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let va = VirtAddr::new(0x1000_0000_0000);
    let (p0, _) = switched_in_worker(&mut sj, "w0", va);
    let (p1, _) = switched_in_worker(&mut sj, "w1", va);
    let c0 = sj.kernel().ctx_of(p0).expect("ctx").core;
    let c1 = sj.kernel().ctx_of(p1).expect("ctx").core;
    assert_ne!(c0, c1, "the two workers must pin to different cores");

    let before0 = sj.kernel_mut().core_mem(c0).0.tlb_stats();
    let before1 = sj.kernel_mut().core_mem(c1).0.tlb_stats();
    // Untagged CR3 load on worker 1's core: a full flush — but only there.
    sj.vas_switch_home(p1).expect("home");
    let after0 = sj.kernel_mut().core_mem(c0).0.tlb_stats();
    let after1 = sj.kernel_mut().core_mem(c1).0.tlb_stats();
    assert!(
        after1.flushes > before1.flushes,
        "tags-off switch must flush the switching core's TLB"
    );
    assert_eq!(
        after0.flushes, before0.flushes,
        "a switch on core {c1} must not flush core {c0}'s TLB"
    );
    // Worker 0's TLB stayed warm: its next access hits without a miss.
    let (hits0, misses0) = (after0.hits, after0.misses);
    sj.kernel_mut().load_u64(p0, va).expect("load");
    let warm = sj.kernel_mut().core_mem(c0).0.tlb_stats();
    assert!(warm.hits > hits0, "worker 0's translation should still hit");
    assert_eq!(warm.misses, misses0);
}

#[test]
fn per_core_clock_deltas_sum_to_snapshot_cycles() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let va = VirtAddr::new(0x1000_0000_0000);
    let mut workers = Vec::new();
    for i in 0..3 {
        workers.push(switched_in_worker(&mut sj, &format!("w{i}"), va));
    }
    let cores_before = sj.kernel().clocks().snapshot();
    let snap_before = sj.kernel().stats_snapshot();
    for round in 0..8u64 {
        for &(pid, vh) in &workers {
            sj.vas_switch(pid, vh).expect("switch");
            sj.kernel_mut()
                .store_u64(pid, va.add(round * 4096), round)
                .expect("store");
            sj.vas_switch_home(pid).expect("home");
        }
    }
    let cores_after = sj.kernel().clocks().snapshot();
    let snap_after = sj.kernel().stats_snapshot();

    let deltas: Vec<u64> = cores_after
        .iter()
        .zip(&cores_before)
        .map(|(a, b)| a - b)
        .collect();
    assert!(
        deltas.iter().filter(|&&d| d > 0).count() >= 3,
        "the workload should advance three distinct cores: {deltas:?}"
    );
    assert_eq!(
        snap_after.delta_since(&snap_before).cycles,
        deltas.iter().sum::<u64>(),
        "consolidated snapshot cycles must equal the per-core clock deltas"
    );
    assert_eq!(sj.kernel().total_cycles(), cores_after.iter().sum::<u64>());
}

#[test]
fn identical_multicore_runs_are_bit_identical() {
    let cfg = GupsConfig {
        windows: 4,
        window_bytes: 1 << 20,
        updates_per_set: 8,
        epochs: 48,
        ..GupsConfig::default()
    };
    let gups_eq = |a: &gups::GupsResult, b: &gups::GupsResult| {
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.tlb_misses, b.tlb_misses);
        assert_eq!(a.mups.to_bits(), b.mups.to_bits());
        assert_eq!(a.switch_rate.to_bits(), b.switch_rate.to_bits());
        assert_eq!(a.tlb_miss_rate.to_bits(), b.tlb_miss_rate.to_bits());
    };
    // Shared-VAS GUPS over a worker pool spanning three cores.
    let a = gups::run_jmp_shared(&cfg, 3).expect("shared run");
    let b = gups::run_jmp_shared(&cfg, 3).expect("shared rerun");
    gups_eq(&a, &b);
    // Master/slave message passing over five cores.
    let a = gups::run_mp(&cfg).expect("mp run");
    let b = gups::run_mp(&cfg).expect("mp rerun");
    gups_eq(&a, &b);
    // The closed-loop Redis model on the shared event engine.
    let kcfg = KvBenchConfig {
        clients: 8,
        requests_per_client: 40,
        set_pct: 30,
        ..KvBenchConfig::default()
    };
    for (x, y) in [
        (
            run_classic(&kcfg, 2).expect("classic"),
            run_classic(&kcfg, 2).expect("classic rerun"),
        ),
        (
            kv_run_jmp(&kcfg).expect("jmp"),
            kv_run_jmp(&kcfg).expect("jmp rerun"),
        ),
    ] {
        assert_eq!(x.requests, y.requests);
        assert_eq!(x.secs.to_bits(), y.secs.to_bits());
        assert_eq!(x.rps.to_bits(), y.rps.to_bits());
    }
}
