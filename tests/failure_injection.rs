//! Failure-injection tests: resource exhaustion and hostile conditions
//! must produce clean errors, never corruption or panics.

use spacejmp::kv::{DictStats, SegDict};
use spacejmp::mem::cost::{CostModel, MachineProfile};
use spacejmp::os::OsError;
use spacejmp::prelude::*;

const SEG_BASE: u64 = 0x1000_0000_0000;

fn tiny_machine(mem_bytes: u64) -> SpaceJmp {
    let profile = MachineProfile {
        mem_bytes,
        ..MachineProfile::default()
    };
    SpaceJmp::new(Kernel::with_profile(
        KernelFlavor::DragonFly,
        profile,
        CostModel::default(),
    ))
}

#[test]
fn physical_exhaustion_fails_cleanly() {
    // 2 MiB of "DRAM": the process spawn fits, a large segment does not.
    let mut sj = tiny_machine(2 << 20);
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
    let err = sj.seg_alloc(pid, "big", VirtAddr::new(SEG_BASE), 64 << 20, Mode(0o600));
    assert!(
        matches!(
            err,
            Err(SjError::Os(OsError::Mem(_) | OsError::OutOfMemory { .. }))
        ),
        "{err:?}"
    );
    // The system is still usable afterwards.
    let sid = sj
        .seg_alloc(pid, "small", VirtAddr::new(SEG_BASE), 64 << 10, Mode(0o600))
        .unwrap();
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut()
        .store_u64(pid, VirtAddr::new(SEG_BASE), 1)
        .unwrap();
}

#[test]
fn heap_exhaustion_leaves_dictionary_consistent() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("kv", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    // A heap barely larger than the allocator's minimum.
    let sid = sj
        .seg_alloc(
            pid,
            "tiny-heap",
            VirtAddr::new(SEG_BASE),
            8 << 10,
            Mode(0o600),
        )
        .unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    let heap = VasHeap::format(&mut sj, pid, sid).unwrap();
    let dict = SegDict::create(&mut sj, pid, heap).unwrap();

    let mut stats = DictStats::default();
    let mut stored = Vec::new();
    for i in 0..10_000u32 {
        let key = format!("key-{i}");
        match dict.set(&mut sj, pid, key.as_bytes(), &[0u8; 64], true, &mut stats) {
            Ok(()) => stored.push(key),
            Err(_) => break, // heap exhausted
        }
    }
    assert!(!stored.is_empty(), "some inserts must fit");
    assert!(stored.len() < 10_000, "the tiny heap must fill up");
    // Every successfully stored key is still intact and readable.
    for key in &stored {
        assert_eq!(
            dict.get(&mut sj, pid, key.as_bytes()).unwrap(),
            Some(vec![0u8; 64]),
            "{key} corrupted after exhaustion"
        );
    }
    // Deleting makes room again.
    for key in &stored {
        assert!(dict
            .del(&mut sj, pid, key.as_bytes(), true, &mut stats)
            .unwrap());
    }
    dict.set(&mut sj, pid, b"fresh", b"v", true, &mut stats)
        .unwrap();
    assert_eq!(
        dict.get(&mut sj, pid, b"fresh").unwrap(),
        Some(b"v".to_vec())
    );
}

#[test]
fn asid_exhaustion_reported() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.kernel_mut().set_tagging(true);
    // Drain the 4095-tag pool directly.
    for _ in 0..4095 {
        sj.kernel_mut().alloc_asid().unwrap();
    }
    assert!(matches!(
        sj.kernel_mut().alloc_asid(),
        Err(OsError::OutOfAsids)
    ));
}

#[test]
fn faults_outside_any_region_are_fatal_to_the_access() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    // Wild pointer into unmapped space: clean error, process survives.
    let wild = VirtAddr::new(0x0666_0000_0000);
    assert!(sj.kernel_mut().load_u64(pid, wild).is_err());
    assert!(sj.kernel_mut().store_u64(pid, wild, 1).is_err());
    // Normal operation continues.
    let sp = VirtAddr::new(spacejmp::os::kernel::STACK_TOP.raw() - 32);
    sj.kernel_mut().store_u64(pid, sp, 1).unwrap();
}

#[test]
fn double_detach_and_stale_handles() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_detach(pid, vh).unwrap();
    assert_eq!(sj.vas_detach(pid, vh), Err(SjError::NotFound));
    assert_eq!(sj.vas_switch(pid, vh), Err(SjError::NotFound));
    // Re-attach works and produces a fresh handle.
    let vh2 = sj.vas_attach(pid, vid).unwrap();
    assert_ne!(vh, vh2);
    sj.vas_switch(pid, vh2).unwrap();
}

#[test]
fn lock_rollback_under_partial_contention() {
    // A switch that acquires some locks and then hits contention must
    // roll back completely: no lock may remain held by the failed
    // switcher.
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let p0 = sj.kernel_mut().spawn("p0", Creds::new(1, 1)).unwrap();
    let p1 = sj.kernel_mut().spawn("p1", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(p0).unwrap();
    sj.kernel_mut().activate(p1).unwrap();

    let a = sj
        .seg_alloc(p0, "a", VirtAddr::new(SEG_BASE), 4096, Mode(0o660))
        .unwrap();
    let b = sj
        .seg_alloc(
            p0,
            "b",
            VirtAddr::new(SEG_BASE + (1 << 21)),
            4096,
            Mode(0o660),
        )
        .unwrap();
    // v-both maps a and b; v-b maps only b.
    let v_both = sj.vas_create(p0, "v-both", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_both, a, AttachMode::ReadWrite).unwrap();
    sj.seg_attach(p0, v_both, b, AttachMode::ReadWrite).unwrap();
    let v_b = sj.vas_create(p0, "v-b", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_b, b, AttachMode::ReadWrite).unwrap();

    // p1 holds b exclusively.
    let vh_b = sj.vas_attach(p1, v_b).unwrap();
    sj.vas_switch(p1, vh_b).unwrap();

    // p0 tries to enter v-both: acquires a, blocks on b, must roll back.
    let vh_both = sj.vas_attach(p0, v_both).unwrap();
    assert_eq!(sj.vas_switch(p0, vh_both), Err(SjError::WouldBlock));
    assert!(
        sj.segment(a).unwrap().lock().is_free(),
        "a must be rolled back"
    );

    // After p1 leaves, p0 gets in.
    sj.vas_switch_home(p1).unwrap();
    sj.vas_switch(p0, vh_both).unwrap();
}

#[test]
fn out_of_address_space_for_private_mmaps() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
    // The private arena is ~16 TiB; asking for more in one mapping fails
    // with a clean error rather than wrapping.
    let err = sj.kernel_mut().sys_mmap(pid, 1 << 45, PteFlags::USER, true);
    assert!(
        matches!(err, Err(OsError::InvalidArgument(_)) | Err(OsError::Mem(_))),
        "{err:?}"
    );
}
