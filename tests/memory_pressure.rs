//! Memory-pressure tests: swap-backed eviction, per-process quotas, and
//! the OOM killer must let oversubscribed workloads run to completion
//! with clean typed errors — never corruption, leaks, or wedged locks.
//!
//! Everything here drives the public core API (`seg_alloc_swappable`,
//! `vas_*`, `oom_kill`) and audits with `SpaceJmp::check_invariants`
//! after every disturbance, mirroring the crash-fault suite.

use std::collections::HashMap;

use spacejmp::mem::cost::{CostModel, MachineProfile};
use spacejmp::mem::PAGE_SIZE;
use spacejmp::os::OsError;
use spacejmp::prelude::*;
use spacejmp::sim::SimRng;

const SEG_BASE: u64 = 0x1000_0000_0000;

fn boot() -> SpaceJmp {
    SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1))
}

/// A machine with exactly `frames` physical frames, otherwise M1-like.
fn constrained(frames: u64) -> SpaceJmp {
    let profile = MachineProfile {
        mem_bytes: frames * PAGE_SIZE,
        ..MachineProfile::default()
    };
    SpaceJmp::new(Kernel::with_profile(
        KernelFlavor::DragonFly,
        profile,
        CostModel::default(),
    ))
}

fn spawn(sj: &mut SpaceJmp, name: &str) -> Pid {
    let pid = sj.kernel_mut().spawn(name, Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    pid
}

/// Creates a private VAS holding one swappable demand segment of
/// `pages` pages at `base`, switches `pid` into it, and returns the ids.
fn swappable_vas(
    sj: &mut SpaceJmp,
    pid: Pid,
    name: &str,
    base: u64,
    pages: u64,
) -> (VasId, SegId, VasHandle) {
    let vid = sj
        .vas_create(pid, &format!("{name}-v"), Mode(0o600))
        .unwrap();
    let sid = sj
        .seg_alloc_swappable(
            pid,
            &format!("{name}-s"),
            VirtAddr::new(base),
            pages * PAGE_SIZE,
            Mode(0o600),
        )
        .unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    (vid, sid, vh)
}

fn assert_clean(sj: &mut SpaceJmp) {
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "audit failed:\n{}",
        problems.join("\n")
    );
}

// ---- eviction and fault-back -------------------------------------------

#[test]
fn evicted_pages_fault_back_with_contents_intact() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "writer");
    const PAGES: u64 = 64;
    swappable_vas(&mut sj, pid, "rt", SEG_BASE, PAGES);

    for page in 0..PAGES {
        let va = VirtAddr::new(SEG_BASE + page * PAGE_SIZE);
        sj.kernel_mut()
            .store_u64(pid, va, 0xC0DE_0000 + page)
            .unwrap();
    }

    // Force every resident page out to the swap device.
    let evicted = sj.kernel_mut().sys_reclaim(PAGES);
    assert!(evicted > 0, "reclaim evicted nothing");
    let mid = sj.kernel_mut().sys_phys_stats();
    assert!(mid.swap_slots_used > 0, "no pages went to swap: {mid:?}");

    // Every load major-faults the page back in with its value intact.
    for page in 0..PAGES {
        let va = VirtAddr::new(SEG_BASE + page * PAGE_SIZE);
        assert_eq!(
            sj.kernel_mut().load_u64(pid, va).unwrap(),
            0xC0DE_0000 + page
        );
    }
    let end = sj.kernel_mut().sys_phys_stats();
    assert!(end.evictions > 0);
    assert!(
        end.major_faults >= evicted,
        "expected >= {evicted} swap-ins, saw {}",
        end.major_faults
    );
    assert_clean(&mut sj);
}

// ---- quotas -------------------------------------------------------------

#[test]
fn quota_caps_resident_set_by_self_eviction() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "capped");
    const PAGES: u64 = 64;
    const HEADROOM: u64 = 16;
    swappable_vas(&mut sj, pid, "q", SEG_BASE, PAGES);

    // The quota rides `HEADROOM` frames above the unswappable spawn
    // image, so at most `HEADROOM` of the segment's pages fit.
    let baseline = sj.kernel_mut().resident_frames_of(pid);
    let quota = baseline + HEADROOM;
    sj.kernel_mut().set_quota(pid, Some(quota));

    // Touching 4x the headroom succeeds: the kernel evicts the
    // process's own pages to stay under the cap, not failing faults.
    for page in 0..PAGES {
        let va = VirtAddr::new(SEG_BASE + page * PAGE_SIZE);
        sj.kernel_mut().store_u64(pid, va, page).unwrap();
        let resident = sj.kernel_mut().resident_frames_of(pid);
        assert!(
            resident <= quota,
            "resident set {resident} exceeds quota {quota} after page {page}"
        );
    }
    let stats = sj.kernel_mut().sys_phys_stats();
    assert!(stats.evictions >= PAGES - HEADROOM);

    // Everything written is still readable (from swap where needed).
    for page in 0..PAGES {
        let va = VirtAddr::new(SEG_BASE + page * PAGE_SIZE);
        assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), page);
    }
    assert_clean(&mut sj);
}

#[test]
fn quota_breach_returns_typed_error_the_workload_can_retry() {
    let mut sj = boot();
    let pid = spawn(&mut sj, "denied");
    swappable_vas(&mut sj, pid, "z", SEG_BASE, 4);

    // A quota equal to the unswappable spawn image cannot be met by
    // self-eviction (nothing swappable is resident yet): the fault is
    // denied with the full accounting context.
    let baseline = sj.kernel_mut().resident_frames_of(pid);
    sj.kernel_mut().set_quota(pid, Some(baseline));
    let err = sj.kernel_mut().store_u64(pid, VirtAddr::new(SEG_BASE), 7);
    match err {
        Err(OsError::QuotaExceeded {
            pid: p,
            limit_frames,
            used_frames,
            requested_frames,
        }) => {
            assert_eq!(p, pid);
            assert_eq!(limit_frames, baseline);
            assert_eq!(used_frames, baseline);
            assert_eq!(requested_frames, 1);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let denials = sj.kernel_mut().sys_phys_stats().quota_denials;
    assert!(denials > 0);

    // The typed error is retryable: raise the quota and the same store
    // succeeds — nothing was corrupted by the denial.
    sj.kernel_mut().set_quota(pid, Some(baseline + 8));
    sj.kernel_mut()
        .store_u64(pid, VirtAddr::new(SEG_BASE), 7)
        .unwrap();
    assert_eq!(
        sj.kernel_mut()
            .load_u64(pid, VirtAddr::new(SEG_BASE))
            .unwrap(),
        7
    );
    assert_clean(&mut sj);
}

// ---- the OOM killer in a shared VAS ------------------------------------

#[test]
fn oom_victim_in_shared_vas_releases_its_lock() {
    let mut sj = boot();
    let hog = spawn(&mut sj, "hog");
    let survivor = spawn(&mut sj, "survivor");

    // A shared VAS with one read-write (exclusive-on-switch) segment.
    let vid = sj.vas_create(hog, "shared-v", Mode(0o666)).unwrap();
    let sid = sj
        .seg_alloc(
            hog,
            "shared-s",
            VirtAddr::new(SEG_BASE),
            256 << 10,
            Mode(0o666),
        )
        .unwrap();
    sj.seg_attach(hog, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh_hog = sj.vas_attach(hog, vid).unwrap();
    let vh_srv = sj.vas_attach(survivor, vid).unwrap();

    // The hog switches in (taking the lock) and builds the largest
    // resident set in the system via a private swappable segment.
    sj.vas_switch(hog, vh_hog).unwrap();
    const FAT_BASE: u64 = 0x1800_0000_0000;
    let fat = sj
        .seg_alloc_swappable(
            hog,
            "fat",
            VirtAddr::new(FAT_BASE),
            64 * PAGE_SIZE,
            Mode(0o600),
        )
        .unwrap();
    sj.seg_attach(hog, vid, fat, AttachMode::ReadWrite).unwrap();
    for page in 0..64 {
        let va = VirtAddr::new(FAT_BASE + page * PAGE_SIZE);
        sj.kernel_mut().store_u64(hog, va, page).unwrap();
    }
    assert_eq!(sj.vas_switch(survivor, vh_srv), Err(SjError::WouldBlock));

    // The OOM killer picks the hog by resident-set badness and reaps it
    // through the same path as a crash — locks and attachments included.
    let victim = sj.oom_kill(&[survivor]).unwrap();
    assert_eq!(victim, Some(hog));
    assert_eq!(sj.stats().oom_kills, 1);
    assert_clean(&mut sj);

    // The survivor acquires the lock and uses the VAS normally.
    sj.vas_switch(survivor, vh_srv).unwrap();
    sj.kernel_mut()
        .store_u64(survivor, VirtAddr::new(SEG_BASE), 0xA11_0C8)
        .unwrap();
    assert_eq!(
        sj.kernel_mut()
            .load_u64(survivor, VirtAddr::new(SEG_BASE))
            .unwrap(),
        0xA11_0C8
    );
    assert_clean(&mut sj);
}

#[test]
fn oom_kill_with_no_eligible_victim_returns_none() {
    let mut sj = boot();
    let only = spawn(&mut sj, "only");
    swappable_vas(&mut sj, only, "solo", SEG_BASE, 4);
    sj.kernel_mut()
        .store_u64(only, VirtAddr::new(SEG_BASE), 1)
        .unwrap();
    // The lone memory user is protected, so nobody can be sacrificed.
    assert_eq!(sj.oom_kill(&[only]).unwrap(), None);
    assert_eq!(sj.stats().oom_kills, 0);
    assert_clean(&mut sj);
}

// ---- randomized oversubscription ---------------------------------------

/// Seeded random stores/loads from three processes whose combined
/// working set oversubscribes physical memory. The low watermark keeps
/// the reclaimer running; every value read must match the last write,
/// and the full invariant audit runs after every round.
#[test]
fn randomized_oversubscription_stays_consistent() {
    const PROCS: usize = 3;
    const PAGES: u64 = 128;
    const ROUNDS: usize = 24;
    const OPS_PER_ROUND: usize = 32;

    let mut sj = constrained(640);
    sj.kernel_mut().set_low_watermark(Some(8));

    let mut pids = Vec::new();
    for i in 0..PROCS {
        let pid = spawn(&mut sj, &format!("rand{i}"));
        let base = SEG_BASE + (i as u64) * (1 << 30);
        swappable_vas(&mut sj, pid, &format!("r{i}"), base, PAGES);
        pids.push((pid, base));
    }

    let mut rng = SimRng::seed_from_u64(0xface_5eed);
    let mut model: HashMap<(usize, u64), u64> = HashMap::new();
    for round in 0..ROUNDS {
        for _ in 0..OPS_PER_ROUND {
            let who = rng.gen_range(0..PROCS as u64) as usize;
            let (pid, base) = pids[who];
            let page = rng.gen_range(0..PAGES);
            let va = VirtAddr::new(base + page * PAGE_SIZE);
            if rng.gen_range(0..2) == 0 {
                let val = rng.next_u64();
                sj.kernel_mut().store_u64(pid, va, val).unwrap();
                model.insert((who, page), val);
            } else {
                let got = sj.kernel_mut().load_u64(pid, va).unwrap();
                let want = model.get(&(who, page)).copied().unwrap_or(0);
                assert_eq!(got, want, "round {round}: proc {who} page {page}");
            }
        }
        assert_clean(&mut sj);
    }

    let stats = sj.kernel_mut().sys_phys_stats();
    assert!(stats.evictions > 0, "never evicted: {stats:?}");
    assert!(stats.major_faults > 0, "never swapped in: {stats:?}");
}
