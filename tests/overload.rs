//! End-to-end tests of the overload-resilient sharded RedisJMP stack:
//! the live `ShardedKv` path (real segments, real kernel pressure) and
//! the open-loop DES engine (goodput retention, deadline bounds,
//! bit-identical reruns).

use sjmp_kv::{
    measure_costs_on, run_overload, run_overload_at, saturation_rps, JmpClient, OverloadConfig,
    RejectReason, ShardError, ShardRouter, ShardedKv,
};
use sjmp_mem::{KernelFlavor, MachineId};
use sjmp_os::{Creds, Kernel, PressureLevel};
use sjmp_sim::Arrival;
use sjmp_trace::Tracer;
use spacejmp_core::SpaceJmp;

fn fresh(machine: MachineId) -> SpaceJmp {
    SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, machine))
}

#[test]
fn sharded_store_routes_and_serves_across_all_shards() {
    let mut sj = fresh(MachineId::M1);
    let pid = sj.kernel_mut().spawn("c0", Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let mut kv = ShardedKv::join(&mut sj, pid, "e2e", 0, 4).unwrap();

    let mut per_shard = [0usize; 4];
    for i in 0..96 {
        let k = format!("user:{i:04}");
        kv.set(&mut sj, k.as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
        per_shard[kv.shard_of(k.as_bytes())] += 1;
    }
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "keys spread over all shards: {per_shard:?}"
    );
    for i in 0..96 {
        let k = format!("user:{i:04}");
        assert_eq!(
            kv.get(&mut sj, k.as_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes())
        );
    }
    // Deleting through the same router finds the same shard.
    assert!(kv.del(&mut sj, b"user:0007").unwrap());
    assert_eq!(kv.get(&mut sj, b"user:0007").unwrap(), None);
}

#[test]
fn router_remap_fraction_shrinks_with_shard_count() {
    // Consistent hashing: growing S -> S+1 should remap about 1/(S+1)
    // of keys. Check the trend at two sizes rather than exact ratios.
    let keys: Vec<String> = (0..3000).map(|i| format!("k{i}")).collect();
    let moved = |a: &ShardRouter, b: &ShardRouter| {
        keys.iter()
            .filter(|k| a.route(k.as_bytes()) != b.route(k.as_bytes()))
            .count()
    };
    let m2 = moved(&ShardRouter::new(2), &ShardRouter::new(3));
    let m6 = moved(&ShardRouter::new(6), &ShardRouter::new(7));
    assert!(m2 > 0 && m6 > 0);
    assert!(
        m2 < keys.len() / 2 && m6 < keys.len() / 4,
        "remap fractions too large: 2->3 moved {m2}, 6->7 moved {m6}"
    );
    assert!(m6 < m2, "larger rings remap less: {m6} vs {m2}");
}

#[test]
fn memory_pressure_flips_shards_read_only_and_recovery_restores_writes() {
    // Drive the pressure signal by raising the low watermark over the
    // current free-frame count: instantly critical, without actually
    // exhausting the machine. SETs must start failing fast with
    // ShardUnavailable while GETs keep serving.
    let mut sj = fresh(MachineId::M1);
    let pid = sj.kernel_mut().spawn("p0", Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let mut kv = ShardedKv::join(&mut sj, pid, "pressure", 0, 2).unwrap();
    kv.set(&mut sj, b"probe", b"1").unwrap();

    // No watermark configured yet: pressure reads Normal.
    assert_eq!(sj.kernel().mem_pressure(), PressureLevel::Normal);
    assert!(!kv.degraded(&sj, 0));

    // Set the watermark above the current free-frame count: instantly
    // critical, without having to actually exhaust the machine.
    let free = sj.kernel_mut().sys_phys_stats().free_frames;
    sj.kernel_mut().set_low_watermark(Some(free + 8));
    assert_eq!(sj.kernel().mem_pressure(), PressureLevel::Critical);
    assert!(kv.degraded(&sj, 0) && kv.degraded(&sj, 1));

    // Writes fail fast and typed; reads still serve.
    assert_eq!(
        kv.set(&mut sj, b"probe", b"2"),
        Err(ShardError::Rejected(RejectReason::ShardUnavailable))
    );
    assert_eq!(kv.get(&mut sj, b"probe").unwrap(), Some(b"1".to_vec()));
    let health = kv.health(&sj);
    assert!(health.iter().all(|h| h.degraded));

    // Pressure clears -> writes resume (graceful recovery, no restart).
    sj.kernel_mut().set_low_watermark(Some(1));
    assert_eq!(sj.kernel().mem_pressure(), PressureLevel::Normal);
    kv.set(&mut sj, b"probe", b"3").unwrap();
    assert_eq!(kv.get(&mut sj, b"probe").unwrap(), Some(b"3".to_vec()));
}

#[test]
fn switch_wait_depth_feeds_admission() {
    // Park one process inside a shard's write VAS; another client's
    // probes of that shard see nonzero seg_wait_depth only once someone
    // actually blocks. Here we verify the zero and per-segment shape.
    let mut sj = fresh(MachineId::M1);
    let pid0 = sj.kernel_mut().spawn("w0", Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid0).unwrap();
    let kv = ShardedKv::join(&mut sj, pid0, "depth", 0, 2).unwrap();
    assert_eq!(sj.switch_wait_depth(), 0);
    assert_eq!(sj.seg_wait_depth(kv.store_sid(0)), 0);
    assert_eq!(sj.seg_wait_depth(kv.store_sid(1)), 0);
}

#[test]
fn unsharded_client_still_works_alongside() {
    // The JoinOpts refactor must leave the classic single-store path
    // untouched: same slot 0, same lazily initialized store.
    let mut sj = fresh(MachineId::M1);
    let pid = sj.kernel_mut().spawn("c", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let mut c = JmpClient::join(&mut sj, pid, "classic", 0).unwrap();
    c.set(&mut sj, b"k", b"v").unwrap();
    assert_eq!(c.get(&mut sj, b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn goodput_holds_past_saturation_on_every_machine() {
    for machine in [MachineId::M1, MachineId::M2, MachineId::M3] {
        let cfg = OverloadConfig {
            machine,
            requests: 4000,
            clients: 5000,
            ..OverloadConfig::default()
        };
        let costs = measure_costs_on(machine, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, machine, cfg.set_pct, cfg.shards);
        let at_sat = run_overload_at(&cfg, sat).unwrap();
        let over = run_overload_at(&cfg, 2.0 * sat).unwrap();
        assert!(over.shed > 0, "{machine:?}: 2x saturation must shed");
        assert!(
            over.goodput_rps >= 0.9 * at_sat.goodput_rps,
            "{machine:?}: goodput collapse past saturation: {} vs {}",
            over.goodput_rps,
            at_sat.goodput_rps
        );
        assert!(at_sat.accounted() && over.accounted());
    }
}

#[test]
fn admitted_tail_latency_is_bounded_by_the_deadline() {
    let cfg = OverloadConfig {
        requests: 6000,
        clients: 5000,
        ..OverloadConfig::default()
    };
    let costs = measure_costs_on(cfg.machine, false, Tracer::disabled()).unwrap();
    let sat = saturation_rps(&costs, cfg.machine, cfg.set_pct, cfg.shards);
    let r = run_overload_at(&cfg, 1.5 * sat).unwrap();
    assert!(r.completed > 0);
    assert!(
        r.latency.max <= cfg.deadline,
        "goodput counted a completion past its deadline: {} > {}",
        r.latency.max,
        cfg.deadline
    );
    assert!(
        r.p999 <= cfg.deadline,
        "p999 {} exceeds the deadline {}",
        r.p999,
        cfg.deadline
    );
    assert!(r.p50 <= r.p99 && r.p99 <= r.p999);
}

#[test]
fn overload_engine_is_bit_identical_across_reruns() {
    let cfg = OverloadConfig {
        requests: 5000,
        clients: 5000,
        set_pct: 25,
        arrival: Arrival::Bursty {
            mean_gap: 1200.0,
            on_cycles: 250_000,
            off_cycles: 750_000,
        },
        seed: 99,
        ..OverloadConfig::default()
    };
    let a = run_overload(&cfg).unwrap();
    let b = run_overload(&cfg).unwrap();
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.deadline_rejects, b.deadline_rejects);
    assert_eq!(a.latency, b.latency);
    assert_eq!((a.p50, a.p99, a.p999), (b.p50, b.p99, b.p999));
    // And a different seed gives a different run.
    let c = run_overload(&OverloadConfig { seed: 100, ..cfg }).unwrap();
    assert_ne!(
        (a.completed, a.shed, a.latency.sum),
        (c.completed, c.shed, c.latency.sum)
    );
}

#[test]
fn degraded_des_rejects_sets_but_keeps_reading() {
    let cfg = OverloadConfig {
        requests: 3000,
        clients: 3000,
        set_pct: 40,
        degrade_at: Some(0),
        degraded_shards: 4,
        ..OverloadConfig::default()
    };
    let r = run_overload(&cfg).unwrap();
    assert!(r.degraded_rejects > 0, "no SET was refused: {r:?}");
    assert!(r.completed > 0, "GETs must keep serving: {r:?}");
    assert!(r.accounted());
}

/// Fairness under uniform Poisson load: sheds are tallied per client,
/// the tallies sum to the total, and no single client absorbs a
/// disproportionate share (arrivals pick clients uniformly, so the
/// heaviest client must stay within a small constant of the mean).
#[test]
fn uniform_poisson_load_sheds_fairly_across_clients() {
    let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
    let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
    let cfg = OverloadConfig {
        requests: 8_000,
        clients: 2_000,
        ..OverloadConfig::default()
    };
    let res = run_overload_at(&cfg, 3.0 * sat).unwrap();
    assert!(res.shed > 100, "3x saturation must shed heavily: {res:?}");
    assert_eq!(res.client_sheds.len(), 2_000);
    assert_eq!(
        res.client_sheds.iter().sum::<u64>(),
        res.shed,
        "per-client shed tallies must partition the total"
    );
    let mean = res.shed as f64 / res.client_sheds.len() as f64;
    assert!(
        (res.max_client_sheds as f64) <= 8.0 * mean + 4.0,
        "client shed share is disproportionate: heaviest {} vs mean {mean:.3}",
        res.max_client_sheds
    );
}

/// Tail exemplars captured by the DES decompose end-to-end latency into
/// phases that partition it exactly, and capturing them never perturbs
/// the simulated schedule.
#[test]
fn tail_exemplars_decompose_latency_without_perturbing_the_run() {
    let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
    let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
    let cfg = OverloadConfig {
        requests: 5_000,
        clients: 1_000,
        ..OverloadConfig::default()
    };
    let plain = run_overload_at(&cfg, 1.5 * sat).unwrap();
    let traced = run_overload_at(
        &OverloadConfig {
            trace_requests: true,
            exemplars: 4,
            ..cfg
        },
        1.5 * sat,
    )
    .unwrap();
    assert_eq!(plain.completed, traced.completed);
    assert_eq!(plain.shed, traced.shed);
    assert_eq!(plain.latency, traced.latency);
    assert!(!traced.exemplars.is_empty());
    for ex in &traced.exemplars {
        assert_eq!(ex.phases.total(), ex.latency(), "{ex:?}");
    }
    assert_eq!(traced.exemplars[0].latency(), traced.latency.max);
}
