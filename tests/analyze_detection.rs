//! End-to-end detection tests for `sjmp-analyze`, driven through the
//! full simulated stack: real workloads produce real traces, and the
//! trace-replay detectors must find exactly the defects that were
//! injected — and nothing on healthy runs.
//!
//! * a GUPS shared-VAS run whose `n`-th segment-lock acquisition is
//!   elided by the fault plan must yield **one** data race, attributed
//!   to the right segment, the victim pid, and two distinct cores;
//! * the same racy access pattern under an intact kernel is clean;
//! * two processes taking two segment locks in opposite orders must
//!   yield a lock-order cycle; the stock benchmarks must not;
//! * the kernel linter is quiet on a healthy kernel and flags a shared
//!   writable segment whose lock has been disabled.

use spacejmp::analyze::{analyze_trace, detect_lock_order_cycles, detect_races, lint_kernel};
use spacejmp::gups::{run_jmp_shared_racy, GupsConfig};
use spacejmp::os::{FaultPlan, FaultSite};
use spacejmp::prelude::*;
use spacejmp::trace::{EventKind, Tracer};

/// A small shared-VAS GUPS config: one window so the injected race has
/// exactly one segment to land on, and few enough epochs to keep the
/// trace ring comfortable.
fn racy_cfg(tracer: Tracer) -> GupsConfig {
    GupsConfig {
        windows: 1,
        window_bytes: 1 << 20,
        updates_per_set: 4,
        epochs: 24,
        tracer,
        ..GupsConfig::default()
    }
}

#[test]
fn injected_lock_skip_is_reported_as_one_race_with_exact_attribution() {
    let tracer = Tracer::new(1 << 16);
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M3));
    // Elide the 8th segment-lock acquisition: one mid-run turn executes
    // unguarded in the shared window.
    sj.kernel_mut()
        .set_fault_plan(Some(FaultPlan::new(1).fail_nth(FaultSite::SegLock, 8)));
    let res = run_jmp_shared_racy(&mut sj, &racy_cfg(tracer.clone()), 3).expect("racy gups");
    assert!(res.updates > 0, "workload made no progress");

    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0, "trace ring too small");
    // The LockSkip diagnostic names the victim: (segment, pid, core).
    let skip = events
        .iter()
        .find(|ev| ev.kind == EventKind::LockSkip)
        .expect("fault plan never fired");
    let (victim_sid, victim_pid, victim_core) = (skip.arg0, skip.arg1, skip.core);

    let findings = detect_races(&events);
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one race finding, got {findings:?}"
    );
    let f = &findings[0];
    assert_eq!(f.rule, "data-race");
    assert_eq!(
        f.segments,
        vec![victim_sid],
        "race attributed to the wrong segment"
    );
    assert!(
        f.pids.contains(&victim_pid),
        "race must involve the lock-skipping pid {victim_pid}: {f:?}"
    );
    assert_eq!(f.pids.len(), 2, "a race is between two processes: {f:?}");
    assert_eq!(
        f.cores.len(),
        2,
        "racing accesses came from two cores: {f:?}"
    );
    assert!(
        f.cores.contains(&u64::from(victim_core)),
        "victim executed on core {victim_core}: {f:?}"
    );

    // The full pipeline agrees (races + lock order + completeness).
    let analysis = analyze_trace(&events, tracer.dropped());
    assert!(!analysis.skipped_incomplete);
    assert_eq!(analysis.findings.len(), 1);
}

#[test]
fn racy_access_pattern_under_an_intact_kernel_is_clean() {
    // Same hot-word workload, no fault plan: the window lock orders
    // every turn, so the detector must stay quiet — the finding above
    // comes from the missing lock, not from the access pattern.
    let tracer = Tracer::new(1 << 16);
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M3));
    run_jmp_shared_racy(&mut sj, &racy_cfg(tracer.clone()), 3).expect("clean gups");
    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0, "trace ring too small");
    assert!(
        events.iter().all(|ev| ev.kind != EventKind::LockSkip),
        "no faults were planned"
    );
    let analysis = analyze_trace(&events, tracer.dropped());
    assert!(
        analysis.findings.is_empty(),
        "false positive on a healthy run: {:?}",
        analysis.findings
    );
}

/// Two processes, two single-segment VASes, both attached by both.
/// Returns (sj, pids, handles, sids).
#[allow(clippy::type_complexity)]
fn two_lock_setup() -> (SpaceJmp, [Pid; 2], [[VasHandle; 2]; 2], [SegId; 2]) {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let p1 = sj
        .kernel_mut()
        .spawn("inv-a", Creds::new(1, 1))
        .expect("spawn");
    let p2 = sj
        .kernel_mut()
        .spawn("inv-b", Creds::new(1, 1))
        .expect("spawn");
    let mut vids = Vec::new();
    let mut sids = Vec::new();
    for w in 0..2u64 {
        let va = VirtAddr::new(0x1000_0000_0000 + (w << 32));
        let vid = sj
            .vas_create(p1, &format!("iv{w}"), Mode(0o666))
            .expect("vas");
        let sid = sj
            .seg_alloc(p1, &format!("is{w}"), va, 1 << 20, Mode(0o666))
            .expect("seg");
        sj.seg_attach(p1, vid, sid, AttachMode::ReadWrite)
            .expect("seg attach");
        vids.push(vid);
        sids.push(sid);
    }
    let handles =
        [p1, p2].map(|pid| [0, 1].map(|w| sj.vas_attach(pid, vids[w]).expect("vas attach")));
    (sj, [p1, p2], handles, [sids[0], sids[1]])
}

#[test]
fn opposite_lock_orders_across_two_pids_form_a_reported_cycle() {
    let tracer = Tracer::new(1 << 14);
    let (mut sj, [p1, p2], handles, [s1, s2]) = two_lock_setup();
    sj.set_tracer(tracer.clone());

    // P1 switches v0 then directly v1: it acquires s2's lock while still
    // holding s1's (the switch releases the previous VAS's locks only
    // after the target's are taken). P2 does the same in reverse.
    sj.vas_switch(p1, handles[0][0]).expect("p1 -> v0");
    sj.vas_switch(p1, handles[0][1]).expect("p1 -> v1");
    sj.vas_switch_home(p1).expect("p1 home");
    sj.vas_switch(p2, handles[1][1]).expect("p2 -> v1");
    sj.vas_switch(p2, handles[1][0]).expect("p2 -> v0");
    sj.vas_switch_home(p2).expect("p2 home");

    let findings = detect_lock_order_cycles(&tracer.events());
    assert_eq!(findings.len(), 1, "expected one cycle: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "lock-order-cycle");
    assert_eq!(f.segments, vec![s1.0, s2.0]);
    assert_eq!(f.pids, vec![p1.0, p2.0]);
}

#[test]
fn stock_shared_gups_trace_has_no_lock_order_cycles() {
    // GUPS shared workers always switch from home, holding nothing, so
    // the lock-order graph must have no edges worth reporting even
    // across many interleaved turns.
    let tracer = Tracer::new(1 << 16);
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M3));
    let cfg = GupsConfig {
        windows: 3,
        window_bytes: 1 << 20,
        updates_per_set: 4,
        epochs: 24,
        tracer: tracer.clone(),
        ..GupsConfig::default()
    };
    run_jmp_shared_racy(&mut sj, &cfg, 3).expect("gups");
    let findings = detect_lock_order_cycles(&tracer.events());
    assert!(findings.is_empty(), "false cycle: {findings:?}");
}

#[test]
fn kernel_linter_is_quiet_on_a_healthy_kernel() {
    let (mut sj, [p1, _p2], handles, _sids) = two_lock_setup();
    sj.vas_switch(p1, handles[0][0]).expect("switch");
    sj.kernel_mut()
        .store_u64(p1, VirtAddr::new(0x1000_0000_0000), 7)
        .expect("store");
    sj.vas_switch_home(p1).expect("home");
    let findings = lint_kernel(&mut sj);
    assert!(findings.is_empty(), "healthy kernel flagged: {findings:?}");
}

#[test]
fn kernel_linter_flags_an_unlockable_shared_writable_segment() {
    let (mut sj, [p1, p2], _handles, [s1, _s2]) = two_lock_setup();
    // Both pids hold read-write attachments to s1's VAS; disabling the
    // segment lock removes the only thing serializing them.
    sj.seg_ctl(p1, s1, SegCtl::SetLockable(false)).expect("ctl");
    let findings = lint_kernel(&mut sj);
    assert_eq!(findings.len(), 1, "expected one finding: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "unlocked-shared-write");
    assert_eq!(f.segments, vec![s1.0]);
    let mut pids = vec![p1.0, p2.0];
    pids.sort_unstable();
    assert_eq!(f.pids, pids);
}
