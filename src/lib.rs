//! # spacejmp — programming with multiple virtual address spaces
//!
//! A comprehensive Rust reproduction of *SpaceJMP: Programming with
//! Multiple Virtual Address Spaces* (El Hajj, Merritt, Zellweger, et al.,
//! ASPLOS 2016).
//!
//! SpaceJMP promotes virtual address spaces to first-class OS objects:
//! processes create, name, attach, and **switch** between many address
//! spaces, with **lockable segments** as the unit of sharing and
//! protection. This lets data-centric applications address more physical
//! memory than their VA bits cover, keep pointer-rich data structures
//! alive across process lifetimes without serialization, and share large
//! memory between processes without a server in the middle.
//!
//! The paper's prototypes live inside DragonFly BSD and Barrelfish on
//! real x86-64 hardware; this reproduction supplies those layers as
//! simulated substrates (see `DESIGN.md` for the substitution map):
//!
//! * [`mem`] — simulated hardware: sparse physical memory, 4-level page
//!   tables, an ASID-tagged TLB, per-core MMUs, and a cycle cost model
//!   calibrated from the paper's Tables 1-2 and Figure 1;
//! * [`sim`] — the deterministic multi-core simulation engine: per-core
//!   cycle clocks, the event queue, busy-core reservation, and FIFO
//!   reader-writer locks shared by every layer above;
//! * [`blk`] — the durability substrate: a simulated block device with
//!   explicit flush barriers and crash semantics, a write-ahead journal,
//!   and the crash-consistent snapshot store behind swap and
//!   `vas_save`/`vas_load`;
//! * [`os`] — the kernel substrate: processes pinned to cores, multiple
//!   vmspaces, VM objects, mmap/munmap, faults, and capabilities
//!   (Barrelfish flavor);
//! * [`core`] — **the paper's contribution**: first-class VASes, lockable
//!   segments, and the Figure 3 API (`vas_create/attach/switch/...`,
//!   `seg_alloc/attach/...`), plus segment-resident heaps;
//! * [`alloc`] — the dlmalloc-style `mspace` allocator whose state lives
//!   inside the managed segment;
//! * [`safety`] — the Section 4.3 compiler support: SSA IR, the
//!   `VASvalid`/`VASin` dataflow analysis, check insertion, and a
//!   tagged-pointer interpreter;
//! * [`rpc`] — the communication baselines (URPC rings, message passing,
//!   sockets);
//! * [`gups`], [`kv`], [`genome`] — the three evaluation applications:
//!   GUPS, Redis/RedisJMP, and the SAMTools workflow;
//! * [`analyze`] — the race & lock-order analyzer: a static lockset
//!   pass over the safety IR, trace-replay data-race and deadlock-cycle
//!   detection, and kernel audit lints (driven by `sjmp-lint`).
//!
//! # Quickstart
//!
//! The Figure 4 pattern — create a VAS, give it a segment, attach,
//! switch, and use plain pointers:
//!
//! ```
//! use spacejmp::prelude::*;
//!
//! # fn main() -> Result<(), spacejmp::core::SjError> {
//! let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
//! let pid = sj.kernel_mut().spawn("app", Creds::new(100, 100))?;
//!
//! let va = VirtAddr::new(0x1000_C0DE_0000);
//! let vid = sj.vas_create(pid, "v0", Mode(0o660))?;
//! let sid = sj.seg_alloc(pid, "s0", va, 1 << 20, Mode(0o660))?;
//! sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
//!
//! let vh = sj.vas_attach(pid, vid)?;
//! sj.vas_switch(pid, vh)?;
//! sj.kernel_mut().store_u64(pid, va, 42)?;
//! assert_eq!(sj.kernel_mut().load_u64(pid, va)?, 42);
//! # Ok(()) }
//! ```
//!
//! Run the experiment harness with, for example,
//! `cargo run -p sjmp-bench --bin fig8_gups` — see `EXPERIMENTS.md` for
//! the full paper-vs-measured index.

pub use sjmp_alloc as alloc;
pub use sjmp_analyze as analyze;
pub use sjmp_blk as blk;
pub use sjmp_genome as genome;
pub use sjmp_gups as gups;
pub use sjmp_kv as kv;
pub use sjmp_mem as mem;
pub use sjmp_os as os;
pub use sjmp_rpc as rpc;
pub use sjmp_safety as safety;
pub use sjmp_sim as sim;
pub use sjmp_trace as trace;
pub use spacejmp_core as core;

/// The common imports for SpaceJMP programs.
pub mod prelude {
    pub use sjmp_mem::{Asid, CoreCtx, KernelFlavor, Machine, MachineId, PteFlags, VirtAddr};
    pub use sjmp_os::{Creds, Kernel, Mode, Pid};
    pub use spacejmp_core::{
        AttachMode, MemTier, RetryPolicy, SegCtl, SegId, SjError, SjResult, SpaceJmp, VasCtl,
        VasHandle, VasHeap, VasId,
    };
}
