//! The baseline single-threaded Redis-style server.
//!
//! One process owns the store, switched into its data VAS permanently;
//! clients reach it over simulated UNIX-domain sockets ([`sjmp_rpc`]).
//! The command execution path (parse -> dict -> encode) is shared with
//! RedisJMP — only the transport differs, which is exactly the comparison
//! Section 5.3 makes.

use sjmp_mem::VirtAddr;
use sjmp_os::kernel::GLOBAL_LO;
use sjmp_os::{Creds, Mode, Pid};
use spacejmp_core::{AttachMode, RetryPolicy, SjResult, SpaceJmp, VasHeap};

use crate::dict::{DictStats, SegDict};
use crate::resp::{Command, Reply};

/// Size of each server instance's data segment.
pub const STORE_SEGMENT_BYTES: u64 = 8 << 20;

/// Cycles of Redis command machinery around the raw dictionary operation
/// (object construction, SDS handling, dispatch, reply building). Charged
/// identically on the classic and RedisJMP paths, since RedisJMP clients
/// execute the same server code directly.
pub const COMMAND_OVERHEAD: u64 = 3000;

/// A running server instance.
#[derive(Debug)]
pub struct RedisServer {
    pid: Pid,
    dict: SegDict,
    stats: DictStats,
    requests: u64,
}

impl RedisServer {
    /// Launches instance `idx`: spawns the server process, creates its
    /// data VAS and segment (each instance gets its own 512 GiB-aligned
    /// slot), and initializes the dictionary.
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    pub fn launch(sj: &mut SpaceJmp, idx: usize) -> SjResult<RedisServer> {
        let pid = sj
            .kernel_mut()
            .spawn(&format!("redis-{idx}"), Creds::new(600, 600))?;
        sj.kernel_mut().activate(pid)?;
        let base = VirtAddr::new(GLOBAL_LO.raw() + (idx as u64) * (1 << 39));
        let vid = sj.vas_create(pid, &format!("redis-vas-{idx}"), Mode(0o600))?;
        let sid = sj.seg_alloc(
            pid,
            &format!("redis-data-{idx}"),
            base,
            STORE_SEGMENT_BYTES,
            Mode(0o600),
        )?;
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
        let vh = sj.vas_attach(pid, vid)?;
        // The store VAS is freshly created, but a restarted instance can
        // race a not-yet-reaped predecessor's lock — back off rather than
        // fail the launch.
        sj.vas_switch_retry(pid, vh, &RetryPolicy::default())?;
        let heap = VasHeap::format(sj, pid, sid)?;
        let dict = SegDict::create(sj, pid, heap)?;
        Ok(RedisServer {
            pid,
            dict,
            stats: DictStats::default(),
            requests: 0,
        })
    }

    /// The server's process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Dictionary statistics.
    pub fn dict_stats(&self) -> DictStats {
        self.stats
    }

    /// Executes a parsed command against the store.
    ///
    /// # Errors
    ///
    /// Propagates memory/heap failures (protocol-level problems become
    /// [`Reply::Error`] instead).
    pub fn execute(&mut self, sj: &mut SpaceJmp, cmd: &Command) -> SjResult<Reply> {
        self.requests += 1;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let pid = self.pid;
        Ok(match cmd {
            Command::Get(k) => Reply::Bulk(self.dict.get(sj, pid, k)?),
            Command::Set(k, v) => {
                self.dict.set(sj, pid, k, v, true, &mut self.stats)?;
                Reply::Ok
            }
            Command::Del(k) => {
                let existed = self.dict.del(sj, pid, k, true, &mut self.stats)?;
                Reply::Int(existed as i64)
            }
            Command::Incr(k) => {
                let current = match self.dict.get(sj, pid, k)? {
                    None => 0,
                    Some(bytes) => match std::str::from_utf8(&bytes)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(n) => n,
                        None => return Ok(Reply::Error("value is not an integer".into())),
                    },
                };
                let next = current + 1;
                self.dict.set(
                    sj,
                    pid,
                    k,
                    next.to_string().as_bytes(),
                    true,
                    &mut self.stats,
                )?;
                Reply::Int(next)
            }
            Command::Append(k, v) => {
                let mut cur = self.dict.get(sj, pid, k)?.unwrap_or_default();
                cur.extend_from_slice(v);
                let len = cur.len() as i64;
                self.dict.set(sj, pid, k, &cur, true, &mut self.stats)?;
                Reply::Int(len)
            }
        })
    }

    /// Full server loop body for one request: parse, execute, encode.
    ///
    /// # Errors
    ///
    /// Propagates memory/heap failures.
    pub fn handle_request(&mut self, sj: &mut SpaceJmp, raw: &[u8]) -> SjResult<Vec<u8>> {
        let reply = match Command::parse(raw) {
            Ok(cmd) => self.execute(sj, &cmd)?,
            Err(e) => Reply::Error(e.to_string()),
        };
        Ok(reply.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::Kernel;

    fn setup() -> (SpaceJmp, RedisServer) {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let server = RedisServer::launch(&mut sj, 0).unwrap();
        (sj, server)
    }

    #[test]
    fn get_set_del_incr_append() {
        let (mut sj, mut s) = setup();
        assert_eq!(
            s.execute(&mut sj, &Command::Get(b"x".to_vec())).unwrap(),
            Reply::Bulk(None)
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Set(b"x".to_vec(), b"1".to_vec()))
                .unwrap(),
            Reply::Ok
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Get(b"x".to_vec())).unwrap(),
            Reply::Bulk(Some(b"1".to_vec()))
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Incr(b"x".to_vec())).unwrap(),
            Reply::Int(2)
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Append(b"x".to_vec(), b"30".to_vec()))
                .unwrap(),
            Reply::Int(3)
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Get(b"x".to_vec())).unwrap(),
            Reply::Bulk(Some(b"230".to_vec()))
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Del(b"x".to_vec())).unwrap(),
            Reply::Int(1)
        );
        assert_eq!(
            s.execute(&mut sj, &Command::Del(b"x".to_vec())).unwrap(),
            Reply::Int(0)
        );
    }

    #[test]
    fn incr_non_integer_is_an_error() {
        let (mut sj, mut s) = setup();
        s.execute(&mut sj, &Command::Set(b"x".to_vec(), b"abc".to_vec()))
            .unwrap();
        assert!(matches!(
            s.execute(&mut sj, &Command::Incr(b"x".to_vec())).unwrap(),
            Reply::Error(_)
        ));
    }

    #[test]
    fn handle_request_wire_level() {
        let (mut sj, mut s) = setup();
        let set = Command::Set(b"k".to_vec(), b"v".to_vec()).encode();
        assert_eq!(
            s.handle_request(&mut sj, &set).unwrap(),
            b"+OK\r\n".to_vec()
        );
        let get = Command::Get(b"k".to_vec()).encode();
        let resp = s.handle_request(&mut sj, &get).unwrap();
        assert_eq!(
            Reply::parse(&resp).unwrap(),
            Reply::Bulk(Some(b"v".to_vec()))
        );
        // Garbage gets an error reply, not a crash.
        let resp = s.handle_request(&mut sj, b"garbage").unwrap();
        assert!(matches!(Reply::parse(&resp).unwrap(), Reply::Error(_)));
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn multiple_instances_coexist() {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let mut servers: Vec<RedisServer> = (0..3)
            .map(|i| RedisServer::launch(&mut sj, i).unwrap())
            .collect();
        for (i, s) in servers.iter_mut().enumerate() {
            let k = format!("inst{i}");
            s.execute(
                &mut sj,
                &Command::Set(k.clone().into_bytes(), vec![i as u8]),
            )
            .unwrap();
        }
        for (i, s) in servers.iter_mut().enumerate() {
            let k = format!("inst{i}");
            assert_eq!(
                s.execute(&mut sj, &Command::Get(k.into_bytes())).unwrap(),
                Reply::Bulk(Some(vec![i as u8]))
            );
        }
    }
}
