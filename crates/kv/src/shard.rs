//! Sharded RedisJMP: the store split across multiple shared VASes, with
//! consistent-hash routing, admission control, and graceful degradation.
//!
//! One store segment means one segment lock, and Figure 10 shows what
//! that costs: every SET serializes the whole keyspace. Sharding splits
//! the keyspace over `S` independent store segments, each in its own
//! 512 GiB PML4 slot with its own lockable segment and its own pair of
//! read/write VASes per client — writes to different shards proceed in
//! parallel, and a reader run on one shard never waits behind a writer
//! on another.
//!
//! The overload machinery lives here too:
//!
//! * **Routing** — [`ShardRouter`], a consistent-hash ring with virtual
//!   nodes, so adding a shard remaps only ~1/S of the keyspace.
//! * **Admission** — a request to a shard whose switch queue is at its
//!   bound is rejected with [`RejectReason::Shed`] *before* it burns a
//!   core spinning on the segment lock; the caller retries with
//!   bounded exponential backoff or gives up.
//! * **Degradation** — when the kernel reports critical memory
//!   pressure ([`sjmp_os::PressureLevel`]), shards flip to read-only:
//!   SETs fail fast with [`RejectReason::ShardUnavailable`] while GETs
//!   keep serving, and writes resume when pressure clears.
//! * **Deadlines** — the `_by` variants reject requests whose deadline
//!   already passed with [`RejectReason::DeadlineExceeded`] instead of
//!   doing work nobody is waiting for.

use sjmp_os::{Pid, PressureLevel};
use sjmp_trace::EventKind;
use spacejmp_core::{SegId, SjError, SpaceJmp};

use crate::jmp::{JmpClient, JoinOpts};

/// Maximum shard count: store slots 0..8 precede the scratch slots.
pub const MAX_SHARDS: usize = 8;

/// Default virtual nodes per shard on the consistent-hash ring.
const DEFAULT_VNODES: usize = 64;

/// Why a request was refused without being served.
///
/// Typed so callers can react differently: `Shed` is transient (retry
/// with backoff), `ShardUnavailable` is a mode (fail writes fast, keep
/// reading), `DeadlineExceeded` is final (the client already gave up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The shard's admission queue is at its bound; retry after backoff.
    Shed,
    /// The request's deadline passed before it could be dispatched.
    DeadlineExceeded,
    /// The shard is degraded to read-only (memory pressure); writes are
    /// refused until pressure clears.
    ShardUnavailable,
}

impl RejectReason {
    /// Stable lowercase name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Shed => "shed",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::ShardUnavailable => "shard_unavailable",
        }
    }
}

/// A sharded-store request failure: either a typed rejection by the
/// admission layer or an underlying SpaceJMP error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Refused by admission control; the store did no work.
    Rejected(RejectReason),
    /// The dispatched operation itself failed.
    Inner(SjError),
}

impl From<SjError> for ShardError {
    fn from(e: SjError) -> Self {
        ShardError::Inner(e)
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Rejected(r) => write!(f, "rejected: {}", r.name()),
            ShardError::Inner(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// FNV-1a with a 64-bit finalizer. Plain FNV-1a avalanches poorly into
/// the high bits for short, similar keys — and ring placement orders by
/// the *full* `u64`, so without the mix, `key:001` and `key:002` land
/// on the same arc and one shard owns the whole keyspace. The final
/// mixer (Murmur3/SplitMix-style) spreads low-bit differences across
/// the word.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring mapping keys to shard indices.
///
/// Each shard contributes `vnodes` points on a `u64` ring; a key routes
/// to the first point clockwise from its hash. Adding or removing one
/// shard therefore remaps only the keys between its points and their
/// predecessors — about `1/S` of the keyspace — instead of reshuffling
/// everything the way `hash % S` does.
///
/// # Examples
///
/// ```
/// use sjmp_kv::ShardRouter;
/// let router = ShardRouter::new(4);
/// let s = router.route(b"user:1001");
/// assert!(s < 4);
/// assert_eq!(s, router.route(b"user:1001"), "routing is stable");
/// ```
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `(point, shard)` sorted by point.
    ring: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRouter {
    /// A ring over `shards` shards with the default virtual-node count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(vnodes > 0, "need at least one virtual node");
        let mut ring = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                ring.push((fnv1a(format!("shard-{s}-vnode-{v}").as_bytes()), s));
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|&mut (p, _)| p);
        ShardRouter { ring, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        let h = fnv1a(key);
        let i = match self.ring.binary_search_by_key(&h, |&(p, _)| p) {
            Ok(i) => i,
            // First point clockwise; wrap past the highest point.
            Err(i) => i % self.ring.len(),
        };
        self.ring[i].1
    }
}

/// Live health of one shard, as seen by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Switchers blocked on this shard's store segment right now.
    pub wait_depth: usize,
    /// Whether the shard is currently read-only.
    pub degraded: bool,
}

/// A sharded RedisJMP store handle for one client process.
///
/// Holds one [`JmpClient`] per shard (each over its own store segment
/// and slot) plus the router and the admission policy. All shards share
/// the calling process, so a `ShardedKv` is per-`Pid` the way a
/// `JmpClient` is.
///
/// # Examples
///
/// ```
/// use sjmp_mem::{KernelFlavor, MachineId};
/// use sjmp_os::{Creds, Kernel};
/// use sjmp_kv::ShardedKv;
/// use spacejmp_core::SpaceJmp;
///
/// # fn main() -> Result<(), sjmp_kv::ShardError> {
/// let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
/// let pid = sj.kernel_mut().spawn("client", Creds::new(100, 100)).map_err(spacejmp_core::SjError::from)?;
/// sj.kernel_mut().activate(pid).map_err(spacejmp_core::SjError::from)?;
/// let mut kv = ShardedKv::join(&mut sj, pid, "cache", 0, 4)?;
/// kv.set(&mut sj, b"answer", b"42")?;
/// assert_eq!(kv.get(&mut sj, b"answer")?, Some(b"42".to_vec()));
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct ShardedKv {
    router: ShardRouter,
    clients: Vec<JmpClient>,
    store_sids: Vec<SegId>,
    /// Per-shard admission bound on switch-queue depth.
    queue_cap: usize,
    /// This handle's client index (stamped into request ids and
    /// `ReqArrive.arg1` so traces can attribute requests to clients).
    client_idx: usize,
    /// Requests issued through this handle so far; the next request's
    /// id is `client_idx << 32 | req_seq`, unique across handles.
    req_seq: u64,
    /// Requests this handle had shed by admission control (fairness
    /// accounting: under uniform load no client should absorb a
    /// disproportionate share).
    sheds: u64,
}

/// Default per-shard admission bound: more blocked switchers than this
/// and new arrivals are shed instead of queued.
const DEFAULT_QUEUE_CAP: usize = 32;

impl ShardedKv {
    /// Joins (or lazily initializes) `shards` stores named
    /// `"{store}-s{shard}"`, one per PML4 slot. `client_idx` must be
    /// unique per joining process; scratch segments are slotted as
    /// `client_idx * shards + shard` so every (client, shard) pair gets
    /// a distinct address slot.
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn join(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
        shards: usize,
    ) -> Result<ShardedKv, ShardError> {
        Self::join_opts(sj, pid, store, client_idx, shards, JoinOpts::default())
    }

    /// [`Self::join`] with explicit per-shard [`JoinOpts`] (the
    /// `store_slot` field is overridden per shard).
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn join_opts(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
        shards: usize,
        opts: JoinOpts,
    ) -> Result<ShardedKv, ShardError> {
        assert!(shards > 0, "need at least one shard");
        assert!(shards <= MAX_SHARDS, "at most {MAX_SHARDS} shards");
        let mut clients = Vec::with_capacity(shards);
        let mut store_sids = Vec::with_capacity(shards);
        for s in 0..shards {
            let name = format!("{store}-s{s}");
            let client = JmpClient::join_cfg(
                sj,
                pid,
                &name,
                client_idx * shards + s,
                JoinOpts {
                    store_slot: s as u64,
                    ..opts
                },
            )?;
            store_sids.push(sj.seg_find(&format!("jmp-store-{name}"))?);
            clients.push(client);
        }
        Ok(ShardedKv {
            router: ShardRouter::new(shards),
            clients,
            store_sids,
            queue_cap: DEFAULT_QUEUE_CAP,
            client_idx,
            req_seq: 0,
            sheds: 0,
        })
    }

    /// Sets the per-shard admission bound (default 32 queued switchers).
    pub fn set_queue_cap(&mut self, cap: usize) {
        self.queue_cap = cap.max(1);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.clients.len()
    }

    /// The router (stable key → shard mapping).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard that owns `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.router.route(key)
    }

    /// The store segment backing shard `s`.
    pub fn store_sid(&self, s: usize) -> SegId {
        self.store_sids[s]
    }

    /// Whether shard `s` is currently degraded to read-only. Memory
    /// pressure is a kernel-global signal, so under pressure every
    /// shard degrades; the per-shard shape exists so a future
    /// per-tier placement can flip shards independently.
    pub fn degraded(&self, sj: &SpaceJmp, _s: usize) -> bool {
        sj.kernel().mem_pressure() >= PressureLevel::Critical
    }

    /// Health snapshot of every shard (queue depth + degraded flag).
    pub fn health(&self, sj: &SpaceJmp) -> Vec<ShardHealth> {
        (0..self.shards())
            .map(|s| ShardHealth {
                wait_depth: sj.seg_wait_depth(self.store_sids[s]),
                degraded: self.degraded(sj, s),
            })
            .collect()
    }

    /// Requests this handle has had shed by admission control.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Admission check for shard `s`: shed when the shard's switch
    /// queue is at the bound, refuse writes when degraded. Tallies
    /// sheds per handle for fairness accounting.
    fn admit(&mut self, sj: &SpaceJmp, s: usize, write: bool) -> Result<(), ShardError> {
        if write && self.degraded(sj, s) {
            return Err(ShardError::Rejected(RejectReason::ShardUnavailable));
        }
        if sj.seg_wait_depth(self.store_sids[s]) >= self.queue_cap {
            self.sheds += 1;
            return Err(ShardError::Rejected(RejectReason::Shed));
        }
        Ok(())
    }

    /// The calling core and its cycle timestamp, for trace attribution.
    fn now_core(&self, sj: &SpaceJmp) -> (u64, u32) {
        let core = sj
            .kernel()
            .ctx_of(self.clients[0].pid())
            .map_or(0, |c| c.core);
        (sj.kernel().clocks().now_on(core), core as u32)
    }

    /// Mints a request id and emits `ReqArrive`, or `None` when the
    /// tracer is off — request tracing is strictly zero-cost then (no
    /// id minting, no clock reads, no modeled cycles ever).
    fn req_begin(&mut self, sj: &SpaceJmp) -> Option<u64> {
        if !sj.tracer().enabled() {
            return None;
        }
        let id = ((self.client_idx as u64) << 32) | self.req_seq;
        self.req_seq += 1;
        let (ts, core) = self.now_core(sj);
        sj.tracer()
            .instant(ts, core, EventKind::ReqArrive, id, self.client_idx as u64);
        Some(id)
    }

    /// Emits a request-lifecycle instant for a minted id.
    fn req_mark(&self, sj: &SpaceJmp, id: Option<u64>, kind: EventKind, arg1: u64) {
        let Some(id) = id else { return };
        let (ts, core) = self.now_core(sj);
        sj.tracer().instant(ts, core, kind, id, arg1);
    }

    /// Emits `ReqShed` with the rejection's stable shed code.
    fn req_reject(&self, sj: &SpaceJmp, id: Option<u64>, e: &ShardError) {
        let code = match e {
            ShardError::Rejected(RejectReason::Shed) => 0,
            ShardError::Rejected(RejectReason::DeadlineExceeded) => 1,
            ShardError::Rejected(RejectReason::ShardUnavailable) => 2,
            ShardError::Inner(_) => return,
        };
        self.req_mark(sj, id, EventKind::ReqShed, code);
    }

    /// Emits `ReqComplete` with the within-deadline flag.
    fn req_complete(&self, sj: &SpaceJmp, id: Option<u64>, deadline: Option<u64>) {
        if id.is_none() {
            return;
        }
        let within = deadline.is_none_or(|d| sj.kernel().clock().now() <= d);
        self.req_mark(sj, id, EventKind::ReqComplete, u64::from(within));
    }

    /// Deadline check: a request whose deadline (absolute cycles) has
    /// already passed is rejected before dispatch.
    fn check_deadline(sj: &SpaceJmp, deadline: Option<u64>) -> Result<(), ShardError> {
        if let Some(d) = deadline {
            if sj.kernel().clock().now() > d {
                return Err(ShardError::Rejected(RejectReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// GET routed to the owning shard, no deadline.
    ///
    /// # Errors
    ///
    /// [`ShardError::Rejected`] on shed; inner errors otherwise.
    pub fn get(&mut self, sj: &mut SpaceJmp, key: &[u8]) -> Result<Option<Vec<u8>>, ShardError> {
        self.get_by(sj, key, None)
    }

    /// GET with an absolute deadline in cycles ([`None`] = none).
    ///
    /// # Errors
    ///
    /// [`RejectReason::DeadlineExceeded`] when the deadline already
    /// passed at dispatch; [`RejectReason::Shed`] at the admission
    /// bound; inner errors otherwise.
    pub fn get_by(
        &mut self,
        sj: &mut SpaceJmp,
        key: &[u8],
        deadline: Option<u64>,
    ) -> Result<Option<Vec<u8>>, ShardError> {
        let s = self.shard_of(key);
        let id = self.req_begin(sj);
        if let Err(e) = Self::check_deadline(sj, deadline).and_then(|()| self.admit(sj, s, false)) {
            self.req_reject(sj, id, &e);
            return Err(e);
        }
        self.req_mark(sj, id, EventKind::ReqAdmit, s as u64);
        // arg1 = 0: on the live path the switch share is carried by the
        // nested `VasSwitch` spans between dispatch and completion.
        self.req_mark(sj, id, EventKind::ReqDispatch, 0);
        let out = self.clients[s].get(sj, key);
        self.req_complete(sj, id, deadline);
        Ok(out?)
    }

    /// SET routed to the owning shard, no deadline.
    ///
    /// # Errors
    ///
    /// [`RejectReason::ShardUnavailable`] while degraded;
    /// [`RejectReason::Shed`] at the admission bound; inner errors
    /// otherwise.
    pub fn set(&mut self, sj: &mut SpaceJmp, key: &[u8], val: &[u8]) -> Result<(), ShardError> {
        self.set_by(sj, key, val, None)
    }

    /// SET with an absolute deadline in cycles ([`None`] = none).
    ///
    /// # Errors
    ///
    /// As [`Self::set`], plus [`RejectReason::DeadlineExceeded`].
    pub fn set_by(
        &mut self,
        sj: &mut SpaceJmp,
        key: &[u8],
        val: &[u8],
        deadline: Option<u64>,
    ) -> Result<(), ShardError> {
        let s = self.shard_of(key);
        let id = self.req_begin(sj);
        if let Err(e) = Self::check_deadline(sj, deadline).and_then(|()| self.admit(sj, s, true)) {
            self.req_reject(sj, id, &e);
            return Err(e);
        }
        self.req_mark(sj, id, EventKind::ReqAdmit, s as u64);
        self.req_mark(sj, id, EventKind::ReqDispatch, 0);
        let out = self.clients[s].set(sj, key, val);
        self.req_complete(sj, id, deadline);
        Ok(out?)
    }

    /// DEL routed to the owning shard (write path: degrades and sheds
    /// like SET).
    ///
    /// # Errors
    ///
    /// As [`Self::set`].
    pub fn del(&mut self, sj: &mut SpaceJmp, key: &[u8]) -> Result<bool, ShardError> {
        let s = self.shard_of(key);
        let id = self.req_begin(sj);
        if let Err(e) = self.admit(sj, s, true) {
            self.req_reject(sj, id, &e);
            return Err(e);
        }
        self.req_mark(sj, id, EventKind::ReqAdmit, s as u64);
        self.req_mark(sj, id, EventKind::ReqDispatch, 0);
        let out = self.clients[s].del(sj, key);
        self.req_complete(sj, id, None);
        Ok(out?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::{Creds, Kernel};

    fn setup(shards: usize, n_clients: usize) -> (SpaceJmp, Vec<ShardedKv>) {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let kvs = (0..n_clients)
            .map(|i| {
                let pid = sj
                    .kernel_mut()
                    .spawn(&format!("sc{i}"), Creds::new(100, 100))
                    .unwrap();
                sj.kernel_mut().activate(pid).unwrap();
                ShardedKv::join(&mut sj, pid, "sharded", i, shards).unwrap()
            })
            .collect();
        (sj, kvs)
    }

    #[test]
    fn router_covers_all_shards_roughly_evenly() {
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[router.route(format!("key:{i}").as_bytes())] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2200).contains(&c),
                "shard {s} got {c} of 4000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_remaps_a_minority_of_keys() {
        let before = ShardRouter::new(4);
        let after = ShardRouter::new(5);
        let keys = 4000;
        let moved = (0..keys)
            .filter(|i| {
                let k = format!("key:{i}");
                before.route(k.as_bytes()) != after.route(k.as_bytes())
            })
            .count();
        // Consistent hashing moves ~1/5 of keys; modulo would move ~4/5.
        assert!(
            moved < keys / 2,
            "{moved}/{keys} keys moved; expected a minority"
        );
        assert!(moved > 0, "a new shard must take over some keys");
    }

    #[test]
    fn sharded_roundtrip_spreads_keys_across_segments() {
        let (mut sj, mut kvs) = setup(4, 1);
        let kv = &mut kvs[0];
        let mut used = [false; 4];
        for i in 0..64 {
            let k = format!("key:{i:03}");
            kv.set(&mut sj, k.as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
            used[kv.shard_of(k.as_bytes())] = true;
        }
        assert!(used.iter().all(|&u| u), "all shards used: {used:?}");
        for i in 0..64 {
            let k = format!("key:{i:03}");
            assert_eq!(
                kv.get(&mut sj, k.as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn clients_share_every_shard() {
        let (mut sj, mut kvs) = setup(2, 2);
        for i in 0..32 {
            let k = format!("shared:{i}");
            kvs[0].set(&mut sj, k.as_bytes(), b"x").unwrap();
        }
        for i in 0..32 {
            let k = format!("shared:{i}");
            assert_eq!(
                kvs[1].get(&mut sj, k.as_bytes()).unwrap(),
                Some(b"x".to_vec())
            );
        }
    }

    #[test]
    fn deadline_already_passed_is_rejected_before_dispatch() {
        let (mut sj, mut kvs) = setup(2, 1);
        kvs[0].set(&mut sj, b"k", b"v").unwrap();
        // A deadline in the past: the clock has advanced past 0.
        assert!(sj.kernel().clock().now() > 0);
        assert_eq!(
            kvs[0].get_by(&mut sj, b"k", Some(0)),
            Err(ShardError::Rejected(RejectReason::DeadlineExceeded))
        );
        // A generous deadline is admitted.
        let far = sj.kernel().clock().now() + 1_000_000_000;
        assert_eq!(
            kvs[0].get_by(&mut sj, b"k", Some(far)).unwrap(),
            Some(b"v".to_vec())
        );
    }

    #[test]
    fn health_reports_every_shard() {
        let (sj, kvs) = setup(3, 1);
        let h = kvs[0].health(&sj);
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|s| s.wait_depth == 0 && !s.degraded));
    }

    #[test]
    fn live_requests_emit_reassemblable_causal_spans() {
        use sjmp_trace::{assemble_requests, ReqOutcome, Tracer};

        let (mut sj, mut kvs) = setup(2, 2);
        sj.set_tracer(Tracer::new(1 << 16));
        kvs[0].set(&mut sj, b"k", b"v").unwrap();
        assert_eq!(kvs[1].get(&mut sj, b"k").unwrap(), Some(b"v".to_vec()));
        // A rejected request ends in ReqShed with the deadline code.
        assert_eq!(
            kvs[1].get_by(&mut sj, b"k", Some(0)),
            Err(ShardError::Rejected(RejectReason::DeadlineExceeded))
        );

        let spans = assemble_requests(&sj.tracer().events());
        assert_eq!(spans.len(), 3, "{spans:?}");
        // Ids embed the handle's client index in the high word, so
        // concurrent handles never collide.
        let mut by_client: Vec<u64> = spans.iter().map(|s| s.id >> 32).collect();
        by_client.sort_unstable();
        assert_eq!(by_client, vec![0, 1, 1]);
        assert_eq!(
            spans
                .iter()
                .filter(|s| matches!(s.outcome, ReqOutcome::Completed(true)))
                .count(),
            2
        );
        assert_eq!(
            spans
                .iter()
                .filter(|s| s.outcome == ReqOutcome::DeadlineExceeded)
                .count(),
            1
        );
    }

    #[test]
    fn request_tracing_off_mints_nothing() {
        let (mut sj, mut kvs) = setup(2, 1);
        kvs[0].set(&mut sj, b"k", b"v").unwrap();
        kvs[0].get(&mut sj, b"k").unwrap();
        assert_eq!(kvs[0].req_seq, 0, "no ids minted with the tracer off");
        assert!(sj.tracer().events().is_empty());
    }
}
