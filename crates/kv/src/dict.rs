//! A Redis-style hash table living **inside a SpaceJMP segment**.
//!
//! All state — bucket arrays, entry nodes, key and value bytes — is
//! allocated from a [`VasHeap`] hosted by the segment, and every access
//! goes through the simulated MMU. Pointers are full virtual addresses:
//! because a segment has one fixed base in every address space, any
//! process that switches into a VAS mapping the segment can use the
//! dictionary directly, with no serialization or pointer swizzling. That
//! is the heart of the RedisJMP design (Section 5.3).
//!
//! Like Redis's `dict`, the table uses chaining and **incremental
//! rehash**: two bucket arrays coexist while entries migrate a bucket at
//! a time. RedisJMP "resize\[s\] and rehash\[es\] entries only when a client
//! has an exclusive lock on the address space" — hence the `allow_rehash`
//! parameter on mutating operations.

use sjmp_mem::VirtAddr;
use sjmp_os::Pid;
use spacejmp_core::{SjError, SjResult, SpaceJmp, VasHeap};

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: u64 = 16;
/// Entry node layout: next, hash, key_ptr, key_len, val_ptr, val_len.
const ENTRY_SIZE: u64 = 48;
const E_NEXT: u64 = 0;
const E_HASH: u64 = 8;
const E_KEY: u64 = 16;
const E_KLEN: u64 = 24;
const E_VAL: u64 = 32;
const E_VLEN: u64 = 40;

/// Dict header layout: table0, cap0, used0, table1, cap1, used1,
/// rehash_idx (u64::MAX when idle).
const H_T0: u64 = 0;
const H_CAP0: u64 = 8;
const H_USED0: u64 = 16;
const H_T1: u64 = 24;
const H_CAP1: u64 = 32;
const H_USED1: u64 = 40;
const H_REHASH: u64 = 48;
const HEADER_SIZE: u64 = 56;

const NOT_REHASHING: u64 = u64::MAX;

/// FNV-1a, the key hash.
fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-operation statistics (for cost attribution in benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DictStats {
    /// Buckets migrated by incremental rehash steps.
    pub rehash_migrations: u64,
    /// Full resizes started.
    pub resizes: u64,
}

/// Handle to a segment-resident dictionary.
///
/// Plain data: the real state lives in the heap's segment, keyed off the
/// heap's root pointer, so handles can be reconstructed by any attacher
/// via [`SegDict::open`].
#[derive(Debug, Clone, Copy)]
pub struct SegDict {
    heap: VasHeap,
    header: VirtAddr,
}

impl SegDict {
    /// Creates a new dictionary in `heap` and registers it as the heap's
    /// root object.
    ///
    /// # Errors
    ///
    /// Allocation failures from the heap.
    pub fn create(sj: &mut SpaceJmp, pid: Pid, heap: VasHeap) -> SjResult<SegDict> {
        let header = heap.calloc(sj, pid, HEADER_SIZE)?;
        let table0 = heap.calloc(sj, pid, INITIAL_BUCKETS * 8)?;
        let k = sj.kernel_mut();
        k.store_u64(pid, header.add(H_T0), table0.raw())?;
        k.store_u64(pid, header.add(H_CAP0), INITIAL_BUCKETS)?;
        k.store_u64(pid, header.add(H_REHASH), NOT_REHASHING)?;
        heap.set_root(sj, pid, header)?;
        Ok(SegDict { heap, header })
    }

    /// Opens the dictionary previously created in `heap`.
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] if the heap has no root object.
    pub fn open(sj: &mut SpaceJmp, pid: Pid, heap: VasHeap) -> SjResult<SegDict> {
        let header = heap.root(sj, pid)?;
        if header == VirtAddr::NULL {
            return Err(SjError::InvalidArgument("heap holds no dictionary"));
        }
        Ok(SegDict { heap, header })
    }

    fn h(&self, field: u64) -> VirtAddr {
        self.header.add(field)
    }

    /// Number of live entries.
    ///
    /// # Errors
    ///
    /// Access errors if the segment is not mapped.
    pub fn len(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<u64> {
        let k = sj.kernel_mut();
        Ok(k.load_u64(pid, self.h(H_USED0))? + k.load_u64(pid, self.h(H_USED1))?)
    }

    /// Whether the dictionary is empty.
    ///
    /// # Errors
    ///
    /// As [`Self::len`].
    pub fn is_empty(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<bool> {
        Ok(self.len(sj, pid)? == 0)
    }

    /// Whether an incremental rehash is in progress.
    ///
    /// # Errors
    ///
    /// Access errors if the segment is not mapped.
    pub fn is_rehashing(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<bool> {
        Ok(sj.kernel_mut().load_u64(pid, self.h(H_REHASH))? != NOT_REHASHING)
    }

    /// Finds the entry for `key` in table `t` (0 or 1); returns
    /// `(prev_entry_or_null, entry)` for unlink support.
    fn find_in_table(
        &self,
        sj: &mut SpaceJmp,
        pid: Pid,
        t: u64,
        hash: u64,
        key: &[u8],
    ) -> SjResult<Option<(VirtAddr, VirtAddr)>> {
        let (tbl_f, cap_f) = if t == 0 {
            (H_T0, H_CAP0)
        } else {
            (H_T1, H_CAP1)
        };
        let k = sj.kernel_mut();
        let table = k.load_u64(pid, self.h(tbl_f))?;
        if table == 0 {
            return Ok(None);
        }
        let cap = k.load_u64(pid, self.h(cap_f))?;
        let bucket = VirtAddr::new(table).add((hash & (cap - 1)) * 8);
        let mut prev = VirtAddr::NULL;
        let mut cur = k.load_u64(pid, bucket)?;
        while cur != 0 {
            let e = VirtAddr::new(cur);
            let ehash = k.load_u64(pid, e.add(E_HASH))?;
            if ehash == hash {
                let klen = k.load_u64(pid, e.add(E_KLEN))?;
                if klen as usize == key.len() {
                    let kptr = VirtAddr::new(k.load_u64(pid, e.add(E_KEY))?);
                    let mut kbuf = vec![0u8; klen as usize];
                    k.load_bytes(pid, kptr, &mut kbuf)?;
                    if kbuf == key {
                        return Ok(Some((prev, e)));
                    }
                }
            }
            prev = e;
            cur = k.load_u64(pid, e.add(E_NEXT))?;
        }
        Ok(None)
    }

    /// Looks up `key`, returning a copy of its value.
    ///
    /// # Errors
    ///
    /// Access errors if the segment is not mapped in the current VAS.
    pub fn get(&self, sj: &mut SpaceJmp, pid: Pid, key: &[u8]) -> SjResult<Option<Vec<u8>>> {
        let hash = hash_key(key);
        for t in [0u64, 1] {
            if let Some((_, e)) = self.find_in_table(sj, pid, t, hash, key)? {
                let k = sj.kernel_mut();
                let vlen = k.load_u64(pid, e.add(E_VLEN))?;
                let vptr = VirtAddr::new(k.load_u64(pid, e.add(E_VAL))?);
                let mut buf = vec![0u8; vlen as usize];
                k.load_bytes(pid, vptr, &mut buf)?;
                return Ok(Some(buf));
            }
        }
        Ok(None)
    }

    /// Inserts or replaces `key -> val`. With `allow_rehash`, may start a
    /// resize and migrates one bucket of a pending rehash (exclusive-lock
    /// holders only, per the RedisJMP rule).
    ///
    /// # Errors
    ///
    /// Heap exhaustion or access errors.
    pub fn set(
        &self,
        sj: &mut SpaceJmp,
        pid: Pid,
        key: &[u8],
        val: &[u8],
        allow_rehash: bool,
        stats: &mut DictStats,
    ) -> SjResult<()> {
        let hash = hash_key(key);
        if allow_rehash {
            self.maybe_resize(sj, pid, stats)?;
            self.rehash_step(sj, pid, stats)?;
        }
        // Replace in place if present (either table).
        for t in [0u64, 1] {
            if let Some((_, e)) = self.find_in_table(sj, pid, t, hash, key)? {
                let old_vptr = VirtAddr::new(sj.kernel_mut().load_u64(pid, e.add(E_VAL))?);
                self.heap.free(sj, pid, old_vptr)?;
                let vptr = self.heap.malloc(sj, pid, val.len().max(1) as u64)?;
                let k = sj.kernel_mut();
                k.store_bytes(pid, vptr, val)?;
                k.store_u64(pid, e.add(E_VAL), vptr.raw())?;
                k.store_u64(pid, e.add(E_VLEN), val.len() as u64)?;
                return Ok(());
            }
        }
        // Fresh insert, into table1 if rehashing else table0.
        let rehashing = self.is_rehashing(sj, pid)?;
        let (tbl_f, cap_f, used_f) = if rehashing {
            (H_T1, H_CAP1, H_USED1)
        } else {
            (H_T0, H_CAP0, H_USED0)
        };
        let entry = self.heap.malloc(sj, pid, ENTRY_SIZE)?;
        let kptr = self.heap.malloc(sj, pid, key.len().max(1) as u64)?;
        let vptr = self.heap.malloc(sj, pid, val.len().max(1) as u64)?;
        let k = sj.kernel_mut();
        k.store_bytes(pid, kptr, key)?;
        k.store_bytes(pid, vptr, val)?;
        let table = k.load_u64(pid, self.h(tbl_f))?;
        let cap = k.load_u64(pid, self.h(cap_f))?;
        let bucket = VirtAddr::new(table).add((hash & (cap - 1)) * 8);
        let head = k.load_u64(pid, bucket)?;
        k.store_u64(pid, entry.add(E_NEXT), head)?;
        k.store_u64(pid, entry.add(E_HASH), hash)?;
        k.store_u64(pid, entry.add(E_KEY), kptr.raw())?;
        k.store_u64(pid, entry.add(E_KLEN), key.len() as u64)?;
        k.store_u64(pid, entry.add(E_VAL), vptr.raw())?;
        k.store_u64(pid, entry.add(E_VLEN), val.len() as u64)?;
        k.store_u64(pid, bucket, entry.raw())?;
        let used = k.load_u64(pid, self.h(used_f))?;
        k.store_u64(pid, self.h(used_f), used + 1)?;
        Ok(())
    }

    /// Removes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Access errors.
    pub fn del(
        &self,
        sj: &mut SpaceJmp,
        pid: Pid,
        key: &[u8],
        allow_rehash: bool,
        stats: &mut DictStats,
    ) -> SjResult<bool> {
        if allow_rehash {
            self.rehash_step(sj, pid, stats)?;
        }
        let hash = hash_key(key);
        for t in [0u64, 1] {
            if let Some((prev, e)) = self.find_in_table(sj, pid, t, hash, key)? {
                let k = sj.kernel_mut();
                let next = k.load_u64(pid, e.add(E_NEXT))?;
                if prev == VirtAddr::NULL {
                    let (tbl_f, cap_f) = if t == 0 {
                        (H_T0, H_CAP0)
                    } else {
                        (H_T1, H_CAP1)
                    };
                    let table = k.load_u64(pid, self.h(tbl_f))?;
                    let cap = k.load_u64(pid, self.h(cap_f))?;
                    let bucket = VirtAddr::new(table).add((hash & (cap - 1)) * 8);
                    k.store_u64(pid, bucket, next)?;
                } else {
                    k.store_u64(pid, prev.add(E_NEXT), next)?;
                }
                let kptr = VirtAddr::new(k.load_u64(pid, e.add(E_KEY))?);
                let vptr = VirtAddr::new(k.load_u64(pid, e.add(E_VAL))?);
                let used_f = if t == 0 { H_USED0 } else { H_USED1 };
                let used = k.load_u64(pid, self.h(used_f))?;
                k.store_u64(pid, self.h(used_f), used - 1)?;
                self.heap.free(sj, pid, kptr)?;
                self.heap.free(sj, pid, vptr)?;
                self.heap.free(sj, pid, e)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Starts a resize if the load factor reached 1.0 and none is active.
    fn maybe_resize(&self, sj: &mut SpaceJmp, pid: Pid, stats: &mut DictStats) -> SjResult<()> {
        if self.is_rehashing(sj, pid)? {
            return Ok(());
        }
        let (cap0, used0) = {
            let k = sj.kernel_mut();
            (
                k.load_u64(pid, self.h(H_CAP0))?,
                k.load_u64(pid, self.h(H_USED0))?,
            )
        };
        if used0 < cap0 {
            return Ok(());
        }
        let new_cap = cap0 * 2;
        let table1 = self.heap.calloc(sj, pid, new_cap * 8)?;
        let k = sj.kernel_mut();
        k.store_u64(pid, self.h(H_T1), table1.raw())?;
        k.store_u64(pid, self.h(H_CAP1), new_cap)?;
        k.store_u64(pid, self.h(H_USED1), 0)?;
        k.store_u64(pid, self.h(H_REHASH), 0)?;
        stats.resizes += 1;
        Ok(())
    }

    /// Migrates one bucket of a pending rehash (Redis's incremental
    /// `dictRehash(d, 1)`), finishing the rehash when the last bucket
    /// moves.
    fn rehash_step(&self, sj: &mut SpaceJmp, pid: Pid, stats: &mut DictStats) -> SjResult<()> {
        let idx = sj.kernel_mut().load_u64(pid, self.h(H_REHASH))?;
        if idx == NOT_REHASHING {
            return Ok(());
        }
        let (table0, cap0, table1, cap1) = {
            let k = sj.kernel_mut();
            (
                k.load_u64(pid, self.h(H_T0))?,
                k.load_u64(pid, self.h(H_CAP0))?,
                k.load_u64(pid, self.h(H_T1))?,
                k.load_u64(pid, self.h(H_CAP1))?,
            )
        };
        // Move every entry in bucket `idx` of table0 to table1.
        let bucket = VirtAddr::new(table0).add(idx * 8);
        let mut cur = sj.kernel_mut().load_u64(pid, bucket)?;
        let mut moved = 0u64;
        while cur != 0 {
            let e = VirtAddr::new(cur);
            let k = sj.kernel_mut();
            let next = k.load_u64(pid, e.add(E_NEXT))?;
            let hash = k.load_u64(pid, e.add(E_HASH))?;
            let dst_bucket = VirtAddr::new(table1).add((hash & (cap1 - 1)) * 8);
            let dst_head = k.load_u64(pid, dst_bucket)?;
            k.store_u64(pid, e.add(E_NEXT), dst_head)?;
            k.store_u64(pid, dst_bucket, e.raw())?;
            cur = next;
            moved += 1;
        }
        let k = sj.kernel_mut();
        k.store_u64(pid, bucket, 0)?;
        if moved > 0 {
            let u0 = k.load_u64(pid, self.h(H_USED0))?;
            let u1 = k.load_u64(pid, self.h(H_USED1))?;
            k.store_u64(pid, self.h(H_USED0), u0 - moved)?;
            k.store_u64(pid, self.h(H_USED1), u1 + moved)?;
            stats.rehash_migrations += 1;
        }
        if idx + 1 >= cap0 {
            // Rehash complete: table1 becomes table0.
            let t1 = k.load_u64(pid, self.h(H_T1))?;
            let c1 = k.load_u64(pid, self.h(H_CAP1))?;
            let u1 = k.load_u64(pid, self.h(H_USED1))?;
            k.store_u64(pid, self.h(H_T0), t1)?;
            k.store_u64(pid, self.h(H_CAP0), c1)?;
            k.store_u64(pid, self.h(H_USED0), u1)?;
            k.store_u64(pid, self.h(H_T1), 0)?;
            k.store_u64(pid, self.h(H_CAP1), 0)?;
            k.store_u64(pid, self.h(H_USED1), 0)?;
            k.store_u64(pid, self.h(H_REHASH), NOT_REHASHING)?;
            self.heap.free(sj, pid, VirtAddr::new(table0))?;
        } else {
            k.store_u64(pid, self.h(H_REHASH), idx + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::{Creds, Kernel, Mode};
    use spacejmp_core::AttachMode;

    fn setup() -> (SpaceJmp, Pid, SegDict) {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
        let pid = sj.kernel_mut().spawn("kv", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let vid = sj.vas_create(pid, "kv", Mode(0o660)).unwrap();
        let sid = sj
            .seg_alloc(
                pid,
                "kv-seg",
                VirtAddr::new(0x1000_0000_0000),
                4 << 20,
                Mode(0o660),
            )
            .unwrap();
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
        let vh = sj.vas_attach(pid, vid).unwrap();
        sj.vas_switch(pid, vh).unwrap();
        let heap = VasHeap::format(&mut sj, pid, sid).unwrap();
        let dict = SegDict::create(&mut sj, pid, heap).unwrap();
        (sj, pid, dict)
    }

    #[test]
    fn get_set_del() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        assert_eq!(dict.get(&mut sj, pid, b"missing").unwrap(), None);
        dict.set(&mut sj, pid, b"k1", b"v1", true, &mut stats)
            .unwrap();
        assert_eq!(dict.get(&mut sj, pid, b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(dict.len(&mut sj, pid).unwrap(), 1);
        assert!(dict.del(&mut sj, pid, b"k1", true, &mut stats).unwrap());
        assert!(!dict.del(&mut sj, pid, b"k1", true, &mut stats).unwrap());
        assert!(dict.is_empty(&mut sj, pid).unwrap());
    }

    #[test]
    fn replace_updates_value() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        dict.set(&mut sj, pid, b"k", b"old", true, &mut stats)
            .unwrap();
        dict.set(&mut sj, pid, b"k", b"newer-value", true, &mut stats)
            .unwrap();
        assert_eq!(
            dict.get(&mut sj, pid, b"k").unwrap(),
            Some(b"newer-value".to_vec())
        );
        assert_eq!(dict.len(&mut sj, pid).unwrap(), 1);
    }

    #[test]
    fn grows_past_initial_capacity_with_incremental_rehash() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        for i in 0..200u32 {
            let key = format!("key-{i}");
            let val = format!("val-{i}");
            dict.set(
                &mut sj,
                pid,
                key.as_bytes(),
                val.as_bytes(),
                true,
                &mut stats,
            )
            .unwrap();
        }
        assert_eq!(dict.len(&mut sj, pid).unwrap(), 200);
        assert!(stats.resizes >= 1, "must have resized at least once");
        assert!(stats.rehash_migrations > 0, "migration is incremental");
        for i in 0..200u32 {
            let key = format!("key-{i}");
            assert_eq!(
                dict.get(&mut sj, pid, key.as_bytes()).unwrap(),
                Some(format!("val-{i}").into_bytes()),
                "{key}"
            );
        }
    }

    #[test]
    fn rehash_deferred_without_permission() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        // Insert many entries with allow_rehash = false: table must not
        // resize (readers may be traversing).
        for i in 0..100u32 {
            dict.set(
                &mut sj,
                pid,
                format!("k{i}").as_bytes(),
                b"v",
                false,
                &mut stats,
            )
            .unwrap();
        }
        assert_eq!(stats.resizes, 0);
        assert!(!dict.is_rehashing(&mut sj, pid).unwrap());
        // All entries remain reachable despite load factor > 1.
        for i in 0..100u32 {
            assert!(dict
                .get(&mut sj, pid, format!("k{i}").as_bytes())
                .unwrap()
                .is_some());
        }
        // One write with the exclusive lock picks up the resize.
        dict.set(&mut sj, pid, b"trigger", b"v", true, &mut stats)
            .unwrap();
        assert_eq!(stats.resizes, 1);
    }

    #[test]
    fn lookups_work_mid_rehash() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        for i in 0..40u32 {
            dict.set(
                &mut sj,
                pid,
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
                true,
                &mut stats,
            )
            .unwrap();
        }
        // If a rehash is in flight, both tables must serve lookups.
        for i in 0..40u32 {
            assert_eq!(
                dict.get(&mut sj, pid, format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn persists_across_processes() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        dict.set(&mut sj, pid, b"shared", b"state", true, &mut stats)
            .unwrap();
        // A second process attaches the same VAS and opens the dict.
        let p2 = sj.kernel_mut().spawn("kv2", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(p2).unwrap();
        sj.vas_switch_home(pid).unwrap(); // release the exclusive lock
        let vid = sj.vas_find("kv").unwrap();
        let vh2 = sj.vas_attach(p2, vid).unwrap();
        sj.vas_switch(p2, vh2).unwrap();
        let sid = sj.seg_find("kv-seg").unwrap();
        let heap2 = VasHeap::open(&mut sj, p2, sid).unwrap();
        let dict2 = SegDict::open(&mut sj, p2, heap2).unwrap();
        assert_eq!(
            dict2.get(&mut sj, p2, b"shared").unwrap(),
            Some(b"state".to_vec())
        );
    }

    #[test]
    fn binary_keys_and_empty_values() {
        let (mut sj, pid, dict) = setup();
        let mut stats = DictStats::default();
        let key = vec![0u8, 255, 128, 7];
        dict.set(&mut sj, pid, &key, b"", true, &mut stats).unwrap();
        assert_eq!(dict.get(&mut sj, pid, &key).unwrap(), Some(Vec::new()));
    }
}
