//! The overload benchmark engine: open-loop traffic against the sharded
//! RedisJMP store, with admission control, deadlines, and retries.
//!
//! The Figure 10 engine ([`crate::bench`]) is a *closed* loop: each
//! client waits for its reply, so offered load can never exceed service
//! capacity and the system cannot collapse. Capacity planning for a
//! production deployment needs the opposite experiment — an **open
//! loop** ([`sjmp_sim::OpenLoop`]) where arrivals keep coming at the
//! offered rate no matter how the store is doing. Without overload
//! control, every arrival past saturation joins a queue; queues grow
//! without bound, latency diverges, and *goodput falls* because cores
//! burn cycles on requests whose clients already gave up.
//!
//! The engine here replays measured per-op costs
//! ([`crate::bench::measure_costs_on`]) in a deterministic DES, exactly
//! like `run_jmp`, but adds the production serving discipline:
//!
//! * **Sharding** — `S` store segments with independent FIFO segment
//!   locks; requests route by consistent hash ([`crate::shard::ShardRouter`]).
//! * **Admission** — an arrival finding its shard's queue at
//!   `queue_cap` is **shed** immediately ([`crate::shard::RejectReason::Shed`]):
//!   rejecting is cheap, queueing is not. Shed clients retry with the
//!   PR 1 exponential backoff plus deterministic jitter, up to
//!   `retry.max_retries` attempts.
//! * **Deadlines** — a request that reaches the head of the line after
//!   its deadline is dropped *at dispatch* without burning a core
//!   ([`crate::shard::RejectReason::DeadlineExceeded`]); a completion past its
//!   deadline counts as wasted work, not goodput.
//! * **Degraded mode** — from `degrade_at` on, `degraded_shards`
//!   shards flip read-only and refuse SETs with
//!   [`crate::shard::RejectReason::ShardUnavailable`], replaying in the DES the
//!   [`sjmp_os::PressureLevel`] signal the live
//!   [`crate::shard::ShardedKv`] path reads from the kernel.
//!
//! Everything is seeded: two runs with one config are bit-identical,
//! which CI enforces by running the sweep twice and byte-comparing.

use sjmp_mem::cost::{CostModel, MachineId, MachineProfile};
use sjmp_sim::{Arrival, Cores, LockMode, OpenLoop, Sim, SimRng, SimRwLock};
use sjmp_trace::{
    assemble_requests, slowest_completed, Event, EventKind, Histogram, Phase, RequestSpan, Tracer,
};
use spacejmp_core::{RetryPolicy, SjResult};

use crate::bench::{measure_costs_on, OpCosts, READER_BOUNCE, WAITER_BOUNCE};
use crate::shard::ShardRouter;

/// Keyspace size for routing (matches the Figure 10 preload).
const KEYSPACE: usize = 256;

/// Configuration of one open-loop overload run.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Machine profile whose cores and cost model the DES replays.
    pub machine: MachineId,
    /// Store shards (independent segments + locks), 1..=8.
    pub shards: usize,
    /// Client population the arrivals multiplex over (tens of
    /// thousands: ids, not simulated processes).
    pub clients: usize,
    /// Total arrivals to generate.
    pub requests: usize,
    /// SET percentage (0 = pure GET).
    pub set_pct: u8,
    /// The arrival process (offered load lives in its mean gap).
    pub arrival: Arrival,
    /// Per-shard admission bound: arrivals finding this many waiters
    /// queued on the shard lock are shed.
    pub queue_cap: usize,
    /// Relative deadline in cycles from arrival; admitted work
    /// completing later is waste, not goodput.
    pub deadline: u64,
    /// Client retry-after-shed schedule (PR 1 backoff).
    pub retry: RetryPolicy,
    /// Cycle time at which memory pressure hits (None = never).
    pub degrade_at: Option<u64>,
    /// Shards that flip read-only at `degrade_at`.
    pub degraded_shards: usize,
    /// Enable TLB tagging for the cost measurement.
    pub tagging: bool,
    /// RNG seed (op mix, routing, jitter).
    pub seed: u64,
    /// Extra cycles per queued waiter on contended-lock handoff.
    pub waiter_bounce: u64,
    /// Extra cycles per concurrent reader on shared acquisition.
    pub reader_bounce: u64,
    /// Tracer for the cost-measurement kernels (the DES replay itself
    /// never touches a kernel). When enabled, the DES also mirrors its
    /// `Req*` lifecycle instants here for Chrome export.
    pub tracer: Tracer,
    /// Record per-request causal spans (`Req*` events) and reassemble
    /// tail exemplars. Pure observation: simulated cycles are
    /// bit-identical with this on or off.
    pub trace_requests: bool,
    /// How many slowest-completion span trees to keep as tail
    /// exemplars (only with `trace_requests`).
    pub exemplars: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            machine: MachineId::M1,
            shards: 4,
            clients: 20_000,
            requests: 20_000,
            set_pct: 10,
            arrival: Arrival::Poisson { mean_gap: 2_000.0 },
            // Deliberately tight: handoff cost grows with queue depth
            // (waiter_bounce), so a deep queue slows the lock itself.
            // Shedding at 8 keeps the service rate near its peak.
            queue_cap: 8,
            deadline: 2_000_000,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff_cycles: 4096,
                max_backoff_shift: 4,
            },
            degrade_at: None,
            degraded_shards: 0,
            tagging: false,
            seed: 7,
            waiter_bounce: WAITER_BOUNCE,
            reader_bounce: READER_BOUNCE,
            tracer: Tracer::disabled(),
            trace_requests: false,
            exemplars: 3,
        }
    }
}

/// Outcome counters and latency tail of one overload run.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Arrivals generated (offered requests, before retries).
    pub offered: u64,
    /// Requests that passed admission and took the shard lock path.
    pub admitted: u64,
    /// Requests completed within their deadline (the goodput numerator).
    pub completed: u64,
    /// Requests finally shed (admission queue full, retries exhausted).
    pub shed: u64,
    /// Retry attempts scheduled after sheds.
    pub retries: u64,
    /// Requests dropped at dispatch or completed past deadline.
    pub deadline_rejects: u64,
    /// SETs refused by degraded (read-only) shards.
    pub degraded_rejects: u64,
    /// Simulated wall time of the whole run.
    pub secs: f64,
    /// Offered arrival rate over the arrival window.
    pub offered_rps: f64,
    /// Within-deadline completions per second (the headline number).
    pub goodput_rps: f64,
    /// Fraction of offered requests finally shed.
    pub shed_rate: f64,
    /// Latency percentiles of within-deadline completions, in cycles
    /// (conservative upper bounds; see [`Histogram::percentile`]).
    pub p50: u64,
    /// 99th percentile latency (cycles).
    pub p99: u64,
    /// 99.9th percentile latency (cycles).
    pub p999: u64,
    /// Exact bracket around the true p50 (see
    /// [`Histogram::percentile_bounds`]).
    pub p50_bounds: (u64, u64),
    /// Exact bracket around the true p99.
    pub p99_bounds: (u64, u64),
    /// Exact bracket around the true p99.9.
    pub p999_bounds: (u64, u64),
    /// Peak admission-queue depth over all shards.
    pub max_queue: usize,
    /// Latency histogram of within-deadline completions.
    pub latency: Histogram,
    /// Terminal sheds per client id (fairness accounting: with uniform
    /// arrivals no client should absorb a disproportionate share).
    pub client_sheds: Vec<u64>,
    /// The heaviest single client's terminal-shed count.
    pub max_client_sheds: u64,
    /// Span trees of the slowest within-deadline completions, with
    /// latency decomposed into backoff/queue/switch/service. Empty
    /// unless [`OverloadConfig::trace_requests`] is set.
    pub exemplars: Vec<RequestSpan>,
}

impl OverloadResult {
    /// Conservation check: every offered request is accounted exactly
    /// once as completed, shed, deadline-rejected, or degraded-rejected.
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.deadline_rejects + self.degraded_rejects == self.offered
    }
}

/// Estimated saturation throughput (requests/sec) of the sharded store
/// on `machine`: the smaller of the core-pool bound (all cores busy on
/// the average request mix) and the write-serialization bound (each
/// shard's lock admits one SET at a time). The overload sweeps place
/// their offered-load points at fractions of this estimate.
pub fn saturation_rps(costs: &OpCosts, machine: MachineId, set_pct: u8, shards: usize) -> f64 {
    let profile = MachineProfile::of(machine);
    let secs_per_cycle = profile.cycles_to_secs(1);
    let set_frac = f64::from(set_pct) / 100.0;
    let avg = costs.jmp_set as f64 * set_frac + costs.jmp_get as f64 * (1.0 - set_frac);
    let core_bound = f64::from(profile.total_cores()) / (avg * secs_per_cycle);
    if set_frac == 0.0 {
        return core_bound;
    }
    // SETs serialize per shard: each shard completes one exclusive
    // holder every jmp_set cycles, and SETs are set_frac of traffic.
    let write_bound = shards as f64 / (costs.jmp_set as f64 * secs_per_cycle) / set_frac;
    core_bound.min(write_bound)
}

/// Offered load (requests/sec) → mean interarrival gap in cycles.
pub fn rps_to_mean_gap(machine: MachineId, rps: f64) -> f64 {
    let secs_per_cycle = MachineProfile::of(machine).cycles_to_secs(1);
    assert!(rps > 0.0, "offered load must be positive");
    1.0 / (rps * secs_per_cycle)
}

/// Per-request state tracked across admission, retries, and dispatch.
struct Req {
    shard: usize,
    is_set: bool,
    arrived: u64,
    attempts: u32,
    /// Issuing client id (for fairness accounting of sheds).
    client: usize,
    /// Core the visit was dispatched on (for `ReqComplete` attribution).
    core: u32,
}

/// Shed-reason codes carried in `ReqShed.arg1` (decoded by
/// [`sjmp_trace::ReqOutcome::from_shed_code`]).
const SHED_QUEUE: u64 = 0;
const SHED_DEADLINE: u64 = 1;
const SHED_UNAVAILABLE: u64 = 2;

/// Emits one request-lifecycle instant into the local span buffer (when
/// request tracing is on) and mirrors it to the run's tracer (when
/// enabled) so Chrome exports carry the same stream. Pure observation:
/// touches no clock, core pool, or RNG.
fn emit(
    buf: &mut Option<Vec<Event>>,
    tracer: &Tracer,
    ts: u64,
    core: u32,
    kind: EventKind,
    arg0: u64,
    arg1: u64,
) {
    if let Some(v) = buf {
        v.push(Event {
            ts,
            core,
            phase: Phase::Instant,
            kind,
            arg0,
            arg1,
        });
    }
    tracer.instant(ts, core, kind, arg0, arg1);
}

/// Runs one open-loop overload experiment.
///
/// # Errors
///
/// Propagates cost-measurement failures.
///
/// # Panics
///
/// Panics on a zero-shard or zero-request config.
pub fn run_overload(cfg: &OverloadConfig) -> SjResult<OverloadResult> {
    assert!(cfg.shards > 0, "need at least one shard");
    assert!(cfg.requests > 0, "need at least one request");
    let costs = measure_costs_on(cfg.machine, cfg.tagging, cfg.tracer.clone())?;
    let profile = MachineProfile::of(cfg.machine);
    let cost = CostModel::default();

    let router = ShardRouter::new(cfg.shards);
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x6f76_6c64); // "ovld"
    let mut arrivals = OpenLoop::new(cfg.arrival, cfg.clients, cfg.requests, cfg.seed);

    // The DES actors: one pooled core set, one FIFO lock per shard.
    let mut pool = Cores::new(profile.total_cores() as usize);
    let mut locks: Vec<SimRwLock> = (0..cfg.shards).map(|_| SimRwLock::new()).collect();

    #[derive(Clone, Copy)]
    enum Ev {
        /// A new request arrives from the open loop.
        Arrive(usize),
        /// A shed request retries after backoff.
        Retry(usize),
        /// The shard lock is held; dispatch on a core.
        Begin(usize),
        /// The visit is done; release the lock and account.
        Release(usize),
    }

    let mut reqs: Vec<Req> = Vec::with_capacity(cfg.requests);
    let mut res = OverloadResult {
        offered: 0,
        admitted: 0,
        completed: 0,
        shed: 0,
        retries: 0,
        deadline_rejects: 0,
        degraded_rejects: 0,
        secs: 0.0,
        offered_rps: 0.0,
        goodput_rps: 0.0,
        shed_rate: 0.0,
        p50: 0,
        p99: 0,
        p999: 0,
        p50_bounds: (0, 0),
        p99_bounds: (0, 0),
        p999_bounds: (0, 0),
        max_queue: 0,
        latency: Histogram::default(),
        client_sheds: vec![0; cfg.clients],
        max_client_sheds: 0,
        exemplars: Vec::new(),
    };
    let mut last_arrival = 0u64;
    let mut end_time = 0u64;
    // Span buffer for request tracing; the sim never reads it back, so
    // the simulated schedule is bit-identical whether it exists or not.
    let mut spans: Option<Vec<Event>> = cfg.trace_requests.then(Vec::new);

    let reader_bounce = cfg.reader_bounce;
    let visit_cycles = move |is_set: bool, readers_now: usize| -> u64 {
        let base = if is_set { costs.jmp_set } else { costs.jmp_get };
        let bounce = if is_set {
            0
        } else {
            readers_now.saturating_sub(1) as u64 * reader_bounce
        };
        base + bounce
    };
    let degraded = |shard: usize, t: u64| -> bool {
        cfg.degrade_at
            .is_some_and(|at| t >= at && shard < cfg.degraded_shards)
    };

    let mut sim: Sim<Ev> = Sim::new();
    // Pull-based arrival chain: exactly one pending arrival in the
    // queue at any moment; each Arrive schedules its successor. The
    // pending arrival's client id rides alongside in `next_client`
    // (the minted ReqId always equals the request index, checked in
    // the Arrive handler).
    let mut next_client = 0usize;
    if let Some((id, t, client)) = arrivals.next_arrival_tagged() {
        debug_assert_eq!(id, 0);
        last_arrival = t;
        next_client = client;
        sim.schedule(t, Ev::Arrive(0));
    }

    sim.run(|sim, t, ev| {
        // Admission shared by fresh arrivals and retries. Returns the
        // lock-mode used, or None when the request went no further.
        let admit = |sim: &mut Sim<Ev>,
                     locks: &mut [SimRwLock],
                     rng: &mut SimRng,
                     res: &mut OverloadResult,
                     reqs: &mut [Req],
                     spans: &mut Option<Vec<Event>>,
                     r: usize,
                     t: u64| {
            let req = &mut reqs[r];
            if req.is_set && degraded(req.shard, t) {
                res.degraded_rejects += 1;
                emit(
                    spans,
                    &cfg.tracer,
                    t,
                    0,
                    EventKind::ReqShed,
                    r as u64,
                    SHED_UNAVAILABLE,
                );
                return;
            }
            let lock = &mut locks[req.shard];
            if lock.queue_len() >= cfg.queue_cap {
                // Shed. Cheap: no core, no lock traffic. Retry with
                // exponential backoff + jitter while the budget lasts.
                if req.attempts < cfg.retry.max_retries {
                    let shift = req.attempts.min(cfg.retry.max_backoff_shift);
                    let backoff = cfg.retry.base_backoff_cycles << shift;
                    let jitter = rng.gen_range(0..backoff.max(1));
                    req.attempts += 1;
                    res.retries += 1;
                    emit(
                        spans,
                        &cfg.tracer,
                        t,
                        0,
                        EventKind::ReqRetry,
                        r as u64,
                        u64::from(req.attempts),
                    );
                    sim.schedule(t + backoff + jitter, Ev::Retry(r));
                } else {
                    res.shed += 1;
                    res.client_sheds[req.client] += 1;
                    emit(
                        spans,
                        &cfg.tracer,
                        t,
                        0,
                        EventKind::ReqShed,
                        r as u64,
                        SHED_QUEUE,
                    );
                }
                return;
            }
            res.admitted += 1;
            emit(
                spans,
                &cfg.tracer,
                t,
                0,
                EventKind::ReqAdmit,
                r as u64,
                req.shard as u64,
            );
            let mode = if req.is_set {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            if lock.acquire(r, mode) {
                sim.schedule(t, Ev::Begin(r));
            }
            // else: parked in FIFO order; woken by a Release.
        };

        match ev {
            Ev::Arrive(r) => {
                // Materialize this request and pre-schedule the next
                // arrival so the open loop never stalls.
                debug_assert_eq!(r, reqs.len());
                let client = next_client;
                let is_set = rng.gen_range(0..100) < u64::from(cfg.set_pct);
                let key = format!("key:{:06}", rng.index(KEYSPACE));
                reqs.push(Req {
                    shard: router.route(key.as_bytes()),
                    is_set,
                    arrived: t,
                    attempts: 0,
                    client,
                    core: 0,
                });
                res.offered += 1;
                emit(
                    &mut spans,
                    &cfg.tracer,
                    t,
                    0,
                    EventKind::ReqArrive,
                    r as u64,
                    client as u64,
                );
                if let Some((id, ta, c)) = arrivals.next_arrival_tagged() {
                    debug_assert_eq!(id as usize, reqs.len());
                    last_arrival = ta;
                    next_client = c;
                    sim.schedule(ta, Ev::Arrive(reqs.len()));
                }
                admit(
                    sim, &mut locks, &mut rng, &mut res, &mut reqs, &mut spans, r, t,
                );
            }
            Ev::Retry(r) => {
                admit(
                    sim, &mut locks, &mut rng, &mut res, &mut reqs, &mut spans, r, t,
                );
            }
            Ev::Begin(r) => {
                let req = &reqs[r];
                if t > req.arrived + cfg.deadline {
                    // Head-of-line drop: the client gave up while we
                    // queued; release without burning a core.
                    res.deadline_rejects += 1;
                    emit(
                        &mut spans,
                        &cfg.tracer,
                        t,
                        0,
                        EventKind::ReqShed,
                        r as u64,
                        SHED_DEADLINE,
                    );
                    let mode = if req.is_set {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let shard = req.shard;
                    let woken = locks[shard].release(mode);
                    let handoff =
                        cost.lock_handoff + locks[shard].queue_len() as u64 * cfg.waiter_bounce;
                    for w in woken {
                        sim.schedule(t + handoff, Ev::Begin(w));
                    }
                    end_time = end_time.max(t);
                    return;
                }
                let dur = visit_cycles(req.is_set, locks[req.shard].readers());
                let (core, start, e) = pool.reserve_on(t, dur);
                reqs[r].core = core as u32;
                // The dispatch instant carries the VAS-switch share of
                // the visit in arg1, letting span reassembly split the
                // service phase from switch overhead.
                emit(
                    &mut spans,
                    &cfg.tracer,
                    start,
                    core as u32,
                    EventKind::ReqDispatch,
                    r as u64,
                    costs.jmp_switch.min(dur),
                );
                sim.schedule(e, Ev::Release(r));
            }
            Ev::Release(r) => {
                let req = &reqs[r];
                let shard = req.shard;
                let mode = if req.is_set {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                let woken = locks[shard].release(mode);
                let handoff =
                    cost.lock_handoff + locks[shard].queue_len() as u64 * cfg.waiter_bounce;
                for w in woken {
                    sim.schedule(t + handoff, Ev::Begin(w));
                }
                let latency = t - req.arrived;
                let within = latency <= cfg.deadline;
                if within {
                    res.completed += 1;
                    res.latency.record(latency);
                } else {
                    // Completed, but past deadline: wasted work.
                    res.deadline_rejects += 1;
                }
                emit(
                    &mut spans,
                    &cfg.tracer,
                    t,
                    req.core,
                    EventKind::ReqComplete,
                    r as u64,
                    u64::from(within),
                );
                end_time = end_time.max(t);
            }
        }
    });

    end_time = end_time.max(last_arrival);
    res.secs = profile.cycles_to_secs(end_time.max(1));
    let arrival_secs = profile.cycles_to_secs(last_arrival.max(1));
    res.offered_rps = res.offered as f64 / arrival_secs;
    res.goodput_rps = res.completed as f64 / res.secs;
    res.shed_rate = if res.offered == 0 {
        0.0
    } else {
        res.shed as f64 / res.offered as f64
    };
    res.p50 = res.latency.percentile(50.0);
    res.p99 = res.latency.percentile(99.0);
    res.p999 = res.latency.percentile(99.9);
    res.p50_bounds = res.latency.percentile_bounds(50.0);
    res.p99_bounds = res.latency.percentile_bounds(99.0);
    res.p999_bounds = res.latency.percentile_bounds(99.9);
    res.max_queue = locks.iter().map(|l| l.max_queue).max().unwrap_or(0);
    res.max_client_sheds = res.client_sheds.iter().copied().max().unwrap_or(0);
    if let Some(events) = &spans {
        let assembled = assemble_requests(events);
        res.exemplars = slowest_completed(&assembled, cfg.exemplars)
            .into_iter()
            .cloned()
            .collect();
    }
    debug_assert!(res.accounted(), "request accounting leak: {res:?}");
    Ok(res)
}

/// Convenience: [`run_overload`] at a given offered load in
/// requests/sec, with the arrival shape taken from `cfg.arrival`
/// (its mean gap is replaced).
///
/// # Errors
///
/// As [`run_overload`].
pub fn run_overload_at(cfg: &OverloadConfig, rps: f64) -> SjResult<OverloadResult> {
    let mean_gap = rps_to_mean_gap(cfg.machine, rps);
    let arrival = match cfg.arrival {
        Arrival::Poisson { .. } => Arrival::Poisson { mean_gap },
        Arrival::Bursty {
            on_cycles,
            off_cycles,
            ..
        } => Arrival::Bursty {
            mean_gap,
            on_cycles,
            off_cycles,
        },
    };
    run_overload(&OverloadConfig {
        arrival,
        ..cfg.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::RejectReason;

    fn small(requests: usize) -> OverloadConfig {
        OverloadConfig {
            requests,
            clients: 1000,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn light_load_completes_nearly_everything() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let res = run_overload_at(&small(2000), 0.3 * sat).unwrap();
        assert!(res.accounted(), "{res:?}");
        assert!(
            res.completed as f64 >= 0.95 * res.offered as f64,
            "light load should complete: {res:?}"
        );
        assert_eq!(res.shed, 0, "no shedding at 30% of saturation: {res:?}");
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let at_sat = run_overload_at(&small(4000), sat).unwrap();
        let over = run_overload_at(&small(4000), 2.0 * sat).unwrap();
        assert!(over.shed > 0, "2x saturation must shed: {over:?}");
        assert!(
            over.goodput_rps >= 0.9 * at_sat.goodput_rps,
            "goodput must stay flat past saturation: {} vs {}",
            over.goodput_rps,
            at_sat.goodput_rps
        );
    }

    #[test]
    fn admitted_latency_is_bounded_by_deadline() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let res = run_overload_at(&small(4000), 1.5 * sat).unwrap();
        assert!(res.completed > 0);
        assert!(
            res.p999 <= res.latency.max.max(1) && res.latency.max <= 2_000_000,
            "completions past deadline must not count: {res:?}"
        );
    }

    #[test]
    fn degraded_shards_reject_sets_but_serve_gets() {
        let cfg = OverloadConfig {
            set_pct: 50,
            degrade_at: Some(0),
            degraded_shards: 4,
            ..small(2000)
        };
        let res = run_overload(&cfg).unwrap();
        assert!(res.degraded_rejects > 0, "{res:?}");
        assert!(res.completed > 0, "GETs still serve: {res:?}");
    }

    #[test]
    fn bit_identical_reruns() {
        let cfg = OverloadConfig {
            arrival: Arrival::Bursty {
                mean_gap: 1500.0,
                on_cycles: 300_000,
                off_cycles: 900_000,
            },
            ..small(3000)
        };
        let a = run_overload(&cfg).unwrap();
        let b = run_overload(&cfg).unwrap();
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.p999, b.p999);
    }

    #[test]
    fn reject_reasons_have_stable_names() {
        assert_eq!(RejectReason::Shed.name(), "shed");
        assert_eq!(RejectReason::DeadlineExceeded.name(), "deadline_exceeded");
        assert_eq!(RejectReason::ShardUnavailable.name(), "shard_unavailable");
    }

    #[test]
    fn request_tracing_does_not_perturb_the_schedule() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let off = run_overload_at(&small(3000), 1.8 * sat).unwrap();
        let on = run_overload_at(
            &OverloadConfig {
                trace_requests: true,
                ..small(3000)
            },
            1.8 * sat,
        )
        .unwrap();
        assert_eq!(off.offered, on.offered);
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.shed, on.shed);
        assert_eq!(off.retries, on.retries);
        assert_eq!(off.deadline_rejects, on.deadline_rejects);
        assert_eq!(off.latency, on.latency);
        assert_eq!(off.p999, on.p999);
        assert!(off.exemplars.is_empty(), "no spans without tracing");
        assert!(!on.exemplars.is_empty(), "tracing captures tail exemplars");
    }

    #[test]
    fn exemplar_phases_partition_latency_exactly() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let res = run_overload_at(
            &OverloadConfig {
                trace_requests: true,
                exemplars: 5,
                ..small(3000)
            },
            2.0 * sat,
        )
        .unwrap();
        assert!(!res.exemplars.is_empty());
        // Exemplars are the slowest completions, slowest first.
        let mut last = u64::MAX;
        for ex in &res.exemplars {
            assert!(ex.latency() <= last);
            last = ex.latency();
            assert_eq!(
                ex.phases.total(),
                ex.latency(),
                "backoff+queue+switch+service must partition latency: {ex:?}"
            );
            assert!(ex.phases.switch > 0, "every visit pays the VAS switch");
            assert!(ex.phases.service > 0, "{ex:?}");
        }
        assert_eq!(res.exemplars[0].latency(), res.latency.max);
    }

    #[test]
    fn sheds_are_counted_per_client_and_fairly_spread() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let res = run_overload_at(&small(6000), 3.0 * sat).unwrap();
        assert!(res.shed > 0, "3x saturation must shed: {res:?}");
        assert_eq!(
            res.client_sheds.iter().sum::<u64>(),
            res.shed,
            "per-client tallies must sum to the total"
        );
        // Uniform arrivals over 1000 clients: no single client may
        // absorb a disproportionate share of the sheds.
        let mean = res.shed as f64 / res.client_sheds.len() as f64;
        assert!(
            (res.max_client_sheds as f64) <= 8.0 * mean + 4.0,
            "one client absorbed {} of {} sheds (mean {mean:.2})",
            res.max_client_sheds,
            res.shed
        );
    }

    #[test]
    fn percentile_bounds_bracket_the_point_estimates() {
        let costs = measure_costs_on(MachineId::M1, false, Tracer::disabled()).unwrap();
        let sat = saturation_rps(&costs, MachineId::M1, 10, 4);
        let res = run_overload_at(&small(2000), 0.8 * sat).unwrap();
        for (lo, hi) in [res.p50_bounds, res.p99_bounds, res.p999_bounds] {
            assert!(lo <= hi);
            assert!(hi <= res.latency.max);
        }
        assert_eq!(res.p99_bounds.1, res.p99, "upper bound is the estimate");
        assert_eq!(res.p999_bounds.1, res.p999);
    }
}
