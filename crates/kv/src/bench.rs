//! The Figure 10 benchmark engine.
//!
//! The paper drives Redis and RedisJMP with `redis-benchmark`: up to 100
//! concurrent closed-loop clients on the twelve-core machine M1. Real
//! threads would measure the host, not the modeled machine, so the
//! multi-client runs use a deterministic **discrete-event simulation**
//! whose per-request costs are *measured* from the real simulated code
//! paths first:
//!
//! 1. [`measure_costs`] runs actual GET/SET requests through
//!    [`crate::jmp::JmpClient`] (switches, segment locks, scratch-heap
//!    parsing, segment-resident dictionary) and through
//!    [`crate::server::RedisServer`], recording cycles per operation.
//! 2. The DES replays those costs for N clients over M1's core pool, a
//!    FIFO reader/writer segment lock with handoff and cache-line-bounce
//!    penalties, and the socket path's per-message kernel costs.

use sjmp_mem::cost::{CostModel, MachineId, MachineProfile};
use sjmp_mem::KernelFlavor;
use sjmp_os::{Creds, Kernel};
use sjmp_sim::SimRng;
use sjmp_sim::{ClosedLoop, Cores, LockMode, Sim, SimRwLock};
use sjmp_trace::Tracer;
use spacejmp_core::{SjResult, SpaceJmp};

use crate::jmp::JmpClient;
use crate::resp::Command;
use crate::server::RedisServer;

/// Per-operation cycle costs measured from live simulated runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCosts {
    /// Full RedisJMP GET visit (two switches, shared lock, parse, dict).
    pub jmp_get: u64,
    /// Full RedisJMP SET visit (exclusive lock path).
    pub jmp_set: u64,
    /// The VAS-switch round trip (switch in + switch home) of one
    /// visit, measured with no command work between the switches. This
    /// is the `switch` component request-span decomposition reports;
    /// the rest of `jmp_get`/`jmp_set` is shard service.
    pub jmp_switch: u64,
    /// Server-side GET handling (parse + dict + encode, no socket).
    pub server_get: u64,
    /// Server-side SET handling.
    pub server_set: u64,
}

/// Benchmark configuration (defaults follow the paper: machine M1,
/// 4-byte payloads).
#[derive(Debug, Clone)]
pub struct KvBenchConfig {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests per client in the closed loop.
    pub requests_per_client: usize,
    /// SET percentage (0 = pure GET, 100 = pure SET).
    pub set_pct: u8,
    /// Enable TLB tagging (the `RedisJMP (Tags)` series).
    pub tagging: bool,
    /// RNG seed for op mixing.
    pub seed: u64,
    /// Extra cycles per queued waiter on contended-lock handoff. The
    /// default models the paper's simple lock; the paper notes "a more
    /// scalable lock design than our current implementation would yield
    /// further improvements" — lower this to ablate that claim.
    pub waiter_bounce: u64,
    /// Extra cycles per concurrent reader on shared acquisition.
    pub reader_bounce: u64,
    /// Event tracer installed on the cost-measurement kernels (the DES
    /// replay itself never touches a kernel). Disabled by default.
    pub tracer: Tracer,
}

impl Default for KvBenchConfig {
    fn default() -> Self {
        KvBenchConfig {
            clients: 1,
            requests_per_client: 200,
            set_pct: 0,
            tagging: false,
            seed: 7,
            waiter_bounce: WAITER_BOUNCE,
            reader_bounce: READER_BOUNCE,
            tracer: Tracer::disabled(),
        }
    }
}

/// A throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Requests completed.
    pub requests: u64,
    /// Simulated cycles of the whole run (the DES end time).
    pub cycles: u64,
    /// Simulated wall time.
    pub secs: f64,
    /// Requests per second (the Figure 10 y-axis).
    pub rps: f64,
}

fn throughput(profile: &MachineProfile, requests: u64, cycles: u64) -> Throughput {
    let secs = profile.cycles_to_secs(cycles.max(1));
    Throughput {
        requests,
        cycles: cycles.max(1),
        secs,
        rps: requests as f64 / secs,
    }
}

/// Number of keys preloaded before measuring.
const PRELOAD_KEYS: usize = 256;
/// Payload bytes (the paper uses 4-byte payloads).
const PAYLOAD: usize = 4;

fn preload_key(i: usize) -> Vec<u8> {
    format!("key:{i:06}").into_bytes()
}

/// Measures per-op costs by running real operations through the
/// simulated stack.
///
/// # Errors
///
/// Propagates setup failures.
pub fn measure_costs(tagging: bool) -> SjResult<OpCosts> {
    measure_costs_traced(tagging, Tracer::disabled())
}

/// [`measure_costs`] with a tracer installed on both measurement kernels,
/// so the RedisJMP visit (switches, locks, dictionary walks) shows up in
/// the event stream.
///
/// # Errors
///
/// Propagates setup failures.
pub fn measure_costs_traced(tagging: bool, tracer: Tracer) -> SjResult<OpCosts> {
    measure_costs_on(MachineId::M1, tagging, tracer)
}

/// [`measure_costs_traced`] on an arbitrary machine profile: the same
/// live measurement, but the kernels charge the chosen machine's cost
/// model, so the overload sweeps can replay per-op costs for M1/M2/M3
/// instead of assuming the Figure 10 machine.
///
/// # Errors
///
/// Propagates setup failures.
pub fn measure_costs_on(machine: MachineId, tagging: bool, tracer: Tracer) -> SjResult<OpCosts> {
    // RedisJMP path.
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, machine));
    sj.set_tracer(tracer.clone());
    if tagging {
        sj.kernel_mut().set_tagging(true);
    }
    let pid = sj
        .kernel_mut()
        .spawn("bench-client", Creds::new(100, 100))?;
    sj.kernel_mut().activate(pid)?;
    let mut client = JmpClient::join_with_tags(&mut sj, pid, "measure", 0, tagging)?;
    let payload = vec![b'x'; PAYLOAD];
    for i in 0..PRELOAD_KEYS {
        client.set(&mut sj, &preload_key(i), &payload)?;
    }
    let clock = sj.kernel().clock().clone();
    let reps = 64u64;
    let t0 = clock.now();
    for i in 0..reps {
        client.get(&mut sj, &preload_key(i as usize % PRELOAD_KEYS))?;
    }
    let jmp_get = clock.since(t0) / reps;
    let t1 = clock.now();
    for i in 0..reps {
        client.set(&mut sj, &preload_key(i as usize % PRELOAD_KEYS), &payload)?;
    }
    let jmp_set = clock.since(t1) / reps;
    // Pure switch round trips (no command between the switches),
    // isolating the VAS-switch share of a visit. Measured last so the
    // get/set numbers above are unaffected by the extra traffic.
    let retry = spacejmp_core::RetryPolicy::default();
    let t_sw = clock.now();
    for _ in 0..reps {
        sj.vas_switch_retry(pid, client.read_handle(), &retry)?;
        sj.vas_switch_home(pid)?;
    }
    let jmp_switch = clock.since(t_sw) / reps;

    // Classic server path (no sockets; those are added analytically).
    let mut sj2 = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, machine));
    sj2.set_tracer(tracer);
    let mut server = RedisServer::launch(&mut sj2, 0)?;
    for i in 0..PRELOAD_KEYS {
        let cmd = Command::Set(preload_key(i), payload.clone()).encode();
        server.handle_request(&mut sj2, &cmd)?;
    }
    let clock2 = sj2.kernel().clock().clone();
    let get_wire: Vec<Vec<u8>> = (0..reps)
        .map(|i| Command::Get(preload_key(i as usize % PRELOAD_KEYS)).encode())
        .collect();
    let t2 = clock2.now();
    for w in &get_wire {
        server.handle_request(&mut sj2, w)?;
    }
    let server_get = clock2.since(t2) / reps;
    let set_wire: Vec<Vec<u8>> = (0..reps)
        .map(|i| Command::Set(preload_key(i as usize % PRELOAD_KEYS), payload.clone()).encode())
        .collect();
    let t3 = clock2.now();
    for w in &set_wire {
        server.handle_request(&mut sj2, w)?;
    }
    let server_set = clock2.since(t3) / reps;

    Ok(OpCosts {
        jmp_get,
        jmp_set,
        jmp_switch,
        server_get,
        server_set,
    })
}

/// Runs the classic socket-served design with `instances` independent
/// server processes (1 = `Redis`, 6 = `Redis 6x` in Figure 10a).
///
/// # Errors
///
/// Propagates measurement failures.
pub fn run_classic(cfg: &KvBenchConfig, instances: usize) -> SjResult<Throughput> {
    let costs = measure_costs_traced(false, cfg.tracer.clone())?;
    let profile = MachineProfile::of(MachineId::M1);
    let cost = CostModel::default();
    let cores = profile.total_cores() as usize;

    // Server-side time per request: socket read + handle + socket write +
    // event-loop overhead.
    let loop_overhead = 2000u64;
    let server_time = |is_set: bool| {
        2 * cost.socket_msg
            + loop_overhead
            + if is_set {
                costs.server_set
            } else {
                costs.server_get
            }
    };
    // Client-side time per request: prepare+write, then read+process.
    let client_pre = cost.socket_msg + 500;
    let client_post = cost.socket_msg + 500;
    let wire = 300u64; // queueing latency of the in-kernel socket buffer

    // Event-driven closed loop. All core reservations happen at the
    // current event time, keeping the pool's timeline consistent.
    #[derive(Clone, Copy)]
    enum Ev {
        /// Client prepares and sends a request.
        Ready(usize),
        /// Request reaches the server's socket.
        Arrive(usize),
        /// Response reaches the client.
        Respond(usize),
    }

    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut sim: Sim<Ev> = Sim::new();
    for c in 0..cfg.clients {
        sim.schedule(0, Ev::Ready(c));
    }
    let mut server_free = vec![0u64; instances];
    let mut client_cores = Cores::new(cores.saturating_sub(instances).max(1));
    let mut population = ClosedLoop::new(cfg.clients, cfg.requests_per_client);
    let mut is_set = vec![false; cfg.clients];

    sim.run(|sim, t, ev| match ev {
        Ev::Ready(c) => {
            is_set[c] = rng.gen_range(0..100) < u64::from(cfg.set_pct);
            let (_, pe) = client_cores.reserve(t, client_pre);
            sim.schedule(pe + wire, Ev::Arrive(c));
        }
        Ev::Arrive(c) => {
            let s = c % instances;
            let start = server_free[s].max(t);
            let finish = start + server_time(is_set[c]);
            server_free[s] = finish;
            sim.schedule(finish + wire, Ev::Respond(c));
        }
        Ev::Respond(c) => {
            let (_, re) = client_cores.reserve(t, client_post);
            if population.complete(c, re) {
                sim.schedule(re, Ev::Ready(c));
            }
        }
    });
    Ok(throughput(&profile, population.done(), population.end()))
}

/// Extra cycles a shared-lock acquisition pays per already-active reader
/// (cache-line bouncing on the reader count).
pub(crate) const READER_BOUNCE: u64 = 250;
/// Extra cycles per queued waiter when a contended lock is handed off.
pub(crate) const WAITER_BOUNCE: u64 = 150;

/// Runs the RedisJMP design: N closed-loop clients switching into the
/// store VAS, serialized by the segment lock for writes.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn run_jmp(cfg: &KvBenchConfig) -> SjResult<Throughput> {
    let costs = measure_costs_traced(cfg.tagging, cfg.tracer.clone())?;
    let profile = MachineProfile::of(MachineId::M1);
    let cost = CostModel::default();
    let cores = profile.total_cores() as usize;

    #[derive(Clone, Copy)]
    enum Ev {
        /// Client issues a request (tries to take the segment lock).
        Start(usize),
        /// Lock granted; begin the visit (reserve a core).
        Begin(usize),
        /// Visit complete; release the lock.
        Release(usize),
    }

    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut sim: Sim<Ev> = Sim::new();
    for c in 0..cfg.clients {
        sim.schedule(0, Ev::Start(c));
    }
    let mut lock = SimRwLock::new();
    let mut pool = Cores::new(cores);
    let mut mode = vec![LockMode::Shared; cfg.clients];
    let mut population = ClosedLoop::new(cfg.clients, cfg.requests_per_client);

    // Cycles of the visit once the lock is granted.
    let reader_bounce = cfg.reader_bounce;
    let visit_cycles = move |is_set: bool, readers_now: usize| -> u64 {
        let base = if is_set { costs.jmp_set } else { costs.jmp_get };
        let bounce = if is_set {
            0
        } else {
            readers_now.saturating_sub(1) as u64 * reader_bounce
        };
        base + bounce
    };

    sim.run(|sim, t, ev| {
        match ev {
            Ev::Start(c) => {
                let is_set = rng.gen_range(0..100) < u64::from(cfg.set_pct);
                mode[c] = if is_set {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                if lock.acquire(c, mode[c]) {
                    sim.schedule(t, Ev::Begin(c));
                }
                // else: parked in the lock queue; woken on release.
            }
            Ev::Begin(c) => {
                let is_set = mode[c] == LockMode::Exclusive;
                let dur = visit_cycles(is_set, lock.readers());
                let (_, e) = pool.reserve(t, dur);
                sim.schedule(e, Ev::Release(c));
            }
            Ev::Release(c) => {
                let woken = lock.release(mode[c]);
                let handoff = cost.lock_handoff + lock.queue_len() as u64 * cfg.waiter_bounce;
                for w in woken {
                    sim.schedule(t + handoff, Ev::Begin(w));
                }
                if population.complete(c, t) {
                    sim.schedule(t, Ev::Start(c));
                }
            }
        }
    });
    Ok(throughput(&profile, population.done(), population.end()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(clients: usize, set_pct: u8) -> KvBenchConfig {
        KvBenchConfig {
            clients,
            requests_per_client: 60,
            set_pct,
            ..KvBenchConfig::default()
        }
    }

    #[test]
    fn costs_are_sane() {
        let c = measure_costs(false).unwrap();
        assert!(
            c.jmp_get > 2 * 1127,
            "visit includes two untagged switches: {c:?}"
        );
        assert!(c.jmp_set >= c.jmp_get / 2, "{c:?}");
        assert!(c.server_get > 0 && c.server_set > 0);
        assert!(
            c.jmp_switch >= 2 * 1127 && c.jmp_switch < c.jmp_get,
            "switch round trip is a proper part of a visit: {c:?}"
        );
        // Tagged switches are cheaper end to end.
        let tagged = measure_costs(true).unwrap();
        assert!(tagged.jmp_get < c.jmp_get, "tagged {tagged:?} vs {c:?}");
    }

    #[test]
    fn single_client_jmp_beats_classic_by_severalfold() {
        // Figure 10a/b: "SpaceJMP outperforms a single server instance of
        // Redis by a factor of 4x for GET and SET requests."
        let jmp = run_jmp(&cfg(1, 0)).unwrap();
        let classic = run_classic(&cfg(1, 0), 1).unwrap();
        let ratio = jmp.rps / classic.rps;
        assert!((2.0..12.0).contains(&ratio), "GET ratio {ratio}");
        let jmp_s = run_jmp(&cfg(1, 100)).unwrap();
        let classic_s = run_classic(&cfg(1, 100), 1).unwrap();
        let ratio_s = jmp_s.rps / classic_s.rps;
        assert!((2.0..12.0).contains(&ratio_s), "SET ratio {ratio_s}");
    }

    #[test]
    fn classic_get_saturates_at_the_server() {
        let one = run_classic(&cfg(1, 0), 1).unwrap();
        let many = run_classic(&cfg(40, 0), 1).unwrap();
        assert!(many.rps > one.rps, "more clients fill the pipe");
        let more = run_classic(&cfg(80, 0), 1).unwrap();
        let growth = more.rps / many.rps;
        assert!(
            growth < 1.3,
            "single-threaded server is the bottleneck: {growth}"
        );
    }

    #[test]
    fn six_instances_scale_the_classic_design() {
        let one = run_classic(&cfg(48, 0), 1).unwrap();
        let six = run_classic(&cfg(48, 0), 6).unwrap();
        assert!(six.rps > 3.0 * one.rps, "6x {} vs 1x {}", six.rps, one.rps);
    }

    #[test]
    fn jmp_get_scales_with_clients_then_saturates() {
        let r1 = run_jmp(&cfg(1, 0)).unwrap();
        let r8 = run_jmp(&cfg(8, 0)).unwrap();
        let r40 = run_jmp(&cfg(40, 0)).unwrap();
        assert!(
            r8.rps > 2.0 * r1.rps,
            "parallel readers scale: {} vs {}",
            r8.rps,
            r1.rps
        );
        assert!(r40.rps < r8.rps * 4.0, "saturation past the core count");
    }

    #[test]
    fn jmp_set_serializes_and_degrades_under_contention() {
        let r1 = run_jmp(&cfg(1, 100)).unwrap();
        let r4 = run_jmp(&cfg(4, 100)).unwrap();
        let r60 = run_jmp(&cfg(60, 100)).unwrap();
        assert!(
            r4.rps < 2.0 * r1.rps,
            "writers do not scale: {} vs {}",
            r4.rps,
            r1.rps
        );
        assert!(
            r60.rps < r4.rps,
            "handoff overhead degrades throughput: {} vs {}",
            r60.rps,
            r4.rps
        );
    }

    #[test]
    fn mixed_throughput_decreases_with_set_share() {
        let pure_get = run_jmp(&cfg(24, 0)).unwrap();
        let mixed = run_jmp(&cfg(24, 30)).unwrap();
        let pure_set = run_jmp(&cfg(24, 100)).unwrap();
        assert!(
            pure_get.rps > mixed.rps,
            "{} vs {}",
            pure_get.rps,
            mixed.rps
        );
        assert!(
            mixed.rps > pure_set.rps,
            "{} vs {}",
            mixed.rps,
            pure_set.rps
        );
    }

    #[test]
    fn deterministic() {
        let a = run_jmp(&cfg(8, 20)).unwrap();
        let b = run_jmp(&cfg(8, 20)).unwrap();
        assert_eq!(a.requests, b.requests);
        assert!((a.rps - b.rps).abs() < 1e-9);
    }
}
