//! # sjmp-kv — Redis and RedisJMP (Section 5.3)
//!
//! A Redis-style key-value store built twice over the same storage
//! engine, reproducing the paper's comparison:
//!
//! * **Classic Redis** ([`server::RedisServer`]): a single-threaded
//!   server process owns the data; clients send RESP commands over
//!   simulated UNIX-domain sockets and pay per-message kernel costs.
//! * **RedisJMP** ([`jmp::JmpClient`]): no server process at all. The
//!   store lives in a lockable segment inside a shared VAS; clients
//!   *switch into* the address space and run the command path themselves.
//!   GETs enter through a read-only mapping (shared lock, parallel
//!   readers); SETs through a writable mapping (exclusive lock); each
//!   client brings a private scratch heap for command parsing, and the
//!   hash table resizes only under the exclusive lock.
//!
//! The storage engine ([`dict::SegDict`]) is a chaining hash table with
//! Redis-style incremental rehash whose buckets, entries, keys, and
//! values all live in segment memory behind the simulated MMU — pointers
//! are plain virtual addresses valid in any attaching process.
//!
//! [`mod@bench`] regenerates Figure 10 (GET/SET throughput vs. client count
//! and the mixed-ratio sweep) with a deterministic discrete-event
//! simulation fed by per-op costs measured from these code paths.
//!
//! Beyond the paper's closed loops, [`mod@shard`] scales RedisJMP out —
//! the store consistent-hash-sharded over multiple segments/VASes with
//! admission control and pressure-driven read-only degradation — and
//! [`mod@overload`] drives the sharded store with *open-loop* traffic
//! (Poisson and bursty arrivals) to measure goodput, shed rate, and
//! tail latency across the saturation point.

pub mod bench;
pub mod dict;
pub mod jmp;
pub mod overload;
pub mod resp;
pub mod server;
pub mod shard;

pub use bench::{
    measure_costs, measure_costs_on, run_classic, run_jmp, KvBenchConfig, OpCosts, Throughput,
};
pub use dict::{DictStats, SegDict};
pub use jmp::{JmpClient, JoinOpts};
pub use overload::{
    rps_to_mean_gap, run_overload, run_overload_at, saturation_rps, OverloadConfig, OverloadResult,
};
pub use resp::{Command, Reply, RespError};
pub use server::RedisServer;
pub use shard::{RejectReason, ShardError, ShardHealth, ShardRouter, ShardedKv, MAX_SHARDS};
