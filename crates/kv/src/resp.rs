//! A RESP-style wire protocol for the key-value store.
//!
//! Baseline Redis clients send commands as serialized byte strings over a
//! socket; the server parses, executes, and serializes a reply. RedisJMP
//! clients execute the same command-handling code directly, so both paths
//! share this module (parsing costs stay comparable, as in the paper).
//!
//! The encoding follows the Redis Serialization Protocol: arrays of bulk
//! strings for commands (`*2\r\n$3\r\nGET\r\n$1\r\nk\r\n`), and simple
//! strings / errors / integers / bulk strings for replies.

/// A client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `GET key` — fetch a value.
    Get(Vec<u8>),
    /// `SET key value` — store a value.
    Set(Vec<u8>, Vec<u8>),
    /// `DEL key` — remove a key.
    Del(Vec<u8>),
    /// `INCR key` — increment an integer value.
    Incr(Vec<u8>),
    /// `APPEND key value` — append to a value.
    Append(Vec<u8>, Vec<u8>),
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`.
    Ok,
    /// Bulk string (`None` = nil).
    Bulk(Option<Vec<u8>>),
    /// Integer reply.
    Int(i64),
    /// Error reply.
    Error(String),
}

/// Protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespError {
    /// Input ended prematurely or is malformed.
    Malformed(&'static str),
    /// Unknown command name.
    UnknownCommand,
    /// Wrong number of arguments.
    Arity,
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::Malformed(what) => write!(f, "malformed protocol data: {what}"),
            RespError::UnknownCommand => write!(f, "unknown command"),
            RespError::Arity => write!(f, "wrong number of arguments"),
        }
    }
}

impl std::error::Error for RespError {}

fn bulk(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(format!("${}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

impl Command {
    /// Serializes the command to RESP bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        let parts: Vec<&[u8]> = match self {
            Command::Get(k) => vec![b"GET", k],
            Command::Set(k, v) => vec![b"SET", k, v],
            Command::Del(k) => vec![b"DEL", k],
            Command::Incr(k) => vec![b"INCR", k],
            Command::Append(k, v) => vec![b"APPEND", k, v],
        };
        out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
        for p in parts {
            bulk(&mut out, p);
        }
        out
    }

    /// Parses a command from RESP bytes.
    ///
    /// # Errors
    ///
    /// [`RespError`] for malformed input, unknown verbs, or bad arity.
    pub fn parse(input: &[u8]) -> Result<Command, RespError> {
        let mut parts = parse_array(input)?;
        if parts.is_empty() {
            return Err(RespError::Malformed("empty command array"));
        }
        let verb = parts.remove(0).to_ascii_uppercase();
        match (verb.as_slice(), parts.len()) {
            (b"GET", 1) => Ok(Command::Get(parts.remove(0))),
            (b"SET", 2) => {
                let k = parts.remove(0);
                Ok(Command::Set(k, parts.remove(0)))
            }
            (b"DEL", 1) => Ok(Command::Del(parts.remove(0))),
            (b"INCR", 1) => Ok(Command::Incr(parts.remove(0))),
            (b"APPEND", 2) => {
                let k = parts.remove(0);
                Ok(Command::Append(k, parts.remove(0)))
            }
            (b"GET" | b"SET" | b"DEL" | b"INCR" | b"APPEND", _) => Err(RespError::Arity),
            _ => Err(RespError::UnknownCommand),
        }
    }
}

impl Reply {
    /// Serializes the reply to RESP bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Reply::Ok => b"+OK\r\n".to_vec(),
            Reply::Bulk(Some(data)) => {
                let mut out = Vec::with_capacity(data.len() + 16);
                bulk(&mut out, data);
                out
            }
            Reply::Bulk(None) => b"$-1\r\n".to_vec(),
            Reply::Int(i) => format!(":{i}\r\n").into_bytes(),
            Reply::Error(e) => format!("-ERR {e}\r\n").into_bytes(),
        }
    }

    /// Parses a reply from RESP bytes.
    ///
    /// # Errors
    ///
    /// [`RespError::Malformed`] for anything unrecognized.
    pub fn parse(input: &[u8]) -> Result<Reply, RespError> {
        let (line, rest) = split_line(input)?;
        match line.first() {
            Some(b'+') => Ok(Reply::Ok),
            Some(b'-') => {
                let msg = String::from_utf8_lossy(&line[1..]).into_owned();
                Ok(Reply::Error(
                    msg.strip_prefix("ERR ").unwrap_or(&msg).to_string(),
                ))
            }
            Some(b':') => {
                let s = std::str::from_utf8(&line[1..])
                    .map_err(|_| RespError::Malformed("non-utf8 integer"))?;
                Ok(Reply::Int(
                    s.parse().map_err(|_| RespError::Malformed("bad integer"))?,
                ))
            }
            Some(b'$') => {
                let n: i64 = std::str::from_utf8(&line[1..])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or(RespError::Malformed("bad bulk length"))?;
                if n < 0 {
                    return Ok(Reply::Bulk(None));
                }
                let n = n as usize;
                if rest.len() < n + 2 {
                    return Err(RespError::Malformed("short bulk body"));
                }
                Ok(Reply::Bulk(Some(rest[..n].to_vec())))
            }
            _ => Err(RespError::Malformed("unknown reply type")),
        }
    }
}

fn split_line(input: &[u8]) -> Result<(&[u8], &[u8]), RespError> {
    let pos = input
        .windows(2)
        .position(|w| w == b"\r\n")
        .ok_or(RespError::Malformed("missing CRLF"))?;
    Ok((&input[..pos], &input[pos + 2..]))
}

fn parse_array(input: &[u8]) -> Result<Vec<Vec<u8>>, RespError> {
    let (head, mut rest) = split_line(input)?;
    if head.first() != Some(&b'*') {
        return Err(RespError::Malformed("expected array"));
    }
    let count: usize = std::str::from_utf8(&head[1..])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(RespError::Malformed("bad array length"))?;
    if count > 64 {
        return Err(RespError::Malformed("array too long"));
    }
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        let (head, body) = split_line(rest)?;
        if head.first() != Some(&b'$') {
            return Err(RespError::Malformed("expected bulk string"));
        }
        let len: usize = std::str::from_utf8(&head[1..])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(RespError::Malformed("bad bulk length"))?;
        if body.len() < len + 2 || &body[len..len + 2] != b"\r\n" {
            return Err(RespError::Malformed("short bulk body"));
        }
        parts.push(body[..len].to_vec());
        rest = &body[len + 2..];
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        let cmds = [
            Command::Get(b"key".to_vec()),
            Command::Set(b"key".to_vec(), b"value".to_vec()),
            Command::Del(b"k".to_vec()),
            Command::Incr(b"counter".to_vec()),
            Command::Append(b"log".to_vec(), b"entry".to_vec()),
        ];
        for cmd in cmds {
            let bytes = cmd.encode();
            assert_eq!(Command::parse(&bytes).unwrap(), cmd, "{bytes:?}");
        }
    }

    #[test]
    fn reply_round_trips() {
        let replies = [
            Reply::Ok,
            Reply::Bulk(Some(b"data".to_vec())),
            Reply::Bulk(None),
            Reply::Int(-42),
            Reply::Error("boom".into()),
        ];
        for r in replies {
            let bytes = r.encode();
            assert_eq!(Reply::parse(&bytes).unwrap(), r, "{bytes:?}");
        }
    }

    #[test]
    fn wire_format_matches_resp() {
        assert_eq!(
            Command::Get(b"k".to_vec()).encode(),
            b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n".to_vec()
        );
        assert_eq!(Reply::Ok.encode(), b"+OK\r\n".to_vec());
        assert_eq!(Reply::Bulk(None).encode(), b"$-1\r\n".to_vec());
    }

    #[test]
    fn case_insensitive_verbs() {
        let mut bytes = Command::Get(b"k".to_vec()).encode();
        let pos = bytes.windows(3).position(|w| w == b"GET").unwrap();
        bytes[pos..pos + 3].copy_from_slice(b"get");
        assert_eq!(Command::parse(&bytes).unwrap(), Command::Get(b"k".to_vec()));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Command::parse(b"").is_err());
        assert!(Command::parse(b"*1\r\n$3\r\nFOO\r\n").is_err());
        assert!(Command::parse(b"*1\r\n$3\r\nGET\r\n").is_err(), "arity");
        assert!(Command::parse(b"*2\r\n$3\r\nGET\r\n$9\r\nshort\r\n").is_err());
        assert!(
            Command::parse(b"+OK\r\n").is_err(),
            "reply is not a command"
        );
        assert!(Reply::parse(b"?\r\n").is_err());
        assert!(Reply::parse(b"$5\r\nab\r\n").is_err());
    }

    #[test]
    fn binary_safe_payloads() {
        let cmd = Command::Set(vec![0, 1, 2, b'\r', b'\n'], vec![255, 0, 128]);
        assert_eq!(Command::parse(&cmd.encode()).unwrap(), cmd);
    }
}
