//! RedisJMP: the store as a shared address space, clients switch in.
//!
//! "RedisJMP avoids a server process entirely, retaining only the server
//! data, and clients access the server data by switching into its address
//! space. RedisJMP is therefore implemented as a client-side library, and
//! the server data is initialized lazily by its first client."
//!
//! Each client creates **two VASes** over the store segment — one mapping
//! it read-only (GETs take the segment lock shared) and one read-write
//! (SETs take it exclusive) — plus a small private **scratch heap**
//! attached locally to both, because the Redis command path allocates
//! heap objects even for read-only requests. Resizes and rehashing happen
//! only under the exclusive lock.

use sjmp_mem::VirtAddr;
use sjmp_os::kernel::GLOBAL_LO;
use sjmp_os::{Mode, Pid};
use spacejmp_core::{AttachMode, RetryPolicy, SjError, SjResult, SpaceJmp, VasHandle, VasHeap};

use crate::dict::{DictStats, SegDict};
use crate::resp::{Command, Reply};
use crate::server::{COMMAND_OVERHEAD, STORE_SEGMENT_BYTES};

/// Scratch heap size per client.
const SCRATCH_BYTES: u64 = 64 << 10;
/// PML4 slot index where the (unsharded) store segment lives.
const STORE_SLOT: u64 = 0;
/// First PML4 slot used for client scratch segments.
const SCRATCH_SLOT_BASE: u64 = 8;

/// Options for [`JmpClient::join_cfg`], the fully general join.
///
/// The defaults reproduce [`JmpClient::join`]: untagged, pinned store
/// frames, store slot 0. A sharded deployment
/// ([`crate::shard::ShardedKv`]) gives each shard its own `store_slot`
/// so every shard's segment occupies a distinct 512 GiB PML4 slot of
/// the global half and they can all be attached side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinOpts {
    /// Request TLB tags for both VASes (`RedisJMP (Tags)`).
    pub tagged: bool,
    /// Back a fresh store with a swappable, demand-paged segment.
    pub swappable_store: bool,
    /// PML4 slot (512 GiB stride above `GLOBAL_LO`) for the store.
    pub store_slot: u64,
}

impl Default for JoinOpts {
    fn default() -> Self {
        JoinOpts {
            tagged: false,
            swappable_store: false,
            store_slot: STORE_SLOT,
        }
    }
}

/// A RedisJMP client handle.
///
/// # Examples
///
/// ```
/// use sjmp_mem::{KernelFlavor, MachineId};
/// use sjmp_os::{Creds, Kernel};
/// use sjmp_kv::JmpClient;
/// use spacejmp_core::SpaceJmp;
///
/// # fn main() -> Result<(), spacejmp_core::SjError> {
/// let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
/// let pid = sj.kernel_mut().spawn("client", Creds::new(100, 100))?;
/// sj.kernel_mut().activate(pid)?;
///
/// // The first client initializes the store; later ones share it.
/// let mut client = JmpClient::join(&mut sj, pid, "cache", 0)?;
/// client.set(&mut sj, b"answer", b"42")?;
/// assert_eq!(client.get(&mut sj, b"answer")?, Some(b"42".to_vec()));
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct JmpClient {
    pid: Pid,
    vh_read: VasHandle,
    vh_write: VasHandle,
    scratch: VasHeap,
    dict: SegDict,
    stats: DictStats,
    /// Backoff schedule for contended switches; every command retries
    /// with this before surfacing [`SjError::WouldBlock`].
    retry: RetryPolicy,
}

impl JmpClient {
    /// Joins (or lazily initializes) the store named `store`, creating
    /// this client's read and write VASes and its scratch heap.
    /// `client_idx` must be unique per client (it selects the scratch
    /// segment's address slot).
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    pub fn join(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
    ) -> SjResult<JmpClient> {
        Self::join_with_tags(sj, pid, store, client_idx, false)
    }

    /// Like [`Self::join`], optionally requesting TLB tags for both VASes
    /// (the `RedisJMP (Tags)` configuration of Figure 10a). Requires
    /// [`sjmp_os::Kernel::set_tagging`] to be enabled.
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    pub fn join_with_tags(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
        tagged: bool,
    ) -> SjResult<JmpClient> {
        Self::join_opts(sj, pid, store, client_idx, tagged, false)
    }

    /// Like [`Self::join_with_tags`], optionally backing a **fresh**
    /// store with a swappable, demand-paged segment
    /// ([`SpaceJmp::seg_alloc_swappable`]) instead of pinned frames: the
    /// constrained-memory configuration. The store then survives DRAM
    /// oversubscription — cold store pages are evicted to swap and
    /// faulted back on access — at swap cycle cost. `swappable_store` is
    /// ignored when the store already exists; clients share whatever
    /// backing the first client chose.
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    pub fn join_opts(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
        tagged: bool,
        swappable_store: bool,
    ) -> SjResult<JmpClient> {
        Self::join_cfg(
            sj,
            pid,
            store,
            client_idx,
            JoinOpts {
                tagged,
                swappable_store,
                ..JoinOpts::default()
            },
        )
    }

    /// The fully general join: every knob in one [`JoinOpts`]. All other
    /// join variants delegate here.
    ///
    /// # Errors
    ///
    /// Propagates SpaceJMP failures.
    pub fn join_cfg(
        sj: &mut SpaceJmp,
        pid: Pid,
        store: &str,
        client_idx: usize,
        opts: JoinOpts,
    ) -> SjResult<JmpClient> {
        let JoinOpts {
            tagged,
            swappable_store,
            store_slot,
        } = opts;
        let store_base = VirtAddr::new(GLOBAL_LO.raw() + store_slot * (1 << 39));
        let (sid, fresh) = match sj.seg_find(&format!("jmp-store-{store}")) {
            Ok(sid) => (sid, false),
            Err(SjError::NotFound) => {
                let name = format!("jmp-store-{store}");
                let sid = if swappable_store {
                    sj.seg_alloc_swappable(
                        pid,
                        &name,
                        store_base,
                        STORE_SEGMENT_BYTES,
                        Mode(0o666),
                    )?
                } else {
                    sj.seg_alloc(pid, &name, store_base, STORE_SEGMENT_BYTES, Mode(0o666))?
                };
                (sid, true)
            }
            Err(e) => return Err(e),
        };

        let vid_r = sj.vas_create(pid, &format!("jmp-{store}-r-{}", pid.0), Mode(0o600))?;
        sj.seg_attach(pid, vid_r, sid, AttachMode::ReadOnly)?;
        let vid_w = sj.vas_create(pid, &format!("jmp-{store}-w-{}", pid.0), Mode(0o600))?;
        sj.seg_attach(pid, vid_w, sid, AttachMode::ReadWrite)?;
        if tagged {
            sj.vas_ctl(pid, spacejmp_core::VasCtl::RequestTag, vid_r)?;
            sj.vas_ctl(pid, spacejmp_core::VasCtl::RequestTag, vid_w)?;
        }
        let vh_read = sj.vas_attach(pid, vid_r)?;
        let vh_write = sj.vas_attach(pid, vid_w)?;

        // Per-client scratch segment in its own 512 GiB slot, attached
        // process-locally to both VASes.
        let scratch_base =
            VirtAddr::new(GLOBAL_LO.raw() + (SCRATCH_SLOT_BASE + client_idx as u64) * (1 << 39));
        let scratch_sid = sj.seg_alloc(
            pid,
            &format!("jmp-scratch-{store}-{}", pid.0),
            scratch_base,
            SCRATCH_BYTES,
            Mode(0o600),
        )?;
        sj.seg_attach_local(pid, vh_read, scratch_sid, AttachMode::ReadWrite)?;
        sj.seg_attach_local(pid, vh_write, scratch_sid, AttachMode::ReadWrite)?;

        // Initialize or open the store under the write mapping, and
        // format the scratch heap.
        let retry = RetryPolicy::default();
        sj.vas_switch_retry(pid, vh_write, &retry)?;
        let scratch = VasHeap::format(sj, pid, scratch_sid)?;
        let dict = if fresh {
            let heap = VasHeap::format(sj, pid, sid)?;
            SegDict::create(sj, pid, heap)?
        } else {
            let heap = VasHeap::open(sj, pid, sid)?;
            SegDict::open(sj, pid, heap)?
        };
        sj.vas_switch_home(pid)?;
        Ok(JmpClient {
            pid,
            vh_read,
            vh_write,
            scratch,
            dict,
            stats: DictStats::default(),
            retry,
        })
    }

    /// The client's process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Handle of the read-only VAS (shared lock on switch-in).
    pub fn read_handle(&self) -> VasHandle {
        self.vh_read
    }

    /// Handle of the writable VAS (exclusive lock on switch-in).
    pub fn write_handle(&self) -> VasHandle {
        self.vh_write
    }

    /// Simulates the Redis command-parsing path: the encoded command is
    /// staged in a scratch-heap object (Redis allocates heap objects even
    /// for GETs), parsed, and the object freed.
    fn parse_via_scratch(&self, sj: &mut SpaceJmp, cmd: &Command) -> SjResult<Command> {
        let encoded = cmd.encode();
        let buf = self.scratch.malloc(sj, self.pid, encoded.len() as u64)?;
        sj.kernel_mut().store_bytes(self.pid, buf, &encoded)?;
        let mut copy = vec![0u8; encoded.len()];
        sj.kernel_mut().load_bytes(self.pid, buf, &mut copy)?;
        self.scratch.free(sj, self.pid, buf)?;
        Command::parse(&copy).map_err(|_| SjError::InvalidArgument("bad command"))
    }

    /// Executes a GET by switching into the read-only VAS.
    ///
    /// # Errors
    ///
    /// [`SjError::WouldBlock`] when a writer holds the store's lock.
    pub fn get(&mut self, sj: &mut SpaceJmp, key: &[u8]) -> SjResult<Option<Vec<u8>>> {
        sj.vas_switch_retry(self.pid, self.vh_read, &self.retry)?;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let result = (|| {
            let cmd = self.parse_via_scratch(sj, &Command::Get(key.to_vec()))?;
            let Command::Get(k) = cmd else {
                unreachable!("encoded a GET")
            };
            self.dict.get(sj, self.pid, &k)
        })();
        sj.vas_switch_home(self.pid)?;
        result
    }

    /// Executes a SET by switching into the writable VAS (exclusive).
    ///
    /// # Errors
    ///
    /// [`SjError::WouldBlock`] when readers or a writer hold the lock.
    pub fn set(&mut self, sj: &mut SpaceJmp, key: &[u8], val: &[u8]) -> SjResult<()> {
        sj.vas_switch_retry(self.pid, self.vh_write, &self.retry)?;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let result = (|| {
            let cmd = self.parse_via_scratch(sj, &Command::Set(key.to_vec(), val.to_vec()))?;
            let Command::Set(k, v) = cmd else {
                unreachable!("encoded a SET")
            };
            // Exclusive lock held: resizing and rehashing permitted.
            self.dict.set(sj, self.pid, &k, &v, true, &mut self.stats)
        })();
        sj.vas_switch_home(self.pid)?;
        result
    }

    /// Executes an INCR under the exclusive mapping (parse integer,
    /// add one, store back), mirroring the server's semantics.
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] for non-integer values; lock errors
    /// as in [`Self::set`].
    pub fn incr(&mut self, sj: &mut SpaceJmp, key: &[u8]) -> SjResult<i64> {
        sj.vas_switch_retry(self.pid, self.vh_write, &self.retry)?;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let result = (|| {
            let current = match self.dict.get(sj, self.pid, key)? {
                None => 0,
                Some(bytes) => std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|s| s.parse::<i64>().ok())
                    .ok_or(SjError::InvalidArgument("value is not an integer"))?,
            };
            let next = current + 1;
            self.dict.set(
                sj,
                self.pid,
                key,
                next.to_string().as_bytes(),
                true,
                &mut self.stats,
            )?;
            Ok(next)
        })();
        sj.vas_switch_home(self.pid)?;
        result
    }

    /// Executes an APPEND under the exclusive mapping; returns the new
    /// value length.
    ///
    /// # Errors
    ///
    /// Lock errors as in [`Self::set`].
    pub fn append(&mut self, sj: &mut SpaceJmp, key: &[u8], val: &[u8]) -> SjResult<usize> {
        sj.vas_switch_retry(self.pid, self.vh_write, &self.retry)?;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let result = (|| {
            let mut cur = self.dict.get(sj, self.pid, key)?.unwrap_or_default();
            cur.extend_from_slice(val);
            let len = cur.len();
            self.dict
                .set(sj, self.pid, key, &cur, true, &mut self.stats)?;
            Ok(len)
        })();
        sj.vas_switch_home(self.pid)?;
        result
    }

    /// Executes a DEL under the exclusive mapping.
    ///
    /// # Errors
    ///
    /// As [`Self::set`].
    pub fn del(&mut self, sj: &mut SpaceJmp, key: &[u8]) -> SjResult<bool> {
        sj.vas_switch_retry(self.pid, self.vh_write, &self.retry)?;
        sj.kernel().clock().advance(COMMAND_OVERHEAD);
        let result = self.dict.del(sj, self.pid, key, true, &mut self.stats);
        sj.vas_switch_home(self.pid)?;
        result
    }

    /// Wire-level execute: parses `raw`, runs it in the appropriate VAS,
    /// and returns the encoded reply (used by benchmarks to keep the code
    /// path identical to the socket server).
    ///
    /// # Errors
    ///
    /// As [`Self::get`]/[`Self::set`].
    pub fn handle_request(&mut self, sj: &mut SpaceJmp, raw: &[u8]) -> SjResult<Vec<u8>> {
        let reply = match Command::parse(raw) {
            Ok(Command::Get(k)) => Reply::Bulk(self.get(sj, &k)?),
            Ok(Command::Set(k, v)) => {
                self.set(sj, &k, &v)?;
                Reply::Ok
            }
            Ok(Command::Del(k)) => Reply::Int(self.del(sj, &k)? as i64),
            Ok(Command::Incr(k)) => match self.incr(sj, &k) {
                Ok(n) => Reply::Int(n),
                Err(SjError::InvalidArgument(e)) => Reply::Error(e.to_string()),
                Err(e) => return Err(e),
            },
            Ok(Command::Append(k, v)) => Reply::Int(self.append(sj, &k, &v)? as i64),
            Err(e) => Reply::Error(e.to_string()),
        };
        Ok(reply.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::{Creds, Kernel};

    fn setup(n: usize) -> (SpaceJmp, Vec<JmpClient>) {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let clients = (0..n)
            .map(|i| {
                let pid = sj
                    .kernel_mut()
                    .spawn(&format!("client{i}"), Creds::new(100, 100))
                    .unwrap();
                sj.kernel_mut().activate(pid).unwrap();
                JmpClient::join(&mut sj, pid, "bench", i).unwrap()
            })
            .collect();
        (sj, clients)
    }

    #[test]
    fn first_client_initializes_store() {
        let (mut sj, mut clients) = setup(1);
        let c = &mut clients[0];
        assert_eq!(c.get(&mut sj, b"missing").unwrap(), None);
        c.set(&mut sj, b"k", b"v").unwrap();
        assert_eq!(c.get(&mut sj, b"k").unwrap(), Some(b"v".to_vec()));
        assert!(c.del(&mut sj, b"k").unwrap());
        assert_eq!(c.get(&mut sj, b"k").unwrap(), None);
    }

    #[test]
    fn clients_share_the_store() {
        let (mut sj, mut clients) = setup(3);
        clients[0].set(&mut sj, b"shared", b"data").unwrap();
        for c in &mut clients[1..] {
            assert_eq!(c.get(&mut sj, b"shared").unwrap(), Some(b"data".to_vec()));
        }
        // A later write by another client is seen by the first.
        clients[2].set(&mut sj, b"shared", b"updated").unwrap();
        assert_eq!(
            clients[0].get(&mut sj, b"shared").unwrap(),
            Some(b"updated".to_vec())
        );
    }

    #[test]
    fn concurrent_readers_allowed_writer_excluded() {
        let (mut sj, mut clients) = setup(3);
        clients[0].set(&mut sj, b"k", b"v").unwrap();
        // Put client 1 "inside" the read VAS (switched in, not yet home).
        let (p1, vh1) = (clients[1].pid(), clients[1].read_handle());
        sj.vas_switch(p1, vh1).unwrap();
        // Client 2 can still read (shared)...
        assert_eq!(clients[2].get(&mut sj, b"k").unwrap(), Some(b"v".to_vec()));
        // ...but cannot write (reader holds the lock).
        assert_eq!(
            clients[2].set(&mut sj, b"k", b"x"),
            Err(SjError::WouldBlock)
        );
        sj.vas_switch_home(p1).unwrap();
        clients[2].set(&mut sj, b"k", b"x").unwrap();
    }

    #[test]
    fn wire_level_requests() {
        let (mut sj, mut clients) = setup(1);
        let set = Command::Set(b"a".to_vec(), b"1".to_vec()).encode();
        assert_eq!(
            clients[0].handle_request(&mut sj, &set).unwrap(),
            b"+OK\r\n"
        );
        let get = Command::Get(b"a".to_vec()).encode();
        let resp = clients[0].handle_request(&mut sj, &get).unwrap();
        assert_eq!(
            Reply::parse(&resp).unwrap(),
            Reply::Bulk(Some(b"1".to_vec()))
        );
    }

    #[test]
    fn many_writes_with_rehash_under_exclusive_lock() {
        let (mut sj, mut clients) = setup(2);
        for i in 0..150u32 {
            let c = (i % 2) as usize;
            clients[c]
                .set(
                    &mut sj,
                    format!("k{i}").as_bytes(),
                    format!("v{i}").as_bytes(),
                )
                .unwrap();
        }
        for i in 0..150u32 {
            assert_eq!(
                clients[(i % 2) as usize]
                    .get(&mut sj, format!("k{i}").as_bytes())
                    .unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::{Creds, Kernel};

    #[test]
    fn incr_and_append() {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let pid = sj.kernel_mut().spawn("c", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let mut c = JmpClient::join(&mut sj, pid, "ia", 0).unwrap();
        assert_eq!(c.incr(&mut sj, b"n").unwrap(), 1);
        assert_eq!(c.incr(&mut sj, b"n").unwrap(), 2);
        c.set(&mut sj, b"s", b"ab").unwrap();
        assert_eq!(c.append(&mut sj, b"s", b"cd").unwrap(), 4);
        assert_eq!(c.get(&mut sj, b"s").unwrap(), Some(b"abcd".to_vec()));
        // INCR on a non-integer is an error and releases the lock.
        assert!(matches!(
            c.incr(&mut sj, b"s"),
            Err(SjError::InvalidArgument(_))
        ));
        c.set(&mut sj, b"s", b"1").unwrap(); // lock not stuck
    }

    #[test]
    fn pressured_store_survives_2x_oversubscription() {
        use sjmp_mem::cost::{CostModel, MachineProfile};
        use sjmp_mem::PAGE_SIZE;
        // Roughly: two clients' pinned footprint (spawn segments,
        // scratch heaps, page tables for five vmspaces each — about 290
        // frames) plus *half* the ~170 store pages the writes below
        // touch: the store working set oversubscribes what DRAM has
        // left for it by about 2x and must swap.
        let mut profile = MachineProfile::of(MachineId::M1);
        profile.mem_bytes = 380 * PAGE_SIZE;
        let mut sj = SpaceJmp::new(Kernel::with_profile(
            KernelFlavor::DragonFly,
            profile,
            CostModel::default(),
        ));
        sj.kernel_mut().set_low_watermark(Some(8));
        let mut clients = Vec::new();
        for i in 0..2 {
            let pid = sj
                .kernel_mut()
                .spawn(&format!("pc{i}"), Creds::new(100, 100))
                .unwrap();
            sj.kernel_mut().activate(pid).unwrap();
            clients.push(JmpClient::join_opts(&mut sj, pid, "pressed", i, false, true).unwrap());
        }
        // ~2 KiB values x 300 keys: the live heap inside the store
        // segment far exceeds the frames left after the pinned footprint.
        let val = vec![0xabu8; 2048];
        for i in 0..300u32 {
            let c = (i % 2) as usize;
            clients[c]
                .set(&mut sj, format!("key{i}").as_bytes(), &val)
                .unwrap();
        }
        for i in (0..300u32).step_by(17) {
            let got = clients[(i % 2) as usize]
                .get(&mut sj, format!("key{i}").as_bytes())
                .unwrap();
            assert_eq!(got, Some(val.clone()), "key{i} corrupted by swap");
        }
        let stats = sj.kernel_mut().sys_phys_stats();
        assert!(stats.evictions > 0, "store never swapped: not constrained");
        assert!(stats.major_faults > 0, "no page ever came back from swap");
        let problems = sj.check_invariants();
        assert!(problems.is_empty(), "audit failed: {problems:?}");
    }

    #[test]
    fn wire_level_incr_append() {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
        let pid = sj.kernel_mut().spawn("c", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let mut c = JmpClient::join(&mut sj, pid, "wire", 0).unwrap();
        let incr = Command::Incr(b"x".to_vec()).encode();
        assert_eq!(c.handle_request(&mut sj, &incr).unwrap(), b":1\r\n");
        let app = Command::Append(b"x".to_vec(), b"0".to_vec()).encode();
        assert_eq!(c.handle_request(&mut sj, &app).unwrap(), b":2\r\n");
        assert_eq!(c.get(&mut sj, b"x").unwrap(), Some(b"10".to_vec()));
    }
}
