//! Property-based round-trip tests over the serialization substrates:
//! the BGZF-style compressor and the SAM/BAM codecs must reproduce
//! arbitrary inputs exactly.

use proptest::prelude::*;
use sjmp_genome::record::{flags, CigarOp, Record};
use sjmp_genome::sam::RefDict;
use sjmp_genome::{bgzf, bam, sam};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bgzf_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..50_000)) {
        let c = bgzf::compress(&data);
        prop_assert_eq!(bgzf::decompress(&c).unwrap(), data);
    }

    #[test]
    fn bgzf_round_trips_repetitive_bytes(
        unit in prop::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..5000,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = bgzf::compress(&data);
        prop_assert_eq!(bgzf::decompress(&c).unwrap(), data);
    }

    #[test]
    fn bgzf_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = bgzf::decompress(&data); // must not panic
    }

    #[test]
    fn sam_and_bam_round_trip_generated_records(recs in records_strategy()) {
        let dict = RefDict { refs: vec![("chr1".into(), 1 << 26), ("chr2".into(), 1 << 24)] };
        let text = sam::write_sam(&dict, &recs);
        let (d1, r1) = sam::read_sam(&text).unwrap();
        prop_assert_eq!(&d1, &dict);
        prop_assert_eq!(&r1, &recs);
        let bin = bam::write_bam(&dict, &recs);
        let (d2, r2) = bam::read_bam(&bin).unwrap();
        prop_assert_eq!(&d2, &dict);
        prop_assert_eq!(&r2, &recs);
    }

    #[test]
    fn bam_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = bam::read_bam(&data); // must not panic
    }
}

fn records_strategy() -> impl Strategy<Value = Vec<Record>> {
    let record = (
        "[A-Za-z0-9:._-]{1,20}",                  // qname (no tabs/whitespace)
        any::<u16>(),                             // raw flag bits
        0i32..2,                                  // tid within the dict
        1i32..1_000_000,                          // pos
        any::<u8>(),                              // mapq
        prop::collection::vec((1u32..200, 0u32..4), 0..4), // cigar
        prop::collection::vec(prop::sample::select(b"ACGTN".to_vec()), 0..40),
    )
        .prop_map(|(qname, rawflag, tid, pos, mapq, cigar_raw, seq)| {
            let unmapped = rawflag & flags::UNMAPPED != 0;
            let cigar: Vec<(u32, CigarOp)> = cigar_raw
                .into_iter()
                .map(|(n, op)| {
                    (n, match op {
                        0 => CigarOp::Match,
                        1 => CigarOp::Ins,
                        2 => CigarOp::Del,
                        _ => CigarOp::SoftClip,
                    })
                })
                .collect();
            let qual: Vec<u8> = seq.iter().map(|&b| (b % 40) + 2).collect();
            Record {
                qname,
                flag: rawflag & 0x7ff,
                tid: if unmapped { -1 } else { tid },
                pos: if unmapped { 0 } else { pos },
                mapq,
                cigar: if unmapped { vec![] } else { cigar },
                seq,
                qual,
            }
        });
    prop::collection::vec(record, 0..30)
}
