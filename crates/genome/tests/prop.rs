//! Randomized round-trip tests over the serialization substrates: the
//! BGZF-style compressor and the SAM/BAM codecs must reproduce
//! arbitrary inputs exactly.
//!
//! Inputs are generated from fixed seeds with [`SimRng`], so every run
//! explores the same cases and any failure replays exactly.

use sjmp_genome::record::{flags, CigarOp, Record};
use sjmp_genome::sam::RefDict;
use sjmp_genome::{bam, bgzf, sam};
use sjmp_sim::SimRng;

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; rng.index(max_len + 1)];
    rng.fill_bytes(&mut buf);
    buf
}

#[test]
fn bgzf_round_trips_arbitrary_bytes() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let data = random_bytes(&mut rng, 50_000);
        let c = bgzf::compress(&data);
        assert_eq!(bgzf::decompress(&c).unwrap(), data, "seed {seed}");
    }
}

#[test]
fn bgzf_round_trips_repetitive_bytes() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xb62f);
        let unit = random_bytes(&mut rng, 15);
        let unit = if unit.is_empty() { vec![7u8] } else { unit };
        let reps = rng.index(4999) + 1;
        let data: Vec<u8> = unit
            .iter()
            .cycle()
            .take(unit.len() * reps)
            .copied()
            .collect();
        let c = bgzf::compress(&data);
        assert_eq!(bgzf::decompress(&c).unwrap(), data, "seed {seed}");
    }
}

#[test]
fn bgzf_never_panics_on_garbage() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6a2b);
        let data = random_bytes(&mut rng, 2000);
        let _ = bgzf::decompress(&data); // must not panic
    }
}

#[test]
fn sam_and_bam_round_trip_generated_records() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5a3);
        let recs = random_records(&mut rng);
        let dict = RefDict {
            refs: vec![("chr1".into(), 1 << 26), ("chr2".into(), 1 << 24)],
        };
        let text = sam::write_sam(&dict, &recs);
        let (d1, r1) = sam::read_sam(&text).unwrap();
        assert_eq!(&d1, &dict, "seed {seed}");
        assert_eq!(&r1, &recs, "seed {seed}");
        let bin = bam::write_bam(&dict, &recs);
        let (d2, r2) = bam::read_bam(&bin).unwrap();
        assert_eq!(&d2, &dict, "seed {seed}");
        assert_eq!(&r2, &recs, "seed {seed}");
    }
}

#[test]
fn bam_never_panics_on_garbage() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xba41);
        let data = random_bytes(&mut rng, 2000);
        let _ = bam::read_bam(&data); // must not panic
    }
}

fn random_records(rng: &mut SimRng) -> Vec<Record> {
    const QNAME_CHARS: &[u8] =
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789:._-";
    (0..rng.index(30))
        .map(|_| {
            let qname: String = (0..rng.index(20) + 1)
                .map(|_| QNAME_CHARS[rng.index(QNAME_CHARS.len())] as char)
                .collect();
            let rawflag = rng.next_u64() as u16;
            let tid = rng.gen_range(0..2) as i32;
            let pos = rng.gen_range(1..1_000_000) as i32;
            let mapq = rng.next_u64() as u8;
            let unmapped = rawflag & flags::UNMAPPED != 0;
            let cigar: Vec<(u32, CigarOp)> = (0..rng.index(4))
                .map(|_| {
                    let n = rng.gen_range(1..200) as u32;
                    let op = match rng.gen_range(0..4) {
                        0 => CigarOp::Match,
                        1 => CigarOp::Ins,
                        2 => CigarOp::Del,
                        _ => CigarOp::SoftClip,
                    };
                    (n, op)
                })
                .collect();
            let seq: Vec<u8> = (0..rng.index(40)).map(|_| b"ACGTN"[rng.index(5)]).collect();
            let qual: Vec<u8> = seq.iter().map(|&b| (b % 40) + 2).collect();
            Record {
                qname,
                flag: rawflag & 0x7ff,
                tid: if unmapped { -1 } else { tid },
                pos: if unmapped { 0 } else { pos },
                mapq,
                cigar: if unmapped { vec![] } else { cigar },
                seq,
                qual,
            }
        })
        .collect()
}
