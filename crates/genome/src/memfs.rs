//! A tiny in-memory file system over simulated physical memory.
//!
//! The paper factors disk out of the SAMTools comparison: "The SAM and
//! BAM files are stored using an in-memory file-system so the impact of
//! disk access in the original tool is completely factored out." This
//! module provides that substrate: named files backed by VM objects, with
//! read/write charging memory-copy cycles (one cache line per 64 bytes)
//! but no I/O costs.

use std::collections::HashMap;

use sjmp_os::{Kernel, OsError, OsResult, VmObjectId};

/// The in-memory file system.
#[derive(Debug, Default)]
pub struct MemFs {
    files: HashMap<String, (VmObjectId, u64)>,
}

impl MemFs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Writes (creates or replaces) a file.
    ///
    /// # Errors
    ///
    /// Physical-memory exhaustion.
    pub fn write(&mut self, kernel: &mut Kernel, name: &str, data: &[u8]) -> OsResult<()> {
        if let Some((old, _)) = self.files.remove(name) {
            kernel.free_object(old)?;
        }
        let obj = kernel.alloc_object(data.len().max(1) as u64)?;
        let pa = kernel.vmobject(obj)?.base();
        kernel.phys_mut().write_bytes(pa, data)?;
        kernel
            .clock()
            .advance(Self::copy_cycles(kernel, data.len()));
        self.files
            .insert(name.to_string(), (obj, data.len() as u64));
        Ok(())
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] if the file does not exist.
    pub fn read(&self, kernel: &mut Kernel, name: &str) -> OsResult<Vec<u8>> {
        let &(obj, len) = self.files.get(name).ok_or(OsError::NoSuchObject)?;
        let pa = kernel.vmobject(obj)?.base();
        let mut buf = vec![0u8; len as usize];
        kernel.phys_mut().read_bytes(pa, &mut buf)?;
        kernel.clock().advance(Self::copy_cycles(kernel, buf.len()));
        Ok(buf)
    }

    fn copy_cycles(kernel: &Kernel, len: usize) -> u64 {
        (len as u64).div_ceil(64) * kernel.cost().cache_hit
    }

    /// File size, if present.
    pub fn size(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|&(_, len)| len)
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Deletes a file, releasing its memory.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] if absent.
    pub fn delete(&mut self, kernel: &mut Kernel, name: &str) -> OsResult<()> {
        let (obj, _) = self.files.remove(name).ok_or(OsError::NoSuchObject)?;
        kernel.free_object(obj)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::{KernelFlavor, MachineId};

    fn kernel() -> Kernel {
        Kernel::new(KernelFlavor::DragonFly, MachineId::M2)
    }

    #[test]
    fn write_read_round_trip() {
        let mut k = kernel();
        let mut fs = MemFs::new();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        fs.write(&mut k, "test.sam", &data).unwrap();
        assert_eq!(fs.read(&mut k, "test.sam").unwrap(), data);
        assert_eq!(fs.size("test.sam"), Some(100_000));
        assert!(fs.exists("test.sam"));
    }

    #[test]
    fn replace_frees_old_object() {
        let mut k = kernel();
        let mut fs = MemFs::new();
        fs.write(&mut k, "f", &[1; 4096]).unwrap();
        let before = k.phys_mut().allocated_frames();
        fs.write(&mut k, "f", &[2; 4096]).unwrap();
        assert_eq!(k.phys_mut().allocated_frames(), before, "old backing freed");
        assert_eq!(fs.read(&mut k, "f").unwrap(), vec![2; 4096]);
    }

    #[test]
    fn missing_files_error() {
        let mut k = kernel();
        let mut fs = MemFs::new();
        assert!(matches!(
            fs.read(&mut k, "nope"),
            Err(OsError::NoSuchObject)
        ));
        assert!(matches!(
            fs.delete(&mut k, "nope"),
            Err(OsError::NoSuchObject)
        ));
        assert_eq!(fs.size("nope"), None);
    }

    #[test]
    fn delete_releases_memory() {
        let mut k = kernel();
        let mut fs = MemFs::new();
        let before = k.phys_mut().allocated_frames();
        fs.write(&mut k, "f", &[0; 64 * 1024]).unwrap();
        fs.delete(&mut k, "f").unwrap();
        assert_eq!(k.phys_mut().allocated_frames(), before);
        assert!(!fs.exists("f"));
    }

    #[test]
    fn io_charges_cycles() {
        let mut k = kernel();
        let mut fs = MemFs::new();
        let t0 = k.clock().now();
        fs.write(&mut k, "f", &[0; 64 * 1024]).unwrap();
        assert!(k.clock().since(t0) >= 1024 * k.cost().cache_hit);
    }
}
