//! Alignment records: the in-memory data model of the SAMTools workflow.
//!
//! Follows the SAM specification's mandatory fields (QNAME, FLAG, RNAME,
//! POS, MAPQ, CIGAR, SEQ, QUAL) with the flag bits `samtools flagstat`
//! reports on.

/// SAM flag bits.
pub mod flags {
    /// Template has multiple segments (paired).
    pub const PAIRED: u16 = 0x1;
    /// Each segment properly aligned.
    pub const PROPER_PAIR: u16 = 0x2;
    /// Segment unmapped.
    pub const UNMAPPED: u16 = 0x4;
    /// Next segment unmapped.
    pub const MATE_UNMAPPED: u16 = 0x8;
    /// Reverse strand.
    pub const REVERSE: u16 = 0x10;
    /// Next segment on reverse strand.
    pub const MATE_REVERSE: u16 = 0x20;
    /// First segment of the template.
    pub const READ1: u16 = 0x40;
    /// Last segment of the template.
    pub const READ2: u16 = 0x80;
    /// Secondary alignment.
    pub const SECONDARY: u16 = 0x100;
    /// Failed quality checks.
    pub const QC_FAIL: u16 = 0x200;
    /// PCR or optical duplicate.
    pub const DUPLICATE: u16 = 0x400;
}

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// Alignment match (`M`).
    Match,
    /// Insertion to the reference (`I`).
    Ins,
    /// Deletion from the reference (`D`).
    Del,
    /// Soft clipping (`S`).
    SoftClip,
}

impl CigarOp {
    /// The SAM character for this op.
    pub fn ch(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
            CigarOp::SoftClip => 'S',
        }
    }

    /// Parses a SAM CIGAR character.
    pub fn from_ch(c: char) -> Option<CigarOp> {
        match c {
            'M' => Some(CigarOp::Match),
            'I' => Some(CigarOp::Ins),
            'D' => Some(CigarOp::Del),
            'S' => Some(CigarOp::SoftClip),
            _ => None,
        }
    }

    /// Numeric code used by the binary (BAM) encoding.
    pub fn code(self) -> u32 {
        match self {
            CigarOp::Match => 0,
            CigarOp::Ins => 1,
            CigarOp::Del => 2,
            CigarOp::SoftClip => 4,
        }
    }

    /// Decodes a binary op code.
    pub fn from_code(code: u32) -> Option<CigarOp> {
        match code {
            0 => Some(CigarOp::Match),
            1 => Some(CigarOp::Ins),
            2 => Some(CigarOp::Del),
            4 => Some(CigarOp::SoftClip),
            _ => None,
        }
    }
}

/// One aligned (or unmapped) read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Query template name.
    pub qname: String,
    /// Bitwise flags (see [`flags`]).
    pub flag: u16,
    /// Reference sequence id (-1 = unmapped, `*`).
    pub tid: i32,
    /// 1-based leftmost position (0 = unavailable).
    pub pos: i32,
    /// Mapping quality.
    pub mapq: u8,
    /// CIGAR operations.
    pub cigar: Vec<(u32, CigarOp)>,
    /// Read bases (ASCII `ACGTN`).
    pub seq: Vec<u8>,
    /// Phred qualities (raw, not +33).
    pub qual: Vec<u8>,
}

impl Record {
    /// Whether the read is mapped.
    pub fn is_mapped(&self) -> bool {
        self.flag & flags::UNMAPPED == 0
    }

    /// Sort key for coordinate sort: (tid, pos), unmapped last.
    pub fn coord_key(&self) -> (i32, i32) {
        if self.is_mapped() {
            (self.tid, self.pos)
        } else {
            (i32::MAX, i32::MAX)
        }
    }
}

/// `samtools flagstat` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flagstat {
    /// Total records.
    pub total: u64,
    /// Secondary alignments.
    pub secondary: u64,
    /// Duplicates.
    pub duplicates: u64,
    /// Mapped records.
    pub mapped: u64,
    /// Paired-in-sequencing records.
    pub paired: u64,
    /// First-of-pair reads.
    pub read1: u64,
    /// Second-of-pair reads.
    pub read2: u64,
    /// Properly paired records.
    pub proper_pair: u64,
    /// Paired with both this read and its mate mapped.
    pub with_mate_mapped: u64,
    /// Paired, mapped, mate unmapped.
    pub singletons: u64,
}

impl Flagstat {
    /// Accumulates one record.
    pub fn add(&mut self, flag: u16) {
        use flags::*;
        self.total += 1;
        if flag & SECONDARY != 0 {
            self.secondary += 1;
        }
        if flag & DUPLICATE != 0 {
            self.duplicates += 1;
        }
        let mapped = flag & UNMAPPED == 0;
        if mapped {
            self.mapped += 1;
        }
        if flag & PAIRED != 0 {
            self.paired += 1;
            if flag & READ1 != 0 {
                self.read1 += 1;
            }
            if flag & READ2 != 0 {
                self.read2 += 1;
            }
            if flag & PROPER_PAIR != 0 {
                self.proper_pair += 1;
            }
            if mapped {
                if flag & MATE_UNMAPPED == 0 {
                    self.with_mate_mapped += 1;
                } else {
                    self.singletons += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flag: u16) -> Record {
        Record {
            qname: "r1".into(),
            flag,
            tid: 0,
            pos: 100,
            mapq: 60,
            cigar: vec![(100, CigarOp::Match)],
            seq: b"ACGT".to_vec(),
            qual: vec![30; 4],
        }
    }

    #[test]
    fn cigar_round_trips() {
        for op in [
            CigarOp::Match,
            CigarOp::Ins,
            CigarOp::Del,
            CigarOp::SoftClip,
        ] {
            assert_eq!(CigarOp::from_ch(op.ch()), Some(op));
            assert_eq!(CigarOp::from_code(op.code()), Some(op));
        }
        assert_eq!(CigarOp::from_ch('X'), None);
        assert_eq!(CigarOp::from_code(9), None);
    }

    #[test]
    fn coord_key_orders_unmapped_last() {
        let mapped = rec(0);
        let unmapped = rec(flags::UNMAPPED);
        assert!(mapped.coord_key() < unmapped.coord_key());
        assert!(mapped.is_mapped());
        assert!(!unmapped.is_mapped());
    }

    #[test]
    fn flagstat_counting() {
        use flags::*;
        let mut fs = Flagstat::default();
        fs.add(PAIRED | PROPER_PAIR | READ1); // mapped, proper
        fs.add(PAIRED | READ2 | MATE_UNMAPPED); // singleton
        fs.add(PAIRED | UNMAPPED | READ1); // unmapped
        fs.add(SECONDARY); // secondary single-end
        fs.add(DUPLICATE);
        assert_eq!(fs.total, 5);
        assert_eq!(fs.mapped, 4);
        assert_eq!(fs.paired, 3);
        assert_eq!(fs.read1, 2);
        assert_eq!(fs.read2, 1);
        assert_eq!(fs.proper_pair, 1);
        assert_eq!(fs.with_mate_mapped, 1);
        assert_eq!(fs.singletons, 1);
        assert_eq!(fs.secondary, 1);
        assert_eq!(fs.duplicates, 1);
    }
}
