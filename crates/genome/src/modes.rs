//! The four SAMTools storage pipelines of Figures 11-12.
//!
//! Each pipeline runs the same four operations — flagstat, qname sort,
//! coordinate sort, index — the way the corresponding tool variant would:
//!
//! * **SAM** — the dataset lives as SAM text in the in-memory FS; every
//!   operation parses the whole file into records, computes, and writes
//!   text back.
//! * **BAM** — same, but compressed binary (decompress+decode / encode+
//!   compress around each operation).
//! * **SpaceJMP** — the dataset lives as a pointer-rich [`RecStore`] in a
//!   persistent VAS; each operation is a fresh process that attaches,
//!   switches in, works in place, and leaves the result for the next
//!   process. No serialization at all.
//! * **Mmap** — the same pointer-rich layout inside a memory-mapped
//!   region: each process `mmap`s the region at its fixed address (page
//!   tables built on the critical path), works in place, and `munmap`s.
//!
//! Host-side compute (parsing text, compressing, comparing sort keys) is
//! charged to the simulated clock with the per-unit constants below;
//! memory traffic of the SpaceJMP/Mmap modes is charged naturally by the
//! simulated MMU.

use sjmp_mem::cost::MachineId;
use sjmp_mem::{KernelFlavor, PteFlags, VirtAddr};
use sjmp_os::{Creds, Kernel, MapPolicy, Mode, Pid, VmObjectId};
use spacejmp_core::{AttachMode, SjResult, SpaceJmp, VasHeap, VasId};

use crate::memfs::MemFs;
use crate::ops;
use crate::record::Record;
use crate::sam::RefDict;
use crate::vasstore::RecStore;
use crate::workload::{generate, WorkloadConfig};
use crate::{bam, sam};

/// Cycle constants for host-side compute (per unit of real work done by
/// the codecs and operations).
pub mod charge {
    /// Parsing one byte of SAM text.
    pub const SAM_PARSE: u64 = 8;
    /// Producing one byte of SAM text.
    pub const SAM_WRITE: u64 = 5;
    /// Decoding one byte of BAM payload.
    pub const BAM_DECODE: u64 = 4;
    /// Encoding one byte of BAM payload.
    pub const BAM_ENCODE: u64 = 4;
    /// Decompressing one payload byte.
    pub const DECOMPRESS: u64 = 6;
    /// Compressing one payload byte (match search dominates).
    pub const COMPRESS: u64 = 25;
    /// One qname (string) comparison.
    pub const QNAME_CMP: u64 = 35;
    /// One coordinate comparison.
    pub const COORD_CMP: u64 = 12;
    /// Scanning one record (flagstat/index bookkeeping).
    pub const SCAN: u64 = 8;
}

/// Which pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// SAM text files.
    Sam,
    /// Compressed binary BAM files.
    Bam,
    /// Persistent VAS with pointer-rich data (SpaceJMP).
    SpaceJmp,
    /// Memory-mapped region with pointer-rich data.
    Mmap,
}

impl StorageMode {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StorageMode::Sam => "SAM",
            StorageMode::Bam => "BAM",
            StorageMode::SpaceJmp => "SpaceJMP",
            StorageMode::Mmap => "MMAP",
        }
    }
}

/// Simulated seconds per operation (the Figure 11/12 measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTimes {
    /// `samtools flagstat`.
    pub flagstat: f64,
    /// `samtools sort -n` (query-name sort).
    pub qname_sort: f64,
    /// `samtools sort` (coordinate sort).
    pub coordinate_sort: f64,
    /// `samtools index`.
    pub index: f64,
}

impl OpTimes {
    /// Each op's time divided by `base`'s (for normalized charts).
    pub fn normalized_to(&self, base: &OpTimes) -> OpTimes {
        OpTimes {
            flagstat: self.flagstat / base.flagstat,
            qname_sort: self.qname_sort / base.qname_sort,
            coordinate_sort: self.coordinate_sort / base.coordinate_sort,
            index: self.index / base.index,
        }
    }
}

const STORE_VA: VirtAddr = VirtAddr::new_unchecked(0x1000_0000_0000);

fn store_segment_bytes(cfg: &WorkloadConfig) -> u64 {
    // Fixed part + blobs + heap/table overhead, rounded up generously.
    let per_record = 64 + 32 + cfg.read_len as u64 * 2 + 64 + 64;
    (cfg.records as u64 * per_record * 2 + (4 << 20)).next_power_of_two()
}

fn charge_sort(kernel: &Kernel, work: ops::OpWork, per_cmp: u64) {
    kernel
        .clock()
        .advance(work.comparisons * per_cmp + work.records * charge::SCAN);
}

/// Charges host-side compute to the core `pid` is pinned on (each op runs
/// as a fresh process, and processes round-robin across the machine's
/// hardware threads).
fn charge_compute(sj: &SpaceJmp, pid: Pid, cycles: u64) {
    let core = sj.kernel().ctx_of(pid).map_or(0, |c| c.core);
    sj.kernel().clocks().advance(core, cycles);
}

/// Elapsed simulated cycles across every core. The pointer-rich pipelines
/// are serial (one process at a time), but successive processes pin to
/// different cores, so a single core's clock misses most of the work; the
/// sum over cores is the serial elapsed time.
fn total_cycles(sj: &SpaceJmp) -> u64 {
    sj.kernel().total_cycles()
}

/// Runs all four operations under `mode` and reports per-op simulated
/// seconds.
///
/// # Errors
///
/// Propagates kernel/SpaceJMP failures.
pub fn run_pipeline(mode: StorageMode, cfg: &WorkloadConfig) -> SjResult<OpTimes> {
    match mode {
        StorageMode::Sam | StorageMode::Bam => run_file_pipeline(mode, cfg),
        StorageMode::SpaceJmp => run_jmp_pipeline(cfg),
        StorageMode::Mmap => run_mmap_pipeline(cfg),
    }
}

// ---- serialized-file pipelines (SAM / BAM) -------------------------------

fn parse_file(
    mode: StorageMode,
    kernel: &mut Kernel,
    fs: &MemFs,
    name: &str,
) -> SjResult<(RefDict, Vec<Record>)> {
    let bytes = fs.read(kernel, name).map_err(spacejmp_core::SjError::Os)?;
    match mode {
        StorageMode::Sam => {
            kernel
                .clock()
                .advance(bytes.len() as u64 * charge::SAM_PARSE);
            sam::read_sam(&bytes).map_err(|_| spacejmp_core::SjError::InvalidArgument("bad SAM"))
        }
        StorageMode::Bam => {
            let payload = crate::bgzf::decompress(&bytes)
                .map_err(|_| spacejmp_core::SjError::InvalidArgument("bad BGZF"))?;
            kernel
                .clock()
                .advance(payload.len() as u64 * (charge::DECOMPRESS + charge::BAM_DECODE));
            bam::read_bam(&bytes).map_err(|_| spacejmp_core::SjError::InvalidArgument("bad BAM"))
        }
        _ => unreachable!("file pipeline"),
    }
}

fn write_file(
    mode: StorageMode,
    kernel: &mut Kernel,
    fs: &mut MemFs,
    name: &str,
    dict: &RefDict,
    records: &[Record],
) -> SjResult<()> {
    let bytes = match mode {
        StorageMode::Sam => {
            let b = sam::write_sam(dict, records);
            kernel.clock().advance(b.len() as u64 * charge::SAM_WRITE);
            b
        }
        StorageMode::Bam => {
            let b = bam::write_bam(dict, records);
            // Charge by payload size: encode + compress.
            let payload: u64 = records.len() as u64 * 96 + 64;
            kernel
                .clock()
                .advance(payload * (charge::BAM_ENCODE + charge::COMPRESS));
            b
        }
        _ => unreachable!("file pipeline"),
    };
    fs.write(kernel, name, &bytes)
        .map_err(spacejmp_core::SjError::Os)
}

fn run_file_pipeline(mode: StorageMode, cfg: &WorkloadConfig) -> SjResult<OpTimes> {
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    let mut fs = MemFs::new();
    let (dict, records) = generate(cfg);
    // Stage the input file without charging (dataset creation is not part
    // of the measured operations).
    let staged = match mode {
        StorageMode::Sam => sam::write_sam(&dict, &records),
        StorageMode::Bam => bam::write_bam(&dict, &records),
        _ => unreachable!(),
    };
    let input = "aln.input";
    {
        let t = kernel.clock().now();
        fs.write(&mut kernel, input, &staged)
            .map_err(spacejmp_core::SjError::Os)?;
        // Roll the clock back: staging is setup.
        let _ = t;
        kernel.clock().reset();
    }
    let profile = kernel.profile().clone();
    let secs = |cycles: u64| profile.cycles_to_secs(cycles);

    // flagstat: parse + scan (no output file).
    let t0 = kernel.clock().now();
    let (_, recs) = parse_file(mode, &mut kernel, &fs, input)?;
    let (_, work) = ops::flagstat(&recs);
    kernel.clock().advance(work.records * charge::SCAN);
    let flagstat = secs(kernel.clock().since(t0));

    // qname sort: parse + sort + serialize.
    let t1 = kernel.clock().now();
    let (d, mut recs) = parse_file(mode, &mut kernel, &fs, input)?;
    let work = ops::qname_sort(&mut recs);
    charge_sort(&kernel, work, charge::QNAME_CMP);
    write_file(mode, &mut kernel, &mut fs, "aln.qsorted", &d, &recs)?;
    let qname_sort = secs(kernel.clock().since(t1));

    // coordinate sort.
    let t2 = kernel.clock().now();
    let (d, mut recs) = parse_file(mode, &mut kernel, &fs, input)?;
    let work = ops::coordinate_sort(&mut recs);
    charge_sort(&kernel, work, charge::COORD_CMP);
    write_file(mode, &mut kernel, &mut fs, "aln.csorted", &d, &recs)?;
    let coordinate_sort = secs(kernel.clock().since(t2));

    // index: parse the coordinate-sorted file, build, write index file.
    let t3 = kernel.clock().now();
    let (d, recs) = parse_file(mode, &mut kernel, &fs, "aln.csorted")?;
    let (index, work) = ops::build_index(d.refs.len(), &recs);
    kernel.clock().advance(work.records * charge::SCAN);
    fs.write(&mut kernel, "aln.index", &index.to_bytes())
        .map_err(spacejmp_core::SjError::Os)?;
    let index_time = secs(kernel.clock().since(t3));

    Ok(OpTimes {
        flagstat,
        qname_sort,
        coordinate_sort,
        index: index_time,
    })
}

// ---- pointer-rich pipelines (SpaceJMP / Mmap) ------------------------------

/// Creates the populated store and returns the SpaceJMP service plus the
/// VAS id and backing object. Population is setup, not measured.
fn build_store(cfg: &WorkloadConfig) -> SjResult<(SpaceJmp, VasId, VmObjectId, usize)> {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("loader", Creds::new(1, 1))?;
    sj.kernel_mut().activate(pid)?;
    let vid = sj.vas_create(pid, "samtools-data", Mode(0o660))?;
    let sid = sj.seg_alloc(
        pid,
        "samtools-seg",
        STORE_VA,
        store_segment_bytes(cfg),
        Mode(0o660),
    )?;
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
    let vh = sj.vas_attach(pid, vid)?;
    sj.vas_switch(pid, vh)?;
    let heap = VasHeap::format(&mut sj, pid, sid)?;
    let store = RecStore::create(&mut sj, pid, heap, cfg.records as u64)?;
    let (dict, records) = generate(cfg);
    for r in &records {
        store.append(&mut sj, pid, r)?;
    }
    sj.vas_switch_home(pid)?;
    sj.vas_detach(pid, vh)?;
    sj.kernel_mut().exit(pid)?;
    let object = sj.segment(sid)?.object();
    sj.kernel().reset_clocks();
    Ok((sj, vid, object, dict.refs.len()))
}

/// Runs one operation as a fresh process in the persistent VAS.
fn jmp_op<T>(
    sj: &mut SpaceJmp,
    vid: VasId,
    op: impl FnOnce(&mut SpaceJmp, Pid, RecStore) -> SjResult<T>,
) -> SjResult<T> {
    let pid = sj.kernel_mut().spawn("samtool", Creds::new(1, 1))?;
    sj.kernel_mut().activate(pid)?;
    let vh = sj.vas_attach(pid, vid)?;
    sj.vas_switch(pid, vh)?;
    let sid = sj.seg_find("samtools-seg")?;
    let heap = VasHeap::open(sj, pid, sid)?;
    let store = RecStore::open(sj, pid, heap)?;
    let result = op(sj, pid, store)?;
    sj.vas_switch_home(pid)?;
    sj.vas_detach(pid, vh)?;
    sj.kernel_mut().exit(pid)?;
    Ok(result)
}

fn run_jmp_pipeline(cfg: &WorkloadConfig) -> SjResult<OpTimes> {
    let (mut sj, vid, _obj, n_refs) = build_store(cfg)?;
    let profile = sj.kernel().profile().clone();
    let secs = |c: u64| profile.cycles_to_secs(c);

    let t0 = total_cycles(&sj);
    jmp_op(&mut sj, vid, |sj, pid, store| {
        let (_, work) = store.flagstat(sj, pid)?;
        charge_compute(sj, pid, work.records * charge::SCAN);
        Ok(())
    })?;
    let flagstat = secs(total_cycles(&sj) - t0);

    let t1 = total_cycles(&sj);
    jmp_op(&mut sj, vid, |sj, pid, store| {
        let work = store.qname_sort(sj, pid)?;
        charge_compute(sj, pid, work.comparisons * charge::QNAME_CMP);
        Ok(())
    })?;
    let qname_sort = secs(total_cycles(&sj) - t1);

    let t2 = total_cycles(&sj);
    jmp_op(&mut sj, vid, |sj, pid, store| {
        let work = store.coordinate_sort(sj, pid)?;
        charge_compute(sj, pid, work.comparisons * charge::COORD_CMP);
        Ok(())
    })?;
    let coordinate_sort = secs(total_cycles(&sj) - t2);

    let t3 = total_cycles(&sj);
    jmp_op(&mut sj, vid, |sj, pid, store| {
        let (_, work) = store.build_index(sj, pid, n_refs)?;
        charge_compute(sj, pid, work.records * charge::SCAN);
        Ok(())
    })?;
    let index = secs(total_cycles(&sj) - t3);

    Ok(OpTimes {
        flagstat,
        qname_sort,
        coordinate_sort,
        index,
    })
}

/// Runs one operation as a fresh process that `mmap`s the store region.
fn mmap_op<T>(
    sj: &mut SpaceJmp,
    object: VmObjectId,
    size: u64,
    op: impl FnOnce(&mut SpaceJmp, Pid, RecStore) -> SjResult<T>,
) -> SjResult<T> {
    let pid = sj.kernel_mut().spawn("samtool-mmap", Creds::new(1, 1))?;
    sj.kernel_mut().activate(pid)?;
    let space = sj.kernel().process(pid)?.current_space();
    // mmap(MAP_FIXED) of the in-memory file at the fixed region base:
    // page tables constructed on the critical path (charged). Pages are
    // hot in the page cache (in-memory FS), like the paper's setup.
    let flags = PteFlags::USER | PteFlags::WRITABLE | PteFlags::NO_EXECUTE;
    let ctx = sj.kernel().ctx_of(pid)?;
    sj.kernel_mut().map_object(
        space,
        object,
        STORE_VA,
        0,
        size,
        flags,
        MapPolicy::Eager,
        Some(ctx),
    )?;
    let heap = {
        // The heap handle requires segment bookkeeping; reconstruct the
        // store directly from the mapped region instead.
        let sid = sj.seg_find("samtools-seg")?;
        VasHeap::open(sj, pid, sid)?
    };
    let store = RecStore::open(sj, pid, heap)?;
    let result = op(sj, pid, store)?;
    sj.kernel_mut().unmap_object(space, STORE_VA, Some(ctx))?;
    sj.kernel_mut().exit(pid)?;
    Ok(result)
}

fn run_mmap_pipeline(cfg: &WorkloadConfig) -> SjResult<OpTimes> {
    let (mut sj, _vid, object, n_refs) = build_store(cfg)?;
    let size = store_segment_bytes(cfg);
    let profile = sj.kernel().profile().clone();
    let secs = |c: u64| profile.cycles_to_secs(c);

    let t0 = total_cycles(&sj);
    mmap_op(&mut sj, object, size, |sj, pid, store| {
        let (_, work) = store.flagstat(sj, pid)?;
        charge_compute(sj, pid, work.records * charge::SCAN);
        Ok(())
    })?;
    let flagstat = secs(total_cycles(&sj) - t0);

    let t1 = total_cycles(&sj);
    mmap_op(&mut sj, object, size, |sj, pid, store| {
        let work = store.qname_sort(sj, pid)?;
        charge_compute(sj, pid, work.comparisons * charge::QNAME_CMP);
        Ok(())
    })?;
    let qname_sort = secs(total_cycles(&sj) - t1);

    let t2 = total_cycles(&sj);
    mmap_op(&mut sj, object, size, |sj, pid, store| {
        let work = store.coordinate_sort(sj, pid)?;
        charge_compute(sj, pid, work.comparisons * charge::COORD_CMP);
        Ok(())
    })?;
    let coordinate_sort = secs(total_cycles(&sj) - t2);

    let t3 = total_cycles(&sj);
    mmap_op(&mut sj, object, size, |sj, pid, store| {
        let (_, work) = store.build_index(sj, pid, n_refs)?;
        charge_compute(sj, pid, work.records * charge::SCAN);
        Ok(())
    })?;
    let index = secs(total_cycles(&sj) - t3);

    Ok(OpTimes {
        flagstat,
        qname_sort,
        coordinate_sort,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            records: 2000,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn spacejmp_beats_serialization_everywhere() {
        let cfg = small();
        let jmp = run_pipeline(StorageMode::SpaceJmp, &cfg).unwrap();
        let samt = run_pipeline(StorageMode::Sam, &cfg).unwrap();
        let bamt = run_pipeline(StorageMode::Bam, &cfg).unwrap();
        for (name, j, s, b) in [
            ("flagstat", jmp.flagstat, samt.flagstat, bamt.flagstat),
            ("qname", jmp.qname_sort, samt.qname_sort, bamt.qname_sort),
            (
                "coord",
                jmp.coordinate_sort,
                samt.coordinate_sort,
                bamt.coordinate_sort,
            ),
            ("index", jmp.index, samt.index, bamt.index),
        ] {
            assert!(j < s, "{name}: SpaceJMP {j} vs SAM {s}");
            assert!(j < b, "{name}: SpaceJMP {j} vs BAM {b}");
        }
    }

    #[test]
    fn mmap_comparable_but_flagstat_shows_map_cost() {
        // Figure 12: "flagstat shows more significant improvement from
        // SpaceJMP ... because flagstat runs much quicker than the others
        // so the time spent performing a VAS switch or mmap takes up a
        // larger fraction of the total time."
        let cfg = small();
        let jmp = run_pipeline(StorageMode::SpaceJmp, &cfg).unwrap();
        let mmap = run_pipeline(StorageMode::Mmap, &cfg).unwrap();
        assert!(
            mmap.flagstat > 1.2 * jmp.flagstat,
            "mmap flagstat {} vs jmp {}",
            mmap.flagstat,
            jmp.flagstat
        );
        // Sort-dominated ops are comparable (within 15%).
        // (The paper's full-size dataset makes the sorts dwarf the mmap
        // cost entirely; at our scaled size a little map cost remains.)
        let ratio = mmap.qname_sort / jmp.qname_sort;
        assert!((0.85..1.3).contains(&ratio), "qname ratio {ratio}");
        let ratio_c = mmap.coordinate_sort / jmp.coordinate_sort;
        assert!((0.85..1.7).contains(&ratio_c), "coord ratio {ratio_c}");
    }

    #[test]
    fn qname_sort_is_the_slowest_pointer_mode_op() {
        // Figure 12's absolute numbers: qname sort (108 s) dwarfs
        // coordinate sort (5.5 s) and index (14.8 s).
        let jmp = run_pipeline(StorageMode::SpaceJmp, &small()).unwrap();
        assert!(jmp.qname_sort > jmp.coordinate_sort, "{jmp:?}");
        assert!(jmp.qname_sort > jmp.flagstat, "{jmp:?}");
    }

    #[test]
    fn normalization_helper() {
        let a = OpTimes {
            flagstat: 2.0,
            qname_sort: 4.0,
            coordinate_sort: 8.0,
            index: 1.0,
        };
        let n = a.normalized_to(&a);
        assert_eq!(n.flagstat, 1.0);
        assert_eq!(n.index, 1.0);
    }
}
