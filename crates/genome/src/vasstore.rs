//! Pointer-rich alignment storage inside a persistent VAS.
//!
//! The SpaceJMP version of SAMTools (Section 5.4) "retain\[s\] the data in
//! a virtual address space and persist\[s\] it between process executions.
//! Each process operating on the data switches into the address space,
//! performs its operation on the data structure, and keeps its results in
//! the address space for the next process to use."
//!
//! [`RecStore`] is that data structure: a record table whose entries,
//! name/sequence/CIGAR blobs, and header all live in a [`VasHeap`] inside
//! the segment — ordinary virtual-address pointers, no serialization, no
//! swizzling. Every access goes through the simulated MMU and is charged
//! cycles, so operations measured over a `RecStore` reflect the memory
//! behaviour the paper measures.

use sjmp_mem::VirtAddr;
use sjmp_os::Pid;
use spacejmp_core::{SjError, SjResult, SpaceJmp, VasHeap};

use crate::ops::{LinearIndex, OpWork, INDEX_WINDOW};
use crate::record::{CigarOp, Flagstat, Record};

// Store header: count, capacity, entries_ptr (array of record pointers).
const H_COUNT: u64 = 0;
const H_CAP: u64 = 8;
const H_ENTRIES: u64 = 16;
const HEADER_SIZE: u64 = 24;

// Record layout (fixed part, 64 bytes):
// flag|mapq packed, tid, pos, qname_ptr, qname_len, blob_ptr (seq then
// qual then cigar u32s), seq_len, cigar_len.
const R_FLAGS: u64 = 0;
const R_TID: u64 = 8;
const R_POS: u64 = 16;
const R_QNAME: u64 = 24;
const R_QLEN: u64 = 32;
const R_BLOB: u64 = 40;
const R_SLEN: u64 = 48;
const R_CLEN: u64 = 56;
const RECORD_SIZE: u64 = 64;

/// A segment-resident record table.
///
/// # Examples
///
/// ```
/// use sjmp_mem::{KernelFlavor, MachineId, VirtAddr};
/// use sjmp_os::{Creds, Kernel, Mode};
/// use spacejmp_core::{AttachMode, SpaceJmp, VasHeap};
/// use sjmp_genome::{generate, RecStore, WorkloadConfig};
///
/// # fn main() -> Result<(), spacejmp_core::SjError> {
/// let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
/// let pid = sj.kernel_mut().spawn("tool", Creds::new(1, 1))?;
/// sj.kernel_mut().activate(pid)?;
/// let vid = sj.vas_create(pid, "aln", Mode(0o660))?;
/// let sid = sj.seg_alloc(pid, "aln-seg", VirtAddr::new(0x1000_0000_0000),
///                        8 << 20, Mode(0o660))?;
/// sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
/// let vh = sj.vas_attach(pid, vid)?;
/// sj.vas_switch(pid, vh)?;
///
/// let heap = VasHeap::format(&mut sj, pid, sid)?;
/// let store = RecStore::create(&mut sj, pid, heap, 100)?;
/// let (_, records) = generate(&WorkloadConfig { records: 100, ..Default::default() });
/// for r in &records {
///     store.append(&mut sj, pid, r)?;
/// }
/// let (stats, _) = store.flagstat(&mut sj, pid)?;
/// assert_eq!(stats.total, 100);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RecStore {
    heap: VasHeap,
    header: VirtAddr,
}

impl RecStore {
    /// Creates an empty store with room for `capacity` records, and
    /// registers it as the heap's root object.
    ///
    /// # Errors
    ///
    /// Heap exhaustion.
    pub fn create(sj: &mut SpaceJmp, pid: Pid, heap: VasHeap, capacity: u64) -> SjResult<RecStore> {
        let header = heap.calloc(sj, pid, HEADER_SIZE)?;
        let entries = heap.calloc(sj, pid, capacity.max(1) * 8)?;
        let k = sj.kernel_mut();
        k.store_u64(pid, header.add(H_CAP), capacity.max(1))?;
        k.store_u64(pid, header.add(H_ENTRIES), entries.raw())?;
        heap.set_root(sj, pid, header)?;
        Ok(RecStore { heap, header })
    }

    /// Opens the store registered in `heap` (created by an earlier
    /// process).
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] if the heap has no root object.
    pub fn open(sj: &mut SpaceJmp, pid: Pid, heap: VasHeap) -> SjResult<RecStore> {
        let header = heap.root(sj, pid)?;
        if header == VirtAddr::NULL {
            return Err(SjError::InvalidArgument("heap holds no record store"));
        }
        Ok(RecStore { heap, header })
    }

    /// Number of stored records.
    ///
    /// # Errors
    ///
    /// Access errors if the segment is unmapped.
    pub fn count(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<u64> {
        sj.kernel_mut()
            .load_u64(pid, self.header.add(H_COUNT))
            .map_err(Into::into)
    }

    fn entries_ptr(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<VirtAddr> {
        Ok(VirtAddr::new(
            sj.kernel_mut().load_u64(pid, self.header.add(H_ENTRIES))?,
        ))
    }

    fn entry(&self, sj: &mut SpaceJmp, pid: Pid, i: u64) -> SjResult<VirtAddr> {
        let entries = self.entries_ptr(sj, pid)?;
        Ok(VirtAddr::new(
            sj.kernel_mut().load_u64(pid, entries.add(i * 8))?,
        ))
    }

    /// Appends a record.
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] when full; heap exhaustion.
    pub fn append(&self, sj: &mut SpaceJmp, pid: Pid, r: &Record) -> SjResult<()> {
        let (count, cap) = {
            let k = sj.kernel_mut();
            (
                k.load_u64(pid, self.header.add(H_COUNT))?,
                k.load_u64(pid, self.header.add(H_CAP))?,
            )
        };
        if count == cap {
            return Err(SjError::InvalidArgument("record store full"));
        }
        let rec = self.heap.malloc(sj, pid, RECORD_SIZE)?;
        let qname_ptr = self.heap.malloc(sj, pid, r.qname.len().max(1) as u64)?;
        let blob_len = r.seq.len() + r.qual.len() + r.cigar.len() * 4;
        let blob_ptr = self.heap.malloc(sj, pid, blob_len.max(1) as u64)?;
        let mut blob = Vec::with_capacity(blob_len);
        blob.extend_from_slice(&r.seq);
        blob.extend_from_slice(&r.qual);
        for &(n, op) in &r.cigar {
            blob.extend_from_slice(&((n << 4) | op.code()).to_le_bytes());
        }
        let k = sj.kernel_mut();
        k.store_bytes(pid, qname_ptr, r.qname.as_bytes())?;
        k.store_bytes(pid, blob_ptr, &blob)?;
        k.store_u64(
            pid,
            rec.add(R_FLAGS),
            r.flag as u64 | ((r.mapq as u64) << 16),
        )?;
        k.store_u64(pid, rec.add(R_TID), r.tid as i64 as u64)?;
        k.store_u64(pid, rec.add(R_POS), r.pos as i64 as u64)?;
        k.store_u64(pid, rec.add(R_QNAME), qname_ptr.raw())?;
        k.store_u64(pid, rec.add(R_QLEN), r.qname.len() as u64)?;
        k.store_u64(pid, rec.add(R_BLOB), blob_ptr.raw())?;
        k.store_u64(pid, rec.add(R_SLEN), r.seq.len() as u64)?;
        k.store_u64(pid, rec.add(R_CLEN), r.cigar.len() as u64)?;
        let entries = self.entries_ptr(sj, pid)?;
        let k = sj.kernel_mut();
        k.store_u64(pid, entries.add(count * 8), rec.raw())?;
        k.store_u64(pid, self.header.add(H_COUNT), count + 1)?;
        Ok(())
    }

    /// Reads back record `i` as an owned [`Record`].
    ///
    /// # Errors
    ///
    /// Access errors / out-of-range indices surface as kernel errors.
    pub fn read_record(&self, sj: &mut SpaceJmp, pid: Pid, i: u64) -> SjResult<Record> {
        let rec = self.entry(sj, pid, i)?;
        let k = sj.kernel_mut();
        let packed = k.load_u64(pid, rec.add(R_FLAGS))?;
        let tid = k.load_u64(pid, rec.add(R_TID))? as i64 as i32;
        let pos = k.load_u64(pid, rec.add(R_POS))? as i64 as i32;
        let qname_ptr = VirtAddr::new(k.load_u64(pid, rec.add(R_QNAME))?);
        let qlen = k.load_u64(pid, rec.add(R_QLEN))? as usize;
        let blob_ptr = VirtAddr::new(k.load_u64(pid, rec.add(R_BLOB))?);
        let slen = k.load_u64(pid, rec.add(R_SLEN))? as usize;
        let clen = k.load_u64(pid, rec.add(R_CLEN))? as usize;
        let mut qname = vec![0u8; qlen];
        k.load_bytes(pid, qname_ptr, &mut qname)?;
        let mut blob = vec![0u8; slen * 2 + clen * 4];
        k.load_bytes(pid, blob_ptr, &mut blob)?;
        let mut cigar = Vec::with_capacity(clen);
        for c in 0..clen {
            let v = u32::from_le_bytes(
                blob[slen * 2 + c * 4..slen * 2 + c * 4 + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            cigar.push((
                v >> 4,
                CigarOp::from_code(v & 0xf).ok_or(SjError::InvalidArgument("bad cigar"))?,
            ));
        }
        Ok(Record {
            qname: String::from_utf8_lossy(&qname).into_owned(),
            flag: (packed & 0xffff) as u16,
            mapq: ((packed >> 16) & 0xff) as u8,
            tid,
            pos,
            seq: blob[..slen].to_vec(),
            qual: blob[slen..slen * 2].to_vec(),
            cigar,
        })
    }

    /// Flagstat over the stored records: one pointer chase plus one word
    /// read per record — no deserialization.
    ///
    /// # Errors
    ///
    /// Access errors.
    pub fn flagstat(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<(Flagstat, OpWork)> {
        let count = self.count(sj, pid)?;
        let entries = self.entries_ptr(sj, pid)?;
        let mut fs = Flagstat::default();
        for i in 0..count {
            let k = sj.kernel_mut();
            let rec = VirtAddr::new(k.load_u64(pid, entries.add(i * 8))?);
            let packed = k.load_u64(pid, rec.add(R_FLAGS))?;
            fs.add((packed & 0xffff) as u16);
        }
        Ok((
            fs,
            OpWork {
                records: count,
                comparisons: 0,
            },
        ))
    }

    /// Sorts the record table by query name: keys are read through the
    /// MMU, compared host-side, and the *pointer array* is permuted in
    /// place — the records themselves never move.
    ///
    /// # Errors
    ///
    /// Access errors.
    pub fn qname_sort(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<OpWork> {
        let count = self.count(sj, pid)?;
        let entries = self.entries_ptr(sj, pid)?;
        let mut keyed: Vec<(Vec<u8>, u64)> = Vec::with_capacity(count as usize);
        for i in 0..count {
            let k = sj.kernel_mut();
            let rec = VirtAddr::new(k.load_u64(pid, entries.add(i * 8))?);
            let qptr = VirtAddr::new(k.load_u64(pid, rec.add(R_QNAME))?);
            let qlen = k.load_u64(pid, rec.add(R_QLEN))? as usize;
            let mut name = vec![0u8; qlen];
            k.load_bytes(pid, qptr, &mut name)?;
            keyed.push((name, rec.raw()));
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let comparisons = nlogn(count);
        for (i, (_, rec)) in keyed.iter().enumerate() {
            sj.kernel_mut()
                .store_u64(pid, entries.add(i as u64 * 8), *rec)?;
        }
        Ok(OpWork {
            records: count,
            comparisons,
        })
    }

    /// Sorts the record table by (tid, pos), unmapped last.
    ///
    /// # Errors
    ///
    /// Access errors.
    pub fn coordinate_sort(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<OpWork> {
        let count = self.count(sj, pid)?;
        let entries = self.entries_ptr(sj, pid)?;
        let mut keyed: Vec<((i64, i64), u64)> = Vec::with_capacity(count as usize);
        for i in 0..count {
            let k = sj.kernel_mut();
            let rec = VirtAddr::new(k.load_u64(pid, entries.add(i * 8))?);
            let packed = k.load_u64(pid, rec.add(R_FLAGS))?;
            let unmapped = packed & crate::record::flags::UNMAPPED as u64 != 0;
            let key = if unmapped {
                (i64::MAX, i64::MAX)
            } else {
                (
                    k.load_u64(pid, rec.add(R_TID))? as i64,
                    k.load_u64(pid, rec.add(R_POS))? as i64,
                )
            };
            keyed.push((key, rec.raw()));
        }
        keyed.sort_by_key(|&(key, _)| key);
        for (i, (_, rec)) in keyed.iter().enumerate() {
            sj.kernel_mut()
                .store_u64(pid, entries.add(i as u64 * 8), *rec)?;
        }
        Ok(OpWork {
            records: count,
            comparisons: nlogn(count),
        })
    }

    /// Builds a linear index over the (coordinate-sorted) store, keeping
    /// it in the address space for the next process (returned host-side
    /// too, for validation).
    ///
    /// # Errors
    ///
    /// Access errors; heap exhaustion for the in-segment copy.
    pub fn build_index(
        &self,
        sj: &mut SpaceJmp,
        pid: Pid,
        n_refs: usize,
    ) -> SjResult<(LinearIndex, OpWork)> {
        let count = self.count(sj, pid)?;
        let entries = self.entries_ptr(sj, pid)?;
        let mut index = LinearIndex {
            refs: vec![Vec::new(); n_refs],
        };
        for i in 0..count {
            let k = sj.kernel_mut();
            let rec = VirtAddr::new(k.load_u64(pid, entries.add(i * 8))?);
            let packed = k.load_u64(pid, rec.add(R_FLAGS))?;
            if packed & crate::record::flags::UNMAPPED as u64 != 0 {
                continue;
            }
            let tid = k.load_u64(pid, rec.add(R_TID))? as i64;
            let pos = k.load_u64(pid, rec.add(R_POS))? as i64 as i32;
            if tid < 0 || tid as usize >= n_refs {
                continue;
            }
            let window = (pos / INDEX_WINDOW) as u32;
            let windows = &mut index.refs[tid as usize];
            if windows.last().map(|&(w, _)| w) != Some(window) {
                windows.push((window, i));
            }
        }
        // Persist the index bytes inside the address space.
        let bytes = index.to_bytes();
        let blob = self.heap.malloc(sj, pid, bytes.len().max(1) as u64)?;
        sj.kernel_mut().store_bytes(pid, blob, &bytes)?;
        Ok((
            index,
            OpWork {
                records: count,
                comparisons: 0,
            },
        ))
    }
}

/// Comparison-count estimate for an `n`-element merge sort.
fn nlogn(n: u64) -> u64 {
    if n < 2 {
        return 0;
    }
    n * (64 - n.leading_zeros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use sjmp_mem::{KernelFlavor, MachineId};
    use sjmp_os::{Creds, Kernel, Mode};
    use spacejmp_core::AttachMode;

    fn setup(records: usize) -> (SpaceJmp, Pid, RecStore, Vec<Record>) {
        let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
        let pid = sj.kernel_mut().spawn("genome", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let vid = sj.vas_create(pid, "genome-vas", Mode(0o660)).unwrap();
        let sid = sj
            .seg_alloc(
                pid,
                "genome-seg",
                VirtAddr::new(0x1000_0000_0000),
                32 << 20,
                Mode(0o660),
            )
            .unwrap();
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
        let vh = sj.vas_attach(pid, vid).unwrap();
        sj.vas_switch(pid, vh).unwrap();
        let heap = VasHeap::format(&mut sj, pid, sid).unwrap();
        let store = RecStore::create(&mut sj, pid, heap, records as u64).unwrap();
        let (_, recs) = generate(&WorkloadConfig {
            records,
            ..WorkloadConfig::default()
        });
        for r in &recs {
            store.append(&mut sj, pid, r).unwrap();
        }
        (sj, pid, store, recs)
    }

    #[test]
    fn append_and_read_round_trip() {
        let (mut sj, pid, store, recs) = setup(50);
        assert_eq!(store.count(&mut sj, pid).unwrap(), 50);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(
                &store.read_record(&mut sj, pid, i as u64).unwrap(),
                r,
                "record {i}"
            );
        }
    }

    #[test]
    fn flagstat_matches_host_implementation() {
        let (mut sj, pid, store, recs) = setup(300);
        let (fs_seg, _) = store.flagstat(&mut sj, pid).unwrap();
        let (fs_host, _) = crate::ops::flagstat(&recs);
        assert_eq!(fs_seg, fs_host);
    }

    #[test]
    fn qname_sort_matches_host() {
        let (mut sj, pid, store, mut recs) = setup(200);
        store.qname_sort(&mut sj, pid).unwrap();
        crate::ops::qname_sort(&mut recs);
        for (i, r) in recs.iter().enumerate() {
            let got = store.read_record(&mut sj, pid, i as u64).unwrap();
            assert_eq!(got.qname, r.qname, "position {i}");
        }
    }

    #[test]
    fn coordinate_sort_and_index_match_host() {
        let (mut sj, pid, store, mut recs) = setup(400);
        store.coordinate_sort(&mut sj, pid).unwrap();
        crate::ops::coordinate_sort(&mut recs);
        let (seg_index, _) = store.build_index(&mut sj, pid, 4).unwrap();
        let (host_index, _) = crate::ops::build_index(4, &recs);
        assert_eq!(seg_index, host_index);
    }

    #[test]
    fn store_full_rejected() {
        let (mut sj, pid, store, recs) = setup(10);
        assert!(matches!(
            store.append(&mut sj, pid, &recs[0]),
            Err(SjError::InvalidArgument("record store full"))
        ));
    }

    #[test]
    fn persists_across_processes_without_serialization() {
        let (mut sj, pid, store, recs) = setup(100);
        store.coordinate_sort(&mut sj, pid).unwrap();
        sj.vas_switch_home(pid).unwrap();
        sj.kernel_mut().exit(pid).unwrap();

        // Next "tool" in the workflow: a brand-new process.
        let p2 = sj
            .kernel_mut()
            .spawn("next-tool", Creds::new(1, 1))
            .unwrap();
        sj.kernel_mut().activate(p2).unwrap();
        let vid = sj.vas_find("genome-vas").unwrap();
        let vh = sj.vas_attach(p2, vid).unwrap();
        sj.vas_switch(p2, vh).unwrap();
        let sid = sj.seg_find("genome-seg").unwrap();
        let heap = VasHeap::open(&mut sj, p2, sid).unwrap();
        let store2 = RecStore::open(&mut sj, p2, heap).unwrap();
        assert_eq!(store2.count(&mut sj, p2).unwrap(), 100);
        // Data arrives sorted, exactly as the previous process left it.
        let mut sorted = recs;
        crate::ops::coordinate_sort(&mut sorted);
        let first = store2.read_record(&mut sj, p2, 0).unwrap();
        assert_eq!(first.coord_key(), sorted[0].coord_key());
        let _ = store;
    }
}
