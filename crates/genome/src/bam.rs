//! BAM-style binary serialization: packed records inside a BGZF
//! container (the paper's `BAM` format).
//!
//! Field layout per record (little-endian), following the BAM spec's
//! shape: lengths, then qname (NUL-terminated), packed CIGAR (`len<<4 |
//! op`), 4-bit-packed sequence, and raw qualities.

use crate::bgzf;
use crate::record::{CigarOp, Record};
use crate::sam::RefDict;

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BamError {
    /// Container-level corruption.
    Corrupt(&'static str),
    /// Compression layer failed.
    Bgzf(bgzf::BgzfError),
}

impl std::fmt::Display for BamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BamError::Corrupt(what) => write!(f, "corrupt BAM data: {what}"),
            BamError::Bgzf(e) => write!(f, "decompression failed: {e}"),
        }
    }
}

impl std::error::Error for BamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BamError::Bgzf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bgzf::BgzfError> for BamError {
    fn from(e: bgzf::BgzfError) -> Self {
        BamError::Bgzf(e)
    }
}

const BASE_CODES: &[u8; 16] = b"=ACMGRSVTWYHKDBN";

fn pack_base(b: u8) -> u8 {
    BASE_CODES
        .iter()
        .position(|&c| c == b.to_ascii_uppercase())
        .unwrap_or(15) as u8
}

fn unpack_base(code: u8) -> u8 {
    BASE_CODES[(code & 0xf) as usize]
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BamError> {
        if self.pos + n > self.data.len() {
            return Err(BamError::Corrupt("truncated"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, BamError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i32(&mut self) -> Result<i32, BamError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Encodes records into uncompressed BAM payload bytes.
fn encode_payload(dict: &RefDict, records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 96 + 64);
    out.extend_from_slice(b"BAM\x01");
    put_u32(&mut out, dict.refs.len() as u32);
    for (name, len) in &dict.refs {
        put_u32(&mut out, name.len() as u32 + 1);
        out.extend_from_slice(name.as_bytes());
        out.push(0);
        put_u32(&mut out, *len);
    }
    put_u32(&mut out, records.len() as u32);
    for r in records {
        put_i32(&mut out, r.tid);
        put_i32(&mut out, r.pos);
        out.push(r.qname.len() as u8 + 1);
        out.push(r.mapq);
        out.extend_from_slice(&r.flag.to_le_bytes());
        put_u32(&mut out, r.cigar.len() as u32);
        put_u32(&mut out, r.seq.len() as u32);
        out.extend_from_slice(r.qname.as_bytes());
        out.push(0);
        for &(n, op) in &r.cigar {
            put_u32(&mut out, (n << 4) | op.code());
        }
        let mut i = 0;
        while i < r.seq.len() {
            let hi = pack_base(r.seq[i]) << 4;
            let lo = if i + 1 < r.seq.len() {
                pack_base(r.seq[i + 1])
            } else {
                0
            };
            out.push(hi | lo);
            i += 2;
        }
        out.extend_from_slice(&r.qual);
    }
    out
}

fn decode_payload(data: &[u8]) -> Result<(RefDict, Vec<Record>), BamError> {
    let mut rd = Reader { data, pos: 0 };
    if rd.take(4)? != b"BAM\x01" {
        return Err(BamError::Corrupt("bad magic"));
    }
    let n_ref = rd.u32()? as usize;
    if n_ref > 1 << 20 {
        return Err(BamError::Corrupt("absurd reference count"));
    }
    let mut dict = RefDict::default();
    for _ in 0..n_ref {
        let l_name = rd.u32()? as usize;
        if l_name == 0 {
            return Err(BamError::Corrupt("empty reference name"));
        }
        let name_bytes = rd.take(l_name)?;
        let name = std::str::from_utf8(&name_bytes[..l_name - 1])
            .map_err(|_| BamError::Corrupt("non-utf8 reference name"))?
            .to_string();
        let len = rd.u32()?;
        dict.refs.push((name, len));
    }
    let n_rec = rd.u32()? as usize;
    let mut records = Vec::with_capacity(n_rec.min(1 << 24));
    for _ in 0..n_rec {
        let tid = rd.i32()?;
        let pos = rd.i32()?;
        let l_qname = rd.take(1)?[0] as usize;
        let mapq = rd.take(1)?[0];
        let flag = u16::from_le_bytes(rd.take(2)?.try_into().expect("2 bytes"));
        let n_cigar = rd.u32()? as usize;
        let l_seq = rd.u32()? as usize;
        if l_qname == 0 {
            return Err(BamError::Corrupt("empty qname"));
        }
        let qname_bytes = rd.take(l_qname)?;
        let qname = std::str::from_utf8(&qname_bytes[..l_qname - 1])
            .map_err(|_| BamError::Corrupt("non-utf8 qname"))?
            .to_string();
        let mut cigar = Vec::with_capacity(n_cigar);
        for _ in 0..n_cigar {
            let v = rd.u32()?;
            let op = CigarOp::from_code(v & 0xf).ok_or(BamError::Corrupt("bad cigar op"))?;
            cigar.push((v >> 4, op));
        }
        let packed = rd.take(l_seq.div_ceil(2))?;
        let mut seq = Vec::with_capacity(l_seq);
        for i in 0..l_seq {
            let byte = packed[i / 2];
            let code = if i % 2 == 0 { byte >> 4 } else { byte & 0xf };
            seq.push(unpack_base(code));
        }
        let qual = rd.take(l_seq)?.to_vec();
        records.push(Record {
            qname,
            flag,
            tid,
            pos,
            mapq,
            cigar,
            seq,
            qual,
        });
    }
    if !rd.done() {
        return Err(BamError::Corrupt("trailing bytes"));
    }
    Ok((dict, records))
}

/// Serializes records to compressed BAM bytes.
pub fn write_bam(dict: &RefDict, records: &[Record]) -> Vec<u8> {
    bgzf::compress(&encode_payload(dict, records))
}

/// Parses compressed BAM bytes.
///
/// # Errors
///
/// [`BamError`] for corrupt containers.
pub fn read_bam(data: &[u8]) -> Result<(RefDict, Vec<Record>), BamError> {
    decode_payload(&bgzf::decompress(data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::flags;

    fn dataset() -> (RefDict, Vec<Record>) {
        let dict = RefDict {
            refs: vec![("chr1".into(), 100_000)],
        };
        let records = vec![
            Record {
                qname: "r001".into(),
                flag: flags::PAIRED | flags::PROPER_PAIR,
                tid: 0,
                pos: 7,
                mapq: 30,
                cigar: vec![(8, CigarOp::Match), (2, CigarOp::Ins), (4, CigarOp::Del)],
                seq: b"TTAGATAAAGGATA".to_vec(),
                qual: vec![25; 14],
            },
            Record {
                qname: "r002".into(),
                flag: flags::UNMAPPED,
                tid: -1,
                pos: 0,
                mapq: 0,
                cigar: vec![],
                seq: b"ACG".to_vec(), // odd length exercises 4-bit packing
                qual: vec![10, 11, 12],
            },
        ];
        (dict, records)
    }

    #[test]
    fn round_trip() {
        let (dict, records) = dataset();
        let bytes = write_bam(&dict, &records);
        let (d2, r2) = read_bam(&bytes).unwrap();
        assert_eq!(dict, d2);
        assert_eq!(records, r2);
    }

    #[test]
    fn bam_is_smaller_than_sam() {
        let dict = RefDict {
            refs: vec![("chr1".into(), 1_000_000)],
        };
        let records: Vec<Record> = (0..2000)
            .map(|i| Record {
                qname: format!("read{i:07}"),
                flag: flags::PAIRED,
                tid: 0,
                pos: i * 13,
                mapq: 60,
                cigar: vec![(100, CigarOp::Match)],
                seq: b"ACGT".iter().cycle().take(100).copied().collect(),
                qual: vec![35; 100],
            })
            .collect();
        let sam = crate::sam::write_sam(&dict, &records);
        let bam = write_bam(&dict, &records);
        assert!(
            bam.len() < sam.len() / 2,
            "BAM {} vs SAM {}",
            bam.len(),
            sam.len()
        );
    }

    #[test]
    fn corrupt_rejected() {
        let (dict, records) = dataset();
        let bytes = write_bam(&dict, &records);
        assert!(read_bam(&bytes[..bytes.len() / 2]).is_err());
        assert!(read_bam(b"junk").is_err());
        // Valid compression of a non-BAM payload.
        let junk = crate::bgzf::compress(b"not a bam payload at all");
        assert!(matches!(read_bam(&junk), Err(BamError::Corrupt(_))));
    }
}
