//! The SAMTools operations of Figures 11-12: flagstat, qname sort,
//! coordinate sort, and index construction.
//!
//! These run over in-memory record vectors (the SAM/BAM/mmap pipelines);
//! the SpaceJMP pipeline has equivalent implementations over
//! segment-resident data in [`crate::vasstore`]. Each operation reports
//! its work (records scanned, comparisons made) so the pipelines can
//! charge simulated cycles for host-side compute.

use std::cell::Cell;

use crate::record::{Flagstat, Record};

/// Work counters produced by an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpWork {
    /// Records scanned.
    pub records: u64,
    /// Key comparisons performed (sorts).
    pub comparisons: u64,
}

/// Computes flagstat counters.
pub fn flagstat(records: &[Record]) -> (Flagstat, OpWork) {
    let mut fs = Flagstat::default();
    for r in records {
        fs.add(r.flag);
    }
    (
        fs,
        OpWork {
            records: records.len() as u64,
            comparisons: 0,
        },
    )
}

/// Sorts records by query name (`samtools sort -n`), stably.
pub fn qname_sort(records: &mut [Record]) -> OpWork {
    let count = Cell::new(0u64);
    records.sort_by(|a, b| {
        count.set(count.get() + 1);
        a.qname.cmp(&b.qname)
    });
    OpWork {
        records: records.len() as u64,
        comparisons: count.get(),
    }
}

/// Sorts records by (tid, pos) with unmapped reads last
/// (`samtools sort`), stably.
pub fn coordinate_sort(records: &mut [Record]) -> OpWork {
    let count = Cell::new(0u64);
    records.sort_by(|a, b| {
        count.set(count.get() + 1);
        a.coord_key().cmp(&b.coord_key())
    });
    OpWork {
        records: records.len() as u64,
        comparisons: count.get(),
    }
}

/// Window size of the linear index (like BAI's 16 KiB windows).
pub const INDEX_WINDOW: i32 = 16 * 1024;

/// A linear index over coordinate-sorted records: for each reference and
/// 16 KiB genomic window, the index of the first overlapping record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearIndex {
    /// Per reference: window -> first record ordinal.
    pub refs: Vec<Vec<(u32, u64)>>,
}

impl LinearIndex {
    /// Serializes the index to bytes (the on-disk `.bai`-style artifact).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.refs.len() as u32).to_le_bytes());
        for windows in &self.refs {
            out.extend_from_slice(&(windows.len() as u32).to_le_bytes());
            for &(w, first) in windows {
                out.extend_from_slice(&w.to_le_bytes());
                out.extend_from_slice(&first.to_le_bytes());
            }
        }
        out
    }

    /// Parses bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<LinearIndex> {
        let mut pos = 0usize;
        let u32_at = |p: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(data.get(*p..*p + 4)?.try_into().ok()?);
            *p += 4;
            Some(v)
        };
        let n = u32_at(&mut pos)? as usize;
        let mut refs = Vec::with_capacity(n);
        for _ in 0..n {
            let m = u32_at(&mut pos)? as usize;
            let mut windows = Vec::with_capacity(m);
            for _ in 0..m {
                let w = u32_at(&mut pos)?;
                let first = u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                pos += 8;
                windows.push((w, first));
            }
            refs.push(windows);
        }
        (pos == data.len()).then_some(LinearIndex { refs })
    }

    /// First record ordinal whose window covers `(tid, pos)`, if any.
    pub fn lookup(&self, tid: usize, pos: i32) -> Option<u64> {
        let window = (pos / INDEX_WINDOW) as u32;
        let windows = self.refs.get(tid)?;
        let i = windows.partition_point(|&(w, _)| w < window);
        windows
            .get(i)
            .filter(|&&(w, _)| w == window)
            .map(|&(_, f)| f)
    }
}

/// Builds a linear index. Records must be coordinate sorted.
///
/// # Panics
///
/// Debug-asserts sortedness.
pub fn build_index(n_refs: usize, records: &[Record]) -> (LinearIndex, OpWork) {
    debug_assert!(
        records
            .windows(2)
            .all(|w| w[0].coord_key() <= w[1].coord_key()),
        "index requires coordinate-sorted input"
    );
    let mut index = LinearIndex {
        refs: vec![Vec::new(); n_refs],
    };
    for (ordinal, r) in records.iter().enumerate() {
        if !r.is_mapped() || r.tid < 0 {
            continue;
        }
        let window = (r.pos / INDEX_WINDOW) as u32;
        let windows = &mut index.refs[r.tid as usize];
        if windows.last().map(|&(w, _)| w) != Some(window) {
            windows.push((window, ordinal as u64));
        }
    }
    (
        index,
        OpWork {
            records: records.len() as u64,
            comparisons: 0,
        },
    )
}

/// Region query (`samtools view chr:from-to`): returns the ordinals of
/// coordinate-sorted records whose start position falls within
/// `[from, to)` on `tid`, using the linear index to skip ahead.
pub fn filter_region(
    index: &LinearIndex,
    records: &[Record],
    tid: i32,
    from: i32,
    to: i32,
) -> (Vec<u64>, OpWork) {
    let mut out = Vec::new();
    let mut scanned = 0u64;
    if tid < 0 || from >= to {
        return (out, OpWork::default());
    }
    // Find the first indexed window at or after `from`'s window.
    let first_window = (from / INDEX_WINDOW) as u32;
    let Some(windows) = index.refs.get(tid as usize) else {
        return (out, OpWork::default());
    };
    let start_idx = windows.partition_point(|&(w, _)| w < first_window);
    let Some(&(_, start_ordinal)) = windows.get(start_idx) else {
        return (
            out,
            OpWork {
                records: 0,
                comparisons: 0,
            },
        );
    };
    for (ordinal, r) in records.iter().enumerate().skip(start_ordinal as usize) {
        scanned += 1;
        if !r.is_mapped() || r.tid > tid || (r.tid == tid && r.pos >= to) {
            break; // coordinate-sorted: nothing further can match
        }
        if r.tid == tid && r.pos >= from {
            out.push(ordinal as u64);
        }
    }
    (
        out,
        OpWork {
            records: scanned,
            comparisons: 0,
        },
    )
}

/// Reference-consuming span of a record (CIGAR `M` + `D` lengths).
pub fn reference_span(r: &Record) -> u32 {
    use crate::record::CigarOp;
    r.cigar
        .iter()
        .filter(|(_, op)| matches!(op, CigarOp::Match | CigarOp::Del))
        .map(|(n, _)| n)
        .sum()
}

/// Windowed pileup (`samtools mpileup`, coarsened): for each reference
/// and [`INDEX_WINDOW`]-sized window, the total aligned bases overlapping
/// the window. Dividing by the window size gives mean depth of coverage.
pub fn pileup(n_refs: usize, records: &[Record]) -> (Vec<Vec<u64>>, OpWork) {
    let mut cov = vec![Vec::new(); n_refs];
    for r in records {
        if !r.is_mapped() || r.tid < 0 || r.tid as usize >= n_refs {
            continue;
        }
        let start = r.pos.max(0) as u64;
        let end = start + reference_span(r) as u64;
        if end == start {
            continue;
        }
        let lanes = &mut cov[r.tid as usize];
        let last_window = (end.saturating_sub(1) / INDEX_WINDOW as u64) as usize;
        if lanes.len() <= last_window {
            lanes.resize(last_window + 1, 0);
        }
        let mut pos = start;
        while pos < end {
            let w = (pos / INDEX_WINDOW as u64) as usize;
            let window_end = (w as u64 + 1) * INDEX_WINDOW as u64;
            let chunk = end.min(window_end) - pos;
            lanes[w] += chunk;
            pos += chunk;
        }
    }
    (
        cov,
        OpWork {
            records: records.len() as u64,
            comparisons: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};

    fn data(n: usize) -> Vec<Record> {
        generate(&WorkloadConfig {
            records: n,
            ..WorkloadConfig::default()
        })
        .1
    }

    #[test]
    fn flagstat_totals() {
        let recs = data(1000);
        let (fs, work) = flagstat(&recs);
        assert_eq!(fs.total, 1000);
        assert_eq!(work.records, 1000);
        assert_eq!(fs.paired, 1000, "workload is fully paired");
        assert!(fs.mapped > 900);
    }

    #[test]
    fn qname_sort_orders_and_counts() {
        let mut recs = data(500);
        let work = qname_sort(&mut recs);
        assert!(recs.windows(2).all(|w| w[0].qname <= w[1].qname));
        assert!(
            work.comparisons >= 500,
            "n log n comparisons: {}",
            work.comparisons
        );
    }

    #[test]
    fn coordinate_sort_orders_unmapped_last() {
        let mut recs = data(500);
        let _ = coordinate_sort(&mut recs);
        assert!(recs
            .windows(2)
            .all(|w| w[0].coord_key() <= w[1].coord_key()));
        let first_unmapped = recs.iter().position(|r| !r.is_mapped());
        if let Some(i) = first_unmapped {
            assert!(
                recs[i..].iter().all(|r| !r.is_mapped()),
                "unmapped grouped at the end"
            );
        }
    }

    #[test]
    fn index_finds_windows() {
        let mut recs = data(2000);
        coordinate_sort(&mut recs);
        let (index, _) = build_index(4, &recs);
        // Every mapped record's window must resolve to an ordinal at or
        // before the record itself.
        for (ordinal, r) in recs.iter().enumerate() {
            if !r.is_mapped() {
                continue;
            }
            let first = index.lookup(r.tid as usize, r.pos).expect("window exists");
            assert!(first <= ordinal as u64);
            let hit = &recs[first as usize];
            assert_eq!(hit.tid, r.tid);
            assert_eq!(hit.pos / INDEX_WINDOW, r.pos / INDEX_WINDOW);
        }
        assert_eq!(index.lookup(0, 49_999_999), index.lookup(0, 49_999_999));
        assert_eq!(index.lookup(99, 0), None);
    }

    #[test]
    fn index_serialization_round_trips() {
        let mut recs = data(800);
        coordinate_sort(&mut recs);
        let (index, _) = build_index(4, &recs);
        let bytes = index.to_bytes();
        assert_eq!(LinearIndex::from_bytes(&bytes).unwrap(), index);
        assert_eq!(LinearIndex::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(LinearIndex::from_bytes(b""), None);
    }

    #[test]
    fn filter_region_matches_linear_scan() {
        let mut recs = data(3000);
        coordinate_sort(&mut recs);
        let (index, _) = build_index(4, &recs);
        for (tid, from, to) in [
            (0, 100_000, 5_000_000),
            (2, 0, 50_000_000),
            (1, 49_000_000, 50_000_000),
        ] {
            let (fast, work) = filter_region(&index, &recs, tid, from, to);
            let slow: Vec<u64> = recs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_mapped() && r.tid == tid && r.pos >= from && r.pos < to)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(fast, slow, "tid={tid} [{from},{to})");
            assert!(
                work.records <= recs.len() as u64,
                "index-assisted scan must not visit more than everything"
            );
        }
        // The index actually skips work for narrow queries.
        let (_, narrow) = filter_region(&index, &recs, 3, 40_000_000, 40_100_000);
        assert!(
            narrow.records < recs.len() as u64 / 2,
            "narrow query scanned {} of {}",
            narrow.records,
            recs.len()
        );
    }

    #[test]
    fn filter_region_edge_cases() {
        let mut recs = data(500);
        coordinate_sort(&mut recs);
        let (index, _) = build_index(4, &recs);
        assert!(
            filter_region(&index, &recs, -1, 0, 100).0.is_empty(),
            "unmapped tid"
        );
        assert!(
            filter_region(&index, &recs, 0, 100, 100).0.is_empty(),
            "empty range"
        );
        assert!(
            filter_region(&index, &recs, 99, 0, 100).0.is_empty(),
            "unknown tid"
        );
        assert!(
            filter_region(&index, &recs, 0, 49_999_999, 50_000_000)
                .0
                .len()
                <= recs.len(),
            "tail window"
        );
    }

    #[test]
    fn pileup_conserves_bases_and_matches_naive() {
        let recs = data(800);
        let (cov, work) = pileup(4, &recs);
        assert_eq!(work.records, 800);
        // Total coverage equals the sum of reference spans of mapped reads.
        let total: u64 = cov.iter().flatten().sum();
        let expected: u64 = recs
            .iter()
            .filter(|r| r.is_mapped())
            .map(|r| reference_span(r) as u64)
            .sum();
        assert_eq!(total, expected);
        // Naive per-record check on a window known to be covered.
        let r = recs.iter().find(|r| r.is_mapped()).unwrap();
        let w = (r.pos / INDEX_WINDOW) as usize;
        assert!(cov[r.tid as usize][w] > 0);
    }

    #[test]
    fn pileup_splits_across_window_boundaries() {
        use crate::record::CigarOp;
        // One read straddling a window boundary: coverage must split.
        let rec = Record {
            qname: "r".into(),
            flag: 0,
            tid: 0,
            pos: INDEX_WINDOW - 10,
            mapq: 60,
            cigar: vec![(30, CigarOp::Match)],
            seq: vec![b'A'; 30],
            qual: vec![30; 30],
        };
        let (cov, _) = pileup(1, &[rec]);
        assert_eq!(cov[0][0], 10, "bases before the boundary");
        assert_eq!(cov[0][1], 20, "bases after the boundary");
    }

    #[test]
    fn reference_span_counts_m_and_d_only() {
        use crate::record::CigarOp;
        let r = Record {
            qname: "r".into(),
            flag: 0,
            tid: 0,
            pos: 1,
            mapq: 0,
            cigar: vec![
                (5, CigarOp::SoftClip),
                (50, CigarOp::Match),
                (3, CigarOp::Ins),
                (2, CigarOp::Del),
                (40, CigarOp::Match),
            ],
            seq: vec![],
            qual: vec![],
        };
        assert_eq!(reference_span(&r), 92, "50M + 2D + 40M");
    }

    #[test]
    fn sorts_are_stable() {
        // Two records with equal keys keep their relative order.
        let mut recs = data(100);
        for r in recs.iter_mut() {
            r.qname = "same".into();
        }
        let tagged: Vec<Vec<u8>> = recs.iter().map(|r| r.seq.clone()).collect();
        qname_sort(&mut recs);
        let after: Vec<Vec<u8>> = recs.iter().map(|r| r.seq.clone()).collect();
        assert_eq!(tagged, after);
    }
}
