//! Synthetic alignment generator.
//!
//! The paper processes real DNA alignments (3.1 GiB of SAM / 0.9 GiB of
//! BAM). We have no access to that data, so the workload is synthetic:
//! paired reads with realistic field distributions (mostly-mapped,
//! occasional duplicates/secondary alignments, random positions over a
//! multi-chromosome reference, qnames in non-sorted order). The
//! experiments measure serialization and data-structure costs, which
//! depend on record counts and sizes, not on biological content.

use sjmp_sim::SimRng;

use crate::record::{flags, CigarOp, Record};
use crate::sam::RefDict;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of records.
    pub records: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Number of reference sequences.
    pub chromosomes: usize,
    /// Length of each reference sequence.
    pub chrom_len: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            records: 20_000,
            read_len: 100,
            chromosomes: 4,
            chrom_len: 50_000_000,
            seed: 42,
        }
    }
}

/// Generates a reference dictionary and `cfg.records` reads.
pub fn generate(cfg: &WorkloadConfig) -> (RefDict, Vec<Record>) {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let dict = RefDict {
        refs: (0..cfg.chromosomes)
            .map(|i| (format!("chr{}", i + 1), cfg.chrom_len))
            .collect(),
    };
    let bases = b"ACGT";
    let records = (0..cfg.records)
        .map(|i| {
            let unmapped = rng.gen_ratio(2, 100);
            let mut flag = flags::PAIRED
                | if i % 2 == 0 {
                    flags::READ1
                } else {
                    flags::READ2
                };
            if unmapped {
                flag |= flags::UNMAPPED;
            } else {
                if rng.gen_ratio(90, 100) {
                    flag |= flags::PROPER_PAIR;
                }
                if rng.gen_ratio(3, 100) {
                    flag |= flags::DUPLICATE;
                }
                if rng.gen_ratio(2, 100) {
                    flag |= flags::SECONDARY;
                }
                if rng.gen_bool(0.5) {
                    flag |= flags::REVERSE;
                }
            }
            if rng.gen_ratio(3, 100) {
                flag |= flags::MATE_UNMAPPED;
            }
            let (tid, pos) = if unmapped {
                (-1, 0)
            } else {
                (
                    rng.index(cfg.chromosomes) as i32,
                    rng.gen_range(1..u64::from(cfg.chrom_len.saturating_sub(cfg.read_len as u32)))
                        as i32,
                )
            };
            let cigar = if unmapped {
                vec![]
            } else if rng.gen_ratio(85, 100) {
                vec![(cfg.read_len as u32, CigarOp::Match)]
            } else {
                let clip = rng.gen_range(1..20) as u32;
                vec![
                    (clip, CigarOp::SoftClip),
                    (cfg.read_len as u32 - clip, CigarOp::Match),
                ]
            };
            Record {
                // Qnames deliberately out of order (hash-like suffix), so
                // qname sort has real work to do.
                qname: format!(
                    "HWI:{:06}:{:04}",
                    (i as u64 * 2654435761) % 1_000_000,
                    i % 10_000
                ),
                flag,
                tid,
                pos,
                mapq: if unmapped {
                    0
                } else {
                    rng.gen_range_inclusive(20, 60) as u8
                },
                seq: (0..cfg.read_len).map(|_| bases[rng.index(4)]).collect(),
                qual: (0..cfg.read_len)
                    .map(|_| rng.gen_range(20..40) as u8)
                    .collect(),
                cigar,
            }
        })
        .collect();
    (dict, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_deterministically() {
        let cfg = WorkloadConfig {
            records: 500,
            ..WorkloadConfig::default()
        };
        let (dict, recs) = generate(&cfg);
        assert_eq!(recs.len(), 500);
        assert_eq!(dict.refs.len(), 4);
        let (_, recs2) = generate(&cfg);
        assert_eq!(recs, recs2, "same seed, same data");
        let (_, recs3) = generate(&WorkloadConfig { seed: 43, ..cfg });
        assert_ne!(recs, recs3, "different seed, different data");
    }

    #[test]
    fn realistic_field_mix() {
        let (_, recs) = generate(&WorkloadConfig {
            records: 5000,
            ..WorkloadConfig::default()
        });
        let mapped = recs.iter().filter(|r| r.is_mapped()).count();
        assert!(mapped > 4500, "most reads mapped: {mapped}");
        assert!(mapped < 5000, "some unmapped reads exist");
        assert!(
            recs.iter().any(|r| r.cigar.len() == 2),
            "some soft-clipped reads"
        );
        let qnames_sorted = recs.windows(2).all(|w| w[0].qname <= w[1].qname);
        assert!(!qnames_sorted, "qnames must arrive unsorted");
        for r in recs.iter().filter(|r| r.is_mapped()) {
            assert!(r.tid >= 0 && (r.tid as usize) < 4);
            assert!(r.pos > 0);
            assert_eq!(r.seq.len(), 100);
            assert_eq!(r.qual.len(), 100);
        }
    }

    #[test]
    fn round_trips_through_both_formats() {
        let (dict, recs) = generate(&WorkloadConfig {
            records: 300,
            ..WorkloadConfig::default()
        });
        let sam = crate::sam::write_sam(&dict, &recs);
        let (d1, r1) = crate::sam::read_sam(&sam).unwrap();
        assert_eq!((&d1, &r1), (&dict, &recs));
        let bam = crate::bam::write_bam(&dict, &recs);
        let (d2, r2) = crate::bam::read_bam(&bam).unwrap();
        assert_eq!((&d2, &r2), (&dict, &recs));
    }
}
