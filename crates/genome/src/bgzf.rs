//! BGZF-style block compression.
//!
//! BAM files are BGZF containers: the payload is cut into blocks, each
//! deflate-compressed independently. The paper's point is the *cost* of
//! (de)serialization, not zlib specifically, so the per-block codec here
//! is our own LZSS variant (hash-chain match finder, 64 KiB window,
//! byte-oriented token stream) — a real compressor with the same
//! block-at-a-time structure and comparable work profile.
//!
//! Token stream: a control byte describes 8 items; bit=0 means a literal
//! byte follows, bit=1 means a match: 2-byte little-endian distance then
//! 1-byte length-4 (matches are 4..=259 bytes).

/// Uncompressed bytes per block (BGZF uses 64 KiB).
pub const BLOCK_SIZE: usize = 64 * 1024;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;
const HASH_BITS: u32 = 14;

/// Decompression failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgzfError {
    /// Container truncated or corrupt.
    Corrupt,
}

impl std::fmt::Display for BgzfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed stream")
    }
}

impl std::error::Error for BgzfError {}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses one block with LZSS.
fn compress_block(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    let mut ctrl_pos = 0usize;
    let mut ctrl_bits = 0u8;
    let mut ctrl_count = 0u8;
    let flush_ctrl = |out: &mut Vec<u8>, pos: usize, bits: u8| {
        out[pos] = bits;
    };
    out.push(0); // first control byte
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < 16 {
                let dist = i - cand;
                if dist > u16::MAX as usize {
                    break;
                }
                let mut l = 0;
                let max = (data.len() - i).min(MAX_MATCH);
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            ctrl_bits |= 1 << ctrl_count;
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for the matched region (sparsely).
            let end = i + best_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            out.push(data[i]);
            i += 1;
        }
        ctrl_count += 1;
        if ctrl_count == 8 {
            flush_ctrl(&mut out, ctrl_pos, ctrl_bits);
            ctrl_pos = out.len();
            out.push(0);
            ctrl_bits = 0;
            ctrl_count = 0;
        }
    }
    flush_ctrl(&mut out, ctrl_pos, ctrl_bits);
    out
}

fn decompress_block(mut input: &[u8], expected: usize) -> Result<Vec<u8>, BgzfError> {
    let mut out = Vec::with_capacity(expected);
    let mut ctrl = 0u8;
    let mut ctrl_count = 8u8; // force a control-byte read first
    while out.len() < expected {
        if ctrl_count == 8 {
            let (&c, rest) = input.split_first().ok_or(BgzfError::Corrupt)?;
            ctrl = c;
            input = rest;
            ctrl_count = 0;
        }
        if ctrl & (1 << ctrl_count) != 0 {
            if input.len() < 3 {
                return Err(BgzfError::Corrupt);
            }
            let dist = u16::from_le_bytes([input[0], input[1]]) as usize;
            let len = input[2] as usize + MIN_MATCH;
            input = &input[3..];
            if dist == 0 || dist > out.len() {
                return Err(BgzfError::Corrupt);
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let (&b, rest) = input.split_first().ok_or(BgzfError::Corrupt)?;
            out.push(b);
            input = rest;
        }
        ctrl_count += 1;
    }
    if out.len() != expected {
        return Err(BgzfError::Corrupt);
    }
    Ok(out)
}

/// Compresses `data` into a BGZF-style container.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for block in data.chunks(BLOCK_SIZE) {
        let comp = compress_block(block);
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&(comp.len() as u32).to_le_bytes());
        out.extend_from_slice(&comp);
    }
    out
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// [`BgzfError::Corrupt`] on malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, BgzfError> {
    if data.len() < 8 {
        return Err(BgzfError::Corrupt);
    }
    let total = u64::from_le_bytes(data[..8].try_into().expect("checked")) as usize;
    let mut rest = &data[8..];
    // Sanity bound: each block contributes at most BLOCK_SIZE bytes and
    // costs at least an 8-byte header, so a valid container cannot claim
    // more than this (guards capacity against corrupt headers).
    let max_plausible = (data.len() / 8 + 1).saturating_mul(BLOCK_SIZE);
    if total > max_plausible {
        return Err(BgzfError::Corrupt);
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        if rest.len() < 8 {
            return Err(BgzfError::Corrupt);
        }
        let orig = u32::from_le_bytes(rest[..4].try_into().expect("checked")) as usize;
        let comp = u32::from_le_bytes(rest[4..8].try_into().expect("checked")) as usize;
        rest = &rest[8..];
        if rest.len() < comp {
            return Err(BgzfError::Corrupt);
        }
        out.extend(decompress_block(&rest[..comp], orig)?);
        rest = &rest[comp..];
    }
    if out.len() != total {
        return Err(BgzfError::Corrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_and_small() {
        for data in [&b""[..], b"a", b"hello world", &[0u8; 10]] {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn round_trip_repetitive_compresses_well() {
        let data: Vec<u8> = b"ACGTACGTACGT"
            .iter()
            .cycle()
            .take(200_000)
            .copied()
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive data must compress: {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn round_trip_random_data() {
        // Deterministic pseudo-random bytes (incompressible).
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..150_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn round_trip_sam_like_text() {
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(
                format!(
                    "read{i:06}\t99\tchr1\t{}\t60\t100M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII\n",
                    i * 37
                )
                .as_bytes(),
            );
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 2, "text must compress at least 2x");
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(decompress(b"").is_err());
        assert!(
            decompress(&[1, 0, 0, 0, 0, 0, 0, 0]).is_err(),
            "missing block"
        );
        let mut c = compress(b"some data that is long enough to matter");
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
        // Flip a match distance to point before the start.
        let data = vec![7u8; 1000];
        let mut c2 = compress(&data);
        let len = c2.len();
        c2[len - 2] = 0xff;
        c2[len - 1] = 0xff;
        // Either corrupt or still decodable to wrong content — must not
        // panic. (Round-trip correctness is covered above.)
        let _ = decompress(&c2);
    }

    #[test]
    fn spans_multiple_blocks() {
        let data: Vec<u8> = (0..3 * BLOCK_SIZE + 123).map(|i| (i % 251) as u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
