//! SAM text serialization (the paper's `SAM` format).
//!
//! Tab-separated mandatory fields, one record per line, preceded by a
//! minimal header (`@HD`, `@SQ` lines). The parser accepts what the
//! writer produces plus `*` placeholders.

use crate::record::{CigarOp, Record};

/// Reference sequence dictionary: names and lengths.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefDict {
    /// (name, length) per reference sequence; `tid` indexes this.
    pub refs: Vec<(String, u32)>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamError {
    /// A record line had the wrong number of fields.
    BadFieldCount(usize),
    /// A numeric field failed to parse.
    BadNumber(&'static str),
    /// Bad CIGAR string.
    BadCigar,
    /// Unknown reference name.
    UnknownRef(String),
}

impl std::fmt::Display for SamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamError::BadFieldCount(n) => write!(f, "record line has {n} fields, expected 11"),
            SamError::BadNumber(field) => write!(f, "unparsable numeric field {field}"),
            SamError::BadCigar => write!(f, "bad CIGAR string"),
            SamError::UnknownRef(name) => write!(f, "unknown reference {name}"),
        }
    }
}

impl std::error::Error for SamError {}

/// Serializes a dataset to SAM text.
pub fn write_sam(dict: &RefDict, records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 160 + 64);
    out.extend_from_slice(b"@HD\tVN:1.6\tSO:unknown\n");
    for (name, len) in &dict.refs {
        out.extend_from_slice(format!("@SQ\tSN:{name}\tLN:{len}\n").as_bytes());
    }
    for r in records {
        let rname = if r.tid >= 0 {
            dict.refs
                .get(r.tid as usize)
                .map(|(n, _)| n.as_str())
                .unwrap_or("*")
        } else {
            "*"
        };
        let cigar = if r.cigar.is_empty() {
            "*".to_string()
        } else {
            r.cigar
                .iter()
                .map(|(n, op)| format!("{n}{}", op.ch()))
                .collect()
        };
        let seq = if r.seq.is_empty() {
            "*".to_string()
        } else {
            String::from_utf8_lossy(&r.seq).into_owned()
        };
        let qual: String = if r.qual.is_empty() {
            "*".to_string()
        } else {
            r.qual.iter().map(|&q| (q + 33) as char).collect()
        };
        // RNEXT/PNEXT/TLEN are unused by our workloads: *, 0, 0.
        out.extend_from_slice(
            format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t*\t0\t0\t{}\t{}\n",
                r.qname, r.flag, rname, r.pos, r.mapq, cigar, seq, qual
            )
            .as_bytes(),
        );
    }
    out
}

fn parse_cigar(s: &str) -> Result<Vec<(u32, CigarOp)>, SamError> {
    if s == "*" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut n = 0u32;
    let mut have_digit = false;
    for c in s.chars() {
        if let Some(d) = c.to_digit(10) {
            n = n.wrapping_mul(10).wrapping_add(d);
            have_digit = true;
        } else {
            let op = CigarOp::from_ch(c).ok_or(SamError::BadCigar)?;
            if !have_digit {
                return Err(SamError::BadCigar);
            }
            out.push((n, op));
            n = 0;
            have_digit = false;
        }
    }
    if have_digit {
        return Err(SamError::BadCigar);
    }
    Ok(out)
}

/// Parses SAM text back into a dictionary and records.
///
/// # Errors
///
/// [`SamError`] on malformed lines; header lines other than `@SQ` are
/// skipped.
pub fn read_sam(data: &[u8]) -> Result<(RefDict, Vec<Record>), SamError> {
    let text = String::from_utf8_lossy(data);
    let mut dict = RefDict::default();
    let mut records = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            if let Some(sq) = rest.strip_prefix("SQ\t") {
                let mut name = None;
                let mut len = None;
                for field in sq.split('\t') {
                    if let Some(n) = field.strip_prefix("SN:") {
                        name = Some(n.to_string());
                    } else if let Some(l) = field.strip_prefix("LN:") {
                        len = l.parse::<u32>().ok();
                    }
                }
                if let (Some(n), Some(l)) = (name, len) {
                    dict.refs.push((n, l));
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 11 {
            return Err(SamError::BadFieldCount(fields.len()));
        }
        let tid = if fields[2] == "*" {
            -1
        } else {
            dict.refs
                .iter()
                .position(|(n, _)| n == fields[2])
                .map(|i| i as i32)
                .ok_or_else(|| SamError::UnknownRef(fields[2].to_string()))?
        };
        records.push(Record {
            qname: fields[0].to_string(),
            flag: fields[1].parse().map_err(|_| SamError::BadNumber("FLAG"))?,
            tid,
            pos: fields[3].parse().map_err(|_| SamError::BadNumber("POS"))?,
            mapq: fields[4].parse().map_err(|_| SamError::BadNumber("MAPQ"))?,
            cigar: parse_cigar(fields[5])?,
            seq: if fields[9] == "*" {
                Vec::new()
            } else {
                fields[9].as_bytes().to_vec()
            },
            qual: if fields[10] == "*" {
                Vec::new()
            } else {
                fields[10].bytes().map(|b| b.saturating_sub(33)).collect()
            },
        });
    }
    Ok((dict, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::flags;

    fn dataset() -> (RefDict, Vec<Record>) {
        let dict = RefDict {
            refs: vec![("chr1".into(), 100_000), ("chr2".into(), 50_000)],
        };
        let records = vec![
            Record {
                qname: "read1".into(),
                flag: flags::PAIRED | flags::READ1,
                tid: 0,
                pos: 1234,
                mapq: 60,
                cigar: vec![
                    (50, CigarOp::Match),
                    (2, CigarOp::Ins),
                    (48, CigarOp::Match),
                ],
                seq: b"ACGTACGT".to_vec(),
                qual: vec![30, 31, 32, 33, 30, 31, 32, 33],
            },
            Record {
                qname: "read2".into(),
                flag: flags::UNMAPPED,
                tid: -1,
                pos: 0,
                mapq: 0,
                cigar: vec![],
                seq: vec![],
                qual: vec![],
            },
        ];
        (dict, records)
    }

    #[test]
    fn round_trip() {
        let (dict, records) = dataset();
        let text = write_sam(&dict, &records);
        let (dict2, records2) = read_sam(&text).unwrap();
        assert_eq!(dict, dict2);
        assert_eq!(records, records2);
    }

    #[test]
    fn text_format_sanity() {
        let (dict, records) = dataset();
        let text = String::from_utf8(write_sam(&dict, &records)).unwrap();
        assert!(text.starts_with("@HD"));
        assert!(text.contains("@SQ\tSN:chr1\tLN:100000"));
        assert!(text.contains("read1\t65\tchr1\t1234\t60\t50M2I48M"));
        assert!(text.contains("read2\t4\t*\t0\t0\t*"));
    }

    #[test]
    fn bad_inputs() {
        assert!(matches!(
            read_sam(b"a\tb\tc\n"),
            Err(SamError::BadFieldCount(3))
        ));
        let line = b"q\tX\t*\t0\t0\t*\t*\t0\t0\t*\t*\n";
        assert!(matches!(read_sam(line), Err(SamError::BadNumber("FLAG"))));
        let badcigar = b"q\t0\t*\t0\t0\t5Q\t*\t0\t0\t*\t*\n";
        assert!(matches!(read_sam(badcigar), Err(SamError::BadCigar)));
        let unknownref = b"q\t0\tchrX\t0\t0\t*\t*\t0\t0\t*\t*\n";
        assert!(matches!(read_sam(unknownref), Err(SamError::UnknownRef(_))));
    }

    #[test]
    fn cigar_parser_edges() {
        assert_eq!(parse_cigar("*").unwrap(), vec![]);
        assert_eq!(parse_cigar("10M").unwrap(), vec![(10, CigarOp::Match)]);
        assert!(parse_cigar("M").is_err(), "op without count");
        assert!(parse_cigar("10").is_err(), "count without op");
    }
}
