//! # sjmp-genome — the SAMTools experiment (Section 5.4)
//!
//! A reproduction of the genomics workflow the paper uses to show
//! SpaceJMP "as a mechanism to keep data structures in memory, avoiding
//! both regular file I/O and memory-mapped files":
//!
//! * [`record`] — the alignment data model (SAM mandatory fields, flag
//!   bits, flagstat counters);
//! * [`sam`] / [`bam`] / [`bgzf`] — the serialized formats: SAM text and
//!   BGZF-compressed binary BAM (with our own LZ block codec standing in
//!   for zlib);
//! * [`memfs`] — the in-memory file system that factors disk out, as in
//!   the paper;
//! * [`workload`] — a synthetic alignment generator (no access to the
//!   paper's 3.1 GiB dataset; sizes are scaled);
//! * [`ops`] — flagstat, qname sort, coordinate sort, and linear-index
//!   construction;
//! * [`vasstore`] — the pointer-rich, segment-resident record store that
//!   persists across process lifetimes in a VAS;
//! * [`modes`] — the four pipelines compared in Figures 11 and 12
//!   (SAM, BAM, SpaceJMP, mmap) with cycle-charged execution.

pub mod bam;
pub mod bgzf;
pub mod memfs;
pub mod modes;
pub mod ops;
pub mod record;
pub mod sam;
pub mod vasstore;
pub mod workload;

pub use modes::{run_pipeline, OpTimes, StorageMode};
pub use ops::{
    build_index, coordinate_sort, filter_region, flagstat, pileup, qname_sort, reference_span,
    LinearIndex, OpWork,
};
pub use record::{CigarOp, Flagstat, Record};
pub use sam::{read_sam, write_sam, RefDict};
pub use vasstore::RecStore;
pub use workload::{generate, WorkloadConfig};
