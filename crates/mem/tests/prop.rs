//! Property-based tests over the paging and TLB substrate: arbitrary
//! map/unmap sequences keep the page tables consistent with a shadow
//! model, and the MMU (TLB + walker) always agrees with a direct walk.

use std::collections::HashMap;

use proptest::prelude::*;
use sjmp_mem::cost::{CostModel, CycleClock};
use sjmp_mem::paging::{self, PteFlags};
use sjmp_mem::{Access, Asid, MemError, Mmu, PhysMem, VirtAddr};

#[derive(Debug, Clone)]
enum Op {
    /// Map page `vpage` to frame `fpage` (both small indices).
    Map { vpage: u64, fpage: u64, writable: bool },
    /// Unmap page `vpage`.
    Unmap { vpage: u64 },
    /// Translate (read) page `vpage` through the MMU.
    Read { vpage: u64 },
    /// Translate (write) page `vpage` through the MMU.
    Write { vpage: u64 },
    /// Reload CR3 (flushes the untagged TLB).
    Reload,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let vp = 0u64..48;
    let fp = 0u64..64;
    prop_oneof![
        (vp.clone(), fp, any::<bool>()).prop_map(|(vpage, fpage, writable)| Op::Map {
            vpage,
            fpage,
            writable
        }),
        vp.clone().prop_map(|vpage| Op::Unmap { vpage }),
        vp.clone().prop_map(|vpage| Op::Read { vpage }),
        vp.prop_map(|vpage| Op::Write { vpage }),
        Just(Op::Reload),
    ]
}

/// Virtual pages are spread across several PML4/PDPT slots so the walks
/// exercise deep table paths, not just one leaf table.
fn vaddr(vpage: u64) -> VirtAddr {
    let slot = vpage % 3;
    let mid = vpage % 5;
    VirtAddr::new((slot << 39) | (mid << 30) | (vpage << 12))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn paging_matches_shadow_model(ops in prop::collection::vec(op_strategy(), 1..160)) {
        let mut phys = PhysMem::new(64 << 20);
        let root = paging::new_root(&mut phys).unwrap();
        let data_base = phys.alloc_contiguous(64).unwrap();
        let clock = CycleClock::new();
        let mut mmu = Mmu::new(64, 4, CostModel::default(), clock);
        mmu.load_cr3(root, Asid::UNTAGGED);

        // Shadow: vpage -> (fpage, writable).
        let mut shadow: HashMap<u64, (u64, bool)> = HashMap::new();

        for op in ops {
            match op {
                Op::Map { vpage, fpage, writable } => {
                    let mut flags = PteFlags::USER;
                    if writable {
                        flags |= PteFlags::WRITABLE;
                    }
                    let pa = sjmp_mem::Pfn(data_base.0 + fpage).base();
                    let res = paging::map(&mut phys, root, vaddr(vpage), pa, sjmp_mem::PageSize::Size4K, flags);
                    if let std::collections::hash_map::Entry::Vacant(e) = shadow.entry(vpage) {
                        prop_assert!(res.is_ok(), "map failed: {res:?}");
                        e.insert((fpage, writable));
                    } else {
                        prop_assert!(matches!(res, Err(MemError::AlreadyMapped(_))));
                    }
                }
                Op::Unmap { vpage } => {
                    let res = paging::unmap(&mut phys, root, vaddr(vpage));
                    if shadow.remove(&vpage).is_some() {
                        prop_assert!(res.is_ok());
                        mmu.invlpg(vaddr(vpage));
                    } else {
                        let faulted = matches!(res, Err(MemError::PageFault { .. }));
                        prop_assert!(faulted, "expected fault, got {res:?}");
                    }
                }
                Op::Read { vpage } | Op::Write { vpage } => {
                    let access = if matches!(op, Op::Write { .. }) { Access::Write } else { Access::Read };
                    let res = mmu.translate(&mut phys, vaddr(vpage), access);
                    match shadow.get(&vpage) {
                        None => prop_assert!(
                            matches!(res, Err(MemError::PageFault { .. })),
                            "expected fault, got {res:?}"
                        ),
                        Some(&(fpage, writable)) => {
                            if access == Access::Write && !writable {
                                let prot = matches!(res, Err(MemError::ProtectionFault { .. }));
                                prop_assert!(prot, "expected protection fault, got {res:?}");
                            } else {
                                let pa = res.unwrap();
                                prop_assert_eq!(pa.pfn().0, data_base.0 + fpage, "wrong frame");
                            }
                        }
                    }
                }
                Op::Reload => mmu.load_cr3(root, Asid::UNTAGGED),
            }
        }

        // Final sweep: every shadow entry translates; everything else faults.
        for vpage in 0..48u64 {
            let res = paging::walk(&mut phys, root, vaddr(vpage));
            match shadow.get(&vpage) {
                Some(&(fpage, _)) => {
                    let (tr, _) = res.unwrap();
                    prop_assert_eq!(tr.pa.pfn().0, data_base.0 + fpage);
                }
                None => prop_assert!(res.is_err()),
            }
        }
    }

    #[test]
    fn tlb_never_contradicts_the_page_tables(
        pages in prop::collection::vec(0u64..32, 2..40),
        flush_every in 1usize..8,
    ) {
        // Accessing pages in an arbitrary order, with periodic flushes,
        // the TLB-served translation must equal a fresh walk every time.
        let mut phys = PhysMem::new(16 << 20);
        let root = paging::new_root(&mut phys).unwrap();
        let base = phys.alloc_contiguous(32).unwrap();
        for p in 0..32u64 {
            paging::map(
                &mut phys,
                root,
                VirtAddr::new(0x40_0000 + p * 4096),
                sjmp_mem::Pfn(base.0 + p).base(),
                sjmp_mem::PageSize::Size4K,
                PteFlags::USER | PteFlags::WRITABLE,
            )
            .unwrap();
        }
        let mut mmu = Mmu::new(16, 4, CostModel::default(), CycleClock::new());
        mmu.load_cr3(root, Asid::UNTAGGED);
        for (i, &p) in pages.iter().enumerate() {
            let va = VirtAddr::new(0x40_0000 + p * 4096 + (i as u64 % 512) * 8);
            let via_mmu = mmu.translate(&mut phys, va, Access::Read).unwrap();
            let (walked, _) = paging::walk(&mut phys, root, va).unwrap();
            prop_assert_eq!(via_mmu, walked.pa);
            if i % flush_every == 0 {
                mmu.flush_tlb();
            }
        }
    }
}
