//! Randomized tests over the paging and TLB substrate: arbitrary
//! map/unmap sequences keep the page tables consistent with a shadow
//! model, and the MMU (TLB + walker) always agrees with a direct walk.
//!
//! Cases are generated from fixed seeds with [`SimRng`], so every run
//! explores the same sequences and any failure replays exactly.

use std::collections::HashMap;

use sjmp_mem::cost::{CostModel, CycleClock};
use sjmp_mem::paging::{self, PteFlags};
use sjmp_mem::{Access, Asid, MemError, Mmu, PhysMem, VirtAddr};
use sjmp_sim::SimRng;

#[derive(Debug, Clone)]
enum Op {
    /// Map page `vpage` to frame `fpage` (both small indices).
    Map {
        vpage: u64,
        fpage: u64,
        writable: bool,
    },
    /// Unmap page `vpage`.
    Unmap { vpage: u64 },
    /// Translate (read) page `vpage` through the MMU.
    Read { vpage: u64 },
    /// Translate (write) page `vpage` through the MMU.
    Write { vpage: u64 },
    /// Reload CR3 (flushes the untagged TLB).
    Reload,
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.gen_range(0..5) {
        0 => Op::Map {
            vpage: rng.gen_range(0..48),
            fpage: rng.gen_range(0..64),
            writable: rng.gen_bool(0.5),
        },
        1 => Op::Unmap {
            vpage: rng.gen_range(0..48),
        },
        2 => Op::Read {
            vpage: rng.gen_range(0..48),
        },
        3 => Op::Write {
            vpage: rng.gen_range(0..48),
        },
        _ => Op::Reload,
    }
}

/// Virtual pages are spread across several PML4/PDPT slots so the walks
/// exercise deep table paths, not just one leaf table.
fn vaddr(vpage: u64) -> VirtAddr {
    let slot = vpage % 3;
    let mid = vpage % 5;
    VirtAddr::new((slot << 39) | (mid << 30) | (vpage << 12))
}

#[test]
fn paging_matches_shadow_model() {
    for seed in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let ops: Vec<Op> = (0..rng.index(159) + 1)
            .map(|_| random_op(&mut rng))
            .collect();

        let mut phys = PhysMem::new(64 << 20);
        let root = paging::new_root(&mut phys).unwrap();
        let data_base = phys.alloc_contiguous(64).unwrap();
        let clock = CycleClock::new();
        let mut mmu = Mmu::new(64, 4, CostModel::default(), clock);
        mmu.load_cr3(root, Asid::UNTAGGED);

        // Shadow: vpage -> (fpage, writable).
        let mut shadow: HashMap<u64, (u64, bool)> = HashMap::new();

        for op in ops {
            match op {
                Op::Map {
                    vpage,
                    fpage,
                    writable,
                } => {
                    let mut flags = PteFlags::USER;
                    if writable {
                        flags |= PteFlags::WRITABLE;
                    }
                    let pa = sjmp_mem::Pfn(data_base.0 + fpage).base();
                    let res = paging::map(
                        &mut phys,
                        root,
                        vaddr(vpage),
                        pa,
                        sjmp_mem::PageSize::Size4K,
                        flags,
                    );
                    if let std::collections::hash_map::Entry::Vacant(e) = shadow.entry(vpage) {
                        assert!(res.is_ok(), "seed {seed}: map failed: {res:?}");
                        e.insert((fpage, writable));
                    } else {
                        assert!(
                            matches!(res, Err(MemError::AlreadyMapped(_))),
                            "seed {seed}: expected AlreadyMapped, got {res:?}"
                        );
                    }
                }
                Op::Unmap { vpage } => {
                    let res = paging::unmap(&mut phys, root, vaddr(vpage));
                    if shadow.remove(&vpage).is_some() {
                        assert!(res.is_ok(), "seed {seed}: unmap failed: {res:?}");
                        mmu.invlpg(vaddr(vpage));
                    } else {
                        assert!(
                            matches!(res, Err(MemError::PageFault { .. })),
                            "seed {seed}: expected fault, got {res:?}"
                        );
                    }
                }
                Op::Read { vpage } | Op::Write { vpage } => {
                    let access = if matches!(op, Op::Write { .. }) {
                        Access::Write
                    } else {
                        Access::Read
                    };
                    let res = mmu.translate(&mut phys, vaddr(vpage), access);
                    match shadow.get(&vpage) {
                        None => assert!(
                            matches!(res, Err(MemError::PageFault { .. })),
                            "seed {seed}: expected fault, got {res:?}"
                        ),
                        Some(&(fpage, writable)) => {
                            if access == Access::Write && !writable {
                                assert!(
                                    matches!(res, Err(MemError::ProtectionFault { .. })),
                                    "seed {seed}: expected protection fault, got {res:?}"
                                );
                            } else {
                                let pa = res.unwrap();
                                assert_eq!(
                                    pa.pfn().0,
                                    data_base.0 + fpage,
                                    "seed {seed}: wrong frame"
                                );
                            }
                        }
                    }
                }
                Op::Reload => mmu.load_cr3(root, Asid::UNTAGGED),
            }
        }

        // Final sweep: every shadow entry translates; everything else faults.
        for vpage in 0..48u64 {
            let res = paging::walk(&mut phys, root, vaddr(vpage));
            match shadow.get(&vpage) {
                Some(&(fpage, _)) => {
                    let (tr, _) = res.unwrap();
                    assert_eq!(tr.pa.pfn().0, data_base.0 + fpage, "seed {seed}");
                }
                None => assert!(res.is_err(), "seed {seed}"),
            }
        }
    }
}

#[test]
fn tlb_never_contradicts_the_page_tables() {
    // Accessing pages in an arbitrary order, with periodic flushes,
    // the TLB-served translation must equal a fresh walk every time.
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x71b);
        let pages: Vec<u64> = (0..rng.index(38) + 2)
            .map(|_| rng.gen_range(0..32))
            .collect();
        let flush_every = rng.index(7) + 1;

        let mut phys = PhysMem::new(16 << 20);
        let root = paging::new_root(&mut phys).unwrap();
        let base = phys.alloc_contiguous(32).unwrap();
        for p in 0..32u64 {
            paging::map(
                &mut phys,
                root,
                VirtAddr::new(0x40_0000 + p * 4096),
                sjmp_mem::Pfn(base.0 + p).base(),
                sjmp_mem::PageSize::Size4K,
                PteFlags::USER | PteFlags::WRITABLE,
            )
            .unwrap();
        }
        let mut mmu = Mmu::new(16, 4, CostModel::default(), CycleClock::new());
        mmu.load_cr3(root, Asid::UNTAGGED);
        for (i, &p) in pages.iter().enumerate() {
            let va = VirtAddr::new(0x40_0000 + p * 4096 + (i as u64 % 512) * 8);
            let via_mmu = mmu.translate(&mut phys, va, Access::Read).unwrap();
            let (walked, _) = paging::walk(&mut phys, root, va).unwrap();
            assert_eq!(via_mmu, walked.pa, "seed {seed}");
            if i % flush_every == 0 {
                mmu.flush_tlb();
            }
        }
    }
}
