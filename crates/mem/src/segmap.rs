//! The no-VM base+bound baseline backend.
//!
//! "The Cost of Software-Based Memory Management Without Virtual Memory"
//! asks what address translation costs when there is no page-granular
//! indirection at all: contiguous segments, a base+bound check per
//! access, no TLB. [`SegMap`] reproduces that design point as a
//! [`TranslationBackend`], giving the fig6/fig8 comparisons a lower
//! bound that no paging scheme can beat.
//!
//! The implementation is a *shadow* of the four-level tables, not a
//! replacement: every structural operation first delegates to
//! [`crate::paging`] so the real trees keep existing in simulated frames
//! (frame-accounting audits, offline trace replay, and reclaim all walk
//! those trees and are unchanged under this backend), then records the
//! mapping in a flat per-root segment table. Only
//! [`TranslationBackend::translate`] consults the shadow — a sorted-array
//! binary search standing in for the hardware bound check.
//!
//! Mappings made through a root whose PML4 slot is *linked* to a
//! template ([`TranslationBackend::link_subtree`]) are recorded against
//! the template root, mirroring how a paging write through a linked slot
//! lands in the shared subtree and becomes visible to every root that
//! links it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::addr::{PageSize, Pfn, PhysAddr, VirtAddr, PAGE_SIZE};
use crate::error::MemError;
use crate::paging::{self, MapStats, PteFlags, Translation, UnmapStats};
use crate::phys::PhysMem;
use crate::TranslationBackend;

/// One contiguous virtual-to-physical segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegEntry {
    /// First virtual address covered.
    base: VirtAddr,
    /// Length in bytes.
    len: u64,
    /// Physical address `base` maps to (linear within the segment).
    pa: PhysAddr,
    /// Effective leaf flags (always include PRESENT).
    flags: PteFlags,
    /// Page size the region was mapped with (reported in translations).
    page_size: PageSize,
}

impl SegEntry {
    fn end(&self) -> u64 {
        self.base.raw() + self.len
    }

    fn covers(&self, va: VirtAddr) -> bool {
        self.base.raw() <= va.raw() && va.raw() < self.end()
    }
}

#[derive(Debug, Default)]
struct SegMapState {
    /// Per-root segment tables, each sorted by `base` (non-overlapping).
    segs: HashMap<Pfn, Vec<SegEntry>>,
    /// Per-root subtree links: `(pml4 slot, template root)`.
    links: HashMap<Pfn, Vec<(usize, Pfn)>>,
}

impl SegMapState {
    /// The root whose table a mapping in `root`'s `pml4_index` slot
    /// belongs to: the link target if the slot is linked, else `root`.
    fn owner(&self, root: Pfn, pml4_index: usize) -> Pfn {
        self.links
            .get(&root)
            .and_then(|ls| ls.iter().find(|(s, _)| *s == pml4_index))
            .map_or(root, |(_, src)| *src)
    }

    fn insert(&mut self, owner: Pfn, entry: SegEntry) {
        let v = self.segs.entry(owner).or_default();
        let at = v.partition_point(|e| e.base < entry.base);
        v.insert(at, entry);
    }

    fn find(&self, root: Pfn, va: VirtAddr) -> Option<&SegEntry> {
        if let Some(e) = Self::find_in(self.segs.get(&root), va) {
            return Some(e);
        }
        let slot = va.pml4_index();
        for (s, src) in self.links.get(&root)?.iter() {
            if *s == slot {
                if let Some(e) = Self::find_in(self.segs.get(src), va) {
                    return Some(e);
                }
            }
        }
        None
    }

    fn find_in(v: Option<&Vec<SegEntry>>, va: VirtAddr) -> Option<&SegEntry> {
        let v = v?;
        let idx = v.partition_point(|e| e.base.raw() <= va.raw());
        let e = &v[idx.checked_sub(1)?];
        e.covers(va).then_some(e)
    }

    /// Removes `[va, va+len)` from every table visible through `root`
    /// (its own and any linked template's), splitting partially covered
    /// entries. Mirrors a paging unmap through a linked slot, which
    /// mutates the shared subtree.
    fn trim(&mut self, root: Pfn, va: VirtAddr, len: u64) {
        let mut owners: Vec<Pfn> = vec![root];
        if let Some(ls) = self.links.get(&root) {
            owners.extend(ls.iter().map(|(_, src)| *src));
        }
        for owner in owners {
            let Some(v) = self.segs.get_mut(&owner) else {
                continue;
            };
            Self::trim_vec(v, va.raw(), va.raw() + len);
        }
    }

    fn trim_vec(v: &mut Vec<SegEntry>, start: u64, end: u64) {
        let mut out = Vec::with_capacity(v.len());
        for e in v.drain(..) {
            if e.end() <= start || e.base.raw() >= end {
                out.push(e);
                continue;
            }
            // Remainders lose superpage status: an arbitrary byte cut
            // need not stay aligned to the original page size.
            if e.base.raw() < start {
                out.push(SegEntry {
                    len: start - e.base.raw(),
                    page_size: PageSize::Size4K,
                    ..e
                });
            }
            if e.end() > end {
                out.push(SegEntry {
                    base: VirtAddr::new_unchecked(end),
                    len: e.end() - end,
                    pa: e.pa.add(end - e.base.raw()),
                    page_size: PageSize::Size4K,
                    ..e
                });
            }
        }
        *v = out;
    }

    /// Rewrites the flags of the 4 KiB page containing `va`, splitting
    /// the covering entry if it spans more than that page.
    fn reprotect(&mut self, root: Pfn, va: VirtAddr, flags: PteFlags) {
        let page = va.align_down(PAGE_SIZE);
        let mut owners: Vec<Pfn> = vec![root];
        if let Some(ls) = self.links.get(&root) {
            owners.extend(ls.iter().map(|(_, src)| *src));
        }
        for owner in owners {
            let Some(v) = self.segs.get_mut(&owner) else {
                continue;
            };
            let Some(idx) = v
                .iter()
                .position(|e| e.covers(page) && e.covers(page.add(PAGE_SIZE - 1)))
            else {
                continue;
            };
            let e = v[idx];
            let off = page.raw() - e.base.raw();
            Self::trim_vec(v, page.raw(), page.raw() + PAGE_SIZE);
            let entry = SegEntry {
                base: page,
                len: PAGE_SIZE,
                pa: e.pa.add(off),
                flags: flags | PteFlags::PRESENT,
                page_size: PageSize::Size4K,
            };
            let at = v.partition_point(|x| x.base < entry.base);
            v.insert(at, entry);
            return;
        }
    }
}

/// The no-VM backend: per-root flat segment tables shadowing the real
/// four-level trees. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct SegMap {
    state: Arc<Mutex<SegMapState>>,
}

impl SegMap {
    /// Creates an empty segment-table backend.
    pub fn new() -> Self {
        SegMap::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SegMapState> {
        self.state.lock().expect("segmap state poisoned")
    }

    /// Number of segment entries recorded for `root` (its own, not
    /// counting linked templates) — for tests and reports.
    pub fn entries_for(&self, root: Pfn) -> usize {
        self.lock().segs.get(&root).map_or(0, Vec::len)
    }
}

impl TranslationBackend for SegMap {
    fn new_root(&self, phys: &mut PhysMem) -> Result<Pfn, MemError> {
        paging::new_root(phys)
    }

    fn map(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        let stats = paging::map(phys, root, va, pa, size, flags)?;
        let mut st = self.lock();
        let owner = st.owner(root, va.pml4_index());
        st.insert(
            owner,
            SegEntry {
                base: va,
                len: size.bytes(),
                pa,
                flags: flags | PteFlags::PRESENT,
                page_size: size,
            },
        );
        Ok(stats)
    }

    fn map_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        let stats = paging::map_region(phys, root, va, pa, len, size, flags)?;
        let mut st = self.lock();
        let owner = st.owner(root, va.pml4_index());
        st.insert(
            owner,
            SegEntry {
                base: va,
                len,
                pa,
                flags: flags | PteFlags::PRESENT,
                page_size: size,
            },
        );
        Ok(stats)
    }

    fn unmap_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        len: u64,
    ) -> Result<UnmapStats, MemError> {
        let stats = paging::unmap_region(phys, root, va, len)?;
        self.lock().trim(root, va, len);
        Ok(stats)
    }

    fn translate(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
    ) -> Result<(Translation, u32), MemError> {
        let _ = phys; // the shadow table is authoritative for lookups
        let st = self.lock();
        let e = st.find(root, va).ok_or(MemError::PageFault {
            va,
            access: crate::error::Access::Read,
        })?;
        Ok((
            Translation {
                pa: e.pa.add(va.raw() - e.base.raw()),
                flags: e.flags,
                size: e.page_size,
            },
            0,
        ))
    }

    fn protect(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        flags: PteFlags,
    ) -> Result<(), MemError> {
        paging::protect(phys, root, va, flags)?;
        self.lock().reprotect(root, va, flags);
        Ok(())
    }

    fn link_subtree(
        &self,
        phys: &mut PhysMem,
        dst_root: Pfn,
        src_root: Pfn,
        pml4_index: usize,
    ) -> Result<(), MemError> {
        paging::link_subtree(phys, dst_root, src_root, pml4_index)?;
        let mut st = self.lock();
        let links = st.links.entry(dst_root).or_default();
        if !links.contains(&(pml4_index, src_root)) {
            links.push((pml4_index, src_root));
        }
        Ok(())
    }

    fn unlink_subtree(&self, phys: &mut PhysMem, root: Pfn, pml4_index: usize) {
        paging::unlink_subtree(phys, root, pml4_index);
        if let Some(links) = self.lock().links.get_mut(&root) {
            links.retain(|(s, _)| *s != pml4_index);
        }
    }

    fn ensure_root_slot(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        pml4_index: usize,
    ) -> Result<(Pfn, bool), MemError> {
        paging::ensure_root_slot(phys, root, pml4_index)
    }

    fn clear_leaf(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn> {
        let pfn = paging::clear_leaf(phys, root, va)?;
        let page = va.align_down(PAGE_SIZE);
        self.lock().trim(root, page, PAGE_SIZE);
        Some(pfn)
    }

    fn leaf_is_swap_marked(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> bool {
        paging::leaf_is_swap_marked(phys, root, va)
    }

    fn free_tables(&self, phys: &mut PhysMem, root: Pfn, shared: &[usize]) {
        paging::free_tables(phys, root, shared);
        let mut st = self.lock();
        st.segs.remove(&root);
        st.links.remove(&root);
    }

    fn collect_table_frames(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        skip: &[usize],
        seen: &mut std::collections::HashSet<Pfn>,
    ) -> u64 {
        paging::collect_table_frames(phys, root, skip, seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Access;

    fn setup() -> (PhysMem, SegMap, Pfn) {
        let mut phys = PhysMem::new(1 << 24);
        let sm = SegMap::new();
        let root = sm.new_root(&mut phys).unwrap();
        (phys, sm, root)
    }

    fn rw() -> PteFlags {
        PteFlags::USER | PteFlags::WRITABLE
    }

    #[test]
    fn translate_hits_within_bounds_and_faults_outside() {
        let (mut phys, sm, root) = setup();
        sm.map_region(
            &mut phys,
            root,
            VirtAddr::new(0x40_0000),
            PhysAddr::new(0x80_0000),
            1 << 20,
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        let (t, levels) = sm
            .translate(&mut phys, root, VirtAddr::new(0x40_0000 + 0x1234))
            .unwrap();
        assert_eq!(t.pa.raw(), 0x80_0000 + 0x1234);
        assert_eq!(levels, 0, "no walk under base+bound");
        assert!(t.flags.permits(Access::Write));
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x40_0000 + (1 << 20)))
            .is_err());
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x1000))
            .is_err());
        // The real tables were built too (shadow, not replacement).
        let (pt, _) = paging::walk(&mut phys, root, VirtAddr::new(0x40_0000 + 0x1234)).unwrap();
        assert_eq!(pt.pa, t.pa);
    }

    #[test]
    fn linked_template_mappings_are_visible() {
        let (mut phys, sm, template) = setup();
        let attached = sm.new_root(&mut phys).unwrap();
        let va = VirtAddr::new(0x1_0000_0000); // PML4 slot 0
        sm.ensure_root_slot(&mut phys, template, va.pml4_index())
            .unwrap();
        sm.link_subtree(&mut phys, attached, template, va.pml4_index())
            .unwrap();
        // Mapping *through the attached root* lands in the template's
        // table and is visible to both, like the shared paging subtree.
        sm.map(
            &mut phys,
            attached,
            va,
            PhysAddr::new(0x9000),
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        assert!(sm.translate(&mut phys, template, va).is_ok());
        assert!(sm.translate(&mut phys, attached, va).is_ok());
        assert_eq!(sm.entries_for(template), 1);
        assert_eq!(sm.entries_for(attached), 0);
        // Unlink hides it from the attached root only.
        sm.unlink_subtree(&mut phys, attached, va.pml4_index());
        assert!(sm.translate(&mut phys, attached, va).is_err());
        assert!(sm.translate(&mut phys, template, va).is_ok());
    }

    #[test]
    fn unmap_trims_and_splits_entries() {
        let (mut phys, sm, root) = setup();
        sm.map_region(
            &mut phys,
            root,
            VirtAddr::new(0x10_0000),
            PhysAddr::new(0x20_0000),
            16 * 4096,
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        // Punch a hole in the middle: pages 4..8 of 16.
        sm.unmap_region(
            &mut phys,
            root,
            VirtAddr::new(0x10_0000 + 4 * 4096),
            4 * 4096,
        )
        .unwrap();
        assert_eq!(sm.entries_for(root), 2, "entry split around the hole");
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x10_0000 + 3 * 4096))
            .is_ok());
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x10_0000 + 5 * 4096))
            .is_err());
        let (t, _) = sm
            .translate(&mut phys, root, VirtAddr::new(0x10_0000 + 9 * 4096))
            .unwrap();
        assert_eq!(t.pa.raw(), 0x20_0000 + 9 * 4096, "tail keeps its offsets");
    }

    #[test]
    fn clear_leaf_evicts_one_page_from_shadow() {
        let (mut phys, sm, root) = setup();
        sm.map_region(
            &mut phys,
            root,
            VirtAddr::new(0x10_0000),
            PhysAddr::new(0x20_0000),
            4 * 4096,
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        let evicted = sm.clear_leaf(&mut phys, root, VirtAddr::new(0x10_1000));
        assert!(evicted.is_some());
        assert!(sm.leaf_is_swap_marked(&mut phys, root, VirtAddr::new(0x10_1000)));
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x10_1000))
            .is_err());
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x10_0000))
            .is_ok());
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x10_2000))
            .is_ok());
    }

    #[test]
    fn protect_rewrites_one_page() {
        let (mut phys, sm, root) = setup();
        sm.map_region(
            &mut phys,
            root,
            VirtAddr::new(0x10_0000),
            PhysAddr::new(0x20_0000),
            2 * 4096,
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        sm.protect(&mut phys, root, VirtAddr::new(0x10_0000), PteFlags::USER)
            .unwrap();
        let (t, _) = sm
            .translate(&mut phys, root, VirtAddr::new(0x10_0000))
            .unwrap();
        assert!(!t.flags.permits(Access::Write), "write bit dropped");
        let (t2, _) = sm
            .translate(&mut phys, root, VirtAddr::new(0x10_1000))
            .unwrap();
        assert!(t2.flags.permits(Access::Write), "neighbour untouched");
        // The real tables agree.
        let (pt, _) = paging::walk(&mut phys, root, VirtAddr::new(0x10_0000)).unwrap();
        assert!(!pt.flags.permits(Access::Write));
    }

    #[test]
    fn free_tables_drops_shadow_state() {
        let (mut phys, sm, root) = setup();
        sm.map(
            &mut phys,
            root,
            VirtAddr::new(0x1000),
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            rw(),
        )
        .unwrap();
        assert_eq!(sm.entries_for(root), 1);
        sm.free_tables(&mut phys, root, &[]);
        assert_eq!(sm.entries_for(root), 0);
        assert!(sm
            .translate(&mut phys, root, VirtAddr::new(0x1000))
            .is_err());
    }

    #[test]
    fn superpage_entries_translate_linearly() {
        let (mut phys, sm, root) = setup();
        sm.map(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000),
            PhysAddr::new(0x40_0000),
            PageSize::Size2M,
            rw(),
        )
        .unwrap();
        let (t, levels) = sm
            .translate(&mut phys, root, VirtAddr::new(0x20_0000 + 0xabcd))
            .unwrap();
        assert_eq!(t.pa.raw(), 0x40_0000 + 0xabcd);
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(levels, 0);
    }
}
