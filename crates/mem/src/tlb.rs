//! Set-associative, ASID-tagged translation lookaside buffer.
//!
//! Models the x86-64 behaviour the paper relies on (Section 4.4):
//!
//! * Without tagging, every CR3 write flushes all non-global entries.
//! * With tagging (PCID-style 12-bit identifiers), entries survive address
//!   space switches; only entries whose tag matches the current ASID hit.
//! * Tag value **zero is reserved** to always trigger a flush on switch —
//!   exactly the convention the paper's implementations use ("Our current
//!   implementations reserve the tag value zero to always trigger a TLB
//!   flush on a context switch").
//!
//! The TLB is one unified set-associative array (like a real STLB) whose
//! entries carry the page size they cache: a 2 MiB or 1 GiB superpage
//! occupies **one** entry keyed by its size-aligned page number, which is
//! what gives superpages their TLB-reach advantage ([`Tlb::reach_bytes`]).
//! Lookups probe each supported size's key in the set; inserts and
//! invalidations match on `(vpn, size)`. Capacity and associativity come
//! from [`crate::cost::MachineProfile`].

use crate::addr::{PageSize, PhysAddr, Vpn};
use crate::error::Access;
use crate::paging::PteFlags;

/// Address-space identifier (12-bit, like x86 PCID).
///
/// [`Asid::UNTAGGED`] (zero) is reserved: address spaces with this tag are
/// flushed on every switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// The reserved tag that always flushes on switch.
    pub const UNTAGGED: Asid = Asid(0);

    /// Highest assignable tag (12 bits).
    pub const MAX: u16 = 0xfff;

    /// Whether this ASID participates in tagging.
    pub fn is_tagged(self) -> bool {
        self.0 != 0
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    asid: Asid,
    global: bool,
    /// Size-aligned page number: for superpages, the VPN of the first
    /// 4 KiB base page.
    vpn: Vpn,
    /// Physical base of the mapped page (size-aligned).
    frame_base: PhysAddr,
    flags: PteFlags,
    /// Page size this entry caches; lookups only match equal sizes.
    size: PageSize,
    stamp: u64,
}

/// Page sizes in probe order (smallest first — the common case).
const PROBE_SIZES: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

/// The size-aligned lookup key for `vpn` at `size`.
#[inline]
fn size_key(vpn: Vpn, size: PageSize) -> Vpn {
    Vpn(vpn.0 & !(size.base_pages() - 1))
}

/// Hit/miss/flush counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Full (non-global) flushes.
    pub flushes: u64,
    /// Per-ASID flushes.
    pub asid_flushes: u64,
    /// Entries evicted by capacity/conflict.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl TlbStats {
    /// Miss ratio over all lookups (0 when no lookups occurred).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same TLB). Lets benchmarks measure a phase without resetting
    /// the live counters out from under other observers.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            flushes: self.flushes - earlier.flushes,
            asid_flushes: self.asid_flushes - earlier.asid_flushes,
            evictions: self.evictions - earlier.evictions,
            insertions: self.insertions - earlier.insertions,
        }
    }
}

/// The TLB proper.
///
/// # Examples
///
/// ```
/// use sjmp_mem::tlb::{Asid, Tlb};
/// use sjmp_mem::addr::{PageSize, PhysAddr, Vpn};
/// use sjmp_mem::paging::PteFlags;
///
/// let mut tlb = Tlb::new(64, 4);
/// tlb.insert(Asid(1), Vpn(7), PhysAddr::new(0x3000), PteFlags::PRESENT, false,
///            PageSize::Size4K);
/// assert!(tlb.lookup(Asid(1), Vpn(7)).is_some());
/// assert!(tlb.lookup(Asid(2), Vpn(7)).is_none(), "tag mismatch");
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    sets: usize,
    ways: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            ways > 0 && entries > 0 && entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        Tlb {
            entries: vec![TlbEntry::default(); entries],
            sets: entries / ways,
            ways,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zeroes the counters (keeps cached entries).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    #[inline]
    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.0 as usize) % self.sets;
        let start = set * self.ways;
        start..start + self.ways
    }

    /// Looks up a translation for `vpn` under `asid`, probing every
    /// supported page size's key (smallest first). Returns the physical
    /// page base, flags, and the cached page size on a hit.
    ///
    /// Global entries hit regardless of tag. Updates LRU and counters
    /// (one hit or miss per call, however many sizes were probed).
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<(PhysAddr, PteFlags, PageSize)> {
        self.tick += 1;
        let tick = self.tick;
        for size in PROBE_SIZES {
            let key = size_key(vpn, size);
            let range = self.set_range(key);
            for e in &mut self.entries[range] {
                if e.valid && e.size == size && e.vpn == key && (e.global || e.asid == asid) {
                    e.stamp = tick;
                    self.stats.hits += 1;
                    return Some((e.frame_base, e.flags, e.size));
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Checks whether the cached flags permit `access`; the MMU consults
    /// this before raising a protection fault.
    pub fn permits(flags: PteFlags, access: Access) -> bool {
        flags.permits(access)
    }

    /// Inserts a translation for the page of `size` containing `vpn`
    /// (the key and `frame_base` are aligned internally), evicting LRU
    /// on conflict. One entry covers the whole superpage.
    pub fn insert(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        frame_base: PhysAddr,
        flags: PteFlags,
        global: bool,
        size: PageSize,
    ) {
        self.tick += 1;
        let tick = self.tick;
        let key = size_key(vpn, size);
        let frame_base = PhysAddr::new(frame_base.raw() & !(size.bytes() - 1));
        let range = self.set_range(key);
        let set = &mut self.entries[range];
        // Overwrite an existing entry for the same (vpn, size, asid)
        // first. Size participates in the match: a 4 KiB page and a
        // superpage can share a key yet must coexist.
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.vpn == key && e.size == size && e.asid == asid)
        {
            e.frame_base = frame_base;
            e.flags = flags;
            e.global = global;
            e.stamp = tick;
            return;
        }
        let victim = if let Some(free) = set.iter_mut().find(|e| !e.valid) {
            free
        } else {
            self.stats.evictions += 1;
            set.iter_mut().min_by_key(|e| e.stamp).expect("ways > 0")
        };
        *victim = TlbEntry {
            valid: true,
            asid,
            global,
            vpn: key,
            frame_base,
            flags,
            size,
            stamp: tick,
        };
        self.stats.insertions += 1;
    }

    /// Flushes all non-global entries (untagged CR3 write).
    pub fn flush_nonglobal(&mut self) {
        self.stats.flushes += 1;
        for e in &mut self.entries {
            if e.valid && !e.global {
                e.valid = false;
            }
        }
    }

    /// Flushes entries belonging to one ASID (INVPCID-style).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.stats.asid_flushes += 1;
        for e in &mut self.entries {
            if e.valid && e.asid == asid && !e.global {
                e.valid = false;
            }
        }
    }

    /// Invalidates the page containing `vpn` across all ASIDs (INVLPG
    /// semantics for shared mappings), at every page size: a superpage
    /// entry covering the 4 KiB page is dropped too.
    pub fn flush_page(&mut self, vpn: Vpn) {
        for size in PROBE_SIZES {
            let key = size_key(vpn, size);
            let range = self.set_range(key);
            for e in &mut self.entries[range] {
                if e.valid && e.size == size && e.vpn == key {
                    e.valid = false;
                }
            }
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Bytes of address space the currently valid entries translate —
    /// the machine's effective TLB reach. One 2 MiB entry contributes
    /// 512x what a 4 KiB entry does, which is the whole point of
    /// superpages.
    pub fn reach_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.valid)
            .map(|e| e.size.bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SHIFT;

    fn flags() -> PteFlags {
        PteFlags::PRESENT | PteFlags::WRITABLE
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut tlb = Tlb::new(8, 2);
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        assert_eq!(
            tlb.lookup(Asid(1), Vpn(1)).unwrap().0,
            PhysAddr::new(0x1000)
        );
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asid_isolation_and_global_entries() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(2),
            Vpn(2),
            PhysAddr::new(0x2000),
            flags(),
            true,
            PageSize::Size4K,
        );
        assert!(
            tlb.lookup(Asid(2), Vpn(1)).is_none(),
            "private entry, other tag"
        );
        assert!(
            tlb.lookup(Asid(1), Vpn(2)).is_some(),
            "global entry hits any tag"
        );
    }

    #[test]
    fn untagged_flush_spares_globals() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(1),
            Vpn(2),
            PhysAddr::new(0x2000),
            flags(),
            true,
            PageSize::Size4K,
        );
        tlb.flush_nonglobal();
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(1), Vpn(2)).is_some());
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn asid_flush_only_hits_one_tag() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(2),
            Vpn(9),
            PhysAddr::new(0x2000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.flush_asid(Asid(1));
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(2), Vpn(9)).is_some());
    }

    #[test]
    fn page_flush_hits_all_asids() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(2),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.flush_page(Vpn(1));
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(2), Vpn(1)).is_none());
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: third insert evicts the least recently used.
        let mut tlb = Tlb::new(2, 2);
        tlb.insert(
            Asid(1),
            Vpn(10),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(1),
            Vpn(20),
            PhysAddr::new(0x2000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.lookup(Asid(1), Vpn(10)); // make 20 the LRU
        tlb.insert(
            Asid(1),
            Vpn(30),
            PhysAddr::new(0x3000),
            flags(),
            false,
            PageSize::Size4K,
        );
        assert!(tlb.lookup(Asid(1), Vpn(10)).is_some());
        assert!(tlb.lookup(Asid(1), Vpn(20)).is_none(), "LRU was evicted");
        assert!(tlb.lookup(Asid(1), Vpn(30)).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(4, 4);
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(1),
            Vpn(1),
            PhysAddr::new(0x5000),
            flags(),
            false,
            PageSize::Size4K,
        );
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(
            tlb.lookup(Asid(1), Vpn(1)).unwrap().0,
            PhysAddr::new(0x5000)
        );
    }

    #[test]
    fn capacity_behavior_random_working_set() {
        // A working set larger than the TLB must produce misses; smaller
        // must eventually stop missing.
        let mut tlb = Tlb::new(64, 4);
        for round in 0..4 {
            for p in 0..32u64 {
                if tlb.lookup(Asid(1), Vpn(p)).is_none() {
                    tlb.insert(
                        Asid(1),
                        Vpn(p),
                        PhysAddr::new(p << PAGE_SHIFT),
                        flags(),
                        false,
                        PageSize::Size4K,
                    );
                }
                let _ = round;
            }
        }
        let warm = tlb.stats();
        assert!(
            warm.hits >= 32 * 3,
            "small working set should hit after warmup"
        );
    }

    #[test]
    fn superpage_entry_covers_whole_page_and_reports_reach() {
        let mut tlb = Tlb::new(8, 2);
        // Insert a 2 MiB entry via an interior base page; the key and
        // frame base are aligned down.
        tlb.insert(
            Asid(1),
            Vpn(512 + 7),
            PhysAddr::new(0x40_0000 + 0x7000),
            flags(),
            false,
            PageSize::Size2M,
        );
        // Any base page inside the superpage hits the one entry.
        let (base, _, size) = tlb.lookup(Asid(1), Vpn(512)).unwrap();
        assert_eq!(base, PhysAddr::new(0x40_0000));
        assert_eq!(size, PageSize::Size2M);
        let (base2, _, _) = tlb.lookup(Asid(1), Vpn(1023)).unwrap();
        assert_eq!(base2, PhysAddr::new(0x40_0000));
        assert!(tlb.lookup(Asid(1), Vpn(1024)).is_none(), "past the bound");
        assert_eq!(tlb.occupancy(), 1, "one entry, 512 pages of reach");
        assert_eq!(tlb.reach_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn mixed_sizes_coexist_on_one_key() {
        let mut tlb = Tlb::new(8, 4);
        // Vpn(0) is both the 4 KiB page 0 and the key of the first
        // 2 MiB superpage; the two entries must not overwrite each other.
        tlb.insert(
            Asid(1),
            Vpn(0),
            PhysAddr::new(0x1000),
            flags(),
            false,
            PageSize::Size4K,
        );
        tlb.insert(
            Asid(1),
            Vpn(0),
            PhysAddr::new(0x20_0000),
            flags(),
            false,
            PageSize::Size2M,
        );
        assert_eq!(tlb.occupancy(), 2);
        // Smallest size wins the probe for page 0 itself...
        let (base, _, size) = tlb.lookup(Asid(1), Vpn(0)).unwrap();
        assert_eq!((base, size), (PhysAddr::new(0x1000), PageSize::Size4K));
        // ...while interior pages only match the superpage.
        let (base2, _, size2) = tlb.lookup(Asid(1), Vpn(9)).unwrap();
        assert_eq!((base2, size2), (PhysAddr::new(0x20_0000), PageSize::Size2M));
        assert_eq!(tlb.reach_bytes(), 4096 + 2 * 1024 * 1024);
    }

    #[test]
    fn flush_page_drops_covering_superpage() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(
            Asid(1),
            Vpn(512),
            PhysAddr::new(0x40_0000),
            flags(),
            false,
            PageSize::Size2M,
        );
        // Invalidate via an interior 4 KiB page.
        tlb.flush_page(Vpn(700));
        assert!(tlb.lookup(Asid(1), Vpn(600)).is_none(), "superpage gone");
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn one_gib_entry_reach_and_bounds() {
        let mut tlb = Tlb::new(8, 2);
        let gib_pages = PageSize::Size1G.base_pages();
        tlb.insert(
            Asid(1),
            Vpn(gib_pages + 3),
            PhysAddr::new((1 << 30) + 0x3000),
            flags(),
            false,
            PageSize::Size1G,
        );
        let (base, _, size) = tlb.lookup(Asid(1), Vpn(2 * gib_pages - 1)).unwrap();
        assert_eq!(base, PhysAddr::new(1 << 30));
        assert_eq!(size, PageSize::Size1G);
        assert!(tlb.lookup(Asid(1), Vpn(2 * gib_pages)).is_none());
        assert!(tlb.lookup(Asid(1), Vpn(gib_pages - 1)).is_none());
        assert_eq!(tlb.reach_bytes(), 1 << 30);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn asid_constants() {
        assert!(!Asid::UNTAGGED.is_tagged());
        assert!(Asid(5).is_tagged());
        assert_eq!(Asid::MAX, 0xfff);
    }
}
