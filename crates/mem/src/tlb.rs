//! Set-associative, ASID-tagged translation lookaside buffer.
//!
//! Models the x86-64 behaviour the paper relies on (Section 4.4):
//!
//! * Without tagging, every CR3 write flushes all non-global entries.
//! * With tagging (PCID-style 12-bit identifiers), entries survive address
//!   space switches; only entries whose tag matches the current ASID hit.
//! * Tag value **zero is reserved** to always trigger a flush on switch —
//!   exactly the convention the paper's implementations use ("Our current
//!   implementations reserve the tag value zero to always trigger a TLB
//!   flush on a context switch").
//!
//! The TLB caches translations at 4 KiB granularity regardless of the
//! mapped page size (superpages are fragmented on insert), which keeps one
//! unified array like a real STLB while simplifying indexing. Capacity and
//! associativity come from [`crate::cost::MachineProfile`].

use crate::addr::{PhysAddr, Vpn};
use crate::error::Access;
use crate::paging::PteFlags;

/// Address-space identifier (12-bit, like x86 PCID).
///
/// [`Asid::UNTAGGED`] (zero) is reserved: address spaces with this tag are
/// flushed on every switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// The reserved tag that always flushes on switch.
    pub const UNTAGGED: Asid = Asid(0);

    /// Highest assignable tag (12 bits).
    pub const MAX: u16 = 0xfff;

    /// Whether this ASID participates in tagging.
    pub fn is_tagged(self) -> bool {
        self.0 != 0
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    asid: Asid,
    global: bool,
    vpn: Vpn,
    frame_base: PhysAddr,
    flags: PteFlags,
    stamp: u64,
}

/// Hit/miss/flush counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Full (non-global) flushes.
    pub flushes: u64,
    /// Per-ASID flushes.
    pub asid_flushes: u64,
    /// Entries evicted by capacity/conflict.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl TlbStats {
    /// Miss ratio over all lookups (0 when no lookups occurred).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same TLB). Lets benchmarks measure a phase without resetting
    /// the live counters out from under other observers.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            flushes: self.flushes - earlier.flushes,
            asid_flushes: self.asid_flushes - earlier.asid_flushes,
            evictions: self.evictions - earlier.evictions,
            insertions: self.insertions - earlier.insertions,
        }
    }
}

/// The TLB proper.
///
/// # Examples
///
/// ```
/// use sjmp_mem::tlb::{Asid, Tlb};
/// use sjmp_mem::addr::{PhysAddr, Vpn};
/// use sjmp_mem::paging::PteFlags;
///
/// let mut tlb = Tlb::new(64, 4);
/// tlb.insert(Asid(1), Vpn(7), PhysAddr::new(0x3000), PteFlags::PRESENT, false);
/// assert!(tlb.lookup(Asid(1), Vpn(7)).is_some());
/// assert!(tlb.lookup(Asid(2), Vpn(7)).is_none(), "tag mismatch");
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    sets: usize,
    ways: usize,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(
            ways > 0 && entries > 0 && entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        Tlb {
            entries: vec![TlbEntry::default(); entries],
            sets: entries / ways,
            ways,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zeroes the counters (keeps cached entries).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    #[inline]
    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.0 as usize) % self.sets;
        let start = set * self.ways;
        start..start + self.ways
    }

    /// Looks up a translation for `vpn` under `asid`.
    ///
    /// Global entries hit regardless of tag. Updates LRU and counters.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<(PhysAddr, PteFlags)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(vpn);
        for e in &mut self.entries[range] {
            if e.valid && e.vpn == vpn && (e.global || e.asid == asid) {
                e.stamp = tick;
                self.stats.hits += 1;
                return Some((e.frame_base, e.flags));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Checks whether the cached flags permit `access`; the MMU consults
    /// this before raising a protection fault.
    pub fn permits(flags: PteFlags, access: Access) -> bool {
        flags.permits(access)
    }

    /// Inserts a translation (4 KiB granularity), evicting LRU on conflict.
    pub fn insert(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        frame_base: PhysAddr,
        flags: PteFlags,
        global: bool,
    ) {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(vpn);
        let set = &mut self.entries[range];
        // Overwrite an existing entry for the same (vpn, asid) first.
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn && e.asid == asid)
        {
            e.frame_base = frame_base;
            e.flags = flags;
            e.global = global;
            e.stamp = tick;
            return;
        }
        let victim = if let Some(free) = set.iter_mut().find(|e| !e.valid) {
            free
        } else {
            self.stats.evictions += 1;
            set.iter_mut().min_by_key(|e| e.stamp).expect("ways > 0")
        };
        *victim = TlbEntry {
            valid: true,
            asid,
            global,
            vpn,
            frame_base,
            flags,
            stamp: tick,
        };
        self.stats.insertions += 1;
    }

    /// Flushes all non-global entries (untagged CR3 write).
    pub fn flush_nonglobal(&mut self) {
        self.stats.flushes += 1;
        for e in &mut self.entries {
            if e.valid && !e.global {
                e.valid = false;
            }
        }
    }

    /// Flushes entries belonging to one ASID (INVPCID-style).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.stats.asid_flushes += 1;
        for e in &mut self.entries {
            if e.valid && e.asid == asid && !e.global {
                e.valid = false;
            }
        }
    }

    /// Invalidates one page across all ASIDs (INVLPG semantics for shared
    /// mappings).
    pub fn flush_page(&mut self, vpn: Vpn) {
        let range = self.set_range(vpn);
        for e in &mut self.entries[range] {
            if e.valid && e.vpn == vpn {
                e.valid = false;
            }
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SHIFT;

    fn flags() -> PteFlags {
        PteFlags::PRESENT | PteFlags::WRITABLE
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut tlb = Tlb::new(8, 2);
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        assert_eq!(
            tlb.lookup(Asid(1), Vpn(1)).unwrap().0,
            PhysAddr::new(0x1000)
        );
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asid_isolation_and_global_entries() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(2), Vpn(2), PhysAddr::new(0x2000), flags(), true);
        assert!(
            tlb.lookup(Asid(2), Vpn(1)).is_none(),
            "private entry, other tag"
        );
        assert!(
            tlb.lookup(Asid(1), Vpn(2)).is_some(),
            "global entry hits any tag"
        );
    }

    #[test]
    fn untagged_flush_spares_globals() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(1), Vpn(2), PhysAddr::new(0x2000), flags(), true);
        tlb.flush_nonglobal();
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(1), Vpn(2)).is_some());
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn asid_flush_only_hits_one_tag() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(2), Vpn(9), PhysAddr::new(0x2000), flags(), false);
        tlb.flush_asid(Asid(1));
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(2), Vpn(9)).is_some());
    }

    #[test]
    fn page_flush_hits_all_asids() {
        let mut tlb = Tlb::new(8, 2);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(2), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.flush_page(Vpn(1));
        assert!(tlb.lookup(Asid(1), Vpn(1)).is_none());
        assert!(tlb.lookup(Asid(2), Vpn(1)).is_none());
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1 set, 2 ways: third insert evicts the least recently used.
        let mut tlb = Tlb::new(2, 2);
        tlb.insert(Asid(1), Vpn(10), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(1), Vpn(20), PhysAddr::new(0x2000), flags(), false);
        tlb.lookup(Asid(1), Vpn(10)); // make 20 the LRU
        tlb.insert(Asid(1), Vpn(30), PhysAddr::new(0x3000), flags(), false);
        assert!(tlb.lookup(Asid(1), Vpn(10)).is_some());
        assert!(tlb.lookup(Asid(1), Vpn(20)).is_none(), "LRU was evicted");
        assert!(tlb.lookup(Asid(1), Vpn(30)).is_some());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(4, 4);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x1000), flags(), false);
        tlb.insert(Asid(1), Vpn(1), PhysAddr::new(0x5000), flags(), false);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(
            tlb.lookup(Asid(1), Vpn(1)).unwrap().0,
            PhysAddr::new(0x5000)
        );
    }

    #[test]
    fn capacity_behavior_random_working_set() {
        // A working set larger than the TLB must produce misses; smaller
        // must eventually stop missing.
        let mut tlb = Tlb::new(64, 4);
        for round in 0..4 {
            for p in 0..32u64 {
                if tlb.lookup(Asid(1), Vpn(p)).is_none() {
                    tlb.insert(
                        Asid(1),
                        Vpn(p),
                        PhysAddr::new(p << PAGE_SHIFT),
                        flags(),
                        false,
                    );
                }
                let _ = round;
            }
        }
        let warm = tlb.stats();
        assert!(
            warm.hits >= 32 * 3,
            "small working set should hit after warmup"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn asid_constants() {
        assert!(!Asid::UNTAGGED.is_tagged());
        assert!(Asid(5).is_tagged());
        assert_eq!(Asid::MAX, 0xfff);
    }
}
