//! Cycle cost model and simulated clock.
//!
//! The paper reports results in *cycles* (Table 2, Figures 6-7) or in rates
//! derived from time (Figures 1, 8-12). The simulator charges every
//! architectural event — TLB hit/miss, page walk, CR3 load, kernel entry,
//! PTE construction, cache-line transfers — to a [`CycleClock`], using
//! constants calibrated from the paper's own measurements:
//!
//! * Table 2 (machine M2): CR3 load costs 130 cycles untagged and 224
//!   cycles tagged; a DragonFly BSD system call costs 357 cycles vs 130 on
//!   Barrelfish; a complete `vas_switch` costs 1127/807 (DragonFly,
//!   untagged/tagged) and 664/462 (Barrelfish).
//! * Figure 1: constructing page tables for a 1 GiB region with 4 KiB pages
//!   takes about 5 ms, and about 2 s for 64 GiB — superlinear because the
//!   table working set falls out of the cache hierarchy.
//!
//! Per-machine parameters (Table 1) live in [`MachineProfile`].

pub use sjmp_sim::{CoreClocks, CoreCtx, CycleClock};

/// Which operating-system personality mediates kernel entry.
///
/// The paper implements SpaceJMP in two OSes with very different costs:
/// DragonFly BSD enters the kernel through a conventional system call while
/// Barrelfish performs a (cheaper) capability invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFlavor {
    /// DragonFly BSD: kernel-mediated VAS objects, syscall entry.
    DragonFly,
    /// Barrelfish: user-space VAS service, capability invocations.
    Barrelfish,
}

impl KernelFlavor {
    /// Human-readable OS name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            KernelFlavor::DragonFly => "DragonFly BSD",
            KernelFlavor::Barrelfish => "Barrelfish",
        }
    }
}

/// One of the paper's evaluation machines (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// M1: 92 GiB, 2x12-core Xeon X5650, 2.66 GHz.
    M1,
    /// M2: 256 GiB, 2x10-core Xeon E5-2670v2, 2.50 GHz.
    M2,
    /// M3: 512 GiB, 2x18-core Xeon E5-2699v3, 2.30 GHz.
    M3,
}

/// Hardware parameters for a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Machine code name (`"M1"`, ...).
    pub name: &'static str,
    /// Physical memory capacity in bytes. The simulator is sparse, so this
    /// is an accounting limit, not a host allocation.
    pub mem_bytes: u64,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Core clock frequency in Hz; converts cycles to seconds.
    pub freq_hz: u64,
    /// Unified (second-level) TLB capacity in entries.
    pub tlb_entries: usize,
    /// TLB associativity (ways).
    pub tlb_ways: usize,
}

impl MachineProfile {
    /// Profile for one of the paper's machines.
    pub fn of(machine: MachineId) -> Self {
        match machine {
            // The X5650 is a 6-core part; Section 5.3 calls M1 "the
            // twelve core machine" (Table 1's "2x12c" counts threads).
            MachineId::M1 => MachineProfile {
                name: "M1",
                mem_bytes: 92 << 30,
                sockets: 2,
                cores_per_socket: 6,
                freq_hz: 2_660_000_000,
                tlb_entries: 512,
                tlb_ways: 4,
            },
            MachineId::M2 => MachineProfile {
                name: "M2",
                mem_bytes: 256 << 30,
                sockets: 2,
                cores_per_socket: 10,
                freq_hz: 2_500_000_000,
                tlb_entries: 512,
                tlb_ways: 4,
            },
            MachineId::M3 => MachineProfile {
                name: "M3",
                mem_bytes: 512 << 30,
                sockets: 2,
                cores_per_socket: 18,
                freq_hz: 2_300_000_000,
                tlb_entries: 1024,
                tlb_ways: 8,
            },
        }
    }

    /// Total core count across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Converts a cycle count to seconds on this machine.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Converts seconds to cycles on this machine.
    pub fn secs_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.freq_hz as f64) as u64
    }
}

impl Default for MachineProfile {
    /// Defaults to M2, the machine the paper's Table 2 was measured on.
    fn default() -> Self {
        MachineProfile::of(MachineId::M2)
    }
}

/// Cycle costs of individual architectural and OS events.
///
/// All values are in CPU cycles. See the module docs for calibration
/// sources. Change individual fields to run what-if ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// TLB lookup (charged on every translation, hit or miss).
    pub tlb_lookup: u64,
    /// Page-walk penalty on a TLB miss (warm paging-structure caches).
    /// A full four-level walk; superpage leaves charge proportionally
    /// fewer levels (3/4 for 2 MiB, 2/4 for 1 GiB).
    pub tlb_walk: u64,
    /// Per-access base+bound check of the no-VM segment backend: a
    /// register compare pair instead of a TLB lookup and walk.
    pub segbound_check: u64,
    /// L1-resident data access (one cache line).
    pub cache_hit: u64,
    /// DRAM access (one cache line).
    pub dram_access: u64,
    /// CR3 write with TLB tagging disabled (flushes non-global entries).
    pub cr3_load_untagged: u64,
    /// CR3 write with TLB tagging enabled (extra tag circuitry; Table 2).
    pub cr3_load_tagged: u64,
    /// DragonFly BSD system-call entry/exit.
    pub syscall_dragonfly: u64,
    /// Barrelfish capability-invocation entry/exit.
    pub syscall_barrelfish: u64,
    /// `vas_switch` bookkeeping beyond kernel entry + CR3 load, DragonFly,
    /// untagged (includes the TLB shootdown work).
    pub switch_book_dragonfly_untagged: u64,
    /// `vas_switch` bookkeeping, DragonFly, tagged.
    pub switch_book_dragonfly_tagged: u64,
    /// `vas_switch` bookkeeping, Barrelfish, untagged.
    pub switch_book_barrelfish_untagged: u64,
    /// `vas_switch` bookkeeping, Barrelfish, tagged.
    pub switch_book_barrelfish_tagged: u64,
    /// Writing one leaf PTE during table construction (cache-resident).
    pub pte_write: u64,
    /// Extra per-PTE cost when the table working set exceeds the cache
    /// hierarchy (the superlinear regime of Figure 1).
    pub pte_write_cold_extra: u64,
    /// Region size in bytes beyond which PTE construction runs cold.
    pub pte_cold_threshold: u64,
    /// Writing one leaf PTE when the page is already hot in the page
    /// cache (Figure 1's cheaper `cached` series).
    pub pte_write_cached: u64,
    /// Clearing one leaf PTE during unmap.
    pub pte_clear: u64,
    /// Returning one page to the page cache on uncached unmap.
    pub page_putback: u64,
    /// Allocating and linking one page-table node in the kernel.
    pub table_alloc: u64,
    /// Splicing one already-constructed (cached) table subtree.
    pub table_splice: u64,
    /// Transferring one cache line between cores on the same socket.
    pub cacheline_local: u64,
    /// Transferring one cache line across the socket interconnect.
    pub cacheline_xsocket: u64,
    /// Fixed per-message software overhead of a polled URPC channel.
    pub urpc_sw_overhead: u64,
    /// Per-message cost of the socket path (system call, kernel socket
    /// buffer copy, peer wakeup/scheduling), used for the
    /// UNIX-domain-socket baseline in the Redis experiment. Calibrated so
    /// a single-client request/response round trip (4 socket operations)
    /// lands near the paper's ~70k requests/s baseline on M1.
    pub socket_msg: u64,
    /// Extra cycles for a read served from the NVM tier (Section 7's
    /// heterogeneous memory). The model has no data-cache filter, so this
    /// is an *effective* per-access extra chosen to land NVM reads at a
    /// realistic ~5x DRAM and writes at ~10-15x.
    pub nvm_read_extra: u64,
    /// Extra cycles for a write to the NVM tier (write asymmetry).
    pub nvm_write_extra: u64,
    /// Acquiring an uncontended lock (segment lock fast path).
    pub lock_uncontended: u64,
    /// Handing a contended lock to the next waiter.
    pub lock_handoff: u64,
    /// Writing one evicted 4 KiB page to the simulated swap device
    /// (queue + DMA of a page to a fast NVMe-class device at ~2.5 GHz).
    pub swap_out_page: u64,
    /// Reading one page back from swap on a major fault. Reads sit on the
    /// fault critical path and include device latency, so they cost more
    /// than the (batchable) write-out.
    pub swap_in_page: u64,
    /// Examining one page during a clock (second-chance) reclaim scan.
    pub reclaim_scan_page: u64,
    /// Reading one 4 KiB block from the snapshot disk. Charged only on
    /// the durability paths (`vas_save`/`vas_load`/recovery), so
    /// existing cost totals are unchanged.
    pub blk_read_block: u64,
    /// Writing one 4 KiB block to the snapshot disk (streaming DMA; no
    /// durability guarantee until the following flush barrier).
    pub blk_write_block: u64,
    /// One flush barrier on the snapshot disk: drain the device write
    /// cache to stable media (the dominant cost of a commit, as on real
    /// NVMe).
    pub blk_flush: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tlb_lookup: 1,
            tlb_walk: 80,
            segbound_check: 2,
            cache_hit: 4,
            dram_access: 200,
            cr3_load_untagged: 130,
            cr3_load_tagged: 224,
            syscall_dragonfly: 357,
            syscall_barrelfish: 130,
            // Derived from Table 2 totals:
            //   DragonFly untagged: 1127 = 357 + 130 + 640
            //   DragonFly tagged:    807 = 357 + 224 + 226
            //   Barrelfish untagged: 664 = 130 + 130 + 404
            //   Barrelfish tagged:   462 = 130 + 224 + 108
            switch_book_dragonfly_untagged: 640,
            switch_book_dragonfly_tagged: 226,
            switch_book_barrelfish_untagged: 404,
            switch_book_barrelfish_tagged: 108,
            // Figure 1 anchors: 1 GiB / 4 KiB pages ~ 5 ms at 2.5 GHz
            // (~45 cycles/PTE warm), 64 GiB ~ 2 s (~300 cycles/PTE cold).
            pte_write: 45,
            pte_write_cold_extra: 250,
            pte_cold_threshold: 8 << 30,
            pte_write_cached: 12,
            pte_clear: 8,
            page_putback: 15,
            table_alloc: 2000,
            table_splice: 300,
            cacheline_local: 60,
            cacheline_xsocket: 240,
            urpc_sw_overhead: 150,
            socket_msg: 9000,
            nvm_read_extra: 20,
            nvm_write_extra: 55,
            lock_uncontended: 40,
            lock_handoff: 300,
            // Swap device anchors: ~24 us write / ~40 us read at 2.5 GHz,
            // the latency class of a fast NVMe SSD. Only charged on the
            // memory-pressure paths, so existing cost totals are unchanged.
            swap_out_page: 60_000,
            swap_in_page: 100_000,
            reclaim_scan_page: 20,
            // Snapshot-disk anchors at 2.5 GHz: ~1.6 us streaming read,
            // ~2.4 us streaming write per 4 KiB block, ~48 us for a full
            // write-cache flush — NVMe-class numbers. Charged only on
            // the durability paths, so existing cost totals are
            // unchanged.
            blk_read_block: 4_000,
            blk_write_block: 6_000,
            blk_flush: 120_000,
        }
    }
}

impl CostModel {
    /// Kernel-entry cost for `flavor`.
    pub fn kernel_entry(&self, flavor: KernelFlavor) -> u64 {
        match flavor {
            KernelFlavor::DragonFly => self.syscall_dragonfly,
            KernelFlavor::Barrelfish => self.syscall_barrelfish,
        }
    }

    /// CR3 write cost, depending on whether TLB tagging is enabled.
    pub fn cr3_load(&self, tagged: bool) -> u64 {
        if tagged {
            self.cr3_load_tagged
        } else {
            self.cr3_load_untagged
        }
    }

    /// `vas_switch` bookkeeping cost beyond kernel entry and CR3 load.
    pub fn switch_bookkeeping(&self, flavor: KernelFlavor, tagged: bool) -> u64 {
        match (flavor, tagged) {
            (KernelFlavor::DragonFly, false) => self.switch_book_dragonfly_untagged,
            (KernelFlavor::DragonFly, true) => self.switch_book_dragonfly_tagged,
            (KernelFlavor::Barrelfish, false) => self.switch_book_barrelfish_untagged,
            (KernelFlavor::Barrelfish, true) => self.switch_book_barrelfish_tagged,
        }
    }

    /// Full `vas_switch` cost (Table 2 bottom row).
    pub fn vas_switch(&self, flavor: KernelFlavor, tagged: bool) -> u64 {
        self.kernel_entry(flavor) + self.cr3_load(tagged) + self.switch_bookkeeping(flavor, tagged)
    }

    /// Per-PTE construction cost for a region of `region_bytes`.
    pub fn pte_construct(&self, region_bytes: u64) -> u64 {
        if region_bytes >= self.pte_cold_threshold {
            self.pte_write + self.pte_write_cold_extra
        } else {
            self.pte_write
        }
    }

    /// Cache-line transfer cost between two cores.
    pub fn cacheline_transfer(&self, cross_socket: bool) -> u64 {
        if cross_socket {
            self.cacheline_xsocket
        } else {
            self.cacheline_local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_reproduce_exactly() {
        let c = CostModel::default();
        assert_eq!(c.vas_switch(KernelFlavor::DragonFly, false), 1127);
        assert_eq!(c.vas_switch(KernelFlavor::DragonFly, true), 807);
        assert_eq!(c.vas_switch(KernelFlavor::Barrelfish, false), 664);
        assert_eq!(c.vas_switch(KernelFlavor::Barrelfish, true), 462);
        assert_eq!(c.cr3_load(false), 130);
        assert_eq!(c.cr3_load(true), 224);
        assert_eq!(c.kernel_entry(KernelFlavor::DragonFly), 357);
        assert_eq!(c.kernel_entry(KernelFlavor::Barrelfish), 130);
    }

    #[test]
    fn figure1_anchor_one_gib() {
        // 1 GiB of 4 KiB pages = 262144 PTEs; should land near 5 ms on M2.
        let c = CostModel::default();
        let m2 = MachineProfile::of(MachineId::M2);
        let ptes = (1u64 << 30) / 4096;
        let tables = ptes / 512 + ptes / (512 * 512) + 2;
        let cycles = ptes * c.pte_construct(1 << 30) + tables * c.table_alloc;
        let ms = m2.cycles_to_secs(cycles) * 1e3;
        assert!(
            (3.0..8.0).contains(&ms),
            "1 GiB map cost {ms} ms, expected ~5 ms"
        );
    }

    #[test]
    fn figure1_anchor_sixty_four_gib() {
        let c = CostModel::default();
        let m2 = MachineProfile::of(MachineId::M2);
        let ptes = (64u64 << 30) / 4096;
        let tables = ptes / 512 + ptes / (512 * 512) + 2;
        let cycles = ptes * c.pte_construct(64 << 30) + tables * c.table_alloc;
        let s = m2.cycles_to_secs(cycles);
        assert!(
            (1.2..3.0).contains(&s),
            "64 GiB map cost {s} s, expected ~2 s"
        );
    }

    #[test]
    fn machine_profiles_match_table1() {
        let m1 = MachineProfile::of(MachineId::M1);
        assert_eq!(m1.mem_bytes, 92 << 30);
        assert_eq!(m1.total_cores(), 12);
        let m3 = MachineProfile::of(MachineId::M3);
        assert_eq!(m3.total_cores(), 36);
        assert_eq!(m3.freq_hz, 2_300_000_000);
        assert_eq!(MachineProfile::default(), MachineProfile::of(MachineId::M2));
    }

    #[test]
    fn cycle_second_round_trip() {
        let m = MachineProfile::of(MachineId::M2);
        assert_eq!(m.secs_to_cycles(1.0), 2_500_000_000);
        assert!((m.cycles_to_secs(2_500_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swap_costs_dwarf_dram_but_not_table2() {
        // Swap traffic is charged only on pressure paths; a major fault
        // must cost orders of magnitude more than a DRAM access yet the
        // Table 2 switch totals (checked above) stay untouched.
        let c = CostModel::default();
        assert!(c.swap_in_page > 100 * c.dram_access);
        assert!(c.swap_out_page > 100 * c.dram_access);
        assert!(c.swap_in_page > c.swap_out_page, "reads are latency-bound");
        assert!(c.reclaim_scan_page < c.tlb_walk);
    }

    #[test]
    fn cold_pte_threshold() {
        let c = CostModel::default();
        assert_eq!(c.pte_construct(1 << 30), c.pte_write);
        assert_eq!(
            c.pte_construct(64 << 30),
            c.pte_write + c.pte_write_cold_extra
        );
    }
}
