//! Deterministic PRNG — re-exported from `sjmp-sim`.
//!
//! [`SimRng`] moved into the engine crate so the open-loop arrival
//! processes ([`sjmp_sim::OpenLoop`]) can sample interarrival gaps
//! without a dependency cycle; this module keeps the historical
//! `sjmp_mem::rng::SimRng` path working for every existing caller.

pub use sjmp_sim::rng::SimRng;
