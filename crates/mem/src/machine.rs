//! The simulated machine: one MMU and one cycle clock per hardware
//! thread.
//!
//! Before this type existed the substrate modeled exactly one implicit
//! core — one shared clock, one TLB — so a tagged `vas_switch` on core 0
//! could warm (or flush) the TLB that "core 1" would later translate
//! through. [`Machine`] makes the hardware threads explicit: the
//! [`MachineProfile`]'s `total_cores()` determines how many [`Mmu`]s are
//! built, each with its private TLB, CR3, stats, and per-core
//! [`CycleClock`] drawn from one shared [`CoreClocks`] set.

use crate::backend::Backend;
use crate::cost::{CoreClocks, CostModel, MachineProfile};
use crate::mmu::Mmu;
use sjmp_trace::Tracer;

/// A full simulated machine: `total_cores()` hardware threads, each with
/// a private MMU (TLB + CR3 + stats) and its own cycle clock.
///
/// # Examples
///
/// ```
/// use sjmp_mem::cost::{CostModel, MachineId, MachineProfile};
/// use sjmp_mem::machine::Machine;
///
/// let m = Machine::new(MachineProfile::of(MachineId::M1), &CostModel::default());
/// assert_eq!(m.num_cores(), 12, "M1 is the twelve-core machine");
/// assert_eq!(m.clocks().count(), m.num_cores());
/// ```
#[derive(Debug)]
pub struct Machine {
    profile: MachineProfile,
    clocks: CoreClocks,
    mmus: Vec<Mmu>,
}

impl Machine {
    /// Boots a machine per `profile`: one MMU per hardware thread, each
    /// charging its own core's clock.
    pub fn new(profile: MachineProfile, cost: &CostModel) -> Self {
        let cores = profile.total_cores() as usize;
        let clocks = CoreClocks::new(cores);
        let mmus = (0..cores)
            .map(|core| {
                Mmu::new(
                    profile.tlb_entries,
                    profile.tlb_ways,
                    cost.clone(),
                    clocks.clock(core).clone(),
                )
            })
            .collect();
        Machine {
            profile,
            clocks,
            mmus,
        }
    }

    /// Hardware parameters of this machine.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Number of hardware threads (equals `profile().total_cores()`).
    pub fn num_cores(&self) -> usize {
        self.mmus.len()
    }

    /// The per-core cycle clocks (clones share the counters).
    pub fn clocks(&self) -> &CoreClocks {
        &self.clocks
    }

    /// Core `core`'s MMU.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mmu(&self, core: usize) -> &Mmu {
        &self.mmus[core]
    }

    /// Core `core`'s MMU, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mmu_mut(&mut self, core: usize) -> &mut Mmu {
        &mut self.mmus[core]
    }

    /// All MMUs, indexed by core.
    pub fn mmus(&self) -> &[Mmu] {
        &self.mmus
    }

    /// All MMUs, mutably.
    pub fn mmus_mut(&mut self) -> &mut [Mmu] {
        &mut self.mmus
    }

    /// Installs `tracer` on every core's MMU, stamping each with its
    /// hardware-thread id.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        for (core, mmu) in self.mmus.iter_mut().enumerate() {
            mmu.set_tracer(tracer.clone(), core as u32);
        }
    }

    /// Enables or disables TLB tagging on every core.
    pub fn set_tagging(&mut self, enabled: bool) {
        for mmu in &mut self.mmus {
            mmu.set_tagging(enabled);
        }
    }

    /// Installs `backend` on every core's MMU. Call before any address
    /// space is populated so all cores translate through the same model.
    pub fn set_backend(&mut self, backend: &Backend) {
        for mmu in &mut self.mmus {
            mmu.set_backend(backend.clone());
        }
    }

    /// Enables or disables the host-side walk cache on every core.
    pub fn set_host_walk_cache(&mut self, enabled: bool) {
        for mmu in &mut self.mmus {
            mmu.set_host_walk_cache(enabled);
        }
    }

    /// Drops every core's host-side walk-cache entries. Must accompany
    /// any page-table *free*: a recycled root frame would otherwise
    /// resurrect the freed space's cached walks.
    pub fn flush_host_walk_caches(&mut self) {
        for mmu in &mut self.mmus {
            mmu.flush_host_walk_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PageSize, VirtAddr};
    use crate::cost::MachineId;
    use crate::error::Access;
    use crate::paging::{self, PteFlags};
    use crate::phys::PhysMem;
    use crate::tlb::Asid;

    #[test]
    fn one_mmu_and_clock_per_hardware_thread() {
        for (id, cores) in [
            (MachineId::M1, 12),
            (MachineId::M2, 20),
            (MachineId::M3, 36),
        ] {
            let m = Machine::new(MachineProfile::of(id), &CostModel::default());
            assert_eq!(m.num_cores(), cores);
            assert_eq!(m.mmus().len(), cores);
            assert_eq!(m.clocks().count(), cores);
        }
    }

    #[test]
    fn mmu_charges_its_own_core_clock() {
        let mut m = Machine::new(MachineProfile::of(MachineId::M1), &CostModel::default());
        let mut phys = PhysMem::new(1 << 22);
        let root = paging::new_root(&mut phys).unwrap();
        let frame = phys.alloc_frame().unwrap();
        paging::map(
            &mut phys,
            root,
            VirtAddr::new(0x1000),
            frame.base(),
            PageSize::Size4K,
            PteFlags::USER | PteFlags::WRITABLE,
        )
        .unwrap();
        m.mmu_mut(3).load_cr3(root, Asid::UNTAGGED);
        m.mmu_mut(3)
            .translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert!(m.clocks().now_on(3) > 0, "core 3 did the work");
        assert_eq!(m.clocks().now_on(0), 0, "core 0 stayed idle");
        assert_eq!(m.clocks().now(), m.clocks().now_on(3));
        assert_eq!(m.clocks().total(), m.clocks().now_on(3));
    }

    #[test]
    fn tlbs_are_private_per_core() {
        let mut m = Machine::new(MachineProfile::of(MachineId::M1), &CostModel::default());
        let mut phys = PhysMem::new(1 << 22);
        let root = paging::new_root(&mut phys).unwrap();
        let frame = phys.alloc_frame().unwrap();
        paging::map(
            &mut phys,
            root,
            VirtAddr::new(0x2000),
            frame.base(),
            PageSize::Size4K,
            PteFlags::USER,
        )
        .unwrap();
        for core in [0usize, 1] {
            m.mmu_mut(core).load_cr3(root, Asid::UNTAGGED);
            m.mmu_mut(core)
                .translate(&mut phys, VirtAddr::new(0x2000), Access::Read)
                .unwrap();
        }
        // A flush on core 1 must not disturb core 0's entry.
        m.mmu_mut(1).flush_tlb();
        m.mmu_mut(0)
            .translate(&mut phys, VirtAddr::new(0x2000), Access::Read)
            .unwrap();
        m.mmu_mut(1)
            .translate(&mut phys, VirtAddr::new(0x2000), Access::Read)
            .unwrap();
        assert_eq!(m.mmu(0).stats().walks, 1, "core 0's TLB survived");
        assert_eq!(m.mmu(1).stats().walks, 2, "core 1 had to rewalk");
    }
}
