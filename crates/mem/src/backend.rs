//! Pluggable translation backends.
//!
//! Historically the simulator hardwired one translation strategy: the
//! four-level x86-64 walker in [`crate::paging`]. [`TranslationBackend`]
//! turns that strategy into a seam so alternative memory-management
//! designs can be compared on the same harness (in the spirit of
//! Virtuoso's modular MMU and the "memory management without virtual
//! memory" line of work):
//!
//! * [`FourLevel`] — the default: a thin delegate to [`crate::paging`].
//!   Simulated cycle counts are bit-identical to the pre-trait code.
//! * [`crate::segmap::SegMap`] — a no-VM, software-managed baseline.
//!   Structural operations still build the real page-table trees (so
//!   frame accounting, invariant audits, and trace replay are unchanged),
//!   but *translation* consults a flat per-root segment table: one
//!   base+bound check instead of a TLB lookup and page walk.
//!
//! The backend owns the *tables*; the per-core [`crate::mmu::Mmu`] owns
//! the TLB, CR3, cycle charging, and the host-side walk cache. Every
//! method takes `&self`: backends that keep state (the segment shadow
//! table) use interior mutability so one backend instance can be shared
//! by every core's MMU and by the kernel.

use std::collections::HashSet;

use crate::addr::{PageSize, Pfn, PhysAddr, VirtAddr};
use crate::error::MemError;
use crate::paging::{self, MapStats, PteFlags, Translation, UnmapStats};
use crate::phys::PhysMem;
use crate::segmap::SegMap;

/// The translation strategy contract.
///
/// Implementations must uphold these invariants (relied on by the OS
/// layer, the invariant audits, and the determinism gate):
///
/// * **Real trees.** Structural operations (`map`, `unmap_region`,
///   `link_subtree`, `free_tables`, ...) must keep the four-level tables
///   in simulated frames authoritative, even if `translate` never reads
///   them: frame accounting ([`Self::collect_table_frames`]) and offline
///   trace replay walk those trees directly.
/// * **Pure translate.** [`Self::translate`] must not mutate any state
///   observable by the simulation (no accessed/dirty bits, no cycle
///   charges) — the MMU charges costs, which lets it memoize results in
///   a host-side cache without changing simulated behaviour.
/// * **Determinism.** Identical call sequences must produce identical
///   results; no host randomness or wall-clock reads.
pub trait TranslationBackend {
    /// Allocates a fresh, empty root (PML4) table.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] if no frame is available.
    fn new_root(&self, phys: &mut PhysMem) -> Result<Pfn, MemError>;

    /// Maps one page of `size` at `va -> pa`.
    ///
    /// # Errors
    ///
    /// As [`paging::map`]: misalignment, double map, out of frames.
    fn map(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError>;

    /// Maps a contiguous region `va..va+len` to `pa..pa+len`.
    ///
    /// # Errors
    ///
    /// As [`paging::map_region`]; on error earlier pages stay mapped and
    /// the caller decides whether to roll back.
    #[allow(clippy::too_many_arguments)]
    fn map_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError>;

    /// Unmaps a contiguous region, skipping unmapped holes.
    ///
    /// # Errors
    ///
    /// As [`paging::unmap_region`] (misalignment only).
    fn unmap_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        len: u64,
    ) -> Result<UnmapStats, MemError>;

    /// Resolves `va` to a [`Translation`] plus the number of table levels
    /// visited (0 for backends that do not walk; 2/3/4 for 1 GiB / 2 MiB
    /// / 4 KiB leaves of the four-level tree). Must be read-only.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PageFault`] if no translation exists.
    fn translate(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
    ) -> Result<(Translation, u32), MemError>;

    /// Rewrites the permission flags of the leaf entry covering `va`,
    /// keeping its physical target and page size.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PageFault`] if no translation exists.
    fn protect(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        flags: PteFlags,
    ) -> Result<(), MemError>;

    /// Backend-side invalidation hook, called when a root's cached
    /// translations must be dropped (TLB shootdown). The stock backends
    /// keep no per-root caches, so the default is a no-op; the MMU's
    /// host-side walk cache is invalidated separately by the MMU itself.
    fn flush(&self, root: Pfn) {
        let _ = root;
    }

    /// Shares the subtree under `src_root[pml4_index]` into `dst_root`.
    ///
    /// # Errors
    ///
    /// As [`paging::link_subtree`].
    fn link_subtree(
        &self,
        phys: &mut PhysMem,
        dst_root: Pfn,
        src_root: Pfn,
        pml4_index: usize,
    ) -> Result<(), MemError>;

    /// Unlinks a shared subtree without freeing its tables.
    fn unlink_subtree(&self, phys: &mut PhysMem, root: Pfn, pml4_index: usize);

    /// Ensures `root[pml4_index]` points at a (possibly empty) PDPT.
    ///
    /// # Errors
    ///
    /// As [`paging::ensure_root_slot`].
    fn ensure_root_slot(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        pml4_index: usize,
    ) -> Result<(Pfn, bool), MemError>;

    /// Evicts the 4 KiB leaf at `va`, leaving a swap marker; returns the
    /// frame it mapped. See [`paging::clear_leaf`].
    fn clear_leaf(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn>;

    /// Whether the leaf entry for `va` carries the swap marker.
    fn leaf_is_swap_marked(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> bool;

    /// Frees every table frame under `root` except the `shared` slots.
    fn free_tables(&self, phys: &mut PhysMem, root: Pfn, shared: &[usize]);

    /// Adds the table frames reachable from `root` to `seen`, skipping
    /// the PML4 slots in `skip`; returns how many were newly added.
    fn collect_table_frames(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        skip: &[usize],
        seen: &mut HashSet<Pfn>,
    ) -> u64;
}

/// The default backend: the four-level x86-64 walker, verbatim.
///
/// Every method is a direct delegate to [`crate::paging`], so simulated
/// cycles, trace events, and frame accounting are bit-identical to the
/// pre-trait code paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FourLevel;

impl TranslationBackend for FourLevel {
    fn new_root(&self, phys: &mut PhysMem) -> Result<Pfn, MemError> {
        paging::new_root(phys)
    }

    fn map(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        paging::map(phys, root, va, pa, size, flags)
    }

    fn map_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        paging::map_region(phys, root, va, pa, len, size, flags)
    }

    fn unmap_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        len: u64,
    ) -> Result<UnmapStats, MemError> {
        paging::unmap_region(phys, root, va, len)
    }

    fn translate(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
    ) -> Result<(Translation, u32), MemError> {
        paging::walk(phys, root, va)
    }

    fn protect(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        flags: PteFlags,
    ) -> Result<(), MemError> {
        paging::protect(phys, root, va, flags)
    }

    fn link_subtree(
        &self,
        phys: &mut PhysMem,
        dst_root: Pfn,
        src_root: Pfn,
        pml4_index: usize,
    ) -> Result<(), MemError> {
        paging::link_subtree(phys, dst_root, src_root, pml4_index)
    }

    fn unlink_subtree(&self, phys: &mut PhysMem, root: Pfn, pml4_index: usize) {
        paging::unlink_subtree(phys, root, pml4_index);
    }

    fn ensure_root_slot(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        pml4_index: usize,
    ) -> Result<(Pfn, bool), MemError> {
        paging::ensure_root_slot(phys, root, pml4_index)
    }

    fn clear_leaf(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn> {
        paging::clear_leaf(phys, root, va)
    }

    fn leaf_is_swap_marked(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> bool {
        paging::leaf_is_swap_marked(phys, root, va)
    }

    fn free_tables(&self, phys: &mut PhysMem, root: Pfn, shared: &[usize]) {
        paging::free_tables(phys, root, shared);
    }

    fn collect_table_frames(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        skip: &[usize],
        seen: &mut HashSet<Pfn>,
    ) -> u64 {
        paging::collect_table_frames(phys, root, skip, seen)
    }
}

/// A concrete, cloneable backend choice.
///
/// Clones share state: the [`SegMap`] variant carries its segment table
/// behind an `Arc`, so the kernel and every core's MMU observe the same
/// shadow mappings.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The four-level x86-64 walker (the default).
    #[default]
    FourLevel,
    /// The no-VM base+bound baseline.
    SegMap(SegMap),
}

impl Backend {
    /// The default four-level backend.
    pub fn four_level() -> Self {
        Backend::FourLevel
    }

    /// A fresh no-VM segment-table backend.
    pub fn seg_map() -> Self {
        Backend::SegMap(SegMap::new())
    }

    /// Whether this is the no-VM segment-table backend.
    pub fn is_seg_map(&self) -> bool {
        matches!(self, Backend::SegMap(_))
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::FourLevel => "4level",
            Backend::SegMap(_) => "no-vm",
        }
    }
}

macro_rules! delegate {
    ($self:ident, $method:ident($($arg:expr),*)) => {
        match $self {
            Backend::FourLevel => FourLevel.$method($($arg),*),
            Backend::SegMap(s) => s.$method($($arg),*),
        }
    };
}

impl TranslationBackend for Backend {
    fn new_root(&self, phys: &mut PhysMem) -> Result<Pfn, MemError> {
        delegate!(self, new_root(phys))
    }

    fn map(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        delegate!(self, map(phys, root, va, pa, size, flags))
    }

    fn map_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<MapStats, MemError> {
        delegate!(self, map_region(phys, root, va, pa, len, size, flags))
    }

    fn unmap_region(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        len: u64,
    ) -> Result<UnmapStats, MemError> {
        delegate!(self, unmap_region(phys, root, va, len))
    }

    fn translate(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
    ) -> Result<(Translation, u32), MemError> {
        delegate!(self, translate(phys, root, va))
    }

    fn protect(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        flags: PteFlags,
    ) -> Result<(), MemError> {
        delegate!(self, protect(phys, root, va, flags))
    }

    fn flush(&self, root: Pfn) {
        delegate!(self, flush(root))
    }

    fn link_subtree(
        &self,
        phys: &mut PhysMem,
        dst_root: Pfn,
        src_root: Pfn,
        pml4_index: usize,
    ) -> Result<(), MemError> {
        delegate!(self, link_subtree(phys, dst_root, src_root, pml4_index))
    }

    fn unlink_subtree(&self, phys: &mut PhysMem, root: Pfn, pml4_index: usize) {
        delegate!(self, unlink_subtree(phys, root, pml4_index))
    }

    fn ensure_root_slot(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        pml4_index: usize,
    ) -> Result<(Pfn, bool), MemError> {
        delegate!(self, ensure_root_slot(phys, root, pml4_index))
    }

    fn clear_leaf(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn> {
        delegate!(self, clear_leaf(phys, root, va))
    }

    fn leaf_is_swap_marked(&self, phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> bool {
        delegate!(self, leaf_is_swap_marked(phys, root, va))
    }

    fn free_tables(&self, phys: &mut PhysMem, root: Pfn, shared: &[usize]) {
        delegate!(self, free_tables(phys, root, shared))
    }

    fn collect_table_frames(
        &self,
        phys: &mut PhysMem,
        root: Pfn,
        skip: &[usize],
        seen: &mut HashSet<Pfn>,
    ) -> u64 {
        delegate!(self, collect_table_frames(phys, root, skip, seen))
    }
}

/// User-facing backend selection for benchmarks and configs: which
/// translation strategy (and host-cache setting) a run should use.
///
/// Distinct from [`Backend`] because "four-level with the host walk
/// cache disabled" is the same *simulated* backend — the knob only
/// affects host wall-time, which is exactly what the parity checks in
/// `selfperf` and CI verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranslationKind {
    /// Four-level walker, host walk cache enabled (the default).
    #[default]
    FourLevel,
    /// Four-level walker, host walk cache disabled (parity checks).
    FourLevelUncached,
    /// No-VM base+bound segment table.
    NoVm,
}

impl TranslationKind {
    /// Short name for report columns.
    pub fn name(self) -> &'static str {
        match self {
            TranslationKind::FourLevel => "4level",
            TranslationKind::FourLevelUncached => "4level-nocache",
            TranslationKind::NoVm => "no-vm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_level_delegates_to_paging() {
        let mut phys = PhysMem::new(1 << 24);
        let be = Backend::default();
        let root = be.new_root(&mut phys).unwrap();
        let va = VirtAddr::new(0x40_0000);
        be.map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x80_0000),
            PageSize::Size4K,
            PteFlags::USER | PteFlags::WRITABLE,
        )
        .unwrap();
        // The backend and the raw walker agree exactly.
        let (bt, blv) = be.translate(&mut phys, root, va.add(7)).unwrap();
        let (pt, plv) = paging::walk(&mut phys, root, va.add(7)).unwrap();
        assert_eq!((bt, blv), (pt, plv));
        assert_eq!(blv, 4);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Backend::four_level().name(), "4level");
        assert_eq!(Backend::seg_map().name(), "no-vm");
        assert!(Backend::seg_map().is_seg_map());
        assert_eq!(TranslationKind::default().name(), "4level");
        assert_eq!(TranslationKind::FourLevelUncached.name(), "4level-nocache");
        assert_eq!(TranslationKind::NoVm.name(), "no-vm");
    }
}
