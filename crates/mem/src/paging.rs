//! x86-64-style four-level page tables, stored in simulated physical frames.
//!
//! Table nodes are ordinary frames obtained from [`PhysMem::alloc_frame`];
//! entries are little-endian `u64`s with the usual x86-64 bit layout
//! (present/writable/user/accessed/dirty/PS/global/NX). The walker and the
//! mapper operate on these frames exactly like the hardware and the BSD
//! `pmap` layer would, which is what makes the Figure 1 experiment (cost of
//! constructing and destroying page tables) structurally faithful.
//!
//! Subtrees can be *shared* between roots ([`link_subtree`]): SpaceJMP uses
//! this for segments whose translations are cached in the kernel and for
//! the global OS mappings every address space contains.

use crate::addr::{PageSize, Pfn, PhysAddr, VirtAddr, ENTRIES_PER_TABLE, PAGE_SIZE};
use crate::error::{Access, MemError};
use crate::phys::PhysMem;

/// Page-table entry permission/attribute flags (x86-64 bit positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u64);

impl PteFlags {
    /// Entry is present.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Entry permits writes.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// Entry permits user-mode access.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// Entry was accessed (set by the walker).
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// Entry was written (set by the walker on write).
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// Entry maps a superpage (valid at PDPT/PD levels).
    pub const HUGE: PteFlags = PteFlags(1 << 7);
    /// Entry is global: survives untagged TLB flushes.
    pub const GLOBAL: PteFlags = PteFlags(1 << 8);
    /// Software bit (x86-64 ignores bits 9-11 of non-present entries): the
    /// page this entry mapped was swapped out. The entry is *not* present;
    /// the authoritative page location lives in the backing VM object, the
    /// marker only distinguishes "swapped" from "never mapped" for audits.
    pub const SWAPPED: PteFlags = PteFlags(1 << 9);
    /// Entry forbids instruction fetch.
    pub const NO_EXECUTE: PteFlags = PteFlags(1 << 63);

    /// Empty flag set.
    pub const fn empty() -> Self {
        PteFlags(0)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds flags from raw bits, keeping only flag positions.
    pub const fn from_bits_truncate(bits: u64) -> Self {
        PteFlags(bits & (0x3e7 | (1 << 63)))
    }

    /// Whether all flags in `other` are set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub const fn union(self, other: PteFlags) -> Self {
        PteFlags(self.0 | other.0)
    }

    /// Flags with `other` removed.
    pub const fn difference(self, other: PteFlags) -> Self {
        PteFlags(self.0 & !other.0)
    }

    /// Whether the flags permit the given access from user mode.
    pub fn permits(self, access: Access) -> bool {
        if !self.contains(PteFlags::PRESENT) {
            return false;
        }
        match access {
            Access::Read => true,
            Access::Write => self.contains(PteFlags::WRITABLE),
            Access::Execute => !self.contains(PteFlags::NO_EXECUTE),
        }
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        *self = self.union(rhs);
    }
}

const ADDR_MASK: u64 = 0x0000_3fff_ffff_f000; // bits 12..46

#[inline]
fn make_entry(pa: PhysAddr, flags: PteFlags) -> u64 {
    (pa.raw() & ADDR_MASK) | flags.bits()
}

#[inline]
fn entry_addr(entry: u64) -> PhysAddr {
    PhysAddr::new(entry & ADDR_MASK)
}

#[inline]
fn entry_flags(entry: u64) -> PteFlags {
    PteFlags::from_bits_truncate(entry)
}

#[inline]
fn entry_present(entry: u64) -> bool {
    entry & 1 != 0
}

/// A translation produced by [`walk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical address the virtual address maps to.
    pub pa: PhysAddr,
    /// Effective flags of the leaf entry.
    pub flags: PteFlags,
    /// Page size of the mapping.
    pub size: PageSize,
}

/// Counters describing the work a map operation performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapStats {
    /// Leaf entries written.
    pub ptes_written: u64,
    /// Page-table nodes allocated.
    pub tables_allocated: u64,
}

impl MapStats {
    /// Accumulates another operation's stats.
    pub fn merge(&mut self, other: MapStats) {
        self.ptes_written += other.ptes_written;
        self.tables_allocated += other.tables_allocated;
    }
}

/// Counters describing the work an unmap operation performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnmapStats {
    /// Leaf entries cleared.
    pub ptes_cleared: u64,
    /// Page-table nodes freed because they became empty.
    pub tables_freed: u64,
}

/// Allocates a fresh, empty root table (PML4).
///
/// # Errors
///
/// Returns [`MemError::OutOfFrames`] if no frame is available.
pub fn new_root(phys: &mut PhysMem) -> Result<Pfn, MemError> {
    phys.alloc_frame()
}

fn read_entry(phys: &mut PhysMem, table: Pfn, index: usize) -> u64 {
    let bytes = phys.frame_bytes_mut(table);
    let off = index * 8;
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

fn write_entry(phys: &mut PhysMem, table: Pfn, index: usize, entry: u64) {
    phys.bump_table_generation();
    let bytes = phys.frame_bytes_mut(table);
    let off = index * 8;
    bytes[off..off + 8].copy_from_slice(&entry.to_le_bytes());
}

/// Returns the next-level table under `table[index]`, allocating it if absent.
fn ensure_table(
    phys: &mut PhysMem,
    table: Pfn,
    index: usize,
    stats: &mut MapStats,
) -> Result<Pfn, MemError> {
    let entry = read_entry(phys, table, index);
    if entry_present(entry) {
        if entry_flags(entry).contains(PteFlags::HUGE) {
            return Err(MemError::AlreadyMapped(VirtAddr::NULL));
        }
        Ok(entry_addr(entry).pfn())
    } else {
        let new = phys.alloc_frame()?;
        stats.tables_allocated += 1;
        // Intermediate entries carry the most permissive flags; leaves
        // enforce the real permissions.
        let e = make_entry(
            new.base(),
            PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER,
        );
        write_entry(phys, table, index, e);
        Ok(new)
    }
}

/// Maps one page of the given size at `va -> pa`.
///
/// # Errors
///
/// * [`MemError::BadMapping`] if `va`/`pa` are not aligned to `size`.
/// * [`MemError::AlreadyMapped`] if a translation already exists.
/// * [`MemError::OutOfFrames`] if a table node cannot be allocated.
pub fn map(
    phys: &mut PhysMem,
    root: Pfn,
    va: VirtAddr,
    pa: PhysAddr,
    size: PageSize,
    flags: PteFlags,
) -> Result<MapStats, MemError> {
    if !va.is_aligned(size.bytes()) || !pa.is_aligned(size.bytes()) {
        return Err(MemError::BadMapping(va));
    }
    let mut stats = MapStats::default();
    let leaf_flags = flags | PteFlags::PRESENT;
    match size {
        PageSize::Size1G => {
            let pdpt = ensure_table(phys, root, va.pml4_index(), &mut stats)
                .map_err(|e| remap_err(e, va))?;
            let existing = read_entry(phys, pdpt, va.pdpt_index());
            if entry_present(existing) {
                return Err(MemError::AlreadyMapped(va));
            }
            write_entry(
                phys,
                pdpt,
                va.pdpt_index(),
                make_entry(pa, leaf_flags | PteFlags::HUGE),
            );
        }
        PageSize::Size2M => {
            let pdpt = ensure_table(phys, root, va.pml4_index(), &mut stats)
                .map_err(|e| remap_err(e, va))?;
            let pd = ensure_table(phys, pdpt, va.pdpt_index(), &mut stats)
                .map_err(|e| remap_err(e, va))?;
            let existing = read_entry(phys, pd, va.pd_index());
            if entry_present(existing) {
                return Err(MemError::AlreadyMapped(va));
            }
            write_entry(
                phys,
                pd,
                va.pd_index(),
                make_entry(pa, leaf_flags | PteFlags::HUGE),
            );
        }
        PageSize::Size4K => {
            let pdpt = ensure_table(phys, root, va.pml4_index(), &mut stats)
                .map_err(|e| remap_err(e, va))?;
            let pd = ensure_table(phys, pdpt, va.pdpt_index(), &mut stats)
                .map_err(|e| remap_err(e, va))?;
            let pt =
                ensure_table(phys, pd, va.pd_index(), &mut stats).map_err(|e| remap_err(e, va))?;
            let existing = read_entry(phys, pt, va.pt_index());
            if entry_present(existing) {
                return Err(MemError::AlreadyMapped(va));
            }
            write_entry(phys, pt, va.pt_index(), make_entry(pa, leaf_flags));
        }
    }
    stats.ptes_written = 1;
    Ok(stats)
}

fn remap_err(e: MemError, va: VirtAddr) -> MemError {
    match e {
        MemError::AlreadyMapped(_) => MemError::AlreadyMapped(va),
        other => other,
    }
}

/// Maps a contiguous region `va..va+len` to `pa..pa+len` with pages of
/// `size`. This is the batched path used by `mmap`: for 4 KiB pages it
/// fills whole leaf tables at a time, exactly like `pmap_enter` batching.
///
/// # Errors
///
/// Same conditions as [`map`]; on error, earlier pages stay mapped (the
/// caller — the kernel — decides whether to roll back).
pub fn map_region(
    phys: &mut PhysMem,
    root: Pfn,
    va: VirtAddr,
    pa: PhysAddr,
    len: u64,
    size: PageSize,
    flags: PteFlags,
) -> Result<MapStats, MemError> {
    if len == 0
        || !len.is_multiple_of(size.bytes())
        || !va.is_aligned(size.bytes())
        || !pa.is_aligned(size.bytes())
    {
        return Err(MemError::BadMapping(va));
    }
    let mut stats = MapStats::default();
    if size != PageSize::Size4K {
        let pages = len / size.bytes();
        for i in 0..pages {
            let s = map(
                phys,
                root,
                va.add(i * size.bytes()),
                pa.add(i * size.bytes()),
                size,
                flags,
            )?;
            stats.merge(s);
        }
        return Ok(stats);
    }
    // Batched 4 KiB path: resolve the leaf table once per 512 pages.
    let leaf_flags = flags | PteFlags::PRESENT;
    let mut cur_va = va;
    let mut cur_pa = pa;
    let end = va.add(len);
    while cur_va < end {
        let pdpt = ensure_table(phys, root, cur_va.pml4_index(), &mut stats)
            .map_err(|e| remap_err(e, cur_va))?;
        let pd = ensure_table(phys, pdpt, cur_va.pdpt_index(), &mut stats)
            .map_err(|e| remap_err(e, cur_va))?;
        let pt = ensure_table(phys, pd, cur_va.pd_index(), &mut stats)
            .map_err(|e| remap_err(e, cur_va))?;
        let first = cur_va.pt_index();
        let in_table = (ENTRIES_PER_TABLE as usize - first) as u64;
        let remaining = (end.raw() - cur_va.raw()) / PAGE_SIZE;
        let count = in_table.min(remaining);
        {
            phys.bump_table_generation();
            let bytes = phys.frame_bytes_mut(pt);
            for i in 0..count as usize {
                let off = (first + i) * 8;
                let existing = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                if entry_present(existing) {
                    return Err(MemError::AlreadyMapped(cur_va.add(i as u64 * PAGE_SIZE)));
                }
                let entry = make_entry(cur_pa.add(i as u64 * PAGE_SIZE), leaf_flags);
                bytes[off..off + 8].copy_from_slice(&entry.to_le_bytes());
            }
        }
        stats.ptes_written += count;
        cur_va = cur_va.add(count * PAGE_SIZE);
        cur_pa = cur_pa.add(count * PAGE_SIZE);
    }
    Ok(stats)
}

/// Clears the present bit of the 4 KiB leaf entry for `va`, leaving a
/// non-present [`PteFlags::SWAPPED`] marker behind, and returns the frame
/// the entry pointed at. Unlike [`unmap`], table nodes are *not* reaped:
/// eviction runs against leaf tables that may be linked into several
/// roots, and freeing a node here would leave the other roots dangling.
///
/// Returns `None` when no 4 KiB translation exists (never mapped, already
/// evicted, or covered by a superpage — superpages are never evicted).
pub fn clear_leaf(phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn> {
    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return None;
    }
    let pdpte = read_entry(phys, entry_addr(pml4e).pfn(), va.pdpt_index());
    if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
        return None;
    }
    let pde = read_entry(phys, entry_addr(pdpte).pfn(), va.pd_index());
    if !entry_present(pde) || entry_flags(pde).contains(PteFlags::HUGE) {
        return None;
    }
    let pt = entry_addr(pde).pfn();
    let pte = read_entry(phys, pt, va.pt_index());
    if !entry_present(pte) {
        return None;
    }
    write_entry(phys, pt, va.pt_index(), PteFlags::SWAPPED.bits());
    Some(entry_addr(pte).pfn())
}

/// Whether the leaf entry for `va` carries the non-present
/// [`PteFlags::SWAPPED`] marker left by [`clear_leaf`].
pub fn leaf_is_swap_marked(phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> bool {
    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return false;
    }
    let pdpte = read_entry(phys, entry_addr(pml4e).pfn(), va.pdpt_index());
    if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
        return false;
    }
    let pde = read_entry(phys, entry_addr(pdpte).pfn(), va.pd_index());
    if !entry_present(pde) || entry_flags(pde).contains(PteFlags::HUGE) {
        return false;
    }
    let pte = read_entry(phys, entry_addr(pde).pfn(), va.pt_index());
    !entry_present(pte) && entry_flags(pte).contains(PteFlags::SWAPPED)
}

/// Ensures the PML4 slot `pml4_index` of `root` points at a (possibly
/// empty) PDPT, allocating one if absent, and returns it plus whether an
/// allocation happened. Demand-paged segments have no translations at
/// attach time, but subtree sharing ([`link_subtree`]) needs the slot
/// populated so that later faults build tables *inside* the shared tree.
///
/// # Errors
///
/// Returns [`MemError::OutOfFrames`] if the PDPT cannot be allocated and
/// [`MemError::AlreadyMapped`] if the slot holds a 1 GiB superpage.
pub fn ensure_root_slot(
    phys: &mut PhysMem,
    root: Pfn,
    pml4_index: usize,
) -> Result<(Pfn, bool), MemError> {
    let mut stats = MapStats::default();
    let pdpt = ensure_table(phys, root, pml4_index, &mut stats)?;
    Ok((pdpt, stats.tables_allocated > 0))
}

fn table_is_empty(phys: &mut PhysMem, table: Pfn) -> bool {
    let bytes = phys.frame_bytes_mut(table);
    bytes.chunks_exact(8).all(|c| c[0] & 1 == 0)
}

/// Unmaps one page at `va`, freeing table nodes that become empty.
///
/// # Errors
///
/// Returns [`MemError::PageFault`] if nothing is mapped at `va`.
pub fn unmap(phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Result<UnmapStats, MemError> {
    let mut stats = UnmapStats::default();
    let fault = MemError::PageFault {
        va,
        access: Access::Read,
    };

    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return Err(fault);
    }
    let pdpt = entry_addr(pml4e).pfn();
    let pdpte = read_entry(phys, pdpt, va.pdpt_index());
    if !entry_present(pdpte) {
        return Err(fault);
    }
    if entry_flags(pdpte).contains(PteFlags::HUGE) {
        write_entry(phys, pdpt, va.pdpt_index(), 0);
        stats.ptes_cleared = 1;
    } else {
        let pd = entry_addr(pdpte).pfn();
        let pde = read_entry(phys, pd, va.pd_index());
        if !entry_present(pde) {
            return Err(fault);
        }
        if entry_flags(pde).contains(PteFlags::HUGE) {
            write_entry(phys, pd, va.pd_index(), 0);
            stats.ptes_cleared = 1;
        } else {
            let pt = entry_addr(pde).pfn();
            let pte = read_entry(phys, pt, va.pt_index());
            if !entry_present(pte) {
                return Err(fault);
            }
            write_entry(phys, pt, va.pt_index(), 0);
            stats.ptes_cleared = 1;
            if table_is_empty(phys, pt) {
                phys.free_frame(pt);
                write_entry(phys, pd, va.pd_index(), 0);
                stats.tables_freed += 1;
            }
        }
        if table_is_empty(phys, pd) {
            phys.free_frame(pd);
            write_entry(phys, pdpt, va.pdpt_index(), 0);
            stats.tables_freed += 1;
        }
    }
    if table_is_empty(phys, pdpt) {
        phys.free_frame(pdpt);
        write_entry(phys, root, va.pml4_index(), 0);
        stats.tables_freed += 1;
    }
    Ok(stats)
}

/// Unmaps a contiguous region of 4 KiB pages, batching per leaf table.
///
/// # Errors
///
/// Returns [`MemError::BadMapping`] on misalignment; unmapped holes inside
/// the region are skipped silently (like `munmap`).
pub fn unmap_region(
    phys: &mut PhysMem,
    root: Pfn,
    va: VirtAddr,
    len: u64,
) -> Result<UnmapStats, MemError> {
    if len == 0 || !va.is_aligned(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
        return Err(MemError::BadMapping(va));
    }
    let mut stats = UnmapStats::default();
    let mut cur = va;
    let end = va.add(len);
    // Frees `table` if it became empty, clearing its entry in `parent`.
    fn reap_if_empty(
        phys: &mut PhysMem,
        parent: Pfn,
        index: usize,
        table: Pfn,
        stats: &mut UnmapStats,
    ) -> bool {
        if table_is_empty(phys, table) {
            phys.free_frame(table);
            write_entry(phys, parent, index, 0);
            stats.tables_freed += 1;
            true
        } else {
            false
        }
    }
    while cur < end {
        let pml4_index = cur.pml4_index();
        let pml4e = read_entry(phys, root, pml4_index);
        if !entry_present(pml4e) {
            cur = VirtAddr::new_unchecked((cur.raw() | 0x7f_ffff_ffff) + 1); // next PML4 slot
            continue;
        }
        let pdpt = entry_addr(pml4e).pfn();
        let pdpt_index = cur.pdpt_index();
        let pdpte = read_entry(phys, pdpt, pdpt_index);
        if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
            if entry_present(pdpte) {
                write_entry(phys, pdpt, pdpt_index, 0);
                stats.ptes_cleared += 1;
                reap_if_empty(phys, root, pml4_index, pdpt, &mut stats);
            }
            cur = VirtAddr::new_unchecked((cur.raw() | 0x3fff_ffff) + 1); // next 1 GiB
            continue;
        }
        let pd = entry_addr(pdpte).pfn();
        let pd_index = cur.pd_index();
        let pde = read_entry(phys, pd, pd_index);
        if !entry_present(pde) || entry_flags(pde).contains(PteFlags::HUGE) {
            if entry_present(pde) {
                write_entry(phys, pd, pd_index, 0);
                stats.ptes_cleared += 1;
                if reap_if_empty(phys, pdpt, pdpt_index, pd, &mut stats) {
                    reap_if_empty(phys, root, pml4_index, pdpt, &mut stats);
                }
            }
            cur = VirtAddr::new_unchecked((cur.raw() | 0x1f_ffff) + 1); // next 2 MiB
            continue;
        }
        let pt = entry_addr(pde).pfn();
        let first = cur.pt_index();
        let in_table = (ENTRIES_PER_TABLE as usize - first) as u64;
        let remaining = (end.raw() - cur.raw()) / PAGE_SIZE;
        let count = in_table.min(remaining);
        {
            phys.bump_table_generation();
            let bytes = phys.frame_bytes_mut(pt);
            for i in 0..count as usize {
                let off = (first + i) * 8;
                if bytes[off] & 1 != 0 {
                    bytes[off..off + 8].fill(0);
                    stats.ptes_cleared += 1;
                }
            }
        }
        cur = cur.add(count * PAGE_SIZE);
        if reap_if_empty(phys, pd, pd_index, pt, &mut stats)
            && reap_if_empty(phys, pdpt, pdpt_index, pd, &mut stats)
        {
            reap_if_empty(phys, root, pml4_index, pdpt, &mut stats);
        }
    }
    Ok(stats)
}

/// Walks the tables for `va` and returns its translation.
///
/// `levels_visited` lets the MMU charge walk costs per level.
///
/// # Errors
///
/// Returns [`MemError::PageFault`] if no translation exists.
pub fn walk(phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Result<(Translation, u32), MemError> {
    let fault = MemError::PageFault {
        va,
        access: Access::Read,
    };
    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return Err(fault);
    }
    let pdpte = read_entry(phys, entry_addr(pml4e).pfn(), va.pdpt_index());
    if !entry_present(pdpte) {
        return Err(fault);
    }
    if entry_flags(pdpte).contains(PteFlags::HUGE) {
        let base = entry_addr(pdpte);
        return Ok((
            Translation {
                pa: base.add(va.offset_in(PageSize::Size1G)),
                flags: entry_flags(pdpte),
                size: PageSize::Size1G,
            },
            2,
        ));
    }
    let pde = read_entry(phys, entry_addr(pdpte).pfn(), va.pd_index());
    if !entry_present(pde) {
        return Err(fault);
    }
    if entry_flags(pde).contains(PteFlags::HUGE) {
        let base = entry_addr(pde);
        return Ok((
            Translation {
                pa: base.add(va.offset_in(PageSize::Size2M)),
                flags: entry_flags(pde),
                size: PageSize::Size2M,
            },
            3,
        ));
    }
    let pte = read_entry(phys, entry_addr(pde).pfn(), va.pt_index());
    if !entry_present(pte) {
        return Err(fault);
    }
    Ok((
        Translation {
            pa: entry_addr(pte).add(va.page_offset()),
            flags: entry_flags(pte),
            size: PageSize::Size4K,
        },
        4,
    ))
}

/// The level-4 (leaf) page table covering `va`, if the walk path to it
/// exists and is not terminated early by a superpage. The host-side
/// flattened walk cache uses this to find the table to snapshot
/// ([`leaf_entries`]) after a walk bottoms out at 4 KiB.
pub fn leaf_table(phys: &mut PhysMem, root: Pfn, va: VirtAddr) -> Option<Pfn> {
    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return None;
    }
    let pdpte = read_entry(phys, entry_addr(pml4e).pfn(), va.pdpt_index());
    if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
        return None;
    }
    let pde = read_entry(phys, entry_addr(pdpte).pfn(), va.pd_index());
    if !entry_present(pde) || entry_flags(pde).contains(PteFlags::HUGE) {
        return None;
    }
    Some(entry_addr(pde).pfn())
}

/// Copies leaf table `pt`'s 512 raw entries. The host-side walk cache
/// snapshots whole leaf tables with this and stamps each snapshot with
/// [`PhysMem::table_generation`]; since every table mutation bumps the
/// generation, a snapshot whose stamp still matches is byte-identical
/// to the live table and can serve PTE reads without touching `phys`.
pub fn leaf_entries(phys: &mut PhysMem, pt: Pfn) -> Box<[u64; ENTRIES_PER_TABLE as usize]> {
    let bytes = phys.frame_bytes_mut(pt);
    let mut out = Box::new([0u64; ENTRIES_PER_TABLE as usize]);
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        out[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    out
}

/// Decodes a raw 4 KiB leaf PTE (as stored in a table or a
/// [`leaf_entries`] snapshot): the mapped page base and flags, or
/// `None` if the entry is not present — exactly what a full walk
/// concludes at level four.
pub fn decode_pte(pte: u64) -> Option<(PhysAddr, PteFlags)> {
    if !entry_present(pte) {
        return None;
    }
    Some((entry_addr(pte), entry_flags(pte)))
}

/// Rewrites the permission flags of the leaf entry covering `va`,
/// preserving its physical target and page size (the PS bit for
/// superpages). `mprotect`-style: the entry stays present.
///
/// # Errors
///
/// Returns [`MemError::PageFault`] if no translation exists.
pub fn protect(
    phys: &mut PhysMem,
    root: Pfn,
    va: VirtAddr,
    flags: PteFlags,
) -> Result<(), MemError> {
    let fault = MemError::PageFault {
        va,
        access: Access::Read,
    };
    let new_flags = flags | PteFlags::PRESENT;
    let pml4e = read_entry(phys, root, va.pml4_index());
    if !entry_present(pml4e) {
        return Err(fault);
    }
    let pdpt = entry_addr(pml4e).pfn();
    let pdpte = read_entry(phys, pdpt, va.pdpt_index());
    if !entry_present(pdpte) {
        return Err(fault);
    }
    if entry_flags(pdpte).contains(PteFlags::HUGE) {
        let e = make_entry(entry_addr(pdpte), new_flags | PteFlags::HUGE);
        write_entry(phys, pdpt, va.pdpt_index(), e);
        return Ok(());
    }
    let pd = entry_addr(pdpte).pfn();
    let pde = read_entry(phys, pd, va.pd_index());
    if !entry_present(pde) {
        return Err(fault);
    }
    if entry_flags(pde).contains(PteFlags::HUGE) {
        let e = make_entry(entry_addr(pde), new_flags | PteFlags::HUGE);
        write_entry(phys, pd, va.pd_index(), e);
        return Ok(());
    }
    let pt = entry_addr(pde).pfn();
    let pte = read_entry(phys, pt, va.pt_index());
    if !entry_present(pte) {
        return Err(fault);
    }
    write_entry(
        phys,
        pt,
        va.pt_index(),
        make_entry(entry_addr(pte), new_flags),
    );
    Ok(())
}

/// Links the subtree rooted under `src_root[pml4_index]` into `dst_root` at
/// the same slot, sharing all lower-level tables.
///
/// This is how SpaceJMP shares segment translations between the address
/// spaces of attaching processes (Barrelfish shares "all page tables other
/// than the root", Section 4.2) and how cached translations make reattach
/// cheap (the `cached` series of Figure 1).
///
/// # Errors
///
/// * [`MemError::PageFault`] if the source slot is empty.
/// * [`MemError::AlreadyMapped`] if the destination slot is occupied by a
///   different subtree.
pub fn link_subtree(
    phys: &mut PhysMem,
    dst_root: Pfn,
    src_root: Pfn,
    pml4_index: usize,
) -> Result<(), MemError> {
    let src = read_entry(phys, src_root, pml4_index);
    if !entry_present(src) {
        return Err(MemError::PageFault {
            va: VirtAddr::new_unchecked((pml4_index as u64) << 39),
            access: Access::Read,
        });
    }
    let dst = read_entry(phys, dst_root, pml4_index);
    if entry_present(dst) {
        if dst == src {
            return Ok(());
        }
        return Err(MemError::AlreadyMapped(VirtAddr::new_unchecked(
            (pml4_index as u64) << 39,
        )));
    }
    write_entry(phys, dst_root, pml4_index, src);
    Ok(())
}

/// Unlinks a shared subtree from `root` without freeing its tables.
pub fn unlink_subtree(phys: &mut PhysMem, root: Pfn, pml4_index: usize) {
    write_entry(phys, root, pml4_index, 0);
}

/// The table frame a root's PML4 slot points to, or `None` if the slot
/// is empty. Offline audits use this to verify that an attached
/// vmspace's shared slots still reference the template's subtrees
/// (CoW-divergence would show as a different frame in the same slot).
pub fn root_slot_entry(phys: &mut PhysMem, root: Pfn, pml4_index: usize) -> Option<Pfn> {
    let e = read_entry(phys, root, pml4_index);
    entry_present(e).then(|| entry_addr(e).pfn())
}

/// Counts the page-table frames reachable from `root` (excluding shared
/// subtrees counted once).
pub fn count_table_frames(phys: &mut PhysMem, root: Pfn) -> u64 {
    let mut seen = std::collections::HashSet::new();
    collect_table_frames(phys, root, &[], &mut seen)
}

/// Like [`count_table_frames`], but skipping the PML4 slots in `skip` —
/// used by frame-accounting audits to count a vmspace's *private* tables
/// while attributing shared (linked) subtrees to the root that owns them.
pub fn count_table_frames_excluding(phys: &mut PhysMem, root: Pfn, skip: &[usize]) -> u64 {
    let mut seen = std::collections::HashSet::new();
    collect_table_frames(phys, root, skip, &mut seen)
}

/// Adds every table frame reachable from `root` (skipping the PML4 slots
/// in `skip`) to `seen` and returns how many were newly added. Audits
/// that sum table frames across *several* roots share one `seen` set so
/// subtrees linked into multiple trees are counted exactly once.
pub fn collect_table_frames(
    phys: &mut PhysMem,
    root: Pfn,
    skip: &[usize],
    seen: &mut std::collections::HashSet<Pfn>,
) -> u64 {
    let mut count = 0;
    if seen.insert(root) {
        count += 1;
    }
    for i in 0..ENTRIES_PER_TABLE as usize {
        if skip.contains(&i) {
            continue;
        }
        let pml4e = read_entry(phys, root, i);
        if !entry_present(pml4e) {
            continue;
        }
        let pdpt = entry_addr(pml4e).pfn();
        if !seen.insert(pdpt) {
            continue;
        }
        count += 1;
        for j in 0..ENTRIES_PER_TABLE as usize {
            let pdpte = read_entry(phys, pdpt, j);
            if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
                continue;
            }
            let pd = entry_addr(pdpte).pfn();
            if !seen.insert(pd) {
                continue;
            }
            count += 1;
            for k in 0..ENTRIES_PER_TABLE as usize {
                let pde = read_entry(phys, pd, k);
                if entry_present(pde) && !entry_flags(pde).contains(PteFlags::HUGE) {
                    let pt = entry_addr(pde).pfn();
                    if seen.insert(pt) {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Frees every table frame reachable from `root`, including `root` itself.
///
/// `shared` lists PML4 slots whose subtrees are shared with other roots and
/// must not be freed.
pub fn free_tables(phys: &mut PhysMem, root: Pfn, shared: &[usize]) {
    phys.bump_table_generation();
    for i in 0..ENTRIES_PER_TABLE as usize {
        if shared.contains(&i) {
            continue;
        }
        let pml4e = read_entry(phys, root, i);
        if !entry_present(pml4e) {
            continue;
        }
        let pdpt = entry_addr(pml4e).pfn();
        for j in 0..ENTRIES_PER_TABLE as usize {
            let pdpte = read_entry(phys, pdpt, j);
            if !entry_present(pdpte) || entry_flags(pdpte).contains(PteFlags::HUGE) {
                continue;
            }
            let pd = entry_addr(pdpte).pfn();
            for k in 0..ENTRIES_PER_TABLE as usize {
                let pde = read_entry(phys, pd, k);
                if entry_present(pde) && !entry_flags(pde).contains(PteFlags::HUGE) {
                    phys.free_frame(entry_addr(pde).pfn());
                }
            }
            phys.free_frame(pd);
        }
        phys.free_frame(pdpt);
    }
    phys.free_frame(root);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, Pfn) {
        let mut phys = PhysMem::new(1 << 24); // 16 MiB
        let root = new_root(&mut phys).unwrap();
        (phys, root)
    }

    #[test]
    fn map_walk_round_trip_4k() {
        let (mut phys, root) = setup();
        let va = VirtAddr::new(0x4000_0000);
        let pa = PhysAddr::new(0x20_0000);
        let flags = PteFlags::WRITABLE | PteFlags::USER;
        let stats = map(&mut phys, root, va, pa, PageSize::Size4K, flags).unwrap();
        assert_eq!(stats.ptes_written, 1);
        assert_eq!(stats.tables_allocated, 3, "PDPT + PD + PT");
        let (t, levels) = walk(&mut phys, root, va.add(123)).unwrap();
        assert_eq!(t.pa, pa.add(123));
        assert_eq!(t.size, PageSize::Size4K);
        assert_eq!(levels, 4);
        assert!(t.flags.contains(PteFlags::WRITABLE));
    }

    #[test]
    fn map_2m_and_1g_superpages() {
        let (mut phys, root) = setup();
        let f = PteFlags::WRITABLE | PteFlags::USER;
        map(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000),
            PhysAddr::new(0x40_0000),
            PageSize::Size2M,
            f,
        )
        .unwrap();
        let (t, levels) = walk(&mut phys, root, VirtAddr::new(0x20_0000 + 0x1234)).unwrap();
        assert_eq!(t.pa.raw(), 0x40_0000 + 0x1234);
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(levels, 3);

        map(
            &mut phys,
            root,
            VirtAddr::new(0x1_0000_0000),
            PhysAddr::new(0x4000_0000),
            PageSize::Size1G,
            f,
        )
        .unwrap();
        let (t, levels) = walk(&mut phys, root, VirtAddr::new(0x1_0000_0000 + 0xabcde)).unwrap();
        assert_eq!(t.pa.raw(), 0x4000_0000 + 0xabcde);
        assert_eq!(t.size, PageSize::Size1G);
        assert_eq!(levels, 2);
    }

    #[test]
    fn double_map_rejected() {
        let (mut phys, root) = setup();
        let va = VirtAddr::new(0x1000);
        let f = PteFlags::USER;
        map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            f,
        )
        .unwrap();
        let err = map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x3000),
            PageSize::Size4K,
            f,
        );
        assert_eq!(err, Err(MemError::AlreadyMapped(va)));
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut phys, root) = setup();
        let err = map(
            &mut phys,
            root,
            VirtAddr::new(0x1234),
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            PteFlags::empty(),
        );
        assert!(matches!(err, Err(MemError::BadMapping(_))));
        let err2 = map(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000),
            PhysAddr::new(0x1000),
            PageSize::Size2M,
            PteFlags::empty(),
        );
        assert!(matches!(err2, Err(MemError::BadMapping(_))));
    }

    #[test]
    fn map_region_batched_counts() {
        let (mut phys, root) = setup();
        // 4 MiB = 1024 PTEs = 2 leaf tables + PD + PDPT.
        let stats = map_region(
            &mut phys,
            root,
            VirtAddr::new(0),
            PhysAddr::new(0x40_0000),
            4 << 20,
            PageSize::Size4K,
            PteFlags::WRITABLE,
        )
        .unwrap();
        assert_eq!(stats.ptes_written, 1024);
        assert_eq!(stats.tables_allocated, 4);
        for off in [0u64, 4096, (4 << 20) - 4096] {
            let (t, _) = walk(&mut phys, root, VirtAddr::new(off)).unwrap();
            assert_eq!(t.pa.raw(), 0x40_0000 + off);
        }
        assert!(walk(&mut phys, root, VirtAddr::new(4 << 20)).is_err());
    }

    #[test]
    fn map_region_unaligned_start_inside_table() {
        let (mut phys, root) = setup();
        // Start mid-table (page 500) and span a table boundary.
        let va = VirtAddr::new(500 * 4096);
        let stats = map_region(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x10_0000),
            24 * 4096,
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        assert_eq!(stats.ptes_written, 24);
        let (t, _) = walk(&mut phys, root, va.add(23 * 4096)).unwrap();
        assert_eq!(t.pa.raw(), 0x10_0000 + 23 * 4096);
    }

    #[test]
    fn unmap_frees_empty_tables() {
        let (mut phys, root) = setup();
        let va = VirtAddr::new(0x40_0000);
        map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        let before = phys.allocated_frames();
        let stats = unmap(&mut phys, root, va).unwrap();
        assert_eq!(stats.ptes_cleared, 1);
        assert_eq!(stats.tables_freed, 3);
        assert_eq!(phys.allocated_frames(), before - 3);
        assert!(walk(&mut phys, root, va).is_err());
    }

    #[test]
    fn unmap_missing_page_faults() {
        let (mut phys, root) = setup();
        assert!(matches!(
            unmap(&mut phys, root, VirtAddr::new(0x7000)),
            Err(MemError::PageFault { .. })
        ));
    }

    #[test]
    fn unmap_region_skips_holes() {
        let (mut phys, root) = setup();
        map(
            &mut phys,
            root,
            VirtAddr::new(0x1000),
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        map(
            &mut phys,
            root,
            VirtAddr::new(0x3000),
            PhysAddr::new(0x4000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        let stats = unmap_region(&mut phys, root, VirtAddr::new(0), 16 * 4096).unwrap();
        assert_eq!(stats.ptes_cleared, 2);
        assert!(walk(&mut phys, root, VirtAddr::new(0x1000)).is_err());
        assert!(walk(&mut phys, root, VirtAddr::new(0x3000)).is_err());
    }

    #[test]
    fn link_subtree_shares_translations() {
        let (mut phys, root_a) = setup();
        let root_b = new_root(&mut phys).unwrap();
        let va = VirtAddr::new(0x1_0000_0000); // PML4 slot 0, PDPT slot 4
        map(
            &mut phys,
            root_a,
            va,
            PhysAddr::new(0x8000),
            PageSize::Size4K,
            PteFlags::WRITABLE,
        )
        .unwrap();
        link_subtree(&mut phys, root_b, root_a, va.pml4_index()).unwrap();
        let (t, _) = walk(&mut phys, root_b, va).unwrap();
        assert_eq!(t.pa.raw(), 0x8000);
        // New mappings in the shared subtree become visible in both roots.
        map(
            &mut phys,
            root_a,
            va.add(4096),
            PhysAddr::new(0x9000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        let (t2, _) = walk(&mut phys, root_b, va.add(4096)).unwrap();
        assert_eq!(t2.pa.raw(), 0x9000);
        // Unlink removes visibility from b only.
        unlink_subtree(&mut phys, root_b, va.pml4_index());
        assert!(walk(&mut phys, root_b, va).is_err());
        assert!(walk(&mut phys, root_a, va).is_ok());
    }

    #[test]
    fn link_subtree_conflicts_detected() {
        let (mut phys, root_a) = setup();
        let root_b = new_root(&mut phys).unwrap();
        let va = VirtAddr::new(0);
        map(
            &mut phys,
            root_a,
            va,
            PhysAddr::new(0x8000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        map(
            &mut phys,
            root_b,
            va,
            PhysAddr::new(0x9000),
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        assert!(matches!(
            link_subtree(&mut phys, root_b, root_a, 0),
            Err(MemError::AlreadyMapped(_))
        ));
        // Linking twice from the same source is idempotent.
        let root_c = new_root(&mut phys).unwrap();
        link_subtree(&mut phys, root_c, root_a, 0).unwrap();
        link_subtree(&mut phys, root_c, root_a, 0).unwrap();
        // Empty source slot is an error.
        assert!(link_subtree(&mut phys, root_c, root_a, 5).is_err());
    }

    #[test]
    fn count_and_free_tables() {
        let (mut phys, root) = setup();
        map_region(
            &mut phys,
            root,
            VirtAddr::new(0),
            PhysAddr::new(0x40_0000),
            2 << 20,
            PageSize::Size4K,
            PteFlags::empty(),
        )
        .unwrap();
        // root + PDPT + PD + 1 PT
        assert_eq!(count_table_frames(&mut phys, root), 4);
        let before = phys.allocated_frames();
        free_tables(&mut phys, root, &[]);
        assert_eq!(phys.allocated_frames(), before - 4);
    }

    #[test]
    fn clear_leaf_marks_and_allows_remap() {
        let (mut phys, root) = setup();
        let va = VirtAddr::new(0x40_0000);
        map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            PteFlags::USER,
        )
        .unwrap();
        let tables = count_table_frames(&mut phys, root);
        assert_eq!(clear_leaf(&mut phys, root, va), Some(Pfn(2)));
        assert!(leaf_is_swap_marked(&mut phys, root, va));
        assert!(walk(&mut phys, root, va).is_err(), "entry is non-present");
        assert_eq!(
            count_table_frames(&mut phys, root),
            tables,
            "tables survive eviction"
        );
        // Second clear is a no-op; remap overwrites the marker.
        assert_eq!(clear_leaf(&mut phys, root, va), None);
        map(
            &mut phys,
            root,
            va,
            PhysAddr::new(0x5000),
            PageSize::Size4K,
            PteFlags::USER,
        )
        .unwrap();
        assert!(!leaf_is_swap_marked(&mut phys, root, va));
        let (t, _) = walk(&mut phys, root, va).unwrap();
        assert_eq!(t.pa.raw(), 0x5000);
    }

    #[test]
    fn ensure_root_slot_is_idempotent_and_linkable() {
        let (mut phys, root) = setup();
        let (pdpt, allocated) = ensure_root_slot(&mut phys, root, 3).unwrap();
        assert!(allocated);
        let (pdpt2, allocated2) = ensure_root_slot(&mut phys, root, 3).unwrap();
        assert_eq!(pdpt, pdpt2);
        assert!(!allocated2);
        // An empty-but-present slot can be linked into another root, and
        // mappings built later through either root are shared.
        let other = new_root(&mut phys).unwrap();
        link_subtree(&mut phys, other, root, 3).unwrap();
        let va = VirtAddr::new_unchecked(3u64 << 39);
        map(
            &mut phys,
            other,
            va,
            PhysAddr::new(0x8000),
            PageSize::Size4K,
            PteFlags::USER,
        )
        .unwrap();
        let (t, _) = walk(&mut phys, root, va).unwrap();
        assert_eq!(t.pa.raw(), 0x8000);
    }

    #[test]
    fn protect_rewrites_leaf_flags_across_page_sizes() {
        let (mut phys, root) = setup();
        let rw = PteFlags::USER | PteFlags::WRITABLE;
        map(
            &mut phys,
            root,
            VirtAddr::new(0x1000),
            PhysAddr::new(0x2000),
            PageSize::Size4K,
            rw,
        )
        .unwrap();
        protect(&mut phys, root, VirtAddr::new(0x1000), PteFlags::USER).unwrap();
        let (t, _) = walk(&mut phys, root, VirtAddr::new(0x1000)).unwrap();
        assert!(!t.flags.contains(PteFlags::WRITABLE));
        assert_eq!(t.pa.raw(), 0x2000, "target preserved");

        map(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000),
            PhysAddr::new(0x40_0000),
            PageSize::Size2M,
            rw,
        )
        .unwrap();
        protect(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000 + 0x999),
            PteFlags::USER,
        )
        .unwrap();
        let (t2, levels) = walk(&mut phys, root, VirtAddr::new(0x20_0000 + 0x999)).unwrap();
        assert!(!t2.flags.contains(PteFlags::WRITABLE));
        assert_eq!(t2.size, PageSize::Size2M, "PS bit preserved");
        assert_eq!(levels, 3);

        assert!(matches!(
            protect(&mut phys, root, VirtAddr::new(0x9000_0000), PteFlags::USER),
            Err(MemError::PageFault { .. })
        ));
    }

    #[test]
    fn flags_permissions() {
        let ro = PteFlags::PRESENT | PteFlags::USER;
        assert!(ro.permits(Access::Read));
        assert!(!ro.permits(Access::Write));
        assert!(ro.permits(Access::Execute));
        let nx = ro | PteFlags::NO_EXECUTE;
        assert!(!nx.permits(Access::Execute));
        assert!(!PteFlags::empty().permits(Access::Read));
        let rw = ro | PteFlags::WRITABLE;
        assert!(rw.permits(Access::Write));
        assert_eq!(rw.difference(PteFlags::WRITABLE), ro);
    }
}
