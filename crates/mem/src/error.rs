//! Error types for the memory substrate.

use std::fmt;

use crate::addr::{PhysAddr, VirtAddr};

/// Kind of access that triggered a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
            Access::Execute => write!(f, "execute"),
        }
    }
}

/// Errors raised by the simulated memory hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Physical frame allocator exhausted.
    OutOfFrames,
    /// Physical address out of range or misaligned for the operation.
    BadPhysAddr(PhysAddr),
    /// No translation exists for the address (page not present).
    PageFault {
        /// Faulting virtual address.
        va: VirtAddr,
        /// Access kind that faulted.
        access: Access,
    },
    /// A translation exists but does not permit the access.
    ProtectionFault {
        /// Faulting virtual address.
        va: VirtAddr,
        /// Access kind that faulted.
        access: Access,
    },
    /// Attempt to map over an existing, conflicting translation.
    AlreadyMapped(VirtAddr),
    /// Mapping request with bad alignment or extent.
    BadMapping(VirtAddr),
    /// Translation requested with no page table loaded (CR3 null).
    NoAddressSpace,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames => write!(f, "out of physical frames"),
            MemError::BadPhysAddr(pa) => write!(f, "bad physical address {pa}"),
            MemError::PageFault { va, access } => write!(f, "page fault on {access} at {va}"),
            MemError::ProtectionFault { va, access } => {
                write!(f, "protection fault on {access} at {va}")
            }
            MemError::AlreadyMapped(va) => write!(f, "address {va} is already mapped"),
            MemError::BadMapping(va) => write!(f, "bad mapping request at {va}"),
            MemError::NoAddressSpace => write!(f, "no address space is active"),
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<MemError> = vec![
            MemError::OutOfFrames,
            MemError::BadPhysAddr(PhysAddr::new(0x1000)),
            MemError::PageFault {
                va: VirtAddr::new(0x2000),
                access: Access::Write,
            },
            MemError::ProtectionFault {
                va: VirtAddr::new(0x2000),
                access: Access::Read,
            },
            MemError::AlreadyMapped(VirtAddr::new(0x3000)),
            MemError::BadMapping(VirtAddr::new(0x4000)),
            MemError::NoAddressSpace,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
