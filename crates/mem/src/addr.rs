//! Virtual and physical address types for the simulated x86-64 machine.
//!
//! The simulated CPU follows the x86-64 conventions the paper targets:
//! 48 virtual-address bits (256 TiB, split into two canonical halves) and a
//! four-level page-table hierarchy with 4 KiB base pages and 2 MiB / 1 GiB
//! superpages.
//!
//! Addresses are newtypes over `u64` so virtual and physical addresses can
//! never be confused ([`VirtAddr`] vs [`PhysAddr`]), and page numbers get
//! their own types ([`Vpn`], [`Pfn`]).

use std::fmt;

/// Base page size: 4 KiB, as on x86-64.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Number of entries in one page-table node (all four levels).
pub const ENTRIES_PER_TABLE: u64 = 512;
/// Number of virtual-address bits implemented by the simulated CPU (paper
/// Section 2.1: "Most CPUs today are limited to 48 virtual address bits").
pub const VA_BITS: u32 = 48;
/// Number of physical-address bits implemented (the paper cites 44-46; we
/// pick 46 = 64 TiB).
pub const PA_BITS: u32 = 46;

/// Page sizes supported by the simulated MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// 4 KiB base page (PTE level).
    #[default]
    Size4K,
    /// 2 MiB superpage (PDE level, PS bit).
    Size2M,
    /// 1 GiB superpage (PDPTE level, PS bit).
    Size1G,
}

impl PageSize {
    /// Size of this page in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4096,
            PageSize::Size2M => 2 * 1024 * 1024,
            PageSize::Size1G => 1024 * 1024 * 1024,
        }
    }

    /// log2 of [`Self::bytes`].
    #[inline]
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Number of 4 KiB base pages covered by one page of this size.
    #[inline]
    pub fn base_pages(self) -> u64 {
        self.bytes() / PAGE_SIZE
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KiB"),
            PageSize::Size2M => write!(f, "2MiB"),
            PageSize::Size1G => write!(f, "1GiB"),
        }
    }
}

/// A virtual address in the simulated 48-bit address space.
///
/// # Examples
///
/// ```
/// use sjmp_mem::addr::VirtAddr;
/// let va = VirtAddr::new(0xC0DE_0000);
/// assert_eq!(va.page_offset(), 0);
/// assert_eq!(va.align_down(4096), va);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The zero virtual address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates a virtual address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not canonical for a 48-bit address space (bits
    /// 48..64 must be a sign extension of bit 47).
    #[inline]
    pub fn new(raw: u64) -> Self {
        let va = VirtAddr(raw);
        assert!(va.is_canonical(), "non-canonical virtual address {raw:#x}");
        va
    }

    /// Creates a virtual address without the canonical check.
    #[inline]
    pub const fn new_unchecked(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this address is canonical for [`VA_BITS`] address bits.
    #[inline]
    pub fn is_canonical(self) -> bool {
        let shift = 64 - VA_BITS;
        ((self.0 as i64) << shift >> shift) as u64 == self.0
    }

    /// The virtual page number containing this address.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its 4 KiB page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Offset within a page of the given size.
    #[inline]
    pub fn offset_in(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Rounds down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        VirtAddr(self.0 & !(align - 1))
    }

    /// Rounds up to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two());
        VirtAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Whether the address is a multiple of `align`.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Address `bytes` past this one. (A named method rather than
    /// `ops::Add` because the operand is a byte offset, not an address.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        VirtAddr(self.0 + bytes)
    }

    /// Byte distance from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier > self`.
    #[inline]
    pub fn offset_from(self, earlier: VirtAddr) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("offset_from: earlier address is greater")
    }

    /// Index into the PML4 (level-4 table) for this address.
    #[inline]
    pub fn pml4_index(self) -> usize {
        ((self.0 >> 39) & 0x1ff) as usize
    }

    /// Index into the PDPT (level-3 table) for this address.
    #[inline]
    pub fn pdpt_index(self) -> usize {
        ((self.0 >> 30) & 0x1ff) as usize
    }

    /// Index into the PD (level-2 table) for this address.
    #[inline]
    pub fn pd_index(self) -> usize {
        ((self.0 >> 21) & 0x1ff) as usize
    }

    /// Index into the PT (level-1 table) for this address.
    #[inline]
    pub fn pt_index(self) -> usize {
        ((self.0 >> 12) & 0x1ff) as usize
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<VirtAddr> for u64 {
    fn from(va: VirtAddr) -> u64 {
        va.0
    }
}

/// A physical address in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// The zero physical address.
    pub const NULL: PhysAddr = PhysAddr(0);

    /// Creates a physical address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds [`PA_BITS`] bits.
    #[inline]
    pub fn new(raw: u64) -> Self {
        assert!(
            raw < (1 << PA_BITS),
            "physical address {raw:#x} exceeds {PA_BITS} bits"
        );
        PhysAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame number containing this address.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its 4 KiB frame.
    #[inline]
    pub fn frame_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Address `bytes` past this one. (A named method rather than
    /// `ops::Add` because the operand is a byte offset, not an address.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }

    /// Whether the address is a multiple of `align`.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<PhysAddr> for u64 {
    fn from(pa: PhysAddr) -> u64 {
        pa.0
    }
}

/// A virtual page number (virtual address / 4 KiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The first virtual address in this page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

/// A physical frame number (physical address / 4 KiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// The first physical address in this frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_addresses() {
        assert!(VirtAddr::new_unchecked(0).is_canonical());
        assert!(VirtAddr::new_unchecked(0x7fff_ffff_ffff).is_canonical());
        assert!(!VirtAddr::new_unchecked(0x8000_0000_0000).is_canonical());
        assert!(VirtAddr::new_unchecked(0xffff_8000_0000_0000).is_canonical());
        assert!(VirtAddr::new_unchecked(u64::MAX).is_canonical());
        assert!(!VirtAddr::new_unchecked(0x0001_0000_0000_0000).is_canonical());
    }

    #[test]
    #[should_panic(expected = "non-canonical")]
    fn new_rejects_non_canonical() {
        let _ = VirtAddr::new(0x8000_0000_0000);
    }

    #[test]
    fn table_indices() {
        // VA = PML4[1] PDPT[2] PD[3] PT[4] offset 5.
        let raw = (1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 5;
        let va = VirtAddr::new(raw);
        assert_eq!(va.pml4_index(), 1);
        assert_eq!(va.pdpt_index(), 2);
        assert_eq!(va.pd_index(), 3);
        assert_eq!(va.pt_index(), 4);
        assert_eq!(va.page_offset(), 5);
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.align_down(4096).raw(), 0x1000);
        assert_eq!(va.align_up(4096).raw(), 0x2000);
        assert!(VirtAddr::new(0x2000).is_aligned(4096));
        assert!(!va.is_aligned(4096));
        assert_eq!(VirtAddr::new(0x2000).align_up(4096).raw(), 0x2000);
    }

    #[test]
    fn page_numbers_round_trip() {
        let va = VirtAddr::new(0x5000 + 7);
        assert_eq!(va.vpn(), Vpn(5));
        assert_eq!(va.vpn().base().raw(), 0x5000);
        let pa = PhysAddr::new(0x3000 + 9);
        assert_eq!(pa.pfn(), Pfn(3));
        assert_eq!(pa.pfn().base().raw(), 0x3000);
    }

    #[test]
    fn page_size_properties() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.base_pages(), 512);
        assert_eq!(PageSize::Size1G.base_pages(), 512 * 512);
        assert_eq!(PageSize::Size2M.shift(), 21);
        assert_eq!(format!("{}", PageSize::Size1G), "1GiB");
    }

    #[test]
    fn offsets() {
        let va = VirtAddr::new(0x0020_0000 + 123);
        assert_eq!(va.offset_in(PageSize::Size2M), 123);
        assert_eq!(va.offset_from(VirtAddr::new(0x0020_0000)), 123);
        assert_eq!(va.add(5).raw(), 0x0020_0000 + 128);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn phys_addr_limit() {
        let _ = PhysAddr::new(1 << PA_BITS);
    }

    #[test]
    fn one_gib_boundary_edge_cases() {
        let gib = PageSize::Size1G.bytes();
        assert_eq!(gib, 1 << 30);
        assert_eq!(PageSize::Size1G.base_pages(), 262_144);
        assert_eq!(
            PageSize::Size1G.base_pages(),
            PageSize::Size2M.base_pages() * 512
        );
        // Last byte of a 1 GiB page vs the first byte of the next.
        let last = VirtAddr::new(2 * gib - 1);
        assert_eq!(last.offset_in(PageSize::Size1G), gib - 1);
        let next = last.add(1);
        assert_eq!(next.offset_in(PageSize::Size1G), 0);
        assert!(next.is_aligned(gib));
        assert_eq!(next.align_down(gib), next);
        assert_eq!(last.align_down(gib).raw(), gib);
        assert_eq!(last.align_up(gib), next);
        // A 1 GiB page spans exactly one PDPT slot: the PML4 index is
        // constant across it and the PDPT index changes at the boundary.
        assert_eq!(last.pml4_index(), next.pml4_index());
        assert_eq!(last.pdpt_index() + 1, next.pdpt_index());
        // offset_in at the 512 GiB (PML4 slot) edge stays within 1 GiB.
        let high = VirtAddr::new((1u64 << 39) - 1);
        assert_eq!(high.offset_in(PageSize::Size1G), gib - 1);
        assert_eq!(
            high.offset_in(PageSize::Size2M),
            PageSize::Size2M.bytes() - 1
        );
    }

    #[test]
    fn page_size_default_is_base_page() {
        assert_eq!(PageSize::default(), PageSize::Size4K);
    }
}
