//! The simulated MMU: CR3 register, TLB, page walker, cycle accounting.
//!
//! One [`Mmu`] models one hardware thread's address-translation machinery.
//! Every operation charges the shared [`CycleClock`], so workloads running
//! through the MMU automatically produce the cycle totals that the paper's
//! figures are computed from.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::addr::{PageSize, Pfn, PhysAddr, VirtAddr, PAGE_SIZE};
use crate::backend::{Backend, TranslationBackend};
use crate::cost::{CostModel, CycleClock};
use crate::error::{Access, MemError};
use crate::paging::{self, PteFlags, Translation};
use crate::phys::PhysMem;
use crate::tlb::{Asid, Tlb, TlbStats};
use sjmp_trace::{EventKind, Tracer};

/// Environment variable that disables the host-side walk cache when set
/// to `"0"` (CI uses it for byte-for-byte parity runs).
pub const HOST_WALK_CACHE_ENV: &str = "SJMP_HOST_WALK_CACHE";

/// One host-cache entry covering a 2 MiB-aligned slice of a root's
/// virtual address space (the cache key is `(root, va >> 21)`).
///
/// Caching at paging-*structure* granularity rather than per 4 KiB page
/// is what makes the cache pay off on sparse random workloads: GUPS
/// touches each page roughly once (a per-page cache would never hit),
/// but revisits the same few hundred 2 MiB ranges constantly.
///
/// Every entry is stamped with the [`PhysMem::table_generation`] it was
/// built under; any page-table mutation anywhere bumps the generation,
/// so a single integer compare on the hit path revalidates the entry
/// against every map/unmap/protect/free since. Stale entries are simply
/// overwritten by the re-walk's insert.
#[derive(Debug, Clone)]
enum FlatEntry {
    /// The walk ends above this key's range with a single mapping: a
    /// superpage leaf (which spans the whole 2 MiB range, or more).
    /// For non-paging backends (the no-VM segment map) this memoizes one
    /// size-aligned mapping; `va_base` guards hits so an entry never
    /// answers for addresses outside the mapping it was built from.
    Terminal {
        gen: u64,
        va_base: u64,
        base: PhysAddr,
        flags: PteFlags,
        size: PageSize,
        levels: u32,
    },
    /// A snapshot of the level-4 page table covering this range. While
    /// the stamp matches, the snapshot is byte-identical to the live
    /// table, so hits index it directly — no physical-memory access at
    /// all. An absent snapshot entry faults exactly as a full walk
    /// would, and is never treated as a cached failure.
    Leaf {
        gen: u64,
        ptes: Box<[u64; crate::addr::ENTRIES_PER_TABLE as usize]>,
    },
}

/// Multiply-xor hasher for the host cache's small fixed-width keys.
/// SipHash (the `HashMap` default) shows up prominently in host
/// profiles at GUPS update rates; this is one multiply per word.
#[derive(Default)]
struct FlatKeyHasher(u64);

impl std::hash::Hasher for FlatKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type HostCache = HashMap<(u64, u64), FlatEntry, BuildHasherDefault<FlatKeyHasher>>;

/// MMU event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// CR3 writes (address-space switches at the hardware level).
    pub cr3_loads: u64,
    /// Translations requested.
    pub translations: u64,
    /// Page walks performed (TLB misses).
    pub walks: u64,
    /// Faults raised (page + protection).
    pub faults: u64,
}

impl MmuStats {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same MMU), for phase measurements without resetting.
    pub fn delta_since(&self, earlier: &MmuStats) -> MmuStats {
        MmuStats {
            cr3_loads: self.cr3_loads - earlier.cr3_loads,
            translations: self.translations - earlier.translations,
            walks: self.walks - earlier.walks,
            faults: self.faults - earlier.faults,
        }
    }
}

/// A simulated per-core MMU.
///
/// # Examples
///
/// ```
/// use sjmp_mem::{mmu::Mmu, phys::PhysMem, paging, cost::{CostModel, CycleClock}};
/// use sjmp_mem::addr::{PageSize, PhysAddr, VirtAddr};
/// use sjmp_mem::paging::PteFlags;
/// use sjmp_mem::tlb::Asid;
/// use sjmp_mem::error::Access;
///
/// # fn main() -> Result<(), sjmp_mem::error::MemError> {
/// let mut phys = PhysMem::new(1 << 22);
/// let root = paging::new_root(&mut phys)?;
/// let frame = phys.alloc_frame()?;
/// paging::map(&mut phys, root, VirtAddr::new(0x1000), frame.base(),
///             PageSize::Size4K, PteFlags::WRITABLE | PteFlags::USER)?;
///
/// let mut mmu = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
/// mmu.load_cr3(root, Asid::UNTAGGED);
/// mmu.write_u64(&mut phys, VirtAddr::new(0x1008), 7)?;
/// assert_eq!(mmu.read_u64(&mut phys, VirtAddr::new(0x1008))?, 7);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Mmu {
    tlb: Tlb,
    cr3: Option<Pfn>,
    asid: Asid,
    tagging: bool,
    cost: CostModel,
    clock: CycleClock,
    stats: MmuStats,
    tracer: Tracer,
    core_id: u32,
    backend: Backend,
    /// Host-side flattened walk cache, keyed by (root frame, 2 MiB VA
    /// range) so entries survive CR3 loads — the win on switch-heavy
    /// workloads. Pure host optimization: results are bit-identical with
    /// it on or off. Any path that frees page tables must call
    /// [`Mmu::flush_host_walk_cache`], or a reused root frame could
    /// resurrect stale entries.
    host_cache: HostCache,
    host_cache_enabled: bool,
}

impl Mmu {
    /// Creates an MMU with the given TLB geometry, cost model, and clock,
    /// using the default four-level backend. The host walk cache is on
    /// unless [`HOST_WALK_CACHE_ENV`] is set to `"0"`.
    pub fn new(tlb_entries: usize, tlb_ways: usize, cost: CostModel, clock: CycleClock) -> Self {
        let host_cache_enabled = std::env::var(HOST_WALK_CACHE_ENV)
            .map(|v| v != "0")
            .unwrap_or(true);
        Mmu {
            tlb: Tlb::new(tlb_entries, tlb_ways),
            cr3: None,
            asid: Asid::UNTAGGED,
            tagging: false,
            cost,
            clock,
            stats: MmuStats::default(),
            tracer: Tracer::disabled(),
            core_id: 0,
            backend: Backend::default(),
            host_cache: HostCache::default(),
            host_cache_enabled,
        }
    }

    /// Installs a translation backend. Call before any mappings exist:
    /// backends that keep shadow state (the no-VM segment table) only
    /// see operations routed through them.
    pub fn set_backend(&mut self, backend: Backend) {
        self.host_cache.clear();
        self.backend = backend;
    }

    /// The translation backend in effect.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Enables or disables the host-side walk cache. Disabling clears
    /// it. Simulated cycles and counters are identical either way — the
    /// knob only affects host wall-time (and parity checks prove it).
    pub fn set_host_walk_cache(&mut self, enabled: bool) {
        self.host_cache_enabled = enabled;
        if !enabled {
            self.host_cache.clear();
        }
    }

    /// Whether the host-side walk cache is enabled.
    pub fn host_walk_cache_enabled(&self) -> bool {
        self.host_cache_enabled
    }

    /// Drops every host-side walk-cache entry. Required whenever page
    /// tables are *freed* (a recycled root frame must not resurrect the
    /// old space's cached walks); mapping changes under a live root are
    /// already covered by [`Mmu::invlpg`] / [`Mmu::flush_tlb`].
    pub fn flush_host_walk_cache(&mut self) {
        self.host_cache.clear();
    }

    /// Attaches a tracer; `core_id` stamps this MMU's events with the
    /// hardware thread it models. Tracing never advances the clock.
    pub fn set_tracer(&mut self, tracer: Tracer, core_id: u32) {
        self.tracer = tracer;
        self.core_id = core_id;
    }

    /// Enables or disables TLB tagging (PCID). With tagging off, or with
    /// the reserved [`Asid::UNTAGGED`] tag, every CR3 write flushes.
    pub fn set_tagging(&mut self, enabled: bool) {
        self.tagging = enabled;
    }

    /// Whether TLB tagging is enabled.
    pub fn tagging(&self) -> bool {
        self.tagging
    }

    /// The currently loaded root table, if any.
    pub fn cr3(&self) -> Option<Pfn> {
        self.cr3
    }

    /// The current address-space tag.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Shared clock used for cost accounting.
    pub fn clock(&self) -> &CycleClock {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// MMU counters.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Resets MMU and TLB counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
        self.tlb.reset_stats();
    }

    /// Direct access to the TLB (for benchmarks that probe occupancy).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Loads CR3 with a new root table and tag, charging the Table 2 CR3
    /// cost.
    ///
    /// Flush semantics follow x86 PCID: loading a *tagged* address space
    /// (tagging enabled, tag nonzero) preserves all entries; loading an
    /// untagged one invalidates the entries of that tag — which, for the
    /// reserved tag zero, is "always trigger a TLB flush on a context
    /// switch" exactly as the paper's implementations behave, while
    /// entries belonging to other tags survive.
    pub fn load_cr3(&mut self, root: Pfn, asid: Asid) {
        // The host walk cache is keyed per root, so it needs no
        // invalidation here: entries for the outgoing space stay warm
        // for the next switch back (host-side only, never the result).
        if self.backend.is_seg_map() {
            // No TLB under base+bound: the switch is the root-register
            // write alone, charged at the untagged CR3 price.
            self.tracer.begin(
                self.clock.now(),
                self.core_id,
                EventKind::Cr3Load,
                u64::from(asid.0),
            );
            self.clock.advance(self.cost.cr3_load(false));
            self.stats.cr3_loads += 1;
            self.cr3 = Some(root);
            self.asid = asid;
            self.tracer.end(
                self.clock.now(),
                self.core_id,
                EventKind::Cr3Load,
                u64::from(asid.0),
            );
            return;
        }
        let tagged = self.tagging && asid.is_tagged();
        self.tracer.begin(
            self.clock.now(),
            self.core_id,
            EventKind::Cr3Load,
            u64::from(asid.0),
        );
        self.clock.advance(self.cost.cr3_load(tagged));
        self.stats.cr3_loads += 1;
        if !tagged {
            if self.tagging {
                self.tlb.flush_asid(asid);
            } else {
                self.tlb.flush_nonglobal();
            }
            self.tracer.instant(
                self.clock.now(),
                self.core_id,
                EventKind::TlbFlush,
                u64::from(asid.0),
                0,
            );
        }
        self.cr3 = Some(root);
        self.asid = asid;
        self.tracer.end(
            self.clock.now(),
            self.core_id,
            EventKind::Cr3Load,
            u64::from(asid.0),
        );
    }

    /// Unloads CR3 and flushes the TLB: the address space this core was
    /// running was destroyed (e.g. its owner was killed), so translations
    /// through the freed tables must become [`MemError::NoAddressSpace`]
    /// instead of walks through reused frames.
    pub fn clear_cr3(&mut self) {
        self.host_cache.clear();
        self.cr3 = None;
        self.asid = Asid::UNTAGGED;
        self.tlb.flush_nonglobal();
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbFlush, 0, 0);
    }

    /// Invalidates one page's translation (mapping changed under us).
    pub fn invlpg(&mut self, va: VirtAddr) {
        // A 1 GiB superpage walk is memoized under many 2 MiB keys, and
        // the same leaf table may back other roots' keys; clearing the
        // whole host cache is the simple correct invalidation.
        self.host_cache.clear();
        self.tlb.flush_page(va.vpn());
    }

    /// Flushes all non-global TLB entries (explicit shootdown).
    pub fn flush_tlb(&mut self) {
        self.host_cache.clear();
        self.backend.flush(self.cr3.unwrap_or(Pfn(0)));
        self.tlb.flush_nonglobal();
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbFlush, 0, 0);
    }

    /// Translates `va` for `access`, charging TLB and walk costs.
    ///
    /// # Errors
    ///
    /// * [`MemError::NoAddressSpace`] if CR3 was never loaded.
    /// * [`MemError::PageFault`] if no translation exists.
    /// * [`MemError::ProtectionFault`] if the mapping forbids `access`.
    pub fn translate(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysAddr, MemError> {
        let root = self.cr3.ok_or(MemError::NoAddressSpace)?;
        self.stats.translations += 1;
        if self.backend.is_seg_map() {
            return self.translate_segbound(phys, root, va, access);
        }
        self.clock.advance(self.cost.tlb_lookup);
        if let Some((page_base, flags, size)) = self.tlb.lookup(self.asid, va.vpn()) {
            if !flags.permits(access) {
                self.stats.faults += 1;
                return Err(MemError::ProtectionFault { va, access });
            }
            self.tracer.instant(
                self.clock.now(),
                self.core_id,
                EventKind::TlbHit,
                u64::from(self.asid.0),
                0,
            );
            return Ok(page_base.add(va.offset_in(size)));
        }
        // TLB miss: walk the tables (through the host-side walk cache,
        // which changes host time only — never the result).
        self.stats.walks += 1;
        let asid = u64::from(self.asid.0);
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbMiss, asid, 0);
        self.tracer
            .begin(self.clock.now(), self.core_id, EventKind::PageWalk, asid);
        let walked = self.walk_backend(phys, root, va);
        // Charge per level visited: a superpage leaf ends the walk early
        // (2 levels for 1 GiB, 3 for 2 MiB, 4 for 4 KiB); a failed walk
        // pays the full depth before faulting.
        match &walked {
            Ok((_, levels)) => self
                .clock
                .advance(self.cost.tlb_walk * u64::from(*levels) / 4),
            Err(_) => self.clock.advance(self.cost.tlb_walk),
        }
        let walked = walked.map_err(|e| {
            self.stats.faults += 1;
            match e {
                MemError::PageFault { va, .. } => MemError::PageFault { va, access },
                other => other,
            }
        });
        self.tracer
            .end(self.clock.now(), self.core_id, EventKind::PageWalk, asid);
        let (tr, _levels) = walked?;
        if !tr.flags.permits(access) {
            self.stats.faults += 1;
            return Err(MemError::ProtectionFault { va, access });
        }
        let page_base = PhysAddr::new(tr.pa.raw() & !(tr.size.bytes() - 1));
        let global = tr.flags.contains(PteFlags::GLOBAL);
        self.tlb
            .insert(self.asid, va.vpn(), page_base, tr.flags, global, tr.size);
        Ok(page_base.add(va.offset_in(tr.size)))
    }

    /// The no-VM fast path: one base+bound check, no TLB, no walk.
    fn translate_segbound(
        &mut self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysAddr, MemError> {
        self.clock.advance(self.cost.segbound_check);
        let walked = self.walk_backend(phys, root, va).map_err(|e| {
            self.stats.faults += 1;
            match e {
                MemError::PageFault { va, .. } => MemError::PageFault { va, access },
                other => other,
            }
        });
        let (tr, _levels) = walked?;
        if !tr.flags.permits(access) {
            self.stats.faults += 1;
            return Err(MemError::ProtectionFault { va, access });
        }
        Ok(tr.pa)
    }

    /// Resolves `va` through the backend, memoizing at paging-structure
    /// granularity in the host-side cache: superpage (and no-VM) walks
    /// as coverage-checked terminals, 4 KiB walks as a generation-
    /// stamped snapshot of the whole leaf table. Failed walks are never
    /// cached, and a snapshot's absent entries fault exactly like the
    /// live table's, so the fault-then-map-then-retry path needs no
    /// explicit invalidation — the map itself bumps the generation.
    fn walk_backend(
        &mut self,
        phys: &mut PhysMem,
        root: Pfn,
        va: VirtAddr,
    ) -> Result<(Translation, u32), MemError> {
        let key = (root.0, va.raw() >> 21);
        if self.host_cache_enabled {
            let live_gen = phys.table_generation();
            match self.host_cache.get(&key) {
                Some(FlatEntry::Terminal {
                    gen,
                    va_base,
                    base,
                    flags,
                    size,
                    levels,
                }) if *gen == live_gen && va.raw() & !(size.bytes() - 1) == *va_base => {
                    let tr = Translation {
                        pa: base.add(va.offset_in(*size)),
                        flags: *flags,
                        size: *size,
                    };
                    return Ok((tr, *levels));
                }
                Some(FlatEntry::Leaf { gen, ptes }) if *gen == live_gen => {
                    return match paging::decode_pte(ptes[va.pt_index()]) {
                        Some((page, flags)) => Ok((
                            Translation {
                                pa: page.add(va.page_offset()),
                                flags,
                                size: PageSize::Size4K,
                            },
                            4,
                        )),
                        // Exactly what a full walk would return: the
                        // leaf table exists but this PTE is absent.
                        None => Err(MemError::PageFault {
                            va,
                            access: Access::Read,
                        }),
                    };
                }
                _ => {}
            }
        }
        let backend = self.backend.clone();
        let walked = backend.translate(phys, root, va);
        if self.host_cache_enabled {
            if let Ok((tr, levels)) = &walked {
                // The walk only *read* tables, so the generation it ran
                // under is still current for the snapshot's stamp.
                let gen = phys.table_generation();
                let entry = if *levels == 4 {
                    paging::leaf_table(phys, root, va).map(|pt| FlatEntry::Leaf {
                        gen,
                        ptes: paging::leaf_entries(phys, pt),
                    })
                } else {
                    None
                };
                let entry = entry.unwrap_or(FlatEntry::Terminal {
                    gen,
                    va_base: va.raw() & !(tr.size.bytes() - 1),
                    base: PhysAddr::new(tr.pa.raw() & !(tr.size.bytes() - 1)),
                    flags: tr.flags,
                    size: tr.size,
                    levels: *levels,
                });
                self.host_cache.insert(key, entry);
            }
        }
        walked
    }

    /// Charges the tier cost of touching `pa`: DRAM accesses cost one
    /// cache access; NVM-tier accesses pay the read/write extra.
    #[inline]
    fn charge_data(&self, phys: &PhysMem, pa: PhysAddr, write: bool) {
        let mut cycles = self.cost.cache_hit;
        if phys.is_nvm(pa.pfn()) {
            cycles += if write {
                self.cost.nvm_write_extra
            } else {
                self.cost.nvm_read_extra
            };
        }
        self.clock.advance(cycles);
    }

    /// Loads one cache line's worth of data at `va` (Figure 6's "page
    /// touch"), charging translation plus one cache access.
    ///
    /// # Errors
    ///
    /// Same as [`Self::translate`].
    pub fn touch(&mut self, phys: &mut PhysMem, va: VirtAddr) -> Result<(), MemError> {
        let pa = self.translate(phys, va, Access::Read)?;
        self.charge_data(phys, pa, false);
        Ok(())
    }

    /// Reads a naturally-aligned `u64` through the current address space.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`], plus
    /// [`MemError::BadPhysAddr`] for misaligned addresses.
    pub fn read_u64(&mut self, phys: &mut PhysMem, va: VirtAddr) -> Result<u64, MemError> {
        let pa = self.translate(phys, va, Access::Read)?;
        self.charge_data(phys, pa, false);
        phys.read_u64(pa)
    }

    /// Writes a naturally-aligned `u64` through the current address space.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`], plus
    /// [`MemError::BadPhysAddr`] for misaligned addresses.
    pub fn write_u64(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        value: u64,
    ) -> Result<(), MemError> {
        let pa = self.translate(phys, va, Access::Write)?;
        self.charge_data(phys, pa, true);
        phys.write_u64(pa, value)
    }

    /// Reads `buf.len()` bytes starting at `va`, page by page.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`].
    pub fn read_bytes(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.add(done as u64);
            let pa = self.translate(phys, cur, Access::Read)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - done);
            let lines = 1 + chunk as u64 / 64;
            let mut per_line = self.cost.cache_hit;
            if phys.is_nvm(pa.pfn()) {
                per_line += self.cost.nvm_read_extra;
            }
            self.clock.advance(per_line * lines);
            phys.read_bytes(pa, &mut buf[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `va`, page by page.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`].
    pub fn write_bytes(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        buf: &[u8],
    ) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.add(done as u64);
            let pa = self.translate(phys, cur, Access::Write)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - done);
            let lines = 1 + chunk as u64 / 64;
            let mut per_line = self.cost.cache_hit;
            if phys.is_nvm(pa.pfn()) {
                per_line += self.cost.nvm_write_extra;
            }
            self.clock.advance(per_line * lines);
            phys.write_bytes(pa, &buf[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;
    use crate::paging;

    fn setup() -> (PhysMem, Mmu, Pfn) {
        let mut phys = PhysMem::new(1 << 22);
        let root = paging::new_root(&mut phys).unwrap();
        let mmu = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
        (phys, mmu, root)
    }

    fn map_page(phys: &mut PhysMem, root: Pfn, va: u64, writable: bool) -> PhysAddr {
        let frame = phys.alloc_frame().unwrap();
        let mut flags = PteFlags::USER;
        if writable {
            flags |= PteFlags::WRITABLE;
        }
        paging::map(
            phys,
            root,
            VirtAddr::new(va),
            frame.base(),
            PageSize::Size4K,
            flags,
        )
        .unwrap();
        frame.base()
    }

    #[test]
    fn translate_needs_cr3() {
        let (mut phys, mut mmu, _root) = setup();
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read),
            Err(MemError::NoAddressSpace)
        );
    }

    #[test]
    fn miss_then_hit_charges_different_costs() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        let t0 = mmu.clock().now();
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        let miss_cost = mmu.clock().since(t0);
        let t1 = mmu.clock().now();
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        let hit_cost = mmu.clock().since(t1);
        let c = CostModel::default();
        assert_eq!(miss_cost, c.tlb_lookup + c.tlb_walk);
        assert_eq!(hit_cost, c.tlb_lookup);
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.tlb_stats().hits, 1);
    }

    #[test]
    fn untagged_switch_flushes_tagged_switch_retains() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        let other = paging::new_root(&mut phys).unwrap();

        // Untagged: reload flushes; retranslation walks again.
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu.load_cr3(other, Asid::UNTAGGED);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(mmu.stats().walks, 2);

        // Tagged: entries survive the round trip.
        let mut mmu2 = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
        mmu2.set_tagging(true);
        mmu2.load_cr3(root, Asid(1));
        mmu2.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu2.load_cr3(other, Asid(2));
        mmu2.load_cr3(root, Asid(1));
        mmu2.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(mmu2.stats().walks, 1, "tagged entries survive switches");
    }

    #[test]
    fn asid_zero_always_flushes_even_with_tagging() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.set_tagging(true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(
            mmu.stats().walks,
            2,
            "reserved tag zero flushes per the paper"
        );
    }

    #[test]
    fn cr3_cost_depends_on_tagging() {
        let (_phys, mut mmu, root) = setup();
        let c = CostModel::default();
        let t0 = mmu.clock().now();
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(mmu.clock().since(t0), c.cr3_load_untagged);
        mmu.set_tagging(true);
        let t1 = mmu.clock().now();
        mmu.load_cr3(root, Asid(3));
        assert_eq!(mmu.clock().since(t1), c.cr3_load_tagged);
    }

    #[test]
    fn protection_faults() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, false); // read-only
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert!(mmu.read_u64(&mut phys, VirtAddr::new(0x1000)).is_ok());
        assert_eq!(
            mmu.write_u64(&mut phys, VirtAddr::new(0x1000), 1),
            Err(MemError::ProtectionFault {
                va: VirtAddr::new(0x1000),
                access: Access::Write
            })
        );
        // Also via the TLB-cached path.
        assert_eq!(
            mmu.write_u64(&mut phys, VirtAddr::new(0x1000), 1),
            Err(MemError::ProtectionFault {
                va: VirtAddr::new(0x1000),
                access: Access::Write
            })
        );
        assert_eq!(mmu.stats().faults, 2);
    }

    #[test]
    fn page_fault_on_unmapped() {
        let (mut phys, mut mmu, root) = setup();
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(
            mmu.read_u64(&mut phys, VirtAddr::new(0x9000)),
            Err(MemError::PageFault {
                va: VirtAddr::new(0x9000),
                access: Access::Read
            })
        );
    }

    #[test]
    fn data_round_trip_through_translation() {
        let (mut phys, mut mmu, root) = setup();
        let pa = map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.write_u64(&mut phys, VirtAddr::new(0x1010), 0xfeed)
            .unwrap();
        assert_eq!(phys.read_u64(pa.add(0x10)).unwrap(), 0xfeed);
        assert_eq!(
            mmu.read_u64(&mut phys, VirtAddr::new(0x1010)).unwrap(),
            0xfeed
        );
    }

    #[test]
    fn byte_io_spans_pages() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        map_page(&mut phys, root, 0x2000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        let data: Vec<u8> = (0..200u8).collect();
        mmu.write_bytes(&mut phys, VirtAddr::new(0x2000 - 100), &data)
            .unwrap();
        let mut out = vec![0u8; 200];
        mmu.read_bytes(&mut phys, VirtAddr::new(0x2000 - 100), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn invlpg_forces_rewalk() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.touch(&mut phys, VirtAddr::new(0x1000)).unwrap();
        mmu.invlpg(VirtAddr::new(0x1000));
        mmu.touch(&mut phys, VirtAddr::new(0x1000)).unwrap();
        assert_eq!(mmu.stats().walks, 2);
    }

    #[test]
    fn global_mappings_survive_untagged_switch() {
        let (mut phys, mut mmu, root) = setup();
        let frame = phys.alloc_frame().unwrap();
        paging::map(
            &mut phys,
            root,
            VirtAddr::new(0x5000),
            frame.base(),
            PageSize::Size4K,
            PteFlags::USER | PteFlags::GLOBAL,
        )
        .unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.touch(&mut phys, VirtAddr::new(0x5000)).unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED); // flushes non-global only
        mmu.touch(&mut phys, VirtAddr::new(0x5000)).unwrap();
        assert_eq!(mmu.stats().walks, 1, "global entry survived the flush");
    }

    #[test]
    fn superpage_walk_charges_fewer_levels_and_offsets_within_page() {
        let mut phys = PhysMem::new(16 << 20);
        let root = paging::new_root(&mut phys).unwrap();
        let base = PhysAddr::new(0x40_0000);
        paging::map(
            &mut phys,
            root,
            VirtAddr::new(0x20_0000),
            base,
            PageSize::Size2M,
            PteFlags::USER | PteFlags::WRITABLE,
        )
        .unwrap();
        let mut mmu = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
        mmu.load_cr3(root, Asid::UNTAGGED);
        let c = CostModel::default();

        // Miss: a 2 MiB leaf ends the walk at level 3 of 4.
        let t0 = mmu.clock().now();
        let pa = mmu
            .translate(&mut phys, VirtAddr::new(0x20_0000 + 0x12345), Access::Read)
            .unwrap();
        assert_eq!(mmu.clock().since(t0), c.tlb_lookup + c.tlb_walk * 3 / 4);
        assert_eq!(pa, base.add(0x12345), "interior offset maps linearly");

        // Hit anywhere inside the superpage: one TLB entry covers it all.
        let t1 = mmu.clock().now();
        let pa2 = mmu
            .translate(
                &mut phys,
                VirtAddr::new(0x20_0000 + 0x1F_F000),
                Access::Read,
            )
            .unwrap();
        assert_eq!(mmu.clock().since(t1), c.tlb_lookup);
        assert_eq!(pa2, base.add(0x1F_F000));
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.tlb_stats().hits, 1);
        assert_eq!(mmu.tlb_mut().reach_bytes(), PageSize::Size2M.bytes());
    }

    #[test]
    fn host_walk_cache_is_invisible_to_simulated_state() {
        let run = |cache: bool| {
            let (mut phys, mut mmu, root) = setup();
            map_page(&mut phys, root, 0x1000, true);
            map_page(&mut phys, root, 0x2000, false);
            mmu.set_host_walk_cache(cache);
            mmu.load_cr3(root, Asid::UNTAGGED);
            for _ in 0..3 {
                mmu.touch(&mut phys, VirtAddr::new(0x1000)).unwrap();
                mmu.touch(&mut phys, VirtAddr::new(0x2000)).unwrap();
                mmu.invlpg(VirtAddr::new(0x1000));
            }
            (mmu.clock().now(), mmu.stats(), mmu.tlb_stats())
        };
        let (cycles_on, stats_on, tlb_on) = run(true);
        let (cycles_off, stats_off, tlb_off) = run(false);
        assert_eq!(cycles_on, cycles_off);
        assert_eq!(stats_on, stats_off);
        assert_eq!((tlb_on.hits, tlb_on.misses), (tlb_off.hits, tlb_off.misses));
    }

    #[test]
    fn host_walk_cache_invalidated_by_unmap_via_invlpg() {
        let (mut phys, mut mmu, root) = setup();
        let pa = map_page(&mut phys, root, 0x3000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x3000), Access::Read)
                .unwrap(),
            pa
        );
        // Remap the page to a new frame, as the kernel would on
        // copy-on-write: unmap, invlpg, map elsewhere.
        paging::unmap(&mut phys, root, VirtAddr::new(0x3000)).unwrap();
        mmu.invlpg(VirtAddr::new(0x3000));
        let new_pa = map_page(&mut phys, root, 0x3000, true);
        assert_ne!(new_pa, pa);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x3000), Access::Read)
                .unwrap(),
            new_pa,
            "stale host-cache entry must not survive invlpg"
        );
    }

    #[test]
    fn host_walk_cache_is_keyed_per_root_across_cr3_loads() {
        // The same VA maps to different frames in two address spaces;
        // cached walks for one root must never answer for the other,
        // and entries survive switching away and back.
        let (mut phys, mut mmu, root_a) = setup();
        let root_b = paging::new_root(&mut phys).unwrap();
        let pa_a = map_page(&mut phys, root_a, 0x5000, true);
        let frame_b = phys.alloc_frame().unwrap();
        paging::map(
            &mut phys,
            root_b,
            VirtAddr::new(0x5000),
            frame_b.base(),
            PageSize::Size4K,
            PteFlags::USER | PteFlags::WRITABLE,
        )
        .unwrap();

        mmu.load_cr3(root_a, Asid::UNTAGGED);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x5000), Access::Read)
                .unwrap(),
            pa_a
        );
        mmu.load_cr3(root_b, Asid::UNTAGGED);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x5000), Access::Read)
                .unwrap(),
            frame_b.base(),
            "root B must not see root A's cached walk"
        );
        mmu.load_cr3(root_a, Asid::UNTAGGED);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x5000), Access::Read)
                .unwrap(),
            pa_a,
            "root A's entry survives the round trip"
        );
    }

    #[test]
    fn host_walk_cache_flush_guards_root_frame_reuse() {
        let (mut phys, mut mmu, root) = setup();
        let pa = map_page(&mut phys, root, 0x7000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x7000), Access::Read)
                .unwrap(),
            pa
        );
        // Free the space's tables and build a new space whose root lands
        // on the recycled frame; the explicit flush (which every
        // table-freeing path must issue) prevents resurrection.
        paging::free_tables(&mut phys, root, &[]);
        mmu.flush_host_walk_cache();
        let root2 = paging::new_root(&mut phys).unwrap();
        assert_eq!(root2, root, "test premise: the root frame is recycled");
        mmu.load_cr3(root2, Asid::UNTAGGED);
        assert!(
            mmu.translate(&mut phys, VirtAddr::new(0x7000), Access::Read)
                .is_err(),
            "freed space's walk must not resurface under the reused root"
        );
    }

    #[test]
    fn host_walk_cache_snapshot_sees_maps_into_live_leaf_table() {
        // A Leaf snapshot memoizes the whole 4 KiB leaf table under one
        // (root, 2 MiB) key. Mapping a *new* page into that same table
        // bumps the table generation, so the stale snapshot must not
        // keep answering — even with no invlpg/flush in between.
        let (mut phys, mut mmu, root) = setup();
        let pa_a = map_page(&mut phys, root, 0x10_0000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        // First translate walks and snapshots the leaf table; second
        // answers from the snapshot.
        for _ in 0..2 {
            assert_eq!(
                mmu.translate(&mut phys, VirtAddr::new(0x10_0000), Access::Read)
                    .unwrap(),
                pa_a
            );
        }
        // Neighbour page, same leaf table: the snapshot (taken before
        // this map) has an absent PTE here, so it must fault...
        assert!(
            mmu.translate(&mut phys, VirtAddr::new(0x10_1000), Access::Read)
                .is_err(),
            "unmapped neighbour must fault exactly like a live walk"
        );
        let pa_b = map_page(&mut phys, root, 0x10_1000, true);
        // ...and the map's generation bump must invalidate it, with no
        // explicit flush.
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x10_1000), Access::Read)
                .unwrap(),
            pa_b,
            "generation bump must invalidate the stale leaf snapshot"
        );
        // A still-unmapped slot in the re-snapshotted table faults.
        assert!(mmu
            .translate(&mut phys, VirtAddr::new(0x10_2000), Access::Read)
            .is_err());
    }

    #[test]
    fn segmap_backend_translates_by_bounds_check_without_tlb() {
        let (mut phys, mut mmu, root) = setup();
        mmu.set_backend(Backend::seg_map());
        let pa = {
            let frame = phys.alloc_frame().unwrap();
            mmu.backend()
                .map(
                    &mut phys,
                    root,
                    VirtAddr::new(0x1000),
                    frame.base(),
                    PageSize::Size4K,
                    PteFlags::USER | PteFlags::WRITABLE,
                )
                .unwrap();
            frame.base()
        };
        mmu.load_cr3(root, Asid::UNTAGGED);
        let c = CostModel::default();
        let t0 = mmu.clock().now();
        let cr3_cost = c.cr3_load(false);
        assert_eq!(t0, cr3_cost, "no-VM cr3 load charges the untagged cost");

        for i in 0..4u64 {
            let t = mmu.clock().now();
            assert_eq!(
                mmu.translate(&mut phys, VirtAddr::new(0x1000 + i * 8), Access::Read)
                    .unwrap(),
                pa.add(i * 8)
            );
            assert_eq!(mmu.clock().since(t), c.segbound_check);
        }
        assert_eq!(mmu.stats().walks, 0, "no page walks in no-VM mode");
        assert_eq!(mmu.tlb_stats().hits + mmu.tlb_stats().misses, 0);

        // Out of every segment: a fault, charged the same bounds check.
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x9000), Access::Read),
            Err(MemError::PageFault {
                va: VirtAddr::new(0x9000),
                access: Access::Read,
            })
        );
        assert_eq!(mmu.stats().faults, 1);

        // Write to a read-only segment: protection fault.
        mmu.backend()
            .protect(&mut phys, root, VirtAddr::new(0x1000), PteFlags::USER)
            .unwrap();
        mmu.invlpg(VirtAddr::new(0x1000));
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Write),
            Err(MemError::ProtectionFault {
                va: VirtAddr::new(0x1000),
                access: Access::Write,
            })
        );
    }

    #[test]
    fn segmap_cr3_load_skips_tlb_flush_accounting() {
        let (mut phys, mut mmu, root) = setup();
        let other = paging::new_root(&mut phys).unwrap();
        mmu.set_backend(Backend::seg_map());
        mmu.set_tagging(true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.load_cr3(other, Asid(5));
        let c = CostModel::default();
        assert_eq!(
            mmu.clock().now(),
            2 * c.cr3_load(false),
            "no-VM switches never pay the tagged-reload premium"
        );
        assert_eq!(mmu.stats().cr3_loads, 2);
        assert_eq!(mmu.tlb_stats().flushes, 0, "no TLB to flush");
    }
}
