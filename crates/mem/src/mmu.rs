//! The simulated MMU: CR3 register, TLB, page walker, cycle accounting.
//!
//! One [`Mmu`] models one hardware thread's address-translation machinery.
//! Every operation charges the shared [`CycleClock`], so workloads running
//! through the MMU automatically produce the cycle totals that the paper's
//! figures are computed from.

use crate::addr::{Pfn, PhysAddr, VirtAddr, PAGE_SIZE};
use crate::cost::{CostModel, CycleClock};
use crate::error::{Access, MemError};
use crate::paging::{self, PteFlags};
use crate::phys::PhysMem;
use crate::tlb::{Asid, Tlb, TlbStats};
use sjmp_trace::{EventKind, Tracer};

/// MMU event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// CR3 writes (address-space switches at the hardware level).
    pub cr3_loads: u64,
    /// Translations requested.
    pub translations: u64,
    /// Page walks performed (TLB misses).
    pub walks: u64,
    /// Faults raised (page + protection).
    pub faults: u64,
}

impl MmuStats {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same MMU), for phase measurements without resetting.
    pub fn delta_since(&self, earlier: &MmuStats) -> MmuStats {
        MmuStats {
            cr3_loads: self.cr3_loads - earlier.cr3_loads,
            translations: self.translations - earlier.translations,
            walks: self.walks - earlier.walks,
            faults: self.faults - earlier.faults,
        }
    }
}

/// A simulated per-core MMU.
///
/// # Examples
///
/// ```
/// use sjmp_mem::{mmu::Mmu, phys::PhysMem, paging, cost::{CostModel, CycleClock}};
/// use sjmp_mem::addr::{PageSize, PhysAddr, VirtAddr};
/// use sjmp_mem::paging::PteFlags;
/// use sjmp_mem::tlb::Asid;
/// use sjmp_mem::error::Access;
///
/// # fn main() -> Result<(), sjmp_mem::error::MemError> {
/// let mut phys = PhysMem::new(1 << 22);
/// let root = paging::new_root(&mut phys)?;
/// let frame = phys.alloc_frame()?;
/// paging::map(&mut phys, root, VirtAddr::new(0x1000), frame.base(),
///             PageSize::Size4K, PteFlags::WRITABLE | PteFlags::USER)?;
///
/// let mut mmu = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
/// mmu.load_cr3(root, Asid::UNTAGGED);
/// mmu.write_u64(&mut phys, VirtAddr::new(0x1008), 7)?;
/// assert_eq!(mmu.read_u64(&mut phys, VirtAddr::new(0x1008))?, 7);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Mmu {
    tlb: Tlb,
    cr3: Option<Pfn>,
    asid: Asid,
    tagging: bool,
    cost: CostModel,
    clock: CycleClock,
    stats: MmuStats,
    tracer: Tracer,
    core_id: u32,
}

impl Mmu {
    /// Creates an MMU with the given TLB geometry, cost model, and clock.
    pub fn new(tlb_entries: usize, tlb_ways: usize, cost: CostModel, clock: CycleClock) -> Self {
        Mmu {
            tlb: Tlb::new(tlb_entries, tlb_ways),
            cr3: None,
            asid: Asid::UNTAGGED,
            tagging: false,
            cost,
            clock,
            stats: MmuStats::default(),
            tracer: Tracer::disabled(),
            core_id: 0,
        }
    }

    /// Attaches a tracer; `core_id` stamps this MMU's events with the
    /// hardware thread it models. Tracing never advances the clock.
    pub fn set_tracer(&mut self, tracer: Tracer, core_id: u32) {
        self.tracer = tracer;
        self.core_id = core_id;
    }

    /// Enables or disables TLB tagging (PCID). With tagging off, or with
    /// the reserved [`Asid::UNTAGGED`] tag, every CR3 write flushes.
    pub fn set_tagging(&mut self, enabled: bool) {
        self.tagging = enabled;
    }

    /// Whether TLB tagging is enabled.
    pub fn tagging(&self) -> bool {
        self.tagging
    }

    /// The currently loaded root table, if any.
    pub fn cr3(&self) -> Option<Pfn> {
        self.cr3
    }

    /// The current address-space tag.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Shared clock used for cost accounting.
    pub fn clock(&self) -> &CycleClock {
        &self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// MMU counters.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Resets MMU and TLB counters (entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
        self.tlb.reset_stats();
    }

    /// Direct access to the TLB (for benchmarks that probe occupancy).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Loads CR3 with a new root table and tag, charging the Table 2 CR3
    /// cost.
    ///
    /// Flush semantics follow x86 PCID: loading a *tagged* address space
    /// (tagging enabled, tag nonzero) preserves all entries; loading an
    /// untagged one invalidates the entries of that tag — which, for the
    /// reserved tag zero, is "always trigger a TLB flush on a context
    /// switch" exactly as the paper's implementations behave, while
    /// entries belonging to other tags survive.
    pub fn load_cr3(&mut self, root: Pfn, asid: Asid) {
        let tagged = self.tagging && asid.is_tagged();
        self.tracer.begin(
            self.clock.now(),
            self.core_id,
            EventKind::Cr3Load,
            u64::from(asid.0),
        );
        self.clock.advance(self.cost.cr3_load(tagged));
        self.stats.cr3_loads += 1;
        if !tagged {
            if self.tagging {
                self.tlb.flush_asid(asid);
            } else {
                self.tlb.flush_nonglobal();
            }
            self.tracer.instant(
                self.clock.now(),
                self.core_id,
                EventKind::TlbFlush,
                u64::from(asid.0),
                0,
            );
        }
        self.cr3 = Some(root);
        self.asid = asid;
        self.tracer.end(
            self.clock.now(),
            self.core_id,
            EventKind::Cr3Load,
            u64::from(asid.0),
        );
    }

    /// Unloads CR3 and flushes the TLB: the address space this core was
    /// running was destroyed (e.g. its owner was killed), so translations
    /// through the freed tables must become [`MemError::NoAddressSpace`]
    /// instead of walks through reused frames.
    pub fn clear_cr3(&mut self) {
        self.cr3 = None;
        self.asid = Asid::UNTAGGED;
        self.tlb.flush_nonglobal();
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbFlush, 0, 0);
    }

    /// Invalidates one page's translation (mapping changed under us).
    pub fn invlpg(&mut self, va: VirtAddr) {
        self.tlb.flush_page(va.vpn());
    }

    /// Flushes all non-global TLB entries (explicit shootdown).
    pub fn flush_tlb(&mut self) {
        self.tlb.flush_nonglobal();
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbFlush, 0, 0);
    }

    /// Translates `va` for `access`, charging TLB and walk costs.
    ///
    /// # Errors
    ///
    /// * [`MemError::NoAddressSpace`] if CR3 was never loaded.
    /// * [`MemError::PageFault`] if no translation exists.
    /// * [`MemError::ProtectionFault`] if the mapping forbids `access`.
    pub fn translate(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysAddr, MemError> {
        let root = self.cr3.ok_or(MemError::NoAddressSpace)?;
        self.stats.translations += 1;
        self.clock.advance(self.cost.tlb_lookup);
        if let Some((frame_base, flags)) = self.tlb.lookup(self.asid, va.vpn()) {
            if !flags.permits(access) {
                self.stats.faults += 1;
                return Err(MemError::ProtectionFault { va, access });
            }
            self.tracer.instant(
                self.clock.now(),
                self.core_id,
                EventKind::TlbHit,
                u64::from(self.asid.0),
                0,
            );
            return Ok(frame_base.add(va.page_offset()));
        }
        // TLB miss: walk the tables.
        self.stats.walks += 1;
        let asid = u64::from(self.asid.0);
        self.tracer
            .instant(self.clock.now(), self.core_id, EventKind::TlbMiss, asid, 0);
        self.tracer
            .begin(self.clock.now(), self.core_id, EventKind::PageWalk, asid);
        self.clock.advance(self.cost.tlb_walk);
        let walked = paging::walk(phys, root, va).map_err(|e| {
            self.stats.faults += 1;
            match e {
                MemError::PageFault { va, .. } => MemError::PageFault { va, access },
                other => other,
            }
        });
        self.tracer
            .end(self.clock.now(), self.core_id, EventKind::PageWalk, asid);
        let (tr, _levels) = walked?;
        if !tr.flags.permits(access) {
            self.stats.faults += 1;
            return Err(MemError::ProtectionFault { va, access });
        }
        let frame_base = PhysAddr::new(tr.pa.raw() & !(PAGE_SIZE - 1));
        let global = tr.flags.contains(PteFlags::GLOBAL);
        self.tlb
            .insert(self.asid, va.vpn(), frame_base, tr.flags, global);
        Ok(frame_base.add(va.page_offset()))
    }

    /// Charges the tier cost of touching `pa`: DRAM accesses cost one
    /// cache access; NVM-tier accesses pay the read/write extra.
    #[inline]
    fn charge_data(&self, phys: &PhysMem, pa: PhysAddr, write: bool) {
        let mut cycles = self.cost.cache_hit;
        if phys.is_nvm(pa.pfn()) {
            cycles += if write {
                self.cost.nvm_write_extra
            } else {
                self.cost.nvm_read_extra
            };
        }
        self.clock.advance(cycles);
    }

    /// Loads one cache line's worth of data at `va` (Figure 6's "page
    /// touch"), charging translation plus one cache access.
    ///
    /// # Errors
    ///
    /// Same as [`Self::translate`].
    pub fn touch(&mut self, phys: &mut PhysMem, va: VirtAddr) -> Result<(), MemError> {
        let pa = self.translate(phys, va, Access::Read)?;
        self.charge_data(phys, pa, false);
        Ok(())
    }

    /// Reads a naturally-aligned `u64` through the current address space.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`], plus
    /// [`MemError::BadPhysAddr`] for misaligned addresses.
    pub fn read_u64(&mut self, phys: &mut PhysMem, va: VirtAddr) -> Result<u64, MemError> {
        let pa = self.translate(phys, va, Access::Read)?;
        self.charge_data(phys, pa, false);
        phys.read_u64(pa)
    }

    /// Writes a naturally-aligned `u64` through the current address space.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`], plus
    /// [`MemError::BadPhysAddr`] for misaligned addresses.
    pub fn write_u64(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        value: u64,
    ) -> Result<(), MemError> {
        let pa = self.translate(phys, va, Access::Write)?;
        self.charge_data(phys, pa, true);
        phys.write_u64(pa, value)
    }

    /// Reads `buf.len()` bytes starting at `va`, page by page.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`].
    pub fn read_bytes(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.add(done as u64);
            let pa = self.translate(phys, cur, Access::Read)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - done);
            let lines = 1 + chunk as u64 / 64;
            let mut per_line = self.cost.cache_hit;
            if phys.is_nvm(pa.pfn()) {
                per_line += self.cost.nvm_read_extra;
            }
            self.clock.advance(per_line * lines);
            phys.read_bytes(pa, &mut buf[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `va`, page by page.
    ///
    /// # Errors
    ///
    /// Translation errors as in [`Self::translate`].
    pub fn write_bytes(
        &mut self,
        phys: &mut PhysMem,
        va: VirtAddr,
        buf: &[u8],
    ) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.add(done as u64);
            let pa = self.translate(phys, cur, Access::Write)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let chunk = in_page.min(buf.len() - done);
            let lines = 1 + chunk as u64 / 64;
            let mut per_line = self.cost.cache_hit;
            if phys.is_nvm(pa.pfn()) {
                per_line += self.cost.nvm_write_extra;
            }
            self.clock.advance(per_line * lines);
            phys.write_bytes(pa, &buf[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;

    fn setup() -> (PhysMem, Mmu, Pfn) {
        let mut phys = PhysMem::new(1 << 22);
        let root = paging::new_root(&mut phys).unwrap();
        let mmu = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
        (phys, mmu, root)
    }

    fn map_page(phys: &mut PhysMem, root: Pfn, va: u64, writable: bool) -> PhysAddr {
        let frame = phys.alloc_frame().unwrap();
        let mut flags = PteFlags::USER;
        if writable {
            flags |= PteFlags::WRITABLE;
        }
        paging::map(
            phys,
            root,
            VirtAddr::new(va),
            frame.base(),
            PageSize::Size4K,
            flags,
        )
        .unwrap();
        frame.base()
    }

    #[test]
    fn translate_needs_cr3() {
        let (mut phys, mut mmu, _root) = setup();
        assert_eq!(
            mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read),
            Err(MemError::NoAddressSpace)
        );
    }

    #[test]
    fn miss_then_hit_charges_different_costs() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        let t0 = mmu.clock().now();
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        let miss_cost = mmu.clock().since(t0);
        let t1 = mmu.clock().now();
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        let hit_cost = mmu.clock().since(t1);
        let c = CostModel::default();
        assert_eq!(miss_cost, c.tlb_lookup + c.tlb_walk);
        assert_eq!(hit_cost, c.tlb_lookup);
        assert_eq!(mmu.stats().walks, 1);
        assert_eq!(mmu.tlb_stats().hits, 1);
    }

    #[test]
    fn untagged_switch_flushes_tagged_switch_retains() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        let other = paging::new_root(&mut phys).unwrap();

        // Untagged: reload flushes; retranslation walks again.
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu.load_cr3(other, Asid::UNTAGGED);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(mmu.stats().walks, 2);

        // Tagged: entries survive the round trip.
        let mut mmu2 = Mmu::new(64, 4, CostModel::default(), CycleClock::new());
        mmu2.set_tagging(true);
        mmu2.load_cr3(root, Asid(1));
        mmu2.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu2.load_cr3(other, Asid(2));
        mmu2.load_cr3(root, Asid(1));
        mmu2.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(mmu2.stats().walks, 1, "tagged entries survive switches");
    }

    #[test]
    fn asid_zero_always_flushes_even_with_tagging() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.set_tagging(true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.translate(&mut phys, VirtAddr::new(0x1000), Access::Read)
            .unwrap();
        assert_eq!(
            mmu.stats().walks,
            2,
            "reserved tag zero flushes per the paper"
        );
    }

    #[test]
    fn cr3_cost_depends_on_tagging() {
        let (_phys, mut mmu, root) = setup();
        let c = CostModel::default();
        let t0 = mmu.clock().now();
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(mmu.clock().since(t0), c.cr3_load_untagged);
        mmu.set_tagging(true);
        let t1 = mmu.clock().now();
        mmu.load_cr3(root, Asid(3));
        assert_eq!(mmu.clock().since(t1), c.cr3_load_tagged);
    }

    #[test]
    fn protection_faults() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, false); // read-only
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert!(mmu.read_u64(&mut phys, VirtAddr::new(0x1000)).is_ok());
        assert_eq!(
            mmu.write_u64(&mut phys, VirtAddr::new(0x1000), 1),
            Err(MemError::ProtectionFault {
                va: VirtAddr::new(0x1000),
                access: Access::Write
            })
        );
        // Also via the TLB-cached path.
        assert_eq!(
            mmu.write_u64(&mut phys, VirtAddr::new(0x1000), 1),
            Err(MemError::ProtectionFault {
                va: VirtAddr::new(0x1000),
                access: Access::Write
            })
        );
        assert_eq!(mmu.stats().faults, 2);
    }

    #[test]
    fn page_fault_on_unmapped() {
        let (mut phys, mut mmu, root) = setup();
        mmu.load_cr3(root, Asid::UNTAGGED);
        assert_eq!(
            mmu.read_u64(&mut phys, VirtAddr::new(0x9000)),
            Err(MemError::PageFault {
                va: VirtAddr::new(0x9000),
                access: Access::Read
            })
        );
    }

    #[test]
    fn data_round_trip_through_translation() {
        let (mut phys, mut mmu, root) = setup();
        let pa = map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.write_u64(&mut phys, VirtAddr::new(0x1010), 0xfeed)
            .unwrap();
        assert_eq!(phys.read_u64(pa.add(0x10)).unwrap(), 0xfeed);
        assert_eq!(
            mmu.read_u64(&mut phys, VirtAddr::new(0x1010)).unwrap(),
            0xfeed
        );
    }

    #[test]
    fn byte_io_spans_pages() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        map_page(&mut phys, root, 0x2000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        let data: Vec<u8> = (0..200u8).collect();
        mmu.write_bytes(&mut phys, VirtAddr::new(0x2000 - 100), &data)
            .unwrap();
        let mut out = vec![0u8; 200];
        mmu.read_bytes(&mut phys, VirtAddr::new(0x2000 - 100), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn invlpg_forces_rewalk() {
        let (mut phys, mut mmu, root) = setup();
        map_page(&mut phys, root, 0x1000, true);
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.touch(&mut phys, VirtAddr::new(0x1000)).unwrap();
        mmu.invlpg(VirtAddr::new(0x1000));
        mmu.touch(&mut phys, VirtAddr::new(0x1000)).unwrap();
        assert_eq!(mmu.stats().walks, 2);
    }

    #[test]
    fn global_mappings_survive_untagged_switch() {
        let (mut phys, mut mmu, root) = setup();
        let frame = phys.alloc_frame().unwrap();
        paging::map(
            &mut phys,
            root,
            VirtAddr::new(0x5000),
            frame.base(),
            PageSize::Size4K,
            PteFlags::USER | PteFlags::GLOBAL,
        )
        .unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED);
        mmu.touch(&mut phys, VirtAddr::new(0x5000)).unwrap();
        mmu.load_cr3(root, Asid::UNTAGGED); // flushes non-global only
        mmu.touch(&mut phys, VirtAddr::new(0x5000)).unwrap();
        assert_eq!(mmu.stats().walks, 1, "global entry survived the flush");
    }
}
