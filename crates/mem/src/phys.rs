//! Simulated physical memory: a sparse, demand-materialized frame store.
//!
//! The paper's evaluation machines hold up to 512 GiB of DRAM (Table 1).
//! Simulating that densely is impossible in a test process, so frames are
//! materialized lazily: the machine advertises a physical capacity, but a
//! 4 KiB frame only consumes host memory once it is written (or read, when
//! its zero content must be produced). This mirrors how the paper's
//! benchmarks attach to "existing pages in the kernel's page cache" without
//! paying population costs up front.
//!
//! The store doubles as the frame allocator: [`PhysMem::alloc_frame`] hands
//! out frames from a bump pointer plus free list, and page-table nodes built
//! by [`crate::paging`] live in these frames like they would in real DRAM.

use std::collections::HashMap;

use sjmp_blk::{BlkStats, SwapDev};

use crate::addr::{Pfn, PhysAddr, PAGE_SIZE};
use crate::error::MemError;

/// One 4 KiB physical frame of simulated DRAM.
type FrameBox = Box<[u8; PAGE_SIZE as usize]>;

fn zero_frame() -> FrameBox {
    // `vec!` avoids a 4 KiB stack temporary.
    vec![0u8; PAGE_SIZE as usize]
        .into_boxed_slice()
        .try_into()
        .unwrap()
}

/// Sparse simulated physical memory with a frame allocator.
///
/// # Examples
///
/// ```
/// use sjmp_mem::phys::PhysMem;
/// let mut pm = PhysMem::new(1 << 20); // 1 MiB machine
/// let f = pm.alloc_frame()?;
/// pm.write_u64(f.base(), 0xdead_beef)?;
/// assert_eq!(pm.read_u64(f.base())?, 0xdead_beef);
/// # Ok::<(), sjmp_mem::error::MemError>(())
/// ```
#[derive(Debug)]
pub struct PhysMem {
    frames: HashMap<u64, FrameBox>,
    capacity_frames: u64,
    next_frame: u64,
    free_list: Vec<u64>,
    allocated: u64,
    /// First frame of the NVM tier, if the machine has one. Frames at or
    /// above this boundary are non-volatile memory with different access
    /// costs (the heterogeneous-memory future of the paper's Section 7).
    nvm_boundary: Option<u64>,
    /// Bump pointer for NVM allocations (grows from the boundary up).
    next_nvm_frame: u64,
    /// Simulated swap device, backed by the `sjmp-blk` block device
    /// (one block per page). A slot without device bytes records a page
    /// that was entirely zero, so swapped-out untouched pages stay
    /// sparse just like resident ones.
    swap: SwapDev,
    /// Monotone counter bumped by [`crate::paging`] on every page-table
    /// mutation (entry writes, table frees). The MMU's host-side walk
    /// cache stamps its snapshots with this, so a single integer compare
    /// revalidates a snapshot against *any* table change anywhere.
    table_gen: u64,
}

impl PhysMem {
    /// Creates a machine with `capacity_bytes` of physical memory
    /// (rounded down to whole frames).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one frame.
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity_frames = capacity_bytes / PAGE_SIZE;
        assert!(
            capacity_frames > 0,
            "physical memory must hold at least one frame"
        );
        PhysMem {
            frames: HashMap::new(),
            capacity_frames,
            // Frame 0 is reserved (a null CR3 should never look valid).
            next_frame: 1,
            free_list: Vec::new(),
            allocated: 0,
            nvm_boundary: None,
            next_nvm_frame: 0,
            swap: SwapDev::new(PAGE_SIZE),
            table_gen: 0,
        }
    }

    /// The page-table write generation: bumped on every table mutation.
    /// Host-side caches compare stamps against this to revalidate.
    pub fn table_generation(&self) -> u64 {
        self.table_gen
    }

    /// Records a page-table mutation (called by [`crate::paging`]'s
    /// entry writers), invalidating every generation-stamped snapshot.
    pub(crate) fn bump_table_generation(&mut self) {
        self.table_gen += 1;
    }

    /// Declares the top `nvm_bytes` of the physical space to be a
    /// non-volatile memory tier. DRAM allocations bump from the bottom,
    /// NVM allocations ([`Self::alloc_contiguous_nvm`]) from the boundary.
    ///
    /// # Panics
    ///
    /// Panics if the NVM tier would not leave at least one DRAM frame.
    pub fn set_nvm_tier(&mut self, nvm_bytes: u64) {
        let nvm_frames = nvm_bytes / PAGE_SIZE;
        assert!(
            nvm_frames > 0 && nvm_frames < self.capacity_frames,
            "NVM tier must be nonempty and leave DRAM frames"
        );
        let boundary = self.capacity_frames - nvm_frames;
        self.nvm_boundary = Some(boundary);
        self.next_nvm_frame = boundary;
    }

    /// Whether `pfn` belongs to the NVM tier.
    #[inline]
    pub fn is_nvm(&self, pfn: Pfn) -> bool {
        self.nvm_boundary.is_some_and(|b| pfn.0 >= b)
    }

    /// Allocates `n` consecutive frames from the NVM tier.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] if no NVM tier was configured or it is
    /// exhausted.
    pub fn alloc_contiguous_nvm(&mut self, n: u64) -> Result<Pfn, MemError> {
        if self.nvm_boundary.is_none() || self.next_nvm_frame + n > self.capacity_frames {
            return Err(MemError::OutOfFrames);
        }
        let base = self.next_nvm_frame;
        self.next_nvm_frame += n;
        self.allocated += n;
        Ok(Pfn(base))
    }

    /// Total capacity in frames.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity_frames
    }

    /// Size of the configured NVM tier in frames (0 when no tier exists).
    pub fn nvm_frames(&self) -> u64 {
        self.nvm_boundary.map_or(0, |b| self.capacity_frames - b)
    }

    /// Number of frames handed out by [`Self::alloc_frame`] and not freed.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Number of frames materialized with host memory.
    pub fn resident_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Allocates one zeroed frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when the machine's physical
    /// capacity is exhausted.
    pub fn alloc_frame(&mut self) -> Result<Pfn, MemError> {
        let pfn = if let Some(f) = self.free_list.pop() {
            // Reused frames must read as zero again.
            self.frames.remove(&f);
            f
        } else if self.next_frame < self.nvm_boundary.unwrap_or(self.capacity_frames) {
            let f = self.next_frame;
            self.next_frame += 1;
            f
        } else {
            return Err(MemError::OutOfFrames);
        };
        self.allocated += 1;
        Ok(Pfn(pfn))
    }

    /// Allocates `n` zeroed frames with consecutive frame numbers.
    ///
    /// Contiguity is needed for segments backed by a flat physical range.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when fewer than `n` contiguous
    /// frames remain in the bump region.
    pub fn alloc_contiguous(&mut self, n: u64) -> Result<Pfn, MemError> {
        if self.next_frame + n > self.nvm_boundary.unwrap_or(self.capacity_frames) {
            return Err(MemError::OutOfFrames);
        }
        let base = self.next_frame;
        self.next_frame += n;
        self.allocated += n;
        Ok(Pfn(base))
    }

    /// Allocates `n` consecutive frames whose base frame number is a
    /// multiple of `align_frames` (a power of two). Huge-page mappings
    /// require naturally aligned physical ranges: a 2 MiB leaf needs a
    /// 512-frame-aligned base. Frames skipped to reach the alignment go
    /// to the free list, so they are not lost.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when the aligned range does not
    /// fit in the bump region.
    ///
    /// # Panics
    ///
    /// Panics if `align_frames` is not a power of two.
    pub fn alloc_contiguous_aligned(&mut self, n: u64, align_frames: u64) -> Result<Pfn, MemError> {
        assert!(
            align_frames.is_power_of_two(),
            "alignment must be a power of two"
        );
        let base = (self.next_frame + align_frames - 1) & !(align_frames - 1);
        if base + n > self.nvm_boundary.unwrap_or(self.capacity_frames) {
            return Err(MemError::OutOfFrames);
        }
        for skipped in self.next_frame..base {
            self.free_list.push(skipped);
        }
        self.next_frame = base + n;
        self.allocated += n;
        Ok(Pfn(base))
    }

    /// Returns a frame to the allocator and discards its contents.
    pub fn free_frame(&mut self, pfn: Pfn) {
        self.frames.remove(&pfn.0);
        self.free_list.push(pfn.0);
        self.allocated = self.allocated.saturating_sub(1);
    }

    /// DRAM frames [`Self::alloc_frame`] can still hand out (remaining
    /// bump region plus the free list). Contiguous allocations may fail
    /// earlier: they draw only on the bump region.
    pub fn free_frames(&self) -> u64 {
        let bump_left = self
            .nvm_boundary
            .unwrap_or(self.capacity_frames)
            .saturating_sub(self.next_frame);
        bump_left + self.free_list.len() as u64
    }

    /// Saves `pfn`'s content to the swap device, frees the frame, and
    /// returns the swap slot holding the image. The caller (the kernel's
    /// reclaim path) is responsible for having unmapped the frame first.
    pub fn swap_out(&mut self, pfn: Pfn) -> u64 {
        let image = self.frames.remove(&pfn.0);
        let slot = self.swap.store(image.as_deref().map(|f| f.as_slice()));
        self.free_list.push(pfn.0);
        self.allocated = self.allocated.saturating_sub(1);
        slot
    }

    /// Reads a page image back from swap into a freshly allocated frame
    /// and releases the slot.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when no frame can be allocated;
    /// the slot is left intact so the fault can be retried after reclaim.
    ///
    /// # Panics
    ///
    /// Panics if `slot` holds no image — swapping in a slot twice (or one
    /// never produced by [`Self::swap_out`]) is a kernel bug.
    pub fn swap_in(&mut self, slot: u64) -> Result<Pfn, MemError> {
        assert!(self.swap.contains(slot), "swap-in of empty slot {slot}");
        let pfn = self.alloc_frame()?;
        if let Some(image) = self.swap.take(slot) {
            let boxed: FrameBox = image.into_boxed_slice().try_into().unwrap();
            self.frames.insert(pfn.0, boxed);
        }
        Ok(pfn)
    }

    /// Discards a swapped page image without reading it back (the backing
    /// object was freed while the page was swapped out).
    pub fn discard_swap_slot(&mut self, slot: u64) {
        self.swap.discard(slot);
    }

    /// Number of swap slots currently holding page images.
    pub fn swap_slots_used(&self) -> u64 {
        self.swap.used()
    }

    /// Reads a swapped page image into `buf` without consuming the
    /// slot (snapshot serialization reads swapped contents back through
    /// the swap path without faulting them in). Returns `false` if the
    /// slot is empty. A sparse zero page zero-fills `buf`.
    pub fn read_swap_slot(&mut self, slot: u64, buf: &mut [u8]) -> bool {
        self.swap.peek(slot, buf).is_some()
    }

    /// Stores a page image directly into a fresh swap slot (object
    /// duplication preserves `Swapped` page states without faulting
    /// them in). `None` records a sparse all-zero page.
    pub fn store_swap_slot(&mut self, image: Option<&[u8]>) -> u64 {
        self.swap.store(image)
    }

    /// Block-device activity counters of the swap device.
    pub fn swap_blk_stats(&self) -> BlkStats {
        self.swap.stats()
    }

    fn check(&self, pa: PhysAddr, len: u64) -> Result<(), MemError> {
        let end = pa.raw().checked_add(len).ok_or(MemError::BadPhysAddr(pa))?;
        if end > self.capacity_frames * PAGE_SIZE {
            return Err(MemError::BadPhysAddr(pa));
        }
        Ok(())
    }

    fn frame(&mut self, pfn: u64) -> &mut FrameBox {
        self.frames.entry(pfn).or_insert_with(zero_frame)
    }

    /// Direct mutable access to a frame's bytes, materializing it.
    ///
    /// This is the fast path for page-table construction, which writes many
    /// entries into the same frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is beyond the machine's capacity.
    pub fn frame_bytes_mut(&mut self, pfn: Pfn) -> &mut [u8; PAGE_SIZE as usize] {
        assert!(
            pfn.0 < self.capacity_frames,
            "frame {:?} beyond capacity",
            pfn
        );
        self.frame(pfn.0)
    }

    /// Reads one naturally-aligned `u64` (used for page-table entries).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadPhysAddr`] if out of range or unaligned.
    pub fn read_u64(&mut self, pa: PhysAddr) -> Result<u64, MemError> {
        if !pa.is_aligned(8) {
            return Err(MemError::BadPhysAddr(pa));
        }
        self.check(pa, 8)?;
        let off = pa.frame_offset() as usize;
        let frame = self.frame(pa.pfn().0);
        let mut b = [0u8; 8];
        b.copy_from_slice(&frame[off..off + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Writes one naturally-aligned `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadPhysAddr`] if out of range or unaligned.
    pub fn write_u64(&mut self, pa: PhysAddr, value: u64) -> Result<(), MemError> {
        if !pa.is_aligned(8) {
            return Err(MemError::BadPhysAddr(pa));
        }
        self.check(pa, 8)?;
        let off = pa.frame_offset() as usize;
        let frame = self.frame(pa.pfn().0);
        frame[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `pa`, crossing frames as needed.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadPhysAddr`] if the range exceeds capacity.
    pub fn read_bytes(&mut self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(pa, buf.len() as u64)?;
        let mut addr = pa.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            // Avoid materializing frames that were never written: they read
            // as zero.
            match self.frames.get(&(addr >> 12)) {
                Some(frame) => buf[done..done + chunk].copy_from_slice(&frame[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
            addr += chunk as u64;
        }
        Ok(())
    }

    /// Writes `buf` starting at `pa`, crossing frames as needed.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadPhysAddr`] if the range exceeds capacity.
    pub fn write_bytes(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        self.check(pa, buf.len() as u64)?;
        let mut addr = pa.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let off = (addr % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            let frame = self.frame(addr >> 12);
            frame[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
            addr += chunk as u64;
        }
        Ok(())
    }

    /// Fills `len` bytes at `pa` with `value` (page zeroing, memset).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadPhysAddr`] if the range exceeds capacity.
    pub fn fill(&mut self, pa: PhysAddr, len: u64, value: u8) -> Result<(), MemError> {
        self.check(pa, len)?;
        let mut addr = pa.raw();
        let end = addr + len;
        while addr < end {
            let off = (addr % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE - off as u64).min(end - addr)) as usize;
            if value == 0 && !self.frames.contains_key(&(addr >> 12)) {
                // Zero-filling an unmaterialized frame is a no-op.
            } else {
                let frame = self.frame(addr >> 12);
                frame[off..off + chunk].fill(value);
            }
            addr += chunk as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_cycle() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert_eq!(pm.allocated_frames(), 2);
        pm.free_frame(a);
        assert_eq!(pm.allocated_frames(), 1);
        let c = pm.alloc_frame().unwrap();
        assert_eq!(c, a, "free list reuses frames");
    }

    #[test]
    fn frame_zero_reserved() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let a = pm.alloc_frame().unwrap();
        assert_ne!(a.0, 0, "frame 0 must stay reserved");
    }

    #[test]
    fn out_of_frames() {
        let mut pm = PhysMem::new(2 * PAGE_SIZE);
        pm.alloc_frame().unwrap(); // frame 1 (frame 0 reserved)
        assert!(matches!(pm.alloc_frame(), Err(MemError::OutOfFrames)));
    }

    #[test]
    fn reused_frames_read_zero() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let a = pm.alloc_frame().unwrap();
        pm.write_u64(a.base(), 42).unwrap();
        pm.free_frame(a);
        let b = pm.alloc_frame().unwrap();
        assert_eq!(a, b);
        assert_eq!(pm.read_u64(b.base()).unwrap(), 0);
    }

    #[test]
    fn contiguous_allocation() {
        let mut pm = PhysMem::new(64 * PAGE_SIZE);
        let base = pm.alloc_contiguous(8).unwrap();
        let next = pm.alloc_frame().unwrap();
        assert_eq!(next.0, base.0 + 8);
        assert!(pm.alloc_contiguous(1000).is_err());
    }

    #[test]
    fn aligned_contiguous_allocation_recycles_the_gap() {
        let mut pm = PhysMem::new(64 * PAGE_SIZE);
        pm.alloc_frame().unwrap(); // bump pointer now at 2
        let base = pm.alloc_contiguous_aligned(8, 8).unwrap();
        assert_eq!(base.0 % 8, 0, "base is naturally aligned");
        assert!(base.0 >= 8, "could not have been aligned below the bump");
        // The frames skipped to reach alignment are reusable.
        let filler = pm.alloc_frame().unwrap();
        assert!(filler.0 < base.0, "gap frame came off the free list");
        assert!(pm.alloc_contiguous_aligned(64, 64).is_err());
    }

    #[test]
    fn u64_round_trip_and_alignment() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let f = pm.alloc_frame().unwrap();
        pm.write_u64(f.base().add(8), 0x0123_4567_89ab_cdef)
            .unwrap();
        assert_eq!(pm.read_u64(f.base().add(8)).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(pm.read_u64(f.base().add(4)).is_err(), "unaligned u64");
    }

    #[test]
    fn bytes_cross_frame_boundary() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let base = pm.alloc_contiguous(2).unwrap().base();
        let data: Vec<u8> = (0..100u8).collect();
        let start = base.add(PAGE_SIZE - 50);
        pm.write_bytes(start, &data).unwrap();
        let mut out = vec![0u8; 100];
        pm.read_bytes(start, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_memory_reads_zero_without_materializing() {
        let mut pm = PhysMem::new(1024 * PAGE_SIZE);
        let mut buf = vec![0xffu8; 64];
        pm.read_bytes(PhysAddr::new(500 * PAGE_SIZE), &mut buf)
            .unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(pm.resident_frames(), 0);
    }

    #[test]
    fn swap_round_trip_preserves_content() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let f = pm.alloc_frame().unwrap();
        pm.write_u64(f.base().add(16), 0xfeed_f00d).unwrap();
        let before = pm.allocated_frames();
        let slot = pm.swap_out(f);
        assert_eq!(pm.allocated_frames(), before - 1, "frame freed");
        assert_eq!(pm.swap_slots_used(), 1);
        let back = pm.swap_in(slot).unwrap();
        assert_eq!(pm.read_u64(back.base().add(16)).unwrap(), 0xfeed_f00d);
        assert_eq!(pm.swap_slots_used(), 0, "slot released");
        assert_eq!(pm.allocated_frames(), before);
    }

    #[test]
    fn swap_of_untouched_frame_stays_sparse() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let f = pm.alloc_frame().unwrap();
        let slot = pm.swap_out(f);
        assert_eq!(pm.resident_frames(), 0, "zero page stored without bytes");
        let back = pm.swap_in(slot).unwrap();
        assert_eq!(pm.read_u64(back.base()).unwrap(), 0);
    }

    #[test]
    fn swap_slots_are_reused() {
        let mut pm = PhysMem::new(16 * PAGE_SIZE);
        let a = pm.alloc_frame().unwrap();
        let slot = pm.swap_out(a);
        let _ = pm.swap_in(slot).unwrap();
        let b = pm.alloc_frame().unwrap();
        assert_eq!(pm.swap_out(b), slot, "freed slot reused");
        pm.discard_swap_slot(slot);
        assert_eq!(pm.swap_slots_used(), 0);
    }

    #[test]
    fn swap_out_makes_room_for_alloc() {
        // 3-frame machine (frame 0 reserved): exhaust it, swap one out,
        // and the freed frame satisfies the next allocation.
        let mut pm = PhysMem::new(3 * PAGE_SIZE);
        let a = pm.alloc_frame().unwrap();
        let _b = pm.alloc_frame().unwrap();
        assert!(pm.alloc_frame().is_err());
        assert_eq!(pm.free_frames(), 0);
        let _slot = pm.swap_out(a);
        assert_eq!(pm.free_frames(), 1);
        assert_eq!(pm.alloc_frame().unwrap(), a);
    }

    #[test]
    fn fill_and_bounds() {
        let mut pm = PhysMem::new(4 * PAGE_SIZE);
        pm.fill(PhysAddr::new(0), 2 * PAGE_SIZE, 0xab).unwrap();
        let mut b = [0u8; 1];
        pm.read_bytes(PhysAddr::new(PAGE_SIZE + 17), &mut b)
            .unwrap();
        assert_eq!(b[0], 0xab);
        assert!(pm
            .fill(PhysAddr::new(3 * PAGE_SIZE), 2 * PAGE_SIZE, 0)
            .is_err());
        // Zero-fill of untouched frames stays sparse.
        let mut pm2 = PhysMem::new(1024 * PAGE_SIZE);
        pm2.fill(PhysAddr::new(0), 512 * PAGE_SIZE, 0).unwrap();
        assert_eq!(pm2.resident_frames(), 0);
    }
}
