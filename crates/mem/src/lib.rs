//! # sjmp-mem — simulated memory hardware for the SpaceJMP reproduction
//!
//! This crate is the hardware substrate under the SpaceJMP operating-system
//! reproduction (ASPLOS 2016): simulated physical memory, x86-64-style
//! four-level page tables, an ASID-tagged TLB, a per-core MMU, and a cycle
//! cost model calibrated from the paper's measurements.
//!
//! The layering mirrors a real machine:
//!
//! * [`phys`] — sparse, demand-materialized DRAM ([`phys::PhysMem`]) with a
//!   frame allocator.
//! * [`paging`] — page tables stored *inside* simulated frames, with
//!   mapping, unmapping, walking, and subtree sharing.
//! * [`tlb`] — a set-associative TLB with 12-bit ASID tags, where tag zero
//!   is reserved to always flush (the paper's convention).
//! * [`backend`] — the pluggable translation seam ([`backend::Backend`]):
//!   the four-level walker or the no-VM base+bound table.
//! * [`segmap`] — the no-VM backend's shadow segment table.
//! * [`mmu`] — CR3, translation, and data access with cycle accounting.
//! * [`cost`] — machine profiles (Table 1) and event costs (Table 2,
//!   Figure 1 anchors), plus the shared [`cost::CycleClock`].
//!
//! # Examples
//!
//! Building an address space and accessing memory through it:
//!
//! ```
//! use sjmp_mem::addr::{PageSize, VirtAddr};
//! use sjmp_mem::cost::{CostModel, CycleClock};
//! use sjmp_mem::mmu::Mmu;
//! use sjmp_mem::paging::{self, PteFlags};
//! use sjmp_mem::phys::PhysMem;
//! use sjmp_mem::tlb::Asid;
//!
//! # fn main() -> Result<(), sjmp_mem::error::MemError> {
//! let mut phys = PhysMem::new(16 << 20);
//! let root = paging::new_root(&mut phys)?;
//! let frame = phys.alloc_frame()?;
//! paging::map(&mut phys, root, VirtAddr::new(0x4000), frame.base(),
//!             PageSize::Size4K, PteFlags::WRITABLE | PteFlags::USER)?;
//!
//! let mut mmu = Mmu::new(512, 4, CostModel::default(), CycleClock::new());
//! mmu.load_cr3(root, Asid::UNTAGGED);
//! mmu.write_u64(&mut phys, VirtAddr::new(0x4000), 42)?;
//! assert_eq!(mmu.read_u64(&mut phys, VirtAddr::new(0x4000))?, 42);
//! # Ok(()) }
//! ```

pub mod addr;
pub mod backend;
pub mod cost;
pub mod error;
pub mod machine;
pub mod mmu;
pub mod paging;
pub mod phys;
pub mod segmap;
pub mod tlb;

pub use addr::{PageSize, Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SIZE};
pub use backend::{Backend, TranslationBackend, TranslationKind};
pub use cost::{
    CoreClocks, CoreCtx, CostModel, CycleClock, KernelFlavor, MachineId, MachineProfile,
};
pub use error::{Access, MemError};
pub use machine::Machine;
pub use mmu::Mmu;
pub use paging::PteFlags;
pub use phys::PhysMem;
pub use segmap::SegMap;
pub use tlb::{Asid, Tlb, TlbStats};
