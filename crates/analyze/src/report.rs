//! Findings: the common currency of every analyzer in this crate.
//!
//! The static lockset pass, the trace-replay race detector, the
//! lock-order graph, and the kernel linter all report their results as
//! [`Finding`]s so one report schema (`results/analyze_report.json`)
//! covers them all.

use sjmp_trace::Json;

/// One problem an analyzer found. A finding names the rule that fired
/// and pins the blame as precisely as the analyzer can: the shared
/// segment involved, the processes, and (for trace replay) the cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable rule identifier (`data-race`, `lock-order-cycle`,
    /// `unlocked-shared-write`, `stale-pte`, `asid-alias`,
    /// `template-divergence`, ...).
    pub rule: &'static str,
    /// Human-readable description of this instance.
    pub message: String,
    /// The shared segment(s) involved, by raw segment id, sorted.
    pub segments: Vec<u64>,
    /// The processes involved, by raw pid, sorted.
    pub pids: Vec<u64>,
    /// The cores involved (trace replay only), sorted.
    pub cores: Vec<u64>,
}

impl Finding {
    /// A finding with no blame attached yet.
    pub fn new(rule: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            message: message.into(),
            segments: Vec::new(),
            pids: Vec::new(),
            cores: Vec::new(),
        }
    }

    /// Attaches segment ids (sorted and deduplicated).
    #[must_use]
    pub fn segments(mut self, segments: impl IntoIterator<Item = u64>) -> Finding {
        self.segments.extend(segments);
        self.segments.sort_unstable();
        self.segments.dedup();
        self
    }

    /// Attaches pids (sorted and deduplicated).
    #[must_use]
    pub fn pids(mut self, pids: impl IntoIterator<Item = u64>) -> Finding {
        self.pids.extend(pids);
        self.pids.sort_unstable();
        self.pids.dedup();
        self
    }

    /// Attaches cores (sorted and deduplicated).
    #[must_use]
    pub fn cores(mut self, cores: impl IntoIterator<Item = u64>) -> Finding {
        self.cores.extend(cores);
        self.cores.sort_unstable();
        self.cores.dedup();
        self
    }

    /// Renders the finding for `analyze_report.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".into(), Json::str(self.rule)),
            ("message".into(), Json::str(&self.message)),
            (
                "segments".into(),
                Json::Arr(self.segments.iter().map(|&s| Json::from_u64(s)).collect()),
            ),
            (
                "pids".into(),
                Json::Arr(self.pids.iter().map(|&p| Json::from_u64(p)).collect()),
            ),
            (
                "cores".into(),
                Json::Arr(self.cores.iter().map(|&c| Json::from_u64(c)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_sort_and_dedup() {
        let f = Finding::new("data-race", "racy write")
            .segments([3, 1, 3])
            .pids([9, 2, 9])
            .cores([1, 0, 1]);
        assert_eq!(f.segments, vec![1, 3]);
        assert_eq!(f.pids, vec![2, 9]);
        assert_eq!(f.cores, vec![0, 1]);
    }

    #[test]
    fn json_shape_is_stable() {
        let f = Finding::new("stale-pte", "boom").segments([7]);
        let j = f.to_json();
        assert_eq!(j.get("rule").and_then(Json::as_str), Some("stale-pte"));
        assert_eq!(j.get("message").and_then(Json::as_str), Some("boom"));
        assert_eq!(
            j.get("segments").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            j.get("pids").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
    }
}
