//! # sjmp-analyze — race & lock-order analysis for multi-VAS programs
//!
//! SpaceJMP's safety contract (Sections 3.3 and 4.2) has a concurrency
//! half the VAS-validity compiler pass (`sjmp-safety`) does not cover:
//! shared segments are supposed to be ordered by the locks `vas_switch`
//! acquires, and the kernel's bookkeeping (page tables, ASIDs, CoW
//! templates) is supposed to stay coherent underneath. This crate
//! checks that contract at three layers:
//!
//! * [`lockset`] and [`verify`] — **static**: interprocedural
//!   dataflow passes over the `sjmp-safety` IR. [`lockset`] classifies
//!   every load/store to a shared segment as proven-guarded,
//!   proven-racy, or unknown; [`verify`] bridges the pointer-provenance
//!   verifier (`sjmp_safety::provenance`), turning each proven-dangling
//!   cross-VAS dereference into a `cross-vas-dangling` finding whose
//!   message carries the alloc → escape → switch → deref chain;
//! * [`race`] and [`lockorder`] — **dynamic**: trace-replay detectors
//!   consuming `sjmp-trace` event streams — a hybrid lockset +
//!   vector-clock data-race detector and a Goodlock-style lock-order
//!   graph reporting potential `vas_switch` deadlock cycles;
//! * [`lint`] — **kernel audit**: offline passes over live kernel
//!   state (unlocked shared writable segments, stale PTEs to swapped
//!   frames, tagged-ASID aliasing, CoW template divergence).
//!
//! The `sjmp-lint` binary in `sjmp-bench` drives the trace-replay
//! layer over `results/*.trace.json` and writes
//! `results/analyze_report.json`.

pub mod lint;
pub mod lockorder;
pub mod lockset;
pub mod race;
pub mod report;
pub mod verify;

pub use lint::lint_kernel;
pub use lockorder::detect_lock_order_cycles;
pub use lockset::{AccessClass, Lockset, LocksetSummary};
pub use race::detect_races;
pub use report::Finding;
pub use verify::{verify_module, IrVerification};

use sjmp_trace::Event;

/// Result of replaying one trace through every trace-level analyzer.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// All findings, detector order (races first, then lock-order).
    pub findings: Vec<Finding>,
    /// True if the analysis was skipped because the trace is
    /// incomplete (the ring buffer dropped events): replaying a stream
    /// with holes would fabricate races from missing lock events.
    pub skipped_incomplete: bool,
}

/// Runs the data-race and lock-order detectors over one event stream.
/// `dropped` is the trace's dropped-event count (from the tracer or
/// the exported document); a lossy trace is not analyzed.
pub fn analyze_trace(events: &[Event], dropped: u64) -> TraceAnalysis {
    if dropped > 0 {
        return TraceAnalysis {
            findings: Vec::new(),
            skipped_incomplete: true,
        };
    }
    let mut findings = detect_races(events);
    findings.extend(detect_lock_order_cycles(events));
    TraceAnalysis {
        findings,
        skipped_incomplete: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_traces_are_skipped_not_analyzed() {
        let r = analyze_trace(&[], 3);
        assert!(r.skipped_incomplete);
        assert!(r.findings.is_empty());
        let r = analyze_trace(&[], 0);
        assert!(!r.skipped_incomplete);
    }
}
