//! Trace-replay data-race detection: hybrid lockset + vector clocks.
//!
//! Replays an `sjmp-trace` event stream and checks every committed
//! shared-memory access ([`EventKind::MemRead`] / [`EventKind::MemWrite`])
//! against a per-word shadow state, FastTrack style:
//!
//! * each **core** carries a vector clock; a memory access on core `c`
//!   is a new epoch `(c, k)`;
//! * segment locks induce happens-before: a [`EventKind::LockRelease`]
//!   publishes the releasing core's clock into the lock, a
//!   [`EventKind::LockAcquire`] joins it into the acquiring core's
//!   clock (events on one core are totally ordered by the trace);
//! * each access also records the accessor's *lockset* (the segment
//!   locks its pid held at the time).
//!
//! Two accesses to the same word of the same segment **race** when they
//! come from different cores, neither happens-before the other, their
//! locksets are disjoint, and at least one is a write. Requiring both
//! conditions (the hybrid) avoids the pure-lockset false positives on
//! hand-off patterns the GUPS turn rotation uses.
//!
//! Attributing a virtual address to a segment needs the accessor's
//! active VAS — SpaceJMP deliberately maps different segments at the
//! *same* address in different VASes (Section 3.2's fixed-address
//! sharing). The replay therefore tracks [`EventKind::SegRegister`] /
//! [`EventKind::SegExtent`] (segment geometry), [`EventKind::SegAttach`]
//! (segment → VAS membership) and [`EventKind::VasEnter`] (pid → VAS).
//! Accesses that cannot be attributed (process at home, or a segment
//! attached process-locally) are skipped — the detector prefers
//! missing a race over inventing one.
//!
//! [`EventKind::LockSkip`] markers are ignored by design: the injected
//! race must be found from the access stream alone.
//!
//! A reaped process's locks are force-released *without* trace events
//! (the corpse's releases happen in kernel teardown); the replay
//! tolerates the resulting unpaired acquires because locksets are
//! tracked per pid and a dead pid makes no further accesses.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sjmp_trace::{Event, EventKind};

use crate::report::Finding;

/// A vector clock indexed by core id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    fn tick(&mut self, core: usize) {
        if self.0.len() <= core {
            self.0.resize(core + 1, 0);
        }
        self.0[core] += 1;
    }

    fn get(&self, core: usize) -> u64 {
        self.0.get(core).copied().unwrap_or(0)
    }

    fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }
}

/// One recorded access in the shadow state.
#[derive(Debug, Clone)]
struct Access {
    core: u32,
    /// The accessor core's local clock at the access (its epoch).
    epoch: u64,
    pid: u64,
    ts: u64,
    locks: BTreeSet<u64>,
}

impl Access {
    /// Whether this access happens-before a context whose core clock
    /// vector is `vc` (epoch test: the observer has seen our epoch).
    fn ordered_before(&self, vc: &VectorClock) -> bool {
        vc.get(self.core as usize) >= self.epoch
    }
}

#[derive(Debug, Clone, Default)]
struct Shadow {
    last_write: Option<Access>,
    /// Most recent read per core since the last write.
    reads: BTreeMap<u32, Access>,
}

fn vc_of(vcs: &mut Vec<VectorClock>, core: usize) -> &mut VectorClock {
    if vcs.len() <= core {
        vcs.resize(core + 1, VectorClock::default());
    }
    &mut vcs[core]
}

/// Replays `events` and returns one `data-race` finding per racy
/// segment (the first race found on it, with exact word, pids, and
/// cores in the message).
pub fn detect_races(events: &[Event]) -> Vec<Finding> {
    // Segment geometry and membership, learned from the stream.
    let mut seg_base: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seg_size: BTreeMap<u64, u64> = BTreeMap::new();
    let mut vas_segs: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut cur_vas: HashMap<u64, u64> = HashMap::new();
    let mut held: HashMap<u64, BTreeSet<u64>> = HashMap::new();
    // Happens-before state.
    let mut core_vc: Vec<VectorClock> = Vec::new();
    let mut lock_vc: HashMap<u64, VectorClock> = HashMap::new();
    // Per (segment, word) shadow cells.
    let mut shadow: HashMap<(u64, u64), Shadow> = HashMap::new();

    let mut findings: Vec<Finding> = Vec::new();
    let mut flagged: BTreeSet<u64> = BTreeSet::new();

    for ev in events {
        let core = ev.core as usize;
        match ev.kind {
            EventKind::SegRegister => {
                seg_base.insert(ev.arg0, ev.arg1);
            }
            EventKind::SegExtent => {
                seg_size.insert(ev.arg0, ev.arg1);
            }
            EventKind::SegAttach => {
                let segs = vas_segs.entry(ev.arg1).or_default();
                if !segs.contains(&ev.arg0) {
                    segs.push(ev.arg0);
                }
            }
            EventKind::VasEnter => {
                if ev.arg1 == 0 {
                    cur_vas.remove(&ev.arg0);
                } else {
                    cur_vas.insert(ev.arg0, ev.arg1);
                }
            }
            EventKind::LockAcquire => {
                let (sid, pid) = (ev.arg0, ev.arg1);
                held.entry(pid).or_default().insert(sid);
                if let Some(lvc) = lock_vc.get(&sid) {
                    let lvc = lvc.clone();
                    vc_of(&mut core_vc, core).join(&lvc);
                }
                vc_of(&mut core_vc, core).tick(core);
            }
            EventKind::LockRelease => {
                let (sid, pid) = (ev.arg0, ev.arg1);
                held.entry(pid).or_default().remove(&sid);
                let vc = vc_of(&mut core_vc, core);
                vc.tick(core);
                let snapshot = vc.clone();
                lock_vc.entry(sid).or_default().join(&snapshot);
            }
            EventKind::MemRead | EventKind::MemWrite => {
                let (va, pid) = (ev.arg0, ev.arg1);
                let is_write = ev.kind == EventKind::MemWrite;
                let Some(&vid) = cur_vas.get(&pid) else {
                    continue;
                };
                let Some(sid) =
                    vas_segs.get(&vid).into_iter().flatten().copied().find(|s| {
                        match (seg_base.get(s), seg_size.get(s)) {
                            (Some(&b), Some(&len)) => va >= b && va < b + len,
                            _ => false,
                        }
                    })
                else {
                    continue;
                };
                let locks = held.get(&pid).cloned().unwrap_or_default();
                let vc = vc_of(&mut core_vc, core);
                vc.tick(core);
                let me = Access {
                    core: ev.core,
                    epoch: vc.get(core),
                    pid,
                    ts: ev.ts,
                    locks,
                };
                let vc = vc.clone();
                let cell = shadow.entry((sid, va)).or_default();

                let races_with = |other: &Access| -> bool {
                    other.core != me.core
                        && other.pid != me.pid
                        && !other.ordered_before(&vc)
                        && other.locks.intersection(&me.locks).next().is_none()
                };
                let mut opponent: Option<&Access> = None;
                if let Some(w) = cell.last_write.as_ref() {
                    if races_with(w) {
                        opponent = Some(w);
                    }
                }
                if is_write && opponent.is_none() {
                    opponent = cell.reads.values().find(|r| races_with(r));
                }
                if let Some(other) = opponent {
                    if flagged.insert(sid) {
                        findings.push(
                            Finding::new(
                                "data-race",
                                format!(
                                    "unordered conflicting accesses to word {va:#x} of \
                                     segment {sid}: pid {} on core {} (cycle {}) vs \
                                     pid {} on core {} (cycle {}), disjoint locksets",
                                    other.pid, other.core, other.ts, me.pid, me.core, me.ts,
                                ),
                            )
                            .segments([sid])
                            .pids([other.pid, me.pid])
                            .cores([u64::from(other.core), u64::from(me.core)]),
                        );
                    }
                }
                if is_write {
                    cell.reads.clear();
                    cell.last_write = Some(me);
                } else {
                    cell.reads.insert(ev.core, me);
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_trace::Phase;

    fn instant(ts: u64, core: u32, kind: EventKind, arg0: u64, arg1: u64) -> Event {
        Event {
            ts,
            core,
            phase: Phase::Instant,
            kind,
            arg0,
            arg1,
        }
    }

    /// Both processes lock segment 1 around their writes: clean.
    #[test]
    fn locked_handoff_is_not_a_race() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(1, 0, EventKind::LockAcquire, 1, 10),
            instant(2, 0, EventKind::VasEnter, 10, 7),
            instant(3, 0, EventKind::MemWrite, 0x1008, 10),
            instant(4, 0, EventKind::VasEnter, 10, 0),
            instant(5, 0, EventKind::LockRelease, 1, 10),
            instant(6, 1, EventKind::LockAcquire, 1, 11),
            instant(7, 1, EventKind::VasEnter, 11, 7),
            instant(8, 1, EventKind::MemWrite, 0x1008, 11),
            instant(9, 1, EventKind::VasEnter, 11, 0),
            instant(10, 1, EventKind::LockRelease, 1, 11),
        ];
        assert!(detect_races(&e).is_empty());
    }

    /// Second writer never takes the lock: a race, attributed exactly.
    #[test]
    fn unlocked_write_races() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(1, 0, EventKind::LockAcquire, 1, 10),
            instant(2, 0, EventKind::VasEnter, 10, 7),
            instant(3, 0, EventKind::MemWrite, 0x1008, 10),
            // pid 11 switched in without acquiring (lock elided).
            instant(4, 1, EventKind::VasEnter, 11, 7),
            instant(5, 1, EventKind::MemWrite, 0x1008, 11),
        ];
        let f = detect_races(&e);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "data-race");
        assert_eq!(f[0].segments, vec![1]);
        assert_eq!(f[0].pids, vec![10, 11]);
        assert_eq!(f[0].cores, vec![0, 1]);
    }

    /// Same address, *different* VASes → different segments: clean.
    #[test]
    fn same_address_in_different_vases_is_not_a_race() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegRegister, 2, 0x1000),
            instant(0, 0, EventKind::SegExtent, 2, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(0, 0, EventKind::SegAttach, 2, 8),
            instant(1, 0, EventKind::VasEnter, 10, 7),
            instant(2, 0, EventKind::MemWrite, 0x1008, 10),
            instant(3, 1, EventKind::VasEnter, 11, 8),
            instant(4, 1, EventKind::MemWrite, 0x1008, 11),
        ];
        assert!(detect_races(&e).is_empty());
    }

    /// Reads do not race with reads.
    #[test]
    fn concurrent_reads_are_clean() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(1, 0, EventKind::VasEnter, 10, 7),
            instant(2, 0, EventKind::MemRead, 0x1008, 10),
            instant(3, 1, EventKind::VasEnter, 11, 7),
            instant(4, 1, EventKind::MemRead, 0x1008, 11),
        ];
        assert!(detect_races(&e).is_empty());
    }

    /// An unlocked read against an unlocked write is still a race.
    #[test]
    fn read_write_race_detected() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(1, 0, EventKind::VasEnter, 10, 7),
            instant(2, 0, EventKind::MemWrite, 0x1010, 10),
            instant(3, 1, EventKind::VasEnter, 11, 7),
            instant(4, 1, EventKind::MemRead, 0x1010, 11),
        ];
        let f = detect_races(&e);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].segments, vec![1]);
    }

    /// Unattributable accesses (no VasEnter) are skipped, not guessed.
    #[test]
    fn home_accesses_are_skipped() {
        let e = vec![
            instant(0, 0, EventKind::SegRegister, 1, 0x1000),
            instant(0, 0, EventKind::SegExtent, 1, 0x1000),
            instant(0, 0, EventKind::SegAttach, 1, 7),
            instant(2, 0, EventKind::MemWrite, 0x1008, 10),
            instant(4, 1, EventKind::MemWrite, 0x1008, 11),
        ];
        assert!(detect_races(&e).is_empty());
    }
}
