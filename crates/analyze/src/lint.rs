//! Offline audit passes over live kernel state (`sjmp-lint`'s other
//! half: what can be checked without a trace).
//!
//! These are invariants of the SpaceJMP design that no single syscall
//! can check — they span segments, VASes, vmspaces, and the physical
//! page tables:
//!
//! * **unlocked-shared-write** — a writable segment reachable by two
//!   or more processes with its lock discipline turned off
//!   (`seg_ctl` made it non-lockable). Every access to it is a
//!   potential race the switch-time locking protocol cannot prevent.
//! * **stale-pte** — a swapped-out page of a demand-paged object that
//!   still has a *present* translation in some VAS template: a
//!   use-after-evict waiting to happen (reads would hit a recycled
//!   frame).
//! * **asid-alias** — two vmspaces of different VASes sharing one
//!   tagged ASID: the TLB would serve one VAS's translations to the
//!   other without a flush.
//! * **template-divergence** — an attachment's vmspace whose shared
//!   PML4 slot no longer points at the same subtree as its VAS's
//!   template: updates to the VAS (new segments, reclaim) stop
//!   propagating to that process (Section 4.2's propagation contract).
//!
//! All passes iterate sorted id lists so findings are deterministic.

use std::collections::BTreeMap;

use sjmp_mem::{paging, PAGE_SIZE};
use sjmp_os::vmobject::PageState;
use spacejmp_core::{AttachMode, SpaceJmp};

use crate::report::Finding;

/// Runs every kernel audit pass and returns all findings, in pass
/// order. A healthy kernel yields an empty vector.
pub fn lint_kernel(sj: &mut SpaceJmp) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(unlocked_shared_writable(sj));
    findings.extend(stale_ptes(sj));
    findings.extend(asid_aliases(sj));
    findings.extend(template_divergence(sj));
    findings
}

/// Writable segment, lock discipline off, reachable by ≥ 2 processes.
fn unlocked_shared_writable(sj: &SpaceJmp) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sid in sj.segment_ids() {
        let Ok(seg) = sj.segment(sid) else { continue };
        if seg.lockable() {
            continue;
        }
        let mut writers: Vec<u64> = Vec::new();
        for vid in sj.vas_ids() {
            let Ok(vas) = sj.vas(vid) else { continue };
            if vas.segment_mode(sid) == Some(AttachMode::ReadWrite) {
                writers.extend(vas.attached_pids().map(|p| p.0));
            }
        }
        for vh in sj.attachment_handles() {
            let Ok(att) = sj.attachment(vh) else { continue };
            if att
                .local_segments
                .iter()
                .any(|&(s, m)| s == sid && m == AttachMode::ReadWrite)
            {
                writers.push(att.pid.0);
            }
        }
        writers.sort_unstable();
        writers.dedup();
        if writers.len() >= 2 {
            findings.push(
                Finding::new(
                    "unlocked-shared-write",
                    format!(
                        "segment {} is writable by {} processes but not lockable: \
                         switch-time locking cannot order its accesses",
                        sid.0,
                        writers.len(),
                    ),
                )
                .segments([sid.0])
                .pids(writers),
            );
        }
    }
    findings
}

/// Swapped pages of segment-backing objects must not keep present
/// translations in any VAS template.
fn stale_ptes(sj: &mut SpaceJmp) -> Vec<Finding> {
    // Collect the work list first (immutable pass), then walk page
    // tables (needs &mut PhysMem).
    struct Check {
        sid: u64,
        base: u64,
        page: u64,
        root: sjmp_mem::Pfn,
    }
    let mut checks: Vec<Check> = Vec::new();
    for sid in sj.segment_ids() {
        let Ok(seg) = sj.segment(sid) else { continue };
        let object = seg.object();
        let (base, pages) = (seg.base(), seg.size() / PAGE_SIZE);
        let Ok(obj) = sj.kernel().vmobject(object) else {
            continue;
        };
        if obj.is_contiguous() || obj.swapped_pages() == 0 {
            continue;
        }
        let swapped: Vec<u64> = (0..pages.min(obj.pages()))
            .filter(|&i| matches!(obj.page_state(i), PageState::Swapped { .. }))
            .collect();
        if swapped.is_empty() {
            continue;
        }
        for vid in sj.vas_ids() {
            let Ok(vas) = sj.vas(vid) else { continue };
            if vas.segment_mode(sid).is_none() {
                continue;
            }
            checks.extend(swapped.iter().map(|&page| Check {
                sid: sid.0,
                base: base.raw(),
                page,
                root: vas.template_root(),
            }));
        }
    }
    let phys = sj.kernel_mut().phys_mut();
    let mut findings = Vec::new();
    for c in checks {
        let va = sjmp_mem::VirtAddr::new(c.base + c.page * PAGE_SIZE);
        if paging::walk(phys, c.root, va).is_ok() && !paging::leaf_is_swap_marked(phys, c.root, va)
        {
            findings.push(
                Finding::new(
                    "stale-pte",
                    format!(
                        "page {} of segment {} is swapped out but still has a \
                         present translation at {va:?}",
                        c.page, c.sid,
                    ),
                )
                .segments([c.sid]),
            );
        }
    }
    findings
}

/// Tagged ASIDs must be unique across vmspaces of different VASes.
fn asid_aliases(sj: &SpaceJmp) -> Vec<Finding> {
    // Which VAS (if any) owns each attachment vmspace.
    let mut owner: BTreeMap<u64, u64> = BTreeMap::new();
    for vh in sj.attachment_handles() {
        if let Ok(att) = sj.attachment(vh) {
            owner.insert(att.vmspace.0, att.vid.0);
        }
    }
    let mut by_asid: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
    for vs in sj.kernel().vmspace_ids() {
        let Ok(space) = sj.kernel().vmspace(vs) else {
            continue;
        };
        if space.asid().is_tagged() {
            by_asid.entry(space.asid().0).or_default().push(vs.0);
        }
    }
    let mut findings = Vec::new();
    for (asid, spaces) in by_asid {
        let owners: Vec<Option<u64>> = spaces.iter().map(|s| owner.get(s).copied()).collect();
        let mut distinct = owners.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if spaces.len() >= 2 && distinct.len() >= 2 {
            findings.push(Finding::new(
                "asid-alias",
                format!(
                    "tagged ASID {asid} is shared by vmspaces {spaces:?} belonging \
                     to different VASes: TLB entries would leak across them"
                ),
            ));
        }
    }
    findings
}

/// Every attachment's shared PML4 slots must match its VAS template.
fn template_divergence(sj: &mut SpaceJmp) -> Vec<Finding> {
    struct Check {
        pid: u64,
        vid: u64,
        root: sjmp_mem::Pfn,
        template: sjmp_mem::Pfn,
        slots: Vec<usize>,
    }
    let mut checks: Vec<Check> = Vec::new();
    for vh in sj.attachment_handles() {
        let Ok(att) = sj.attachment(vh) else { continue };
        let Ok(vas) = sj.vas(att.vid) else { continue };
        let Ok(space) = sj.kernel().vmspace(att.vmspace) else {
            continue;
        };
        checks.push(Check {
            pid: att.pid.0,
            vid: att.vid.0,
            root: space.root(),
            template: vas.template_root(),
            slots: space.shared_slots().to_vec(),
        });
    }
    let phys = sj.kernel_mut().phys_mut();
    let mut findings = Vec::new();
    for c in checks {
        for slot in c.slots {
            let in_template = paging::root_slot_entry(phys, c.template, slot);
            let in_space = paging::root_slot_entry(phys, c.root, slot);
            if in_template.is_some() && in_space != in_template {
                findings.push(
                    Finding::new(
                        "template-divergence",
                        format!(
                            "pid {}'s vmspace shares PML4 slot {slot} of VAS {} but \
                             points at {in_space:?} instead of the template's \
                             {in_template:?}: VAS updates no longer propagate",
                            c.pid, c.vid,
                        ),
                    )
                    .pids([c.pid]),
                );
            }
        }
    }
    findings
}
