//! Goodlock-style lock-order analysis over replayed traces.
//!
//! `vas_switch` acquires the target VAS's whole lock set while still
//! holding the previous VAS's locks (acquire-then-release, so a
//! mid-switch crash unwinds cleanly). Processes that switch *directly*
//! between VASes in opposite orders therefore create the classic
//! deadlock shape: P1 holds `s1` wanting `s2`, P2 holds `s2` wanting
//! `s1`. The runtime defuses actual cycles with try-acquire + rollback
//! and the waits-for graph, but that costs livelock-prone retries; the
//! point of Goodlock is to report the *potential* cycle even on runs
//! where the timing never lined up.
//!
//! The replay builds a directed graph: an edge `a → b` (witnessed by
//! pid P) means P at some point attempted or completed acquiring `b`
//! while holding `a`. Any cycle in the graph is a potential deadlock —
//! **unless** every edge in it was witnessed by one single process.
//! A lone process cycling through VASes in both orders creates both
//! edge directions, but one process cannot deadlock with itself under
//! try-acquire-with-rollback, so a cycle is only reported when its
//! edges were witnessed by at least two distinct pids.
//!
//! Contended attempts ([`EventKind::LockContention`]) contribute edges
//! but not holds — exactly the attempts most likely to be half of a
//! real inversion.

use std::collections::{BTreeMap, BTreeSet};

use sjmp_trace::{Event, EventKind};

use crate::report::Finding;

/// Replays `events` and returns one `lock-order-cycle` finding per
/// strongly connected component of the lock-order graph whose edges
/// were witnessed by at least two distinct processes.
pub fn detect_lock_order_cycles(events: &[Event]) -> Vec<Finding> {
    // held-by-pid replay; edge (a, b) → witnessing pids.
    let mut held: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut edges: BTreeMap<(u64, u64), BTreeSet<u64>> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::LockAcquire | EventKind::LockContention => {
                let (sid, pid) = (ev.arg0, ev.arg1);
                let h = held.entry(pid).or_default();
                for &prior in h.iter() {
                    if prior != sid {
                        edges.entry((prior, sid)).or_default().insert(pid);
                    }
                }
                if ev.kind == EventKind::LockAcquire {
                    h.insert(sid);
                }
            }
            EventKind::LockRelease => {
                held.entry(ev.arg1).or_default().remove(&ev.arg0);
            }
            _ => {}
        }
    }

    // Strongly connected components (Kosaraju). Node set = every
    // segment appearing in an edge, in sorted order for determinism.
    let nodes: Vec<u64> = edges
        .keys()
        .flat_map(|&(a, b)| [a, b])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let fwd: BTreeMap<u64, Vec<u64>> = adjacency(edges.keys().copied());
    let rev: BTreeMap<u64, Vec<u64>> = adjacency(edges.keys().map(|&(a, b)| (b, a)));

    let mut order = Vec::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for &n in &nodes {
        dfs_postorder(n, &fwd, &mut seen, &mut order);
    }
    let mut findings = Vec::new();
    let mut assigned: BTreeSet<u64> = BTreeSet::new();
    for &n in order.iter().rev() {
        if assigned.contains(&n) {
            continue;
        }
        let mut component = Vec::new();
        dfs_postorder(n, &rev, &mut assigned, &mut component);
        if component.len() < 2 {
            continue; // a segment alone cannot form an inversion
        }
        component.sort_unstable();
        let members: BTreeSet<u64> = component.iter().copied().collect();
        let witnesses: BTreeSet<u64> = edges
            .iter()
            .filter(|((a, b), _)| members.contains(a) && members.contains(b))
            .flat_map(|(_, pids)| pids.iter().copied())
            .collect();
        if witnesses.len() < 2 {
            continue; // single-process both-ways switching is benign
        }
        findings.push(
            Finding::new(
                "lock-order-cycle",
                format!(
                    "segments {component:?} are acquired in conflicting orders by \
                     processes {:?}: a potential vas_switch deadlock",
                    witnesses.iter().collect::<Vec<_>>(),
                ),
            )
            .segments(component)
            .pids(witnesses),
        );
    }
    findings
}

fn adjacency(edges: impl Iterator<Item = (u64, u64)>) -> BTreeMap<u64, Vec<u64>> {
    let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    adj
}

fn dfs_postorder(
    start: u64,
    adj: &BTreeMap<u64, Vec<u64>>,
    seen: &mut BTreeSet<u64>,
    out: &mut Vec<u64>,
) {
    if !seen.insert(start) {
        return;
    }
    // Iterative DFS recording post-order (graphs are tiny but trace
    // replays should never recurse unboundedly).
    let mut stack = vec![(start, 0usize)];
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        let next = adj.get(&node).and_then(|succs| {
            while *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                if seen.insert(s) {
                    return Some(s);
                }
            }
            None
        });
        match next {
            Some(s) => stack.push((s, 0)),
            None => {
                out.push(node);
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_trace::Phase;

    fn acquire(ts: u64, core: u32, sid: u64, pid: u64) -> Event {
        ev(ts, core, EventKind::LockAcquire, sid, pid)
    }

    fn release(ts: u64, core: u32, sid: u64, pid: u64) -> Event {
        ev(ts, core, EventKind::LockRelease, sid, pid)
    }

    fn ev(ts: u64, core: u32, kind: EventKind, arg0: u64, arg1: u64) -> Event {
        Event {
            ts,
            core,
            phase: Phase::Instant,
            kind,
            arg0,
            arg1,
        }
    }

    #[test]
    fn two_pid_inversion_is_a_cycle() {
        // P1: hold 1, take 2.  P2: hold 2, take 1 (sequentially — the
        // analysis must flag the *potential* even though nothing hung).
        let e = vec![
            acquire(0, 0, 1, 10),
            acquire(1, 0, 2, 10),
            release(2, 0, 2, 10),
            release(3, 0, 1, 10),
            acquire(4, 1, 2, 11),
            acquire(5, 1, 1, 11),
            release(6, 1, 1, 11),
            release(7, 1, 2, 11),
        ];
        let f = detect_lock_order_cycles(&e);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-order-cycle");
        assert_eq!(f[0].segments, vec![1, 2]);
        assert_eq!(f[0].pids, vec![10, 11]);
    }

    #[test]
    fn single_pid_both_orders_is_benign() {
        // One process switching A→B then B→A: both edges exist but only
        // one witness — must not be reported.
        let e = vec![
            acquire(0, 0, 1, 10),
            acquire(1, 0, 2, 10),
            release(2, 0, 1, 10),
            release(3, 0, 2, 10),
            acquire(4, 0, 2, 10),
            acquire(5, 0, 1, 10),
            release(6, 0, 2, 10),
            release(7, 0, 1, 10),
        ];
        assert!(detect_lock_order_cycles(&e).is_empty());
    }

    #[test]
    fn consistent_order_is_clean() {
        let e = vec![
            acquire(0, 0, 1, 10),
            acquire(1, 0, 2, 10),
            release(2, 0, 2, 10),
            release(3, 0, 1, 10),
            acquire(4, 1, 1, 11),
            acquire(5, 1, 2, 11),
            release(6, 1, 2, 11),
            release(7, 1, 1, 11),
        ];
        assert!(detect_lock_order_cycles(&e).is_empty());
    }

    #[test]
    fn contention_attempt_contributes_the_edge() {
        // P2's attempt on 1 while holding 2 is rolled back by the
        // runtime (contention) — the potential cycle must still show.
        let e = vec![
            acquire(0, 0, 1, 10),
            acquire(1, 0, 2, 10),
            release(2, 0, 2, 10),
            release(3, 0, 1, 10),
            acquire(4, 1, 2, 11),
            ev(5, 1, EventKind::LockContention, 1, 11),
            release(6, 1, 2, 11),
        ];
        let f = detect_lock_order_cycles(&e);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].segments, vec![1, 2]);
    }

    #[test]
    fn three_way_rotation_is_one_cycle() {
        // P1: 1→2, P2: 2→3, P3: 3→1 — one SCC {1,2,3}, three witnesses.
        let e = vec![
            acquire(0, 0, 1, 10),
            acquire(1, 0, 2, 10),
            release(2, 0, 2, 10),
            release(3, 0, 1, 10),
            acquire(4, 1, 2, 11),
            acquire(5, 1, 3, 11),
            release(6, 1, 3, 11),
            release(7, 1, 2, 11),
            acquire(8, 2, 3, 12),
            acquire(9, 2, 1, 12),
            release(10, 2, 1, 12),
            release(11, 2, 3, 12),
        ];
        let f = detect_lock_order_cycles(&e);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].segments, vec![1, 2, 3]);
        assert_eq!(f[0].pids, vec![10, 11, 12]);
    }
}
