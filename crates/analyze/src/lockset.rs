//! Interprocedural lockset dataflow over the `sjmp-safety` IR.
//!
//! The paper's safety story (Section 3.3) has two halves: the *VAS*
//! half — is this pointer valid in the active address space? — solved
//! by `sjmp_safety::Analysis`, and the *sharing* half — is this access
//! to a shared segment ordered against other processes? The paper
//! leans on segment locks acquired at switch time for the second half;
//! this pass proves, per load/store, whether that discipline is
//! actually followed.
//!
//! Two classic lockset facts are computed at every program point:
//!
//! * **must-held** — locks held on *every* path to the point. Starts
//!   at ⊤ (all segments), `lock s` adds, `unlock s` removes, and
//!   control-flow joins intersect. Only shrinks across iterations.
//! * **may-held** — locks held on *some* path. Starts empty, joins
//!   union. Only grows.
//!
//! Both are propagated interprocedurally the same way the VAS analysis
//! does: a callee's entry state is the meet (must: ∩, may: ∪) over its
//! callsites, and a call's out-state is the callee's exit state.
//!
//! Which segment an access touches comes from a flow-insensitive
//! points-to pre-pass seeded at `x = segaddr s` and propagated through
//! copies, phis, vcasts, and calls. Pointers laundered through memory
//! (stored then reloaded) are *not* tracked — such accesses classify
//! from an empty points-to set, i.e. as [`AccessClass::NotShared`].
//! This mirrors the VAS analysis, which also degrades to `vunknown` on
//! loads from memory; programs wanting precision keep segment pointers
//! in registers.
//!
//! Each load/store then classifies as:
//!
//! * [`AccessClass::NotShared`] — the address cannot point into a
//!   shared segment;
//! * [`AccessClass::ProvenGuarded`] — every segment it may touch is in
//!   the must-held set: the access is race-free by lock discipline;
//! * [`AccessClass::ProvenRacy`] — it touches a shared segment and
//!   *no* lock of that segment is even may-held: a proven discipline
//!   violation;
//! * [`AccessClass::Unknown`] — anything in between (e.g. a lock held
//!   on one branch only).

use std::collections::BTreeSet;

use sjmp_safety::ir::{BlockId, Inst, Module, Reg, SegName};

/// Verdict for one load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// The address cannot point into a shared segment.
    NotShared,
    /// Every shared segment the address may touch is must-locked.
    ProvenGuarded,
    /// Touches a shared segment with provably no lock held on it.
    ProvenRacy,
    /// Cannot prove either way.
    Unknown,
}

/// Aggregate counts over a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocksetSummary {
    /// Loads and stores in the module.
    pub mem_ops: usize,
    /// Accesses proven not to touch shared segments.
    pub not_shared: usize,
    /// Accesses proven guarded by lock discipline.
    pub guarded: usize,
    /// Accesses proven to violate lock discipline.
    pub racy: usize,
    /// Accesses the analysis cannot classify.
    pub unknown: usize,
}

impl LocksetSummary {
    /// Accesses the pass proved race-free (not shared, or guarded):
    /// the analysis's "no dynamic check needed" count, comparable to
    /// `CheckReport::proven_safe` from the VAS analysis.
    pub fn proven(&self) -> usize {
        self.not_shared + self.guarded
    }
}

/// Must-held lockset: `None` is ⊤ (top: every segment — the initial
/// optimistic value at unvisited points), `Some(s)` a concrete set.
type Must = Option<BTreeSet<SegName>>;

fn meet_must(dst: &mut Must, src: &Must) -> bool {
    match (dst.as_mut(), src) {
        (_, None) => false,
        (None, Some(s)) => {
            *dst = Some(s.clone());
            true
        }
        (Some(d), Some(s)) => {
            let before = d.len();
            d.retain(|x| s.contains(x));
            d.len() != before
        }
    }
}

fn union_may(dst: &mut BTreeSet<SegName>, src: &BTreeSet<SegName>) -> bool {
    let before = dst.len();
    dst.extend(src.iter().copied());
    dst.len() != before
}

/// Per-point dataflow state.
#[derive(Debug, Clone, Default)]
struct State {
    must: Must,
    may: BTreeSet<SegName>,
}

impl State {
    fn entry() -> State {
        State {
            must: Some(BTreeSet::new()),
            may: BTreeSet::new(),
        }
    }

    fn meet_from(&mut self, other: &State) -> bool {
        meet_must(&mut self.must, &other.must) | union_may(&mut self.may, &other.may)
    }

    fn apply(&mut self, inst: &Inst, exits: &[State]) {
        match inst {
            Inst::Lock(s) => {
                if let Some(m) = self.must.as_mut() {
                    m.insert(*s);
                }
                self.may.insert(*s);
            }
            Inst::Unlock(s) => {
                if let Some(m) = self.must.as_mut() {
                    m.remove(s);
                }
                self.may.remove(s);
            }
            Inst::Call { func, .. } => {
                // The callee's exit state is absolute (it already
                // flows from the meet over callsite entries), so it
                // replaces must; may unions in whatever the callee
                // might have left held.
                let exit = &exits[func.0 as usize];
                self.must = exit.must.clone();
                self.may.extend(exit.may.iter().copied());
            }
            _ => {}
        }
    }
}

/// Results of the lockset pass over one module.
#[derive(Debug, Clone)]
pub struct Lockset {
    /// Classification per function, per block, per instruction index;
    /// `None` for instructions that are not loads or stores.
    classes: Vec<Vec<Vec<Option<AccessClass>>>>,
    /// Fixpoint iterations used.
    pub iterations: u32,
}

impl Lockset {
    /// Runs the pass. Main (function 0) enters holding no locks.
    ///
    /// # Panics
    ///
    /// Panics if the fixpoint fails to converge within a generous
    /// bound (a non-monotone transfer bug).
    pub fn run(module: &Module) -> Lockset {
        let pts = points_to(module);
        let n = module.functions.len();
        // Per-instruction in-states, ⊤-initialized; entry/exit summaries.
        let mut in_states: Vec<Vec<Vec<State>>> = module
            .functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .map(|b| vec![State::default(); b.insts.len()])
                    .collect()
            })
            .collect();
        let mut entries = vec![State::default(); n];
        let mut exits = vec![State::default(); n];
        entries[0] = State::entry();

        let limit = 64 + module.inst_count() as u32;
        let mut iterations = 0u32;
        loop {
            iterations += 1;
            assert!(iterations <= limit, "lockset analysis failed to converge");
            let mut changed = false;
            for (fi, func) in module.functions.iter().enumerate() {
                let preds = func.predecessors();
                // Block-out states from last iteration's stored
                // terminator in-state (no terminator changes locksets).
                let mut block_out: Vec<State> = func
                    .blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| match b.insts.len().checked_sub(1) {
                        Some(last) => {
                            let mut s = in_states[fi][bi][last].clone();
                            s.apply(&b.insts[last], &exits);
                            s
                        }
                        None => State::default(),
                    })
                    .collect();
                for (bi, block) in func.blocks.iter().enumerate() {
                    let mut cur = if bi == 0 {
                        entries[fi].clone()
                    } else {
                        let mut s = State::default();
                        for p in &preds[bi] {
                            s.meet_from(&block_out[p.0 as usize]);
                        }
                        s
                    };
                    for (ii, inst) in block.insts.iter().enumerate() {
                        changed |= in_states[fi][bi][ii].meet_from(&cur);
                        if let Inst::Call { func: callee, .. } = inst {
                            changed |= entries[callee.0 as usize].meet_from(&cur);
                        }
                        if let Inst::Ret(_) = inst {
                            changed |= exits[fi].meet_from(&cur);
                        }
                        cur.apply(inst, &exits);
                    }
                    changed |= block_out[bi].meet_from(&cur);
                }
            }
            if !changed {
                break;
            }
        }

        // Classify every memory operation from its fixpoint in-state.
        let classes = module
            .functions
            .iter()
            .enumerate()
            .map(|(fi, func)| {
                func.blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, block)| {
                        block
                            .insts
                            .iter()
                            .enumerate()
                            .map(|(ii, inst)| {
                                let addr = match inst {
                                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => *addr,
                                    _ => return None,
                                };
                                Some(classify(pts[fi].get(&addr), &in_states[fi][bi][ii]))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Lockset {
            classes,
            iterations,
        }
    }

    /// The classification of one instruction (`None` if it is not a
    /// load or store).
    pub fn class_of(&self, func: usize, bb: BlockId, idx: usize) -> Option<AccessClass> {
        self.classes[func][bb.0 as usize][idx]
    }

    /// Aggregate counts over the whole module.
    pub fn summary(&self) -> LocksetSummary {
        let mut s = LocksetSummary::default();
        for c in self.classes.iter().flatten().flatten().flatten() {
            s.mem_ops += 1;
            match c {
                AccessClass::NotShared => s.not_shared += 1,
                AccessClass::ProvenGuarded => s.guarded += 1,
                AccessClass::ProvenRacy => s.racy += 1,
                AccessClass::Unknown => s.unknown += 1,
            }
        }
        s
    }
}

fn classify(pts: Option<&BTreeSet<SegName>>, state: &State) -> AccessClass {
    let Some(pts) = pts.filter(|p| !p.is_empty()) else {
        return AccessClass::NotShared;
    };
    let guarded = match &state.must {
        None => true, // unreachable point: vacuously guarded
        Some(must) => pts.iter().all(|s| must.contains(s)),
    };
    if guarded {
        AccessClass::ProvenGuarded
    } else if pts.iter().all(|s| !state.may.contains(s)) {
        AccessClass::ProvenRacy
    } else {
        AccessClass::Unknown
    }
}

/// Flow-insensitive may-point-to over segment bases: which segments
/// can each register address? Seeded by `segaddr`, propagated through
/// copies, phis, vcasts, and call boundaries; loads are not tracked
/// (see the module docs).
fn points_to(module: &Module) -> Vec<std::collections::HashMap<Reg, BTreeSet<SegName>>> {
    let n = module.functions.len();
    let mut pts: Vec<std::collections::HashMap<Reg, BTreeSet<SegName>>> =
        vec![std::collections::HashMap::new(); n];
    let mut ret_pts: Vec<BTreeSet<SegName>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    let union_reg = |map: &mut std::collections::HashMap<Reg, BTreeSet<SegName>>,
                     dst: Reg,
                     src: &BTreeSet<SegName>|
     -> bool {
        if src.is_empty() {
            return false;
        }
        let e = map.entry(dst).or_default();
        let before = e.len();
        e.extend(src.iter().copied());
        e.len() != before
    };
    while changed {
        changed = false;
        for (fi, func) in module.functions.iter().enumerate() {
            for block in &func.blocks {
                for phi in &block.phis {
                    let mut joined = BTreeSet::new();
                    for (_, r) in &phi.incomings {
                        if let Some(s) = pts[fi].get(r) {
                            joined.extend(s.iter().copied());
                        }
                    }
                    changed |= union_reg(&mut pts[fi], phi.dst, &joined);
                }
                for inst in &block.insts {
                    match inst {
                        Inst::SegAddr { dst, seg } => {
                            let s = [*seg].into_iter().collect();
                            changed |= union_reg(&mut pts[fi], *dst, &s);
                        }
                        Inst::Copy { dst, src } | Inst::VCast { dst, src, .. } => {
                            let s = pts[fi].get(src).cloned().unwrap_or_default();
                            changed |= union_reg(&mut pts[fi], *dst, &s);
                        }
                        Inst::Call {
                            dst,
                            func: callee,
                            args,
                        } => {
                            let ci = callee.0 as usize;
                            let params = module.functions[ci].params.clone();
                            for (p, a) in params.iter().zip(args) {
                                let s = pts[fi].get(a).cloned().unwrap_or_default();
                                changed |= union_reg(&mut pts[ci], *p, &s);
                            }
                            if let Some(d) = dst {
                                let s = ret_pts[ci].clone();
                                changed |= union_reg(&mut pts[fi], *d, &s);
                            }
                        }
                        Inst::Ret(Some(r)) => {
                            let s = pts[fi].get(r).cloned().unwrap_or_default();
                            let before = ret_pts[fi].len();
                            ret_pts[fi].extend(s.iter().copied());
                            changed |= ret_pts[fi].len() != before;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_safety::analysis::Analysis;
    use sjmp_safety::checks::{insert_checks, CheckPolicy};
    use sjmp_safety::ir::{AbstractVas, FuncId, Function, Phi, VasName};

    #[test]
    fn straight_line_guarded_then_racy() {
        // p = segaddr 0; lock 0; *p = v; unlock 0; *p = v
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let v = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::SegAddr {
                dst: p,
                seg: SegName(0),
            },
        );
        f.push(BlockId(0), Inst::Const { dst: v, value: 1 });
        f.push(BlockId(0), Inst::Lock(SegName(0)));
        f.push(BlockId(0), Inst::Store { addr: p, val: v });
        f.push(BlockId(0), Inst::Unlock(SegName(0)));
        f.push(BlockId(0), Inst::Store { addr: p, val: v });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let l = Lockset::run(&m);
        assert_eq!(
            l.class_of(0, BlockId(0), 3),
            Some(AccessClass::ProvenGuarded)
        );
        assert_eq!(l.class_of(0, BlockId(0), 5), Some(AccessClass::ProvenRacy));
        let s = l.summary();
        assert_eq!((s.mem_ops, s.guarded, s.racy), (2, 1, 1));
    }

    #[test]
    fn one_sided_lock_is_unknown_at_join() {
        // if (c) lock 0;  *p = v  — held on one path only.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let c = f.fresh_reg();
        let p = f.fresh_reg();
        let v = f.fresh_reg();
        let locked = f.add_block();
        let join = f.add_block();
        f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
        f.push(
            BlockId(0),
            Inst::SegAddr {
                dst: p,
                seg: SegName(0),
            },
        );
        f.push(BlockId(0), Inst::Const { dst: v, value: 1 });
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond: c,
                then_bb: locked,
                else_bb: join,
            },
        );
        f.push(locked, Inst::Lock(SegName(0)));
        f.push(locked, Inst::Br(join));
        f.push(join, Inst::Store { addr: p, val: v });
        f.push(join, Inst::Ret(None));
        m.add_function(f);
        let l = Lockset::run(&m);
        assert_eq!(l.class_of(0, join, 0), Some(AccessClass::Unknown));
    }

    #[test]
    fn private_memory_is_not_shared() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let l = Lockset::run(&m);
        assert_eq!(l.class_of(0, BlockId(0), 1), Some(AccessClass::NotShared));
    }

    #[test]
    fn callee_inherits_meet_over_callsites() {
        // helper(q): *q = 0 — called once under lock, once without.
        // The callee access must degrade to Unknown (not guarded).
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let p = main.fresh_reg();
        main.push(
            BlockId(0),
            Inst::SegAddr {
                dst: p,
                seg: SegName(3),
            },
        );
        main.push(BlockId(0), Inst::Lock(SegName(3)));
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![p],
            },
        );
        main.push(BlockId(0), Inst::Unlock(SegName(3)));
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![p],
            },
        );
        main.push(BlockId(0), Inst::Ret(None));
        m.add_function(main);
        let mut helper = Function::new("helper", 1);
        let q = helper.params[0];
        let z = helper.fresh_reg();
        helper.push(BlockId(0), Inst::Const { dst: z, value: 0 });
        helper.push(BlockId(0), Inst::Store { addr: q, val: z });
        helper.push(BlockId(0), Inst::Ret(None));
        m.add_function(helper);
        let l = Lockset::run(&m);
        assert_eq!(l.class_of(1, BlockId(0), 1), Some(AccessClass::Unknown));
    }

    #[test]
    fn guarded_callee_stays_guarded() {
        // Every callsite holds the lock: the callee access is proven.
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let p = main.fresh_reg();
        main.push(
            BlockId(0),
            Inst::SegAddr {
                dst: p,
                seg: SegName(3),
            },
        );
        main.push(BlockId(0), Inst::Lock(SegName(3)));
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![p],
            },
        );
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![p],
            },
        );
        main.push(BlockId(0), Inst::Unlock(SegName(3)));
        main.push(BlockId(0), Inst::Ret(None));
        m.add_function(main);
        let mut helper = Function::new("helper", 1);
        let q = helper.params[0];
        let x = helper.fresh_reg();
        helper.push(BlockId(0), Inst::Load { dst: x, addr: q });
        helper.push(BlockId(0), Inst::Ret(None));
        m.add_function(helper);
        let l = Lockset::run(&m);
        assert_eq!(
            l.class_of(1, BlockId(0), 0),
            Some(AccessClass::ProvenGuarded)
        );
    }

    #[test]
    fn loop_converges_with_phi() {
        // A loop whose body locks, accesses, unlocks each iteration.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let c = f.fresh_reg();
        let p0 = f.fresh_reg();
        let p1 = f.fresh_reg();
        let v = f.fresh_reg();
        let head = f.add_block();
        let body = f.add_block();
        let done = f.add_block();
        f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
        f.push(
            BlockId(0),
            Inst::SegAddr {
                dst: p0,
                seg: SegName(1),
            },
        );
        f.push(BlockId(0), Inst::Const { dst: v, value: 7 });
        f.push(BlockId(0), Inst::Br(head));
        f.push_phi(
            head,
            Phi {
                dst: p1,
                incomings: vec![(BlockId(0), p0), (body, p1)],
            },
        );
        f.push(
            head,
            Inst::CondBr {
                cond: c,
                then_bb: body,
                else_bb: done,
            },
        );
        f.push(body, Inst::Lock(SegName(1)));
        f.push(body, Inst::Store { addr: p1, val: v });
        f.push(body, Inst::Unlock(SegName(1)));
        f.push(body, Inst::Br(head));
        f.push(done, Inst::Ret(None));
        m.add_function(f);
        let l = Lockset::run(&m);
        assert_eq!(l.class_of(0, body, 1), Some(AccessClass::ProvenGuarded));
        assert!(l.iterations >= 2);
    }

    #[test]
    fn proves_at_least_what_the_vas_analysis_elides() {
        // A lock-annotated module mixing private and shared accesses:
        // the lockset proof obligation (ISSUE acceptance criterion) is
        // that it proves at least as many accesses race-free as the
        // VAS analysis elides checks for under CheckPolicy::Analyzed.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let stack = f.fresh_reg();
        let seg = f.fresh_reg();
        let v = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::Alloca {
                dst: stack,
                size: 8,
            },
        );
        f.push(
            BlockId(0),
            Inst::SegAddr {
                dst: seg,
                seg: SegName(0),
            },
        );
        f.push(BlockId(0), Inst::Const { dst: v, value: 9 });
        f.push(
            BlockId(0),
            Inst::Store {
                addr: stack,
                val: v,
            },
        );
        f.push(BlockId(0), Inst::Lock(SegName(0)));
        f.push(BlockId(0), Inst::Store { addr: seg, val: v });
        f.push(BlockId(0), Inst::Load { dst: x, addr: seg });
        f.push(BlockId(0), Inst::Unlock(SegName(0)));
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);

        let entry = [AbstractVas::Vas(VasName(0))].into_iter().collect();
        let analysis = Analysis::run(&m, entry);
        let mut checked = m.clone();
        let report = insert_checks(&mut checked, &analysis, CheckPolicy::Analyzed);

        let l = Lockset::run(&m);
        let s = l.summary();
        assert_eq!(s.mem_ops, report.mem_ops);
        assert!(
            s.proven() >= report.proven_safe,
            "lockset proved {} < VAS elision {}",
            s.proven(),
            report.proven_safe
        );
        assert_eq!(s.racy, 0);
    }
}
