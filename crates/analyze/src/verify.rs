//! Bridge from the `sjmp-safety` provenance verifier to [`Finding`]s,
//! so IR-level dangling-pointer results ride the same report schema
//! (and `sjmp_lint` CI gate) as the trace and kernel analyzers.

use sjmp_safety::ir::{Module, VasSet};
use sjmp_safety::provenance::{verify, SiteClass};

use crate::report::Finding;

/// Summary of running the dangling-deref verifier over one IR module.
#[derive(Debug, Clone)]
pub struct IrVerification {
    /// Memory operations classified.
    pub mem_ops: usize,
    /// Sites proven safe.
    pub proven_safe: usize,
    /// Sites proven dangling.
    pub proven_dangling: usize,
    /// Sites the verifier could not decide.
    pub unknown: usize,
    /// One finding per proven-dangling site, chain in the message.
    pub findings: Vec<Finding>,
}

/// Runs the provenance verifier over `module` entered in `entry_vas`
/// and converts every proven-dangling site into a
/// `cross-vas-dangling` finding whose message carries the full
/// alloc → escape → switch → deref chain.
pub fn verify_module(module: &Module, entry_vas: VasSet) -> IrVerification {
    let report = verify(module, entry_vas);
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Finding::new(
                "cross-vas-dangling",
                format!("dangling {} in `{}`: {}", f.kind, f.func, f.chain),
            )
        })
        .collect();
    IrVerification {
        mem_ops: report.mem_ops(),
        proven_safe: report.count(SiteClass::ProvenSafe),
        proven_dangling: report.count(SiteClass::ProvenDangling),
        unknown: report.count(SiteClass::Unknown),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_safety::examples;

    #[test]
    fn healthy_examples_produce_no_findings() {
        for (name, m) in examples::healthy() {
            let v = verify_module(&m, examples::entry_set());
            assert!(v.findings.is_empty(), "{name}: {:?}", v.findings);
            assert_eq!(v.proven_dangling, 0);
        }
    }

    #[test]
    fn dangling_example_yields_chain_finding() {
        let m = examples::dangling_example();
        let v = verify_module(&m, examples::entry_set());
        assert_eq!(v.proven_dangling, 2);
        assert_eq!(v.findings.len(), 2);
        let f = &v.findings[0];
        assert_eq!(f.rule, "cross-vas-dangling");
        assert!(f.message.contains("alloc@0:bb0[0]"));
        assert!(f.message.contains("escape@0:bb0[2]"));
        assert!(f.message.contains("switch@0:bb0[3]"));
    }
}
