//! The `mspace` allocator: dlmalloc-style boundary tags inside the
//! managed area.
//!
//! The SpaceJMP runtime library "is built over Doug Lea's dlmalloc,
//! providing the notion of a memory space (mspace). An mspace is an
//! allocator's internal state and may be placed at arbitrary locations"
//! (Section 4.1). This implementation keeps *all* state — bin heads,
//! counters, chunk headers, free-list links — inside the managed memory,
//! so an mspace formatted in a segment is usable by any process that
//! attaches the segment later, with pointers (offsets) intact.
//!
//! Layout:
//!
//! ```text
//! 0      MAGIC
//! 8      total size
//! 16     live payload bytes
//! 24     allocation counter
//! 32     application root pointer
//! 40     NBINS bin heads (offset of first free chunk, 0 = empty)
//! 432    start sentinel (in-use, MIN_CHUNK)
//! 464    first real chunk ...
//! end-16 end sentinel (in-use, header only)
//! ```
//!
//! Chunks: `[header u64 | payload ... | footer u64]`; header and footer
//! both hold `size | IN_USE`. Free chunks additionally store free-list
//! `next`/`prev` offsets in their first two payload words. Freeing
//! coalesces with both neighbours via the boundary tags.

use crate::mem::MemAccess;

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free chunk large enough.
    OutOfMemory,
    /// The area does not contain a valid mspace (bad magic).
    BadMagic,
    /// The area is too small to format.
    TooSmall,
    /// `free`/`realloc` called with an invalid pointer.
    BadPointer(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "mspace exhausted"),
            AllocError::BadMagic => write!(f, "area does not contain an mspace"),
            AllocError::TooSmall => write!(f, "area too small for an mspace"),
            AllocError::BadPointer(p) => write!(f, "invalid pointer {p:#x}"),
        }
    }
}

impl std::error::Error for AllocError {}

const MAGIC: u64 = 0x534a_4d50_4845_4150; // "SJMPHEAP"
const OFF_MAGIC: u64 = 0;
const OFF_TOTAL: u64 = 8;
const OFF_LIVE: u64 = 16;
const OFF_COUNT: u64 = 24;
const OFF_ROOT: u64 = 32;
const OFF_BINS: u64 = 40;
const NBINS: u64 = 48;
// 40 + 48*8 = 424, padded up to the next 16-byte boundary for chunks.
const HDR_END: u64 = (OFF_BINS + NBINS * 8).next_multiple_of(16);

const IN_USE: u64 = 1;
const SIZE_MASK: u64 = !0xf;
/// Minimum chunk: header + next + prev + footer.
const MIN_CHUNK: u64 = 32;
/// Per-chunk overhead: header + footer.
const OVERHEAD: u64 = 16;

/// Smallest area that can be formatted.
pub const MIN_AREA: u64 = 1024;

#[inline]
fn bin_index(chunk_size: u64) -> usize {
    if chunk_size < HDR_END_SMALL {
        // Small bins: exact-ish classes every 16 bytes, 32..512.
        ((chunk_size - MIN_CHUNK) / 16) as usize
    } else {
        // Large bins: one per power of two, 512.. up to 2^44+.
        let log = 63 - chunk_size.leading_zeros() as usize; // floor(log2)
        SMALL_BINS + (log - 9).min(LARGE_BINS - 1)
    }
}

const SMALL_BINS: usize = 30; // sizes 32, 48, ..., 496
const LARGE_BINS: usize = NBINS as usize - SMALL_BINS; // 18 bins
const HDR_END_SMALL: u64 = MIN_CHUNK + (SMALL_BINS as u64) * 16; // 512

/// An mspace bound to a [`MemAccess`] area.
///
/// # Examples
///
/// ```
/// use sjmp_alloc::{Mspace, VecMem};
///
/// # fn main() -> Result<(), sjmp_alloc::AllocError> {
/// let mut ms = Mspace::format(VecMem::new(64 * 1024))?;
/// let a = ms.malloc(100)?;
/// let b = ms.malloc(200)?;
/// ms.free(a)?;
/// let c = ms.malloc(80)?; // reuses the freed space
/// assert!(c < b);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Mspace<M: MemAccess> {
    mem: M,
    total: u64,
}

impl<M: MemAccess> Mspace<M> {
    /// Formats a fresh mspace over `mem`, erasing previous content.
    ///
    /// # Errors
    ///
    /// [`AllocError::TooSmall`] for areas under [`MIN_AREA`] bytes.
    pub fn format(mut mem: M) -> Result<Self, AllocError> {
        let total = mem.size() & !0xf;
        if total < MIN_AREA {
            return Err(AllocError::TooSmall);
        }
        mem.write_u64(OFF_MAGIC, MAGIC);
        mem.write_u64(OFF_TOTAL, total);
        mem.write_u64(OFF_LIVE, 0);
        mem.write_u64(OFF_COUNT, 0);
        mem.write_u64(OFF_ROOT, 0);
        for b in 0..NBINS {
            mem.write_u64(OFF_BINS + b * 8, 0);
        }
        let mut ms = Mspace { mem, total };
        // Start sentinel.
        ms.set_header(HDR_END, MIN_CHUNK | IN_USE);
        // End sentinel: header-only chunk at total-16.
        ms.mem.write_u64(total - 16, 16 | IN_USE);
        ms.mem.write_u64(total - 8, 16 | IN_USE);
        // Main free chunk.
        let first = HDR_END + MIN_CHUNK;
        let size = (total - 16) - first;
        ms.set_header(first, size);
        ms.bin_push(first, size);
        Ok(ms)
    }

    /// Attaches to an mspace previously formatted in `mem` (for example
    /// by another process that shared the segment).
    ///
    /// # Errors
    ///
    /// [`AllocError::BadMagic`] if the area was not formatted.
    pub fn attach(mut mem: M) -> Result<Self, AllocError> {
        if mem.size() < MIN_AREA || mem.read_u64(OFF_MAGIC) != MAGIC {
            return Err(AllocError::BadMagic);
        }
        let total = mem.read_u64(OFF_TOTAL);
        Ok(Mspace { mem, total })
    }

    /// Consumes the mspace and returns the underlying memory.
    pub fn into_inner(self) -> M {
        self.mem
    }

    /// Borrow of the underlying memory.
    pub fn mem_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    // -- chunk helpers ---------------------------------------------------

    fn set_header(&mut self, c: u64, size_flags: u64) {
        self.mem.write_u64(c, size_flags);
        let size = size_flags & SIZE_MASK;
        self.mem.write_u64(c + size - 8, size_flags);
    }

    fn header(&mut self, c: u64) -> u64 {
        self.mem.read_u64(c)
    }

    fn bin_head(&mut self, idx: usize) -> u64 {
        self.mem.read_u64(OFF_BINS + (idx as u64) * 8)
    }

    fn set_bin_head(&mut self, idx: usize, v: u64) {
        self.mem.write_u64(OFF_BINS + (idx as u64) * 8, v);
    }

    fn bin_push(&mut self, c: u64, size: u64) {
        let idx = bin_index(size);
        let head = self.bin_head(idx);
        self.mem.write_u64(c + 8, head); // next
        self.mem.write_u64(c + 16, 0); // prev
        if head != 0 {
            self.mem.write_u64(head + 16, c);
        }
        self.set_bin_head(idx, c);
    }

    fn bin_remove(&mut self, c: u64, size: u64) {
        let next = self.mem.read_u64(c + 8);
        let prev = self.mem.read_u64(c + 16);
        if prev == 0 {
            self.set_bin_head(bin_index(size), next);
        } else {
            self.mem.write_u64(prev + 8, next);
        }
        if next != 0 {
            self.mem.write_u64(next + 16, prev);
        }
    }

    // -- public allocation API ---------------------------------------------

    /// Allocates `size` bytes; returns the payload offset (8-aligned).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when no chunk fits.
    pub fn malloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let want = (size.max(16) + OVERHEAD + 15) & !0xf;
        let mut idx = bin_index(want);
        while idx < NBINS as usize {
            let mut c = self.bin_head(idx);
            while c != 0 {
                let h = self.header(c);
                let csize = h & SIZE_MASK;
                if csize >= want {
                    self.bin_remove(c, csize);
                    self.place(c, csize, want);
                    let live = self.mem.read_u64(OFF_LIVE);
                    self.mem.write_u64(OFF_LIVE, live + want - OVERHEAD);
                    let n = self.mem.read_u64(OFF_COUNT);
                    self.mem.write_u64(OFF_COUNT, n + 1);
                    return Ok(c + 8);
                }
                c = self.mem.read_u64(c + 8);
            }
            idx += 1;
        }
        Err(AllocError::OutOfMemory)
    }

    /// Splits chunk `c` (free, size `csize`) into a used chunk of `want`
    /// and a free remainder if large enough.
    fn place(&mut self, c: u64, csize: u64, want: u64) {
        if csize - want >= MIN_CHUNK {
            self.set_header(c, want | IN_USE);
            let rest = c + want;
            let rest_size = csize - want;
            self.set_header(rest, rest_size);
            self.bin_push(rest, rest_size);
        } else {
            self.set_header(c, csize | IN_USE);
        }
    }

    /// Allocates zeroed memory.
    ///
    /// # Errors
    ///
    /// As [`Self::malloc`].
    pub fn calloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let p = self.malloc(size)?;
        self.mem.zero(p, size);
        Ok(p)
    }

    /// Frees the allocation whose payload starts at `ptr`.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadPointer`] for pointers that do not reference a
    /// live allocation.
    pub fn free(&mut self, ptr: u64) -> Result<(), AllocError> {
        let mut c = ptr.wrapping_sub(8);
        if ptr < HDR_END + 8 || ptr >= self.total || !ptr.is_multiple_of(8) || !c.is_multiple_of(16)
        {
            return Err(AllocError::BadPointer(ptr));
        }
        let h = self.header(c);
        if h & IN_USE == 0 {
            return Err(AllocError::BadPointer(ptr));
        }
        let mut size = h & SIZE_MASK;
        if size < MIN_CHUNK || c + size > self.total - 16 {
            return Err(AllocError::BadPointer(ptr));
        }
        let live = self.mem.read_u64(OFF_LIVE);
        self.mem
            .write_u64(OFF_LIVE, live.saturating_sub(size - OVERHEAD));
        let n = self.mem.read_u64(OFF_COUNT);
        self.mem.write_u64(OFF_COUNT, n.saturating_sub(1));
        // Coalesce with next chunk.
        let next = c + size;
        let nh = self.header(next);
        if nh & IN_USE == 0 {
            let nsize = nh & SIZE_MASK;
            self.bin_remove(next, nsize);
            size += nsize;
        }
        // Coalesce with previous chunk (via its footer).
        let pf = self.mem.read_u64(c - 8);
        if pf & IN_USE == 0 {
            let psize = pf & SIZE_MASK;
            let prev = c - psize;
            self.bin_remove(prev, psize);
            c = prev;
            size += psize;
        }
        self.set_header(c, size);
        self.bin_push(c, size);
        Ok(())
    }

    /// Resizes an allocation, copying contents as needed.
    ///
    /// # Errors
    ///
    /// As [`Self::malloc`] and [`Self::free`].
    pub fn realloc(&mut self, ptr: u64, new_size: u64) -> Result<u64, AllocError> {
        let c = ptr.wrapping_sub(8);
        if !ptr.is_multiple_of(8) || ptr < HDR_END + 8 || ptr >= self.total {
            return Err(AllocError::BadPointer(ptr));
        }
        let h = self.header(c);
        if h & IN_USE == 0 {
            return Err(AllocError::BadPointer(ptr));
        }
        let old_payload = (h & SIZE_MASK) - OVERHEAD;
        if new_size <= old_payload {
            return Ok(ptr); // shrink in place (no split for simplicity)
        }
        let new_ptr = self.malloc(new_size)?;
        self.mem.copy_words(ptr, new_ptr, old_payload.min(new_size));
        self.free(ptr)?;
        Ok(new_ptr)
    }

    /// Usable payload size of a live allocation.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadPointer`] for invalid pointers.
    pub fn usable_size(&mut self, ptr: u64) -> Result<u64, AllocError> {
        let c = ptr.wrapping_sub(8);
        if !ptr.is_multiple_of(8) || ptr < HDR_END + 8 || ptr >= self.total {
            return Err(AllocError::BadPointer(ptr));
        }
        let h = self.header(c);
        if h & IN_USE == 0 {
            return Err(AllocError::BadPointer(ptr));
        }
        Ok((h & SIZE_MASK) - OVERHEAD)
    }

    // -- statistics --------------------------------------------------------

    /// Stores an application "root pointer" in the mspace header — the
    /// well-known slot from which attaching processes find the data
    /// structure living in this heap (e.g. a dictionary header).
    pub fn set_root(&mut self, value: u64) {
        self.mem.write_u64(OFF_ROOT, value);
    }

    /// Reads the application root pointer (0 if never set).
    pub fn root(&mut self) -> u64 {
        self.mem.read_u64(OFF_ROOT)
    }

    /// Live payload bytes.
    pub fn allocated_bytes(&mut self) -> u64 {
        self.mem.read_u64(OFF_LIVE)
    }

    /// Live allocation count.
    pub fn allocation_count(&mut self) -> u64 {
        self.mem.read_u64(OFF_COUNT)
    }

    /// Total managed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Sum of free chunk sizes (walks the bins).
    pub fn free_bytes(&mut self) -> u64 {
        let mut sum = 0;
        for idx in 0..NBINS as usize {
            let mut c = self.bin_head(idx);
            while c != 0 {
                sum += self.header(c) & SIZE_MASK;
                c = self.mem.read_u64(c + 8);
            }
        }
        sum
    }

    /// Largest single free chunk (bytes of payload it could serve).
    pub fn largest_free(&mut self) -> u64 {
        let mut best = 0;
        for idx in 0..NBINS as usize {
            let mut c = self.bin_head(idx);
            while c != 0 {
                best = best.max(self.header(c) & SIZE_MASK);
                c = self.mem.read_u64(c + 8);
            }
        }
        best.saturating_sub(OVERHEAD)
    }

    /// Walks every chunk verifying boundary-tag invariants; returns the
    /// chunk count. Test/debug aid.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt heap.
    pub fn check_invariants(&mut self) -> u64 {
        let mut c = HDR_END;
        let mut count = 0;
        let mut prev_free = false;
        while c < self.total - 16 {
            let h = self.header(c);
            let size = h & SIZE_MASK;
            assert!(size >= MIN_CHUNK, "chunk at {c} too small: {size}");
            assert!(
                c + size <= self.total - 16 + MIN_CHUNK,
                "chunk at {c} overruns"
            );
            let footer = self.mem.read_u64(c + size - 8);
            assert_eq!(footer, h, "boundary tags disagree at {c}");
            let is_free = h & IN_USE == 0;
            assert!(
                !(prev_free && is_free),
                "adjacent free chunks at {c} not coalesced"
            );
            prev_free = is_free;
            c += size;
            count += 1;
        }
        assert_eq!(c, self.total - 16, "chunk walk did not end at the sentinel");
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::VecMem;

    fn ms(size: u64) -> Mspace<VecMem> {
        Mspace::format(VecMem::new(size)).unwrap()
    }

    #[test]
    fn format_and_attach() {
        let m = ms(4096);
        let mem = m.into_inner();
        let mut re = Mspace::attach(mem).unwrap();
        assert_eq!(re.allocation_count(), 0);
        assert!(Mspace::attach(VecMem::new(4096)).is_err());
        assert!(matches!(
            Mspace::format(VecMem::new(100)),
            Err(AllocError::TooSmall)
        ));
    }

    #[test]
    fn malloc_free_reuse() {
        let mut m = ms(64 * 1024);
        let a = m.malloc(100).unwrap();
        let b = m.malloc(100).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.allocation_count(), 2);
        m.free(a).unwrap();
        let c = m.malloc(100).unwrap();
        assert_eq!(c, a, "freed chunk is reused");
        m.check_invariants();
    }

    #[test]
    fn payload_is_usable_and_aligned() {
        let mut m = ms(64 * 1024);
        for size in [1u64, 8, 16, 100, 1000, 4096] {
            let p = m.malloc(size).unwrap();
            assert_eq!(p % 8, 0);
            assert!(m.usable_size(p).unwrap() >= size);
        }
        m.check_invariants();
    }

    #[test]
    fn coalescing_merges_neighbors() {
        let mut m = ms(64 * 1024);
        let a = m.malloc(100).unwrap();
        let b = m.malloc(100).unwrap();
        let c = m.malloc(100).unwrap();
        let _guard = m.malloc(100).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        m.free(b).unwrap(); // merges with both neighbours
        m.check_invariants();
        // The merged hole serves an allocation bigger than any single one.
        let big = m.malloc(300).unwrap();
        assert_eq!(big, a, "merged chunk starts at the first freed block");
    }

    #[test]
    fn out_of_memory() {
        let mut m = ms(2048);
        let r = m.malloc(1 << 20);
        assert_eq!(r.unwrap_err(), AllocError::OutOfMemory);
        // Fill it up with small allocations, then fail.
        let mut ptrs = Vec::new();
        while let Ok(p) = m.malloc(64) {
            ptrs.push(p);
        }
        assert!(!ptrs.is_empty());
        assert_eq!(m.malloc(64).unwrap_err(), AllocError::OutOfMemory);
        for p in ptrs {
            m.free(p).unwrap();
        }
        assert_eq!(m.allocation_count(), 0);
        m.check_invariants();
    }

    #[test]
    fn free_rejects_garbage() {
        let mut m = ms(4096);
        let p = m.malloc(64).unwrap();
        assert!(m.free(p + 16).is_err(), "interior pointer");
        assert!(m.free(7).is_err(), "header area");
        assert!(m.free(1 << 40).is_err(), "out of range");
        m.free(p).unwrap();
        assert!(m.free(p).is_err(), "double free");
    }

    #[test]
    fn calloc_zeroes() {
        let mut m = ms(8192);
        let p = m.malloc(64).unwrap();
        for w in 0..8 {
            m.mem_mut().write_u64(p + w * 8, u64::MAX);
        }
        m.free(p).unwrap();
        let q = m.calloc(64).unwrap();
        assert_eq!(q, p);
        for w in 0..8 {
            assert_eq!(m.mem_mut().read_u64(q + w * 8), 0);
        }
    }

    #[test]
    fn realloc_preserves_content() {
        let mut m = ms(64 * 1024);
        let p = m.malloc(64).unwrap();
        for w in 0..8 {
            m.mem_mut().write_u64(p + w * 8, w + 1);
        }
        let q = m.realloc(p, 1024).unwrap();
        for w in 0..8 {
            assert_eq!(m.mem_mut().read_u64(q + w * 8), w + 1);
        }
        // Shrinking keeps the pointer.
        assert_eq!(m.realloc(q, 32).unwrap(), q);
        m.check_invariants();
    }

    #[test]
    fn stats_track_usage() {
        let mut m = ms(64 * 1024);
        let before_free = m.free_bytes();
        let p = m.malloc(1000).unwrap();
        assert!(m.allocated_bytes() >= 1000);
        assert!(m.free_bytes() < before_free);
        m.free(p).unwrap();
        assert_eq!(m.allocated_bytes(), 0);
        assert_eq!(m.free_bytes(), before_free);
        assert!(m.largest_free() > 60 * 1024);
        assert_eq!(m.total_bytes(), 64 * 1024);
    }

    #[test]
    fn persistence_across_attach() {
        // Simulates the SpaceJMP workflow: process A allocates in a
        // segment-hosted mspace, process B attaches and frees.
        let mut m = ms(16 * 1024);
        let p = m.malloc(128).unwrap();
        m.mem_mut().write_u64(p, 0x1234);
        let mem = m.into_inner();
        let mut m2 = Mspace::attach(mem).unwrap();
        assert_eq!(m2.allocation_count(), 1);
        assert_eq!(m2.mem_mut().read_u64(p), 0x1234);
        m2.free(p).unwrap();
        m2.check_invariants();
    }

    #[test]
    fn bin_index_monotone_and_bounded() {
        let mut last = 0;
        for size in (MIN_CHUNK..8192).step_by(16) {
            let idx = bin_index(size);
            assert!(idx >= last || idx >= SMALL_BINS, "small bins monotone");
            assert!(idx < NBINS as usize);
            last = idx;
        }
        assert!(bin_index(1 << 40) < NBINS as usize);
    }

    #[test]
    fn many_allocations_stress() {
        let mut m = ms(1 << 20);
        let mut live = Vec::new();
        for i in 0..2000u64 {
            let size = (i * 37) % 500 + 1;
            match m.malloc(size) {
                Ok(p) => live.push(p),
                Err(_) => {
                    // Free half and keep going.
                    for p in live.drain(..live.len() / 2) {
                        m.free(p).unwrap();
                    }
                }
            }
            if i % 3 == 0 && !live.is_empty() {
                let p = live.swap_remove((i as usize * 7) % live.len());
                m.free(p).unwrap();
            }
        }
        m.check_invariants();
        for p in live {
            m.free(p).unwrap();
        }
        assert_eq!(m.allocation_count(), 0);
        m.check_invariants();
    }
}
