//! Abstract access to the memory an allocator manages.
//!
//! The SpaceJMP runtime's allocator state lives *inside* the segment it
//! manages (Section 4.1's dlmalloc `mspace`s), which is what lets a heap
//! persist in a VAS across process lifetimes. [`MemAccess`] abstracts how
//! the allocator reads and writes that memory: tests use a plain
//! [`VecMem`], the runtime uses loads/stores through the simulated MMU.

/// Word-granular access to a managed memory area.
///
/// Offsets are bytes from the start of the area. Implementations must
/// support 8-byte-aligned `u64` access anywhere inside the area.
pub trait MemAccess {
    /// Total size of the managed area in bytes.
    fn size(&self) -> u64;

    /// Reads the `u64` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on out-of-bounds or misaligned offsets —
    /// such accesses are allocator bugs, not user errors.
    fn read_u64(&mut self, offset: u64) -> u64;

    /// Writes the `u64` at byte `offset`.
    ///
    /// # Panics
    ///
    /// As [`MemAccess::read_u64`].
    fn write_u64(&mut self, offset: u64, value: u64);

    /// Copies `len` bytes from `src` to `dst` (non-overlapping), rounding
    /// the tail up to whole words. Both offsets must be 8-aligned.
    fn copy_words(&mut self, src: u64, dst: u64, len: u64) {
        let words = len.div_ceil(8);
        for w in 0..words {
            let v = self.read_u64(src + w * 8);
            self.write_u64(dst + w * 8, v);
        }
    }

    /// Zeroes `len` bytes at `offset` (rounded up to whole words).
    fn zero(&mut self, offset: u64, len: u64) {
        let words = len.div_ceil(8);
        for w in 0..words {
            self.write_u64(offset + w * 8, 0);
        }
    }
}

/// A `Vec<u8>`-backed memory area for tests and host-side use.
#[derive(Debug, Clone)]
pub struct VecMem(Vec<u8>);

impl VecMem {
    /// Creates a zeroed area of `size` bytes.
    pub fn new(size: u64) -> Self {
        VecMem(vec![0; size as usize])
    }

    /// Raw bytes (for assertions).
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }
}

impl MemAccess for VecMem {
    fn size(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_u64(&mut self, offset: u64) -> u64 {
        assert!(offset.is_multiple_of(8), "misaligned read at {offset}");
        let o = offset as usize;
        u64::from_le_bytes(self.0[o..o + 8].try_into().expect("in bounds"))
    }

    fn write_u64(&mut self, offset: u64, value: u64) {
        assert!(offset.is_multiple_of(8), "misaligned write at {offset}");
        let o = offset as usize;
        self.0[o..o + 8].copy_from_slice(&value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = VecMem::new(64);
        m.write_u64(8, 0xdead_beef);
        assert_eq!(m.read_u64(8), 0xdead_beef);
        assert_eq!(m.read_u64(16), 0);
        assert_eq!(m.size(), 64);
    }

    #[test]
    fn copy_and_zero() {
        let mut m = VecMem::new(64);
        m.write_u64(0, 1);
        m.write_u64(8, 2);
        m.copy_words(0, 32, 16);
        assert_eq!(m.read_u64(32), 1);
        assert_eq!(m.read_u64(40), 2);
        m.zero(32, 12); // rounds up to 16
        assert_eq!(m.read_u64(32), 0);
        assert_eq!(m.read_u64(40), 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_panics() {
        let mut m = VecMem::new(64);
        m.read_u64(4);
    }
}
