//! # sjmp-alloc — segment-resident heap allocation for SpaceJMP
//!
//! SpaceJMP "complicates heap management since programs need to allocate
//! memory from different segments depending on their needs" (Section 4.1).
//! The paper's runtime builds on dlmalloc's *mspace* concept: a
//! self-contained allocator state that "may be placed at arbitrary
//! locations" — in SpaceJMP's case, inside the very segment it manages.
//!
//! [`Mspace`] reproduces that design: a boundary-tag allocator with
//! segregated free lists whose entire state (bin heads, counters, chunk
//! headers, links) lives in the managed memory behind the [`MemAccess`]
//! trait. Formatting an mspace inside a SpaceJMP segment therefore yields
//! a heap that:
//!
//! * is usable by any process that attaches the segment (allocation
//!   metadata travels with the data), and
//! * persists across process lifetimes, pointer values intact — the
//!   property the SAMTools experiment (Section 5.4) relies on.
//!
//! # Examples
//!
//! ```
//! use sjmp_alloc::{MemAccess, Mspace, VecMem};
//!
//! # fn main() -> Result<(), sjmp_alloc::AllocError> {
//! let mut heap = Mspace::format(VecMem::new(1 << 16))?;
//! let p = heap.malloc(256)?;
//! heap.mem_mut().write_u64(p, 42);
//!
//! // Hand the memory to "another process": state persists.
//! let mut heap2 = Mspace::attach(heap.into_inner())?;
//! assert_eq!(heap2.mem_mut().read_u64(p), 42);
//! heap2.free(p)?;
//! # Ok(()) }
//! ```

pub mod mem;
pub mod mspace;

pub use mem::{MemAccess, VecMem};
pub use mspace::{AllocError, Mspace, MIN_AREA};
