//! Property-based tests for the mspace allocator: arbitrary
//! malloc/free/realloc sequences must preserve the boundary-tag
//! invariants, never hand out overlapping memory, and account bytes
//! exactly.

use proptest::prelude::*;
use sjmp_alloc::{Mspace, VecMem};

#[derive(Debug, Clone)]
enum Op {
    Malloc(u64),
    Calloc(u64),
    /// Free the i-th live allocation (modulo the live count).
    Free(usize),
    /// Realloc the i-th live allocation to a new size.
    Realloc(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..2000).prop_map(Op::Malloc),
        (1u64..500).prop_map(Op::Calloc),
        any::<usize>().prop_map(Op::Free),
        (any::<usize>(), 1u64..1500).prop_map(|(i, s)| Op::Realloc(i, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut ms = Mspace::format(VecMem::new(256 * 1024)).unwrap();
        // (ptr, usable_size) of live allocations.
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Malloc(size) | Op::Calloc(size) => {
                    let zeroed = matches!(op, Op::Calloc(_));
                    let result = if zeroed { ms.calloc(size) } else { ms.malloc(size) };
                    if let Ok(p) = result {
                        let usable = ms.usable_size(p).unwrap();
                        prop_assert!(usable >= size, "usable {usable} < requested {size}");
                        // No overlap with any live allocation.
                        for &(q, qs) in &live {
                            prop_assert!(
                                p + usable <= q || q + qs <= p,
                                "overlap: [{p}, +{usable}) vs [{q}, +{qs})"
                            );
                        }
                        live.push((p, usable));
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(i % live.len());
                        ms.free(p).unwrap();
                    }
                }
                Op::Realloc(i, new_size) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (p, _) = live[idx];
                        if let Ok(q) = ms.realloc(p, new_size) {
                            let usable = ms.usable_size(q).unwrap();
                            prop_assert!(usable >= new_size);
                            live[idx] = (q, usable);
                        }
                    }
                }
            }
        }
        ms.check_invariants();
        prop_assert_eq!(ms.allocation_count(), live.len() as u64);
        for (p, _) in live {
            ms.free(p).unwrap();
        }
        prop_assert_eq!(ms.allocated_bytes(), 0);
        ms.check_invariants();
    }

    #[test]
    fn full_drain_returns_all_memory(sizes in prop::collection::vec(1u64..800, 1..60)) {
        let mut ms = Mspace::format(VecMem::new(128 * 1024)).unwrap();
        let baseline = ms.free_bytes();
        let ptrs: Vec<u64> = sizes.iter().filter_map(|&s| ms.malloc(s).ok()).collect();
        for p in ptrs {
            ms.free(p).unwrap();
        }
        prop_assert_eq!(ms.free_bytes(), baseline, "all memory coalesced back");
        ms.check_invariants();
    }

    #[test]
    fn data_integrity_across_churn(seed_vals in prop::collection::vec(any::<u64>(), 4..32)) {
        use sjmp_alloc::MemAccess;
        let mut ms = Mspace::format(VecMem::new(64 * 1024)).unwrap();
        // Write a distinct value into each allocation, churn, verify.
        let mut slots = Vec::new();
        for (i, &v) in seed_vals.iter().enumerate() {
            let p = ms.malloc(((i as u64) % 5 + 1) * 24).unwrap();
            ms.mem_mut().write_u64(p, v);
            slots.push((p, v));
        }
        // Free every other allocation and allocate again.
        let mut kept = Vec::new();
        for (i, (p, v)) in slots.into_iter().enumerate() {
            if i % 2 == 0 {
                ms.free(p).unwrap();
            } else {
                kept.push((p, v));
            }
        }
        for i in 0..seed_vals.len() / 2 {
            let _ = ms.malloc((i as u64 % 7 + 1) * 40);
        }
        for (p, v) in kept {
            prop_assert_eq!(ms.mem_mut().read_u64(p), v, "surviving allocation corrupted");
        }
        ms.check_invariants();
    }
}
