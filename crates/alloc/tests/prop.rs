//! Randomized tests for the mspace allocator: arbitrary
//! malloc/free/realloc sequences must preserve the boundary-tag
//! invariants, never hand out overlapping memory, and account bytes
//! exactly.
//!
//! Sequences are generated from fixed seeds with [`SimRng`], so every
//! run explores the same cases and any failure replays exactly (the
//! offline replacement for the former proptest harness).

use sjmp_alloc::{MemAccess, Mspace, VecMem};
use sjmp_sim::SimRng;

#[derive(Debug, Clone)]
enum Op {
    Malloc(u64),
    Calloc(u64),
    /// Free the i-th live allocation (modulo the live count).
    Free(usize),
    /// Realloc the i-th live allocation to a new size.
    Realloc(usize, u64),
}

fn random_ops(rng: &mut SimRng, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| match rng.gen_range(0..4) {
            0 => Op::Malloc(rng.gen_range(1..2000)),
            1 => Op::Calloc(rng.gen_range(1..500)),
            2 => Op::Free(rng.index(1 << 16)),
            _ => Op::Realloc(rng.index(1 << 16), rng.gen_range(1..1500)),
        })
        .collect()
}

#[test]
fn random_sequences_preserve_invariants() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let op_count = rng.index(119) + 1;
        let ops = random_ops(&mut rng, op_count);
        let mut ms = Mspace::format(VecMem::new(256 * 1024)).unwrap();
        // (ptr, usable_size) of live allocations.
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Malloc(size) | Op::Calloc(size) => {
                    let zeroed = matches!(op, Op::Calloc(_));
                    let result = if zeroed {
                        ms.calloc(size)
                    } else {
                        ms.malloc(size)
                    };
                    if let Ok(p) = result {
                        let usable = ms.usable_size(p).unwrap();
                        assert!(
                            usable >= size,
                            "seed {seed}: usable {usable} < requested {size}"
                        );
                        // No overlap with any live allocation.
                        for &(q, qs) in &live {
                            assert!(
                                p + usable <= q || q + qs <= p,
                                "seed {seed}: overlap [{p}, +{usable}) vs [{q}, +{qs})"
                            );
                        }
                        live.push((p, usable));
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(i % live.len());
                        ms.free(p).unwrap();
                    }
                }
                Op::Realloc(i, new_size) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let (p, _) = live[idx];
                        if let Ok(q) = ms.realloc(p, new_size) {
                            let usable = ms.usable_size(q).unwrap();
                            assert!(usable >= new_size, "seed {seed}");
                            live[idx] = (q, usable);
                        }
                    }
                }
            }
        }
        ms.check_invariants();
        assert_eq!(ms.allocation_count(), live.len() as u64, "seed {seed}");
        for (p, _) in live {
            ms.free(p).unwrap();
        }
        assert_eq!(ms.allocated_bytes(), 0, "seed {seed}");
        ms.check_invariants();
    }
}

#[test]
fn full_drain_returns_all_memory() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xd0a1);
        let sizes: Vec<u64> = (0..rng.index(59) + 1)
            .map(|_| rng.gen_range(1..800))
            .collect();
        let mut ms = Mspace::format(VecMem::new(128 * 1024)).unwrap();
        let baseline = ms.free_bytes();
        let ptrs: Vec<u64> = sizes.iter().filter_map(|&s| ms.malloc(s).ok()).collect();
        for p in ptrs {
            ms.free(p).unwrap();
        }
        assert_eq!(
            ms.free_bytes(),
            baseline,
            "seed {seed}: all memory coalesced back"
        );
        ms.check_invariants();
    }
}

#[test]
fn data_integrity_across_churn() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xc4a2);
        let seed_vals: Vec<u64> = (0..rng.index(28) + 4).map(|_| rng.next_u64()).collect();
        let mut ms = Mspace::format(VecMem::new(64 * 1024)).unwrap();
        // Write a distinct value into each allocation, churn, verify.
        let mut slots = Vec::new();
        for (i, &v) in seed_vals.iter().enumerate() {
            let p = ms.malloc(((i as u64) % 5 + 1) * 24).unwrap();
            ms.mem_mut().write_u64(p, v);
            slots.push((p, v));
        }
        // Free every other allocation and allocate again.
        let mut kept = Vec::new();
        for (i, (p, v)) in slots.into_iter().enumerate() {
            if i % 2 == 0 {
                ms.free(p).unwrap();
            } else {
                kept.push((p, v));
            }
        }
        for i in 0..seed_vals.len() / 2 {
            let _ = ms.malloc((i as u64 % 7 + 1) * 40);
        }
        for (p, v) in kept {
            assert_eq!(
                ms.mem_mut().read_u64(p),
                v,
                "seed {seed}: surviving allocation corrupted"
            );
        }
        ms.check_invariants();
    }
}
