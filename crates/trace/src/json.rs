//! Hand-rolled JSON value, writer, and parser.
//!
//! The workspace builds offline with zero dependencies (a PR 1
//! decision), so machine-readable output cannot lean on serde. This
//! module is the small, boring alternative: a [`Json`] tree with a
//! writer (for exporters and bench results) and a strict recursive-
//! descent parser (so CI can validate the files we emit without
//! shelling out to python). It is not a general-purpose JSON library;
//! it parses what this workspace writes plus ordinary interchange
//! JSON, and rejects garbage loudly.

use std::fmt;

/// A JSON value. Object keys keep insertion order (no sorting), which
/// keeps exported files diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (written without a decimal point).
    Int(i64),
    /// Any other number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// A `u64` as `Int` when it fits, `Float` otherwise.
    pub fn from_u64(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Float(v as f64),
        }
    }

    /// Member lookup on objects (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view of `Int`/`Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view of `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes without insignificant whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes with two-space indentation for human inspection.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then handle the escape or
            // terminator.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compound_values() {
        let v = Json::Obj(vec![
            ("name".to_string(), Json::str("fig8_gups")),
            ("mups".to_string(), Json::Float(1.25)),
            ("cycles".to_string(), Json::Int(123_456_789)),
            ("ok".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            (
                "rows".to_string(),
                Json::Arr(vec![Json::Int(1), Json::Int(2)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615")
                .unwrap()
                .as_f64()
                .unwrap(),
            u64::MAX as f64
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn from_u64_preserves_small_and_survives_large() {
        assert_eq!(Json::from_u64(7), Json::Int(7));
        assert_eq!(Json::from_u64(i64::MAX as u64), Json::Int(i64::MAX));
        assert!(matches!(Json::from_u64(u64::MAX), Json::Float(_)));
    }
}
