//! The tracer handle: clone-freely, share everywhere, pay nothing
//! when disabled.
//!
//! A [`Tracer`] is `Option<Arc<Mutex<state>>>`. The disabled tracer —
//! [`Tracer::disabled`], also the [`Default`] — is `None`, so every
//! recording call on it is one branch and an immediate return; there
//! is no buffer, no lock, no atomic. Instrumented subsystems can
//! therefore hold a `Tracer` field unconditionally.
//!
//! The enabled tracer records [`Event`]s into a bounded [`Ring`] and
//! simultaneously feeds a [`MetricsRegistry`]: `Instant` events bump a
//! counter named after their kind, and each `End` is matched against
//! the most recent open `Begin` of the same `(core, kind)` to record
//! the span's cycle duration into a histogram of the same name. The
//! simulated clock is never touched — timestamps are read by the
//! *caller* and passed in — so enabling tracing cannot perturb modeled
//! costs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::chrome::chrome_trace;
use crate::event::{Event, EventKind, Phase};
use crate::json::Json;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::ring::Ring;

#[derive(Debug)]
struct TraceState {
    ring: Ring,
    metrics: MetricsRegistry,
    /// Open-span begin timestamps, a stack per `(core, kind)`.
    open: HashMap<(u32, EventKind), Vec<u64>>,
    /// `End` events that arrived with no open `Begin` (an
    /// instrumentation bug; surfaced rather than hidden).
    unmatched_ends: u64,
}

/// Shared, cheaply clonable tracing handle. See the module docs.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<TraceState>>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Tracer {
    /// An enabled tracer whose ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer(Some(Arc::new(Mutex::new(TraceState {
            ring: Ring::new(capacity),
            metrics: MetricsRegistry::new(),
            open: HashMap::new(),
            unmatched_ends: 0,
        }))))
    }

    /// The no-op tracer: every call is a single branch.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// True when events are being recorded.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    fn push(&self, ev: Event) {
        let Some(inner) = &self.0 else { return };
        let mut st = inner.lock().expect("tracer poisoned");
        match ev.phase {
            Phase::Begin => {
                st.open.entry((ev.core, ev.kind)).or_default().push(ev.ts);
            }
            Phase::End => {
                let begin = st
                    .open
                    .get_mut(&(ev.core, ev.kind))
                    .and_then(|stack| stack.pop());
                match begin {
                    Some(start) => {
                        let dur = ev.ts.saturating_sub(start);
                        st.metrics.record(ev.kind.name(), dur);
                    }
                    None => st.unmatched_ends += 1,
                }
            }
            Phase::Instant => {
                st.metrics.add(ev.kind.name(), 1);
            }
        }
        st.ring.push(ev);
    }

    /// Opens a span of `kind` on `core` at cycle `ts`.
    pub fn begin(&self, ts: u64, core: u32, kind: EventKind, arg0: u64) {
        if self.0.is_none() {
            return;
        }
        self.push(Event {
            ts,
            core,
            phase: Phase::Begin,
            kind,
            arg0,
            arg1: 0,
        });
    }

    /// Closes the most recent open span of `kind` on `core`, recording
    /// its duration into the kind's cycle histogram.
    pub fn end(&self, ts: u64, core: u32, kind: EventKind, arg0: u64) {
        if self.0.is_none() {
            return;
        }
        self.push(Event {
            ts,
            core,
            phase: Phase::End,
            kind,
            arg0,
            arg1: 0,
        });
    }

    /// Records a point event, bumping the kind's counter.
    pub fn instant(&self, ts: u64, core: u32, kind: EventKind, arg0: u64, arg1: u64) {
        if self.0.is_none() {
            return;
        }
        self.push(Event {
            ts,
            core,
            phase: Phase::Instant,
            kind,
            arg0,
            arg1,
        });
    }

    /// Adds `n` to the named counter (for values that are not event
    /// counts, e.g. pages freed by an eviction).
    pub fn add(&self, name: &str, n: u64) {
        let Some(inner) = &self.0 else { return };
        inner.lock().expect("tracer poisoned").metrics.add(name, n);
    }

    /// Records a cycle value into the named histogram directly (for
    /// durations measured by the caller rather than via begin/end).
    pub fn record_cycles(&self, name: &str, cycles: u64) {
        let Some(inner) = &self.0 else { return };
        inner
            .lock()
            .expect("tracer poisoned")
            .metrics
            .record(name, cycles);
    }

    /// A copy of the live events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            Some(inner) => inner.lock().expect("tracer poisoned").ring.to_vec(),
            None => Vec::new(),
        }
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.lock().expect("tracer poisoned").ring.dropped(),
            None => 0,
        }
    }

    /// `End` events that had no matching open `Begin`.
    pub fn unmatched_ends(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.lock().expect("tracer poisoned").unmatched_ends,
            None => 0,
        }
    }

    /// Spans still open (begin without end so far), as
    /// `(core, kind, begin_ts)`.
    pub fn open_spans(&self) -> Vec<(u32, EventKind, u64)> {
        match &self.0 {
            Some(inner) => {
                let st = inner.lock().expect("tracer poisoned");
                let mut out = Vec::new();
                for (&(core, kind), stack) in &st.open {
                    for &ts in stack {
                        out.push((core, kind, ts));
                    }
                }
                out.sort();
                out
            }
            None => Vec::new(),
        }
    }

    /// Snapshot of the counters and histograms accumulated so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(inner) => inner.lock().expect("tracer poisoned").metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Discards events, metrics, and open-span state.
    pub fn clear(&self) {
        let Some(inner) = &self.0 else { return };
        let mut st = inner.lock().expect("tracer poisoned");
        st.ring.clear();
        st.metrics.clear();
        st.open.clear();
        st.unmatched_ends = 0;
    }

    /// The recorded events as a Chrome `trace_event` JSON document.
    /// `freq_hz` converts cycle timestamps to the microseconds the
    /// format requires.
    pub fn chrome_trace_json(&self, freq_hz: f64) -> String {
        chrome_trace(&self.events(), freq_hz, self.dropped()).to_string()
    }

    /// The metrics snapshot as a flat JSON document.
    pub fn metrics_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.begin(1, 0, EventKind::VasSwitch, 0);
        t.end(2, 0, EventKind::VasSwitch, 0);
        t.instant(3, 0, EventKind::TlbMiss, 0, 0);
        t.add("x", 5);
        t.record_cycles("y", 9);
        assert!(t.events().is_empty());
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn spans_feed_histograms_and_nest() {
        let t = Tracer::new(64);
        t.begin(100, 0, EventKind::VasSwitch, 1);
        t.begin(120, 0, EventKind::Cr3Load, 1);
        t.end(250, 0, EventKind::Cr3Load, 1);
        t.end(300, 0, EventKind::VasSwitch, 1);
        // Same-kind nesting: inner pairs with innermost begin.
        t.begin(400, 0, EventKind::Mmap, 1);
        t.begin(410, 0, EventKind::Mmap, 2);
        t.end(420, 0, EventKind::Mmap, 2);
        t.end(450, 0, EventKind::Mmap, 1);
        let snap = t.snapshot();
        assert_eq!(snap.histogram("vas_switch").unwrap().sum, 200);
        assert_eq!(snap.histogram("cr3_load").unwrap().sum, 130);
        let mmap = snap.histogram("mmap").unwrap();
        assert_eq!(mmap.count, 2);
        assert_eq!(mmap.sum, 10 + 50);
        assert_eq!(t.unmatched_ends(), 0);
        assert!(t.open_spans().is_empty());
    }

    #[test]
    fn per_core_spans_do_not_cross() {
        let t = Tracer::new(64);
        t.begin(100, 0, EventKind::RpcSend, 0);
        t.begin(150, 1, EventKind::RpcSend, 0);
        t.end(160, 1, EventKind::RpcSend, 0);
        t.end(500, 0, EventKind::RpcSend, 0);
        let h = t.snapshot();
        let h = h.histogram("rpc_send").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 400);
    }

    #[test]
    fn instants_count_and_unmatched_ends_surface() {
        let t = Tracer::new(64);
        t.instant(1, 0, EventKind::TlbMiss, 0, 0);
        t.instant(2, 0, EventKind::TlbMiss, 0, 0);
        t.end(3, 0, EventKind::PageWalk, 0);
        assert_eq!(t.snapshot().counter("tlb_miss"), 2);
        assert_eq!(t.unmatched_ends(), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::new(8);
        let u = t.clone();
        u.instant(1, 0, EventKind::Evict, 3, 1);
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(u.events().is_empty());
    }
}
