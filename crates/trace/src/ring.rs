//! Fixed-capacity overwrite-oldest event ring.
//!
//! The tracer must be safe to leave enabled across arbitrarily long
//! runs, so the buffer never grows: once full, each push overwrites
//! the oldest event and bumps a `dropped` counter so exporters can
//! report truncation honestly instead of silently presenting a
//! partial trace as complete.

use crate::event::Event;

/// A bounded ring of [`Event`]s that overwrites its oldest entry when
/// full.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest live event (only meaningful once full).
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Live events in recording order (oldest first).
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Discards all events and resets the dropped counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            core: 0,
            phase: Phase::Instant,
            kind: EventKind::TlbHit,
            arg0: 0,
            arg1: 0,
        }
    }

    #[test]
    fn keeps_order_below_capacity() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn clear_resets() {
        let mut r = Ring::new(2);
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.push(ev(9));
        assert_eq!(r.to_vec()[0].ts, 9);
    }
}
