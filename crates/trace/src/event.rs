//! Fixed-size structured trace events.
//!
//! An [`Event`] is 32 bytes of `Copy` data: a cycle timestamp, the
//! hardware thread (core) it happened on, an [`EventKind`], a
//! [`Phase`], and two untyped argument words whose meaning is
//! per-kind (documented on each variant). Keeping events fixed-size
//! and allocation-free is what lets the ring buffer overwrite in place
//! and the tracer stay off the modeled-cost path.

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Opens a span; must be closed by an [`Phase::End`] of the same
    /// kind on the same core.
    Begin,
    /// Closes the most recent open span of the same kind on the same
    /// core.
    End,
    /// A point event with no duration.
    Instant,
}

impl Phase {
    /// The Chrome `trace_event` phase letter.
    pub fn chrome_ph(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// What happened. Variants are grouped by the crate that emits them.
///
/// The `arg0`/`arg1` conventions are: identifiers (pid, VAS id,
/// segment id, ASID) in `arg0`, magnitudes (pages, bytes, badness) in
/// `arg1`, zero when unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    // ---- sjmp-os::kernel ----
    /// Syscall entry cost (`charge_entry`); span. `arg0` = pid.
    KernelEntry,
    /// `switch_vmspace` body; span. `arg0` = pid, `arg1` = vmspace id.
    SwitchVmspace,
    /// Switch bookkeeping portion of a switch; span. `arg0` = pid.
    SwitchBook,
    /// `sys_mmap`/`sys_mmap_sized`; span. `arg0` = pid, `arg1` = bytes.
    Mmap,
    /// `sys_munmap`; span. `arg0` = pid.
    Munmap,
    /// `handle_fault`; span. `arg0` = pid, `arg1` = faulting page index.
    PageFault,
    /// A fault that required swap-in; instant. `arg0` = pid.
    MajorFault,
    /// Swap device read on the fault path; span. `arg0` = object id.
    SwapIn,
    /// Swap device write during eviction; span. `arg0` = object id.
    SwapOut,
    /// One pass of the low-watermark reclaimer; span. `arg0` = target
    /// frames, `arg1` = frames actually freed.
    ReclaimPass,
    /// One page evicted; instant. `arg0` = owning pid, `arg1` = object id.
    Evict,
    /// A resident-quota denial; instant. `arg0` = pid.
    QuotaDenial,
    /// OOM killer chose a victim; instant. `arg0` = victim pid,
    /// `arg1` = badness (resident frames at selection).
    OomKill,
    /// A committed `load_u64` from the global (shared-segment) range;
    /// instant. `arg0` = virtual address, `arg1` = pid.
    MemRead,
    /// A committed `store_u64` to the global (shared-segment) range;
    /// instant. `arg0` = virtual address, `arg1` = pid.
    MemWrite,

    // ---- sjmp-mem ----
    /// TLB lookup hit; instant. `arg0` = ASID.
    TlbHit,
    /// TLB lookup miss; instant. `arg0` = ASID.
    TlbMiss,
    /// TLB flush; instant. `arg0` = ASID (0 = full non-global flush).
    TlbFlush,
    /// Page-table walk after a TLB miss; span. `arg0` = ASID.
    PageWalk,
    /// CR3 load; span. `arg0` = new ASID, `arg1` = 1 if tagged mode.
    Cr3Load,

    // ---- spacejmp-core ----
    /// `vas_switch` end to end; span. `arg0` = pid, `arg1` = VAS id.
    VasSwitch,
    /// `vas_attach`; span. `arg0` = pid, `arg1` = VAS id.
    VasAttach,
    /// `vas_detach`; span. `arg0` = pid, `arg1` = VAS id.
    VasDetach,
    /// Segment lock acquired; instant. `arg0` = segment id, `arg1` = pid.
    LockAcquire,
    /// Segment lock released; instant. `arg0` = segment id, `arg1` = pid.
    LockRelease,
    /// Lock-set acquisition lost to contention; instant.
    /// `arg0` = segment id, `arg1` = pid.
    LockContention,
    /// A lock acquisition elided by fault injection
    /// (`FaultSite::SegLock`); instant. `arg0` = segment id,
    /// `arg1` = pid. Diagnostic only — analyzers must find the
    /// resulting race from the access stream, not from this marker.
    LockSkip,
    /// A segment came into existence (`seg_register`); instant.
    /// `arg0` = segment id, `arg1` = base virtual address.
    SegRegister,
    /// Companion to [`EventKind::SegRegister`] carrying the magnitude
    /// that does not fit in one event; instant. `arg0` = segment id,
    /// `arg1` = size in bytes.
    SegExtent,
    /// A segment attached to a VAS (`seg_attach`, the global variant);
    /// instant. `arg0` = segment id, `arg1` = VAS id. Together with
    /// [`EventKind::VasEnter`] this lets replay tools resolve which
    /// segment a virtual address belongs to — different VASes may map
    /// different segments at the same address.
    SegAttach,
    /// A process committed a switch into a VAS; instant. `arg0` = pid,
    /// `arg1` = VAS id (0 = the process's private home space). Unlike
    /// the [`EventKind::VasSwitch`] span, which brackets the whole
    /// attempt including failures, this fires only once the new
    /// translation root is actually loaded.
    VasEnter,
    /// A `vas_switch_retry` backoff turn; instant. `arg0` = pid,
    /// `arg1` = attempt number.
    SwitchRetry,
    /// `reap_process` teardown of a dead process; span. `arg0` = pid.
    Reap,

    // ---- sjmp-rpc ----
    /// URPC/message send; span. `arg0` = payload bytes.
    RpcSend,
    /// URPC/message receive; span. `arg0` = payload bytes.
    RpcRecv,

    // ---- sjmp-blk (emitted by the kernel's block-IO hooks) ----
    /// One block read from the snapshot disk; span. `arg0` = LBA.
    BlkRead,
    /// One block write to the snapshot disk; span. `arg0` = LBA.
    BlkWrite,
    /// One flush barrier on the snapshot disk; span.
    BlkFlush,
    /// Recovery replayed the write-ahead journal into the superblock;
    /// instant. `arg0` = replays performed, `arg1` = recovered
    /// generation.
    JournalReplay,
    /// A snapshot generation committed durably; instant.
    /// `arg0` = generation, `arg1` = payload bytes.
    SnapshotCommit,
    /// `vas_save` end to end; span. `arg0` = pid, `arg1` = VAS id.
    SnapshotSave,
    /// `vas_load` end to end; span. `arg0` = pid, `arg1` = VAS id (the
    /// freshly created one; 0 on the failing end of the span).
    SnapshotLoad,

    // ---- sjmp-kv request lifecycle (causal spans keyed by ReqId) ----
    /// A request entered the system at its open-loop arrival time;
    /// instant. `arg0` = request id, `arg1` = client id.
    ReqArrive,
    /// Admission control accepted the request into a shard's queue;
    /// instant. `arg0` = request id, `arg1` = shard index.
    ReqAdmit,
    /// The request reached the head of its shard queue and a core
    /// started serving it; instant. `arg0` = request id, `arg1` = the
    /// VAS-switch cycle component of the service that follows (so span
    /// reassembly can split switch from shard service), or 0 when the
    /// nested `VasSwitch` spans in the same trace carry it.
    ReqDispatch,
    /// The request was bounced and scheduled for a backoff retry;
    /// instant. `arg0` = request id, `arg1` = attempt number (1-based).
    ReqRetry,
    /// The request left the system without completing; instant.
    /// `arg0` = request id, `arg1` = terminal reason (0 = shed by
    /// admission control, 1 = deadline exceeded, 2 = shard
    /// unavailable/degraded).
    ReqShed,
    /// The request finished service; instant. `arg0` = request id,
    /// `arg1` = 1 if it completed within its deadline, else 0.
    ReqComplete,
}

impl EventKind {
    /// Every kind, for iteration in exporters and reports.
    pub const ALL: [EventKind; 48] = [
        EventKind::KernelEntry,
        EventKind::SwitchVmspace,
        EventKind::SwitchBook,
        EventKind::Mmap,
        EventKind::Munmap,
        EventKind::PageFault,
        EventKind::MajorFault,
        EventKind::SwapIn,
        EventKind::SwapOut,
        EventKind::ReclaimPass,
        EventKind::Evict,
        EventKind::QuotaDenial,
        EventKind::OomKill,
        EventKind::MemRead,
        EventKind::MemWrite,
        EventKind::TlbHit,
        EventKind::TlbMiss,
        EventKind::TlbFlush,
        EventKind::PageWalk,
        EventKind::Cr3Load,
        EventKind::VasSwitch,
        EventKind::VasAttach,
        EventKind::VasDetach,
        EventKind::LockAcquire,
        EventKind::LockRelease,
        EventKind::LockContention,
        EventKind::LockSkip,
        EventKind::SegRegister,
        EventKind::SegExtent,
        EventKind::SegAttach,
        EventKind::VasEnter,
        EventKind::SwitchRetry,
        EventKind::Reap,
        EventKind::RpcSend,
        EventKind::RpcRecv,
        EventKind::BlkRead,
        EventKind::BlkWrite,
        EventKind::BlkFlush,
        EventKind::JournalReplay,
        EventKind::SnapshotCommit,
        EventKind::SnapshotSave,
        EventKind::SnapshotLoad,
        EventKind::ReqArrive,
        EventKind::ReqAdmit,
        EventKind::ReqDispatch,
        EventKind::ReqRetry,
        EventKind::ReqShed,
        EventKind::ReqComplete,
    ];

    /// Stable snake_case name used for metric keys and trace export.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelEntry => "kernel_entry",
            EventKind::SwitchVmspace => "switch_vmspace",
            EventKind::SwitchBook => "switch_book",
            EventKind::Mmap => "mmap",
            EventKind::Munmap => "munmap",
            EventKind::PageFault => "page_fault",
            EventKind::MajorFault => "major_fault",
            EventKind::SwapIn => "swap_in",
            EventKind::SwapOut => "swap_out",
            EventKind::ReclaimPass => "reclaim_pass",
            EventKind::Evict => "evict",
            EventKind::QuotaDenial => "quota_denial",
            EventKind::OomKill => "oom_kill",
            EventKind::MemRead => "mem_read",
            EventKind::MemWrite => "mem_write",
            EventKind::TlbHit => "tlb_hit",
            EventKind::TlbMiss => "tlb_miss",
            EventKind::TlbFlush => "tlb_flush",
            EventKind::PageWalk => "page_walk",
            EventKind::Cr3Load => "cr3_load",
            EventKind::VasSwitch => "vas_switch",
            EventKind::VasAttach => "vas_attach",
            EventKind::VasDetach => "vas_detach",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockRelease => "lock_release",
            EventKind::LockContention => "lock_contention",
            EventKind::LockSkip => "lock_skip",
            EventKind::SegRegister => "seg_register",
            EventKind::SegExtent => "seg_extent",
            EventKind::SegAttach => "seg_attach",
            EventKind::VasEnter => "vas_enter",
            EventKind::SwitchRetry => "switch_retry",
            EventKind::Reap => "reap",
            EventKind::RpcSend => "rpc_send",
            EventKind::RpcRecv => "rpc_recv",
            EventKind::BlkRead => "blk_read",
            EventKind::BlkWrite => "blk_write",
            EventKind::BlkFlush => "blk_flush",
            EventKind::JournalReplay => "journal_replay",
            EventKind::SnapshotCommit => "snapshot_commit",
            EventKind::SnapshotSave => "snapshot_save",
            EventKind::SnapshotLoad => "snapshot_load",
            EventKind::ReqArrive => "req_arrive",
            EventKind::ReqAdmit => "req_admit",
            EventKind::ReqDispatch => "req_dispatch",
            EventKind::ReqRetry => "req_retry",
            EventKind::ReqShed => "req_shed",
            EventKind::ReqComplete => "req_complete",
        }
    }

    /// Inverse of [`EventKind::name`]; `None` for unknown names. Trace
    /// importers use this so exported documents round-trip losslessly.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle timestamp (from the caller's `CycleClock`).
    pub ts: u64,
    /// Hardware thread the event happened on.
    pub core: u32,
    /// Span phase.
    pub phase: Phase,
    /// What happened.
    pub kind: EventKind,
    /// First argument word; meaning is per-kind.
    pub arg0: u64,
    /// Second argument word; meaning is per-kind.
    pub arg1: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let mut seen = std::collections::HashSet::new();
        for kind in EventKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
        }
        assert_eq!(seen.len(), EventKind::ALL.len());
    }

    #[test]
    fn from_name_round_trips_every_kind() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("no_such_kind"), None);
    }

    #[test]
    fn chrome_phase_letters() {
        assert_eq!(Phase::Begin.chrome_ph(), "B");
        assert_eq!(Phase::End.chrome_ph(), "E");
        assert_eq!(Phase::Instant.chrome_ph(), "i");
    }
}
