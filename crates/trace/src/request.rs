//! Request-scoped causal span reassembly.
//!
//! The serving stack (`sjmp-kv`) stamps every request's lifecycle into
//! the trace as `Req*` instants keyed by a request id in `arg0`:
//! [`EventKind::ReqArrive`] → ([`EventKind::ReqRetry`] |
//! [`EventKind::ReqAdmit`])* → [`EventKind::ReqDispatch`] →
//! [`EventKind::ReqComplete`], with [`EventKind::ReqShed`] as the
//! terminal on any rejection path. This module folds that flat stream
//! back into one [`RequestSpan`] per id and decomposes its end-to-end
//! latency into four phases that sum **exactly** to `end - arrive`:
//!
//! * **backoff** — cycles parked between a `ReqRetry` and the next
//!   lifecycle event of the same request;
//! * **queue** — everything else between arrival and dispatch: shard
//!   FIFO wait, lock handoff, and core-pool wait;
//! * **switch** — the VAS-switch component of service, carried in
//!   `ReqDispatch.arg1` by the emitter;
//! * **service** — the remaining dispatch→complete cycles.
//!
//! The exactness is by construction, not by luck: the four phases are
//! defined as a partition of the `[arrive, end]` interval, so tail
//! exemplars rebuilt here always reconcile with the latency the
//! benchmark measured.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::json::Json;

/// Why a request ended without completing. Mirrors the `arg1` encoding
/// of [`EventKind::ReqShed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Finished service; `true` when within its deadline.
    Completed(bool),
    /// Shed by admission control (queue full, retry budget exhausted).
    Shed,
    /// Dropped at dispatch: its deadline had already passed.
    DeadlineExceeded,
    /// Rejected because the target shard was degraded/unavailable.
    ShardUnavailable,
    /// The trace ended while the request was still in flight.
    InFlight,
}

impl ReqOutcome {
    /// Stable name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ReqOutcome::Completed(true) => "completed",
            ReqOutcome::Completed(false) => "completed_late",
            ReqOutcome::Shed => "shed",
            ReqOutcome::DeadlineExceeded => "deadline_exceeded",
            ReqOutcome::ShardUnavailable => "shard_unavailable",
            ReqOutcome::InFlight => "in_flight",
        }
    }

    fn from_shed_code(code: u64) -> ReqOutcome {
        match code {
            0 => ReqOutcome::Shed,
            1 => ReqOutcome::DeadlineExceeded,
            _ => ReqOutcome::ShardUnavailable,
        }
    }
}

/// The latency decomposition of one request; all fields in simulated
/// cycles. `backoff + queue + switch + service == end - arrive` for
/// every assembled span (asserted in tests, relied on by the overload
/// exemplar gate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReqPhases {
    /// Cycles parked in retry backoff.
    pub backoff: u64,
    /// Shard FIFO + lock handoff + core-pool wait.
    pub queue: u64,
    /// VAS-switch component of service.
    pub switch: u64,
    /// Shard service minus the switch component.
    pub service: u64,
}

impl ReqPhases {
    /// Sum of all phases — the span's end-to-end latency.
    pub fn total(&self) -> u64 {
        self.backoff + self.queue + self.switch + self.service
    }
}

/// One reassembled request: its lifecycle events, outcome, and phase
/// decomposition.
#[derive(Debug, Clone)]
pub struct RequestSpan {
    /// Request id (the `arg0` of every lifecycle event).
    pub id: u64,
    /// Client that issued it (`ReqArrive.arg1`).
    pub client: u64,
    /// Shard that admitted it (`ReqAdmit.arg1` of the last admission),
    /// `None` if it never got past admission.
    pub shard: Option<u64>,
    /// Arrival timestamp.
    pub arrive: u64,
    /// Terminal timestamp (complete/shed), or the last seen event for
    /// in-flight spans.
    pub end: u64,
    /// Number of retry rounds the request went through.
    pub retries: u32,
    /// How the request ended.
    pub outcome: ReqOutcome,
    /// The latency decomposition.
    pub phases: ReqPhases,
    /// The request's lifecycle events in timestamp order.
    pub events: Vec<Event>,
}

impl RequestSpan {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.arrive
    }

    /// JSON form used by the overload report's tail-exemplar section.
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("ts".to_string(), Json::from_u64(e.ts)),
                    ("kind".to_string(), Json::Str(e.kind.name().to_string())),
                    ("arg1".to_string(), Json::from_u64(e.arg1)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("id".to_string(), Json::from_u64(self.id)),
            ("client".to_string(), Json::from_u64(self.client)),
            (
                "shard".to_string(),
                match self.shard {
                    Some(s) => Json::from_u64(s),
                    None => Json::Null,
                },
            ),
            ("arrive".to_string(), Json::from_u64(self.arrive)),
            ("latency".to_string(), Json::from_u64(self.latency())),
            ("retries".to_string(), Json::from_u64(self.retries as u64)),
            (
                "outcome".to_string(),
                Json::Str(self.outcome.name().to_string()),
            ),
            ("backoff".to_string(), Json::from_u64(self.phases.backoff)),
            ("queue".to_string(), Json::from_u64(self.phases.queue)),
            ("switch".to_string(), Json::from_u64(self.phases.switch)),
            ("service".to_string(), Json::from_u64(self.phases.service)),
            ("events".to_string(), Json::Arr(events)),
        ])
    }
}

fn is_req_kind(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::ReqArrive
            | EventKind::ReqAdmit
            | EventKind::ReqDispatch
            | EventKind::ReqRetry
            | EventKind::ReqShed
            | EventKind::ReqComplete
    )
}

/// Reassembles every request's lifecycle from a raw event stream.
///
/// Non-`Req*` events pass through untouched (callers typically hand in
/// a full `Tracer::events()` dump). Events of one request are taken in
/// stream order — the tracer's ring preserves emission order, and all
/// emitters stamp monotonically increasing timestamps per request.
/// Requests whose `ReqArrive` fell off the ring are skipped; requests
/// without a terminal event come back as [`ReqOutcome::InFlight`].
/// Returned spans are sorted by request id.
pub fn assemble_requests(events: &[Event]) -> Vec<RequestSpan> {
    let mut by_id: BTreeMap<u64, Vec<Event>> = BTreeMap::new();
    for e in events {
        if is_req_kind(e.kind) {
            by_id.entry(e.arg0).or_default().push(*e);
        }
    }
    let mut spans = Vec::with_capacity(by_id.len());
    for (id, evs) in by_id {
        if evs.first().map(|e| e.kind) != Some(EventKind::ReqArrive) {
            continue; // arrival lost to ring overwrite: span is partial
        }
        let arrive = evs[0].ts;
        let client = evs[0].arg1;
        let mut shard = None;
        let mut retries = 0u32;
        let mut dispatch: Option<&Event> = None;
        let mut backoff = 0u64;
        let mut outcome = ReqOutcome::InFlight;
        let mut end = evs.last().map(|e| e.ts).unwrap_or(arrive);
        for (i, e) in evs.iter().enumerate() {
            match e.kind {
                EventKind::ReqAdmit => shard = Some(e.arg1),
                EventKind::ReqRetry => {
                    retries += 1;
                    // Backoff runs from the retry decision to whatever
                    // the request does next (its next admission attempt
                    // or terminal). A trailing retry with no successor
                    // contributes nothing — the span is in flight.
                    if let Some(next) = evs.get(i + 1) {
                        backoff += next.ts - e.ts;
                    }
                }
                EventKind::ReqDispatch => dispatch = Some(e),
                EventKind::ReqShed => {
                    outcome = ReqOutcome::from_shed_code(e.arg1);
                    end = e.ts;
                }
                EventKind::ReqComplete => {
                    outcome = ReqOutcome::Completed(e.arg1 == 1);
                    end = e.ts;
                }
                _ => {}
            }
        }
        let phases = match dispatch {
            Some(d) => {
                let switch = d.arg1.min(end - d.ts);
                ReqPhases {
                    backoff,
                    queue: (d.ts - arrive) - backoff,
                    switch,
                    service: (end - d.ts) - switch,
                }
            }
            // Never dispatched: everything that wasn't backoff was
            // spent queued/being bounced at admission.
            None => ReqPhases {
                backoff,
                queue: (end - arrive) - backoff,
                switch: 0,
                service: 0,
            },
        };
        spans.push(RequestSpan {
            id,
            client,
            shard,
            arrive,
            end,
            retries,
            outcome,
            phases,
            events: evs,
        });
    }
    spans
}

/// The `n` slowest completed requests, slowest first — the tail
/// exemplars the overload report captures for forensics.
pub fn slowest_completed(spans: &[RequestSpan], n: usize) -> Vec<&RequestSpan> {
    let mut done: Vec<&RequestSpan> = spans
        .iter()
        .filter(|s| matches!(s.outcome, ReqOutcome::Completed(_)))
        .collect();
    done.sort_by(|a, b| b.latency().cmp(&a.latency()).then(a.id.cmp(&b.id)));
    done.truncate(n);
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn ev(ts: u64, kind: EventKind, arg0: u64, arg1: u64) -> Event {
        Event {
            ts,
            core: 0,
            phase: Phase::Instant,
            kind,
            arg0,
            arg1,
        }
    }

    #[test]
    fn clean_request_decomposes_exactly() {
        let events = vec![
            ev(100, EventKind::ReqArrive, 7, 3),
            ev(100, EventKind::ReqAdmit, 7, 1),
            ev(500, EventKind::ReqDispatch, 7, 130),
            ev(900, EventKind::ReqComplete, 7, 1),
        ];
        let spans = assemble_requests(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.id, 7);
        assert_eq!(s.client, 3);
        assert_eq!(s.shard, Some(1));
        assert_eq!(s.outcome, ReqOutcome::Completed(true));
        assert_eq!(s.latency(), 800);
        assert_eq!(s.phases.backoff, 0);
        assert_eq!(s.phases.queue, 400);
        assert_eq!(s.phases.switch, 130);
        assert_eq!(s.phases.service, 270);
        assert_eq!(s.phases.total(), s.latency());
    }

    #[test]
    fn retries_become_backoff() {
        let events = vec![
            ev(0, EventKind::ReqArrive, 1, 0),
            ev(0, EventKind::ReqRetry, 1, 1),
            ev(1000, EventKind::ReqRetry, 1, 2),
            ev(3000, EventKind::ReqAdmit, 1, 0),
            ev(3500, EventKind::ReqDispatch, 1, 100),
            ev(4000, EventKind::ReqComplete, 1, 1),
        ];
        let spans = assemble_requests(&events);
        let s = &spans[0];
        assert_eq!(s.retries, 2);
        assert_eq!(s.phases.backoff, 3000);
        assert_eq!(s.phases.queue, 500);
        assert_eq!(s.phases.switch, 100);
        assert_eq!(s.phases.service, 400);
        assert_eq!(s.phases.total(), s.latency());
    }

    #[test]
    fn shed_request_has_no_service() {
        let events = vec![
            ev(0, EventKind::ReqArrive, 2, 5),
            ev(0, EventKind::ReqRetry, 2, 1),
            ev(800, EventKind::ReqShed, 2, 0),
        ];
        let spans = assemble_requests(&events);
        let s = &spans[0];
        assert_eq!(s.outcome, ReqOutcome::Shed);
        assert_eq!(s.phases.backoff, 800);
        assert_eq!(s.phases.queue, 0);
        assert_eq!(s.phases.service, 0);
        assert_eq!(s.phases.total(), s.latency());
    }

    #[test]
    fn deadline_and_unavailable_codes_decode() {
        for (code, want) in [
            (1u64, ReqOutcome::DeadlineExceeded),
            (2, ReqOutcome::ShardUnavailable),
        ] {
            let events = vec![
                ev(0, EventKind::ReqArrive, 9, 0),
                ev(50, EventKind::ReqShed, 9, code),
            ];
            assert_eq!(assemble_requests(&events)[0].outcome, want);
        }
    }

    #[test]
    fn partial_spans_are_skipped_or_in_flight() {
        let events = vec![
            // id 4: no arrival (lost to ring overwrite) — skipped.
            ev(10, EventKind::ReqAdmit, 4, 0),
            ev(20, EventKind::ReqComplete, 4, 1),
            // id 5: arrival but no terminal — in flight.
            ev(30, EventKind::ReqArrive, 5, 1),
            ev(30, EventKind::ReqAdmit, 5, 2),
        ];
        let spans = assemble_requests(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, 5);
        assert_eq!(spans[0].outcome, ReqOutcome::InFlight);
    }

    #[test]
    fn slowest_completed_orders_by_latency() {
        let mut events = Vec::new();
        for (id, lat) in [(1u64, 100u64), (2, 900), (3, 500)] {
            events.push(ev(0, EventKind::ReqArrive, id, 0));
            events.push(ev(0, EventKind::ReqAdmit, id, 0));
            events.push(ev(10, EventKind::ReqDispatch, id, 0));
            events.push(ev(lat, EventKind::ReqComplete, id, 1));
        }
        // A shed request never counts as an exemplar.
        events.push(ev(0, EventKind::ReqArrive, 4, 0));
        events.push(ev(5000, EventKind::ReqShed, 4, 0));
        let spans = assemble_requests(&events);
        let top = slowest_completed(&spans, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, 2);
        assert_eq!(top[1].id, 3);
    }

    #[test]
    fn span_json_has_phase_fields() {
        let events = vec![
            ev(100, EventKind::ReqArrive, 7, 3),
            ev(100, EventKind::ReqAdmit, 7, 1),
            ev(500, EventKind::ReqDispatch, 7, 130),
            ev(900, EventKind::ReqComplete, 7, 1),
        ];
        let spans = assemble_requests(&events);
        let j = spans[0].to_json();
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.get("latency"), Some(&Json::Int(800)));
        assert_eq!(back.get("queue"), Some(&Json::Int(400)));
        assert_eq!(
            back.get("outcome"),
            Some(&Json::Str("completed".to_string()))
        );
        assert_eq!(
            back.get("events").map(|e| match e {
                Json::Arr(a) => a.len(),
                _ => 0,
            }),
            Some(4)
        );
    }
}
