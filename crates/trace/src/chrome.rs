//! Chrome `trace_event` export.
//!
//! Emits the JSON Object Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! `B`/`E`/`i` records with microsecond timestamps. Simulated cycles
//! are converted with the machine profile's clock frequency, so a
//! 1127-cycle VAS switch on a 2.4 GHz profile renders as ~0.47 µs —
//! the same wall-clock the paper's Table 2 implies.

use crate::event::{Event, EventKind, Phase};
use crate::json::Json;

/// Builds the `trace_event` document for `events`. `freq_hz` is the
/// simulated core frequency used to convert cycles to microseconds;
/// `dropped` (events lost to ring overwrite) is recorded in metadata
/// so truncated traces are visibly truncated.
pub fn chrome_trace(events: &[Event], freq_hz: f64, dropped: u64) -> Json {
    let cycles_to_us = 1e6 / freq_hz;
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let mut rec = vec![
            ("name".to_string(), Json::str(ev.kind.name())),
            ("cat".to_string(), Json::str("sjmp")),
            ("ph".to_string(), Json::str(ev.phase.chrome_ph())),
            ("ts".to_string(), Json::Float(ev.ts as f64 * cycles_to_us)),
            ("pid".to_string(), Json::Int(1)),
            ("tid".to_string(), Json::Int(i64::from(ev.core))),
        ];
        if ev.phase == Phase::Instant {
            // Thread-scoped instant marker.
            rec.push(("s".to_string(), Json::str("t")));
        }
        rec.push((
            "args".to_string(),
            Json::Obj(vec![
                ("cycles".to_string(), Json::from_u64(ev.ts)),
                ("arg0".to_string(), Json::from_u64(ev.arg0)),
                ("arg1".to_string(), Json::from_u64(ev.arg1)),
            ]),
        ));
        out.push(Json::Obj(rec));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(out)),
        ("displayTimeUnit".to_string(), Json::str("ns")),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("generator".to_string(), Json::str("sjmp-trace")),
                ("freq_hz".to_string(), Json::Float(freq_hz)),
                ("dropped_events".to_string(), Json::from_u64(dropped)),
            ]),
        ),
    ])
}

/// A trace document read back from disk: the reconstructed event
/// stream plus the export metadata analyzers need to judge it.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// The events, in the order the exporter wrote them.
    pub events: Vec<Event>,
    /// Core frequency recorded at export time.
    pub freq_hz: f64,
    /// Events lost to ring overwrite before export. A nonzero value
    /// means begin/end pairing and lock nesting cannot be trusted.
    pub dropped: u64,
}

/// Inverse of [`chrome_trace`]: reconstructs the exact [`Event`]
/// stream from an exported document. The export is lossless — `name`
/// maps back through [`EventKind::from_name`], `tid` is the core, and
/// `args.cycles`/`args.arg0`/`args.arg1` carry the raw words — so
/// `parse_chrome_trace(chrome_trace(evs, f, d))` returns `evs`
/// verbatim. Records whose `name` is not a known kind are rejected:
/// this parser exists for replay analysis, where silently skipping
/// events would fabricate orderings that never happened.
///
/// # Errors
///
/// A message naming the first malformed record.
pub fn parse_chrome_trace(doc: &Json) -> Result<ParsedTrace, String> {
    let records = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    let other = doc.get("otherData");
    let freq_hz = other
        .and_then(|o| o.get("freq_hz"))
        .and_then(Json::as_f64)
        .ok_or("missing \"otherData.freq_hz\"")?;
    let dropped = other
        .and_then(|o| o.get("dropped_events"))
        .and_then(as_u64)
        .ok_or("missing \"otherData.dropped_events\"")?;
    let mut events = Vec::with_capacity(records.len());
    for (i, rec) in records.iter().enumerate() {
        let fail = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = rec
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing \"name\""))?;
        let kind = EventKind::from_name(name)
            .ok_or_else(|| fail(&format!("unknown event kind \"{name}\"")))?;
        let phase = match rec.get("ph").and_then(Json::as_str) {
            Some("B") => Phase::Begin,
            Some("E") => Phase::End,
            Some("i") => Phase::Instant,
            _ => return Err(fail("bad \"ph\"")),
        };
        let core = rec
            .get("tid")
            .and_then(as_u64)
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| fail("bad \"tid\""))?;
        let args = rec.get("args").ok_or_else(|| fail("missing \"args\""))?;
        let word = |key: &str| {
            args.get(key)
                .and_then(as_u64)
                .ok_or_else(|| fail(&format!("bad \"args.{key}\"")))
        };
        events.push(Event {
            ts: word("cycles")?,
            core,
            phase,
            kind,
            arg0: word("arg0")?,
            arg1: word("arg1")?,
        });
    }
    Ok(ParsedTrace {
        events,
        freq_hz,
        dropped,
    })
}

/// `u64` view of a JSON number. `from_u64` writes values above
/// `i64::MAX` as floats, so both variants must convert back.
fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Int(i) => u64::try_from(*i).ok(),
        Json::Float(f) if *f >= 0.0 && f.is_finite() => Some(*f as u64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn exports_spans_and_instants() {
        let events = vec![
            Event {
                ts: 2400,
                core: 0,
                phase: Phase::Begin,
                kind: EventKind::VasSwitch,
                arg0: 7,
                arg1: 0,
            },
            Event {
                ts: 4800,
                core: 0,
                phase: Phase::End,
                kind: EventKind::VasSwitch,
                arg0: 7,
                arg1: 0,
            },
            Event {
                ts: 3000,
                core: 1,
                phase: Phase::Instant,
                kind: EventKind::TlbMiss,
                arg0: 2,
                arg1: 0,
            },
        ];
        let doc = chrome_trace(&events, 2.4e9, 5);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        let tev = back.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(tev.len(), 3);
        assert_eq!(tev[0].get("ph"), Some(&Json::str("B")));
        assert_eq!(tev[0].get("name"), Some(&Json::str("vas_switch")));
        // 2400 cycles at 2.4 GHz is exactly 1 µs.
        assert!((tev[0].get("ts").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(tev[1].get("ph"), Some(&Json::str("E")));
        assert_eq!(tev[2].get("ph"), Some(&Json::str("i")));
        assert_eq!(tev[2].get("s"), Some(&Json::str("t")));
        assert_eq!(
            back.get("otherData").unwrap().get("dropped_events"),
            Some(&Json::Int(5))
        );
    }

    #[test]
    fn parse_round_trips_the_export() {
        let events: Vec<Event> = EventKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &kind)| Event {
                ts: 1000 + i as u64 * 17,
                core: (i % 3) as u32,
                phase: match i % 3 {
                    0 => Phase::Begin,
                    1 => Phase::End,
                    _ => Phase::Instant,
                },
                kind,
                arg0: i as u64,
                arg1: 0x1000_0000_0000 + i as u64 * 8,
            })
            .collect();
        let doc = chrome_trace(&events, 2.4e9, 3);
        // Through text and back, as the lint bin will read it.
        let back = Json::parse(&doc.to_string()).unwrap();
        let parsed = parse_chrome_trace(&back).unwrap();
        assert_eq!(parsed.events, events);
        assert_eq!(parsed.dropped, 3);
        assert!((parsed.freq_hz - 2.4e9).abs() < 1.0);
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let doc = Json::parse(
            r#"{"traceEvents":[{"name":"bogus","ph":"i","ts":0,"pid":1,
                "tid":0,"args":{"cycles":0,"arg0":0,"arg1":0}}],
                "otherData":{"freq_hz":1e9,"dropped_events":0}}"#,
        )
        .unwrap();
        assert!(parse_chrome_trace(&doc).unwrap_err().contains("bogus"));
    }
}
