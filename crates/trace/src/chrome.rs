//! Chrome `trace_event` export.
//!
//! Emits the JSON Object Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! `B`/`E`/`i` records with microsecond timestamps. Simulated cycles
//! are converted with the machine profile's clock frequency, so a
//! 1127-cycle VAS switch on a 2.4 GHz profile renders as ~0.47 µs —
//! the same wall-clock the paper's Table 2 implies.

use crate::event::{Event, Phase};
use crate::json::Json;

/// Builds the `trace_event` document for `events`. `freq_hz` is the
/// simulated core frequency used to convert cycles to microseconds;
/// `dropped` (events lost to ring overwrite) is recorded in metadata
/// so truncated traces are visibly truncated.
pub fn chrome_trace(events: &[Event], freq_hz: f64, dropped: u64) -> Json {
    let cycles_to_us = 1e6 / freq_hz;
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let mut rec = vec![
            ("name".to_string(), Json::str(ev.kind.name())),
            ("cat".to_string(), Json::str("sjmp")),
            ("ph".to_string(), Json::str(ev.phase.chrome_ph())),
            ("ts".to_string(), Json::Float(ev.ts as f64 * cycles_to_us)),
            ("pid".to_string(), Json::Int(1)),
            ("tid".to_string(), Json::Int(i64::from(ev.core))),
        ];
        if ev.phase == Phase::Instant {
            // Thread-scoped instant marker.
            rec.push(("s".to_string(), Json::str("t")));
        }
        rec.push((
            "args".to_string(),
            Json::Obj(vec![
                ("cycles".to_string(), Json::from_u64(ev.ts)),
                ("arg0".to_string(), Json::from_u64(ev.arg0)),
                ("arg1".to_string(), Json::from_u64(ev.arg1)),
            ]),
        ));
        out.push(Json::Obj(rec));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(out)),
        ("displayTimeUnit".to_string(), Json::str("ns")),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("generator".to_string(), Json::str("sjmp-trace")),
                ("freq_hz".to_string(), Json::Float(freq_hz)),
                ("dropped_events".to_string(), Json::from_u64(dropped)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn exports_spans_and_instants() {
        let events = vec![
            Event {
                ts: 2400,
                core: 0,
                phase: Phase::Begin,
                kind: EventKind::VasSwitch,
                arg0: 7,
                arg1: 0,
            },
            Event {
                ts: 4800,
                core: 0,
                phase: Phase::End,
                kind: EventKind::VasSwitch,
                arg0: 7,
                arg1: 0,
            },
            Event {
                ts: 3000,
                core: 1,
                phase: Phase::Instant,
                kind: EventKind::TlbMiss,
                arg0: 2,
                arg1: 0,
            },
        ];
        let doc = chrome_trace(&events, 2.4e9, 5);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        let tev = back.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(tev.len(), 3);
        assert_eq!(tev[0].get("ph"), Some(&Json::str("B")));
        assert_eq!(tev[0].get("name"), Some(&Json::str("vas_switch")));
        // 2400 cycles at 2.4 GHz is exactly 1 µs.
        assert!((tev[0].get("ts").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(tev[1].get("ph"), Some(&Json::str("E")));
        assert_eq!(tev[2].get("ph"), Some(&Json::str("i")));
        assert_eq!(tev[2].get("s"), Some(&Json::str("t")));
        assert_eq!(
            back.get("otherData").unwrap().get("dropped_events"),
            Some(&Json::Int(5))
        );
    }
}
