//! # sjmp-trace — cycle-accurate event tracing and unified metrics
//!
//! The paper's evaluation decomposes every cost into syscall entry +
//! CR3 load + TLB refill (Table 2, Figs 6–9). This crate is the
//! instrumentation layer that lets the reproduction make the same
//! decomposition *from a recorded run* instead of from the cost model's
//! constants alone: a ring-buffered structured event tracer stamped
//! with simulated cycles, and a metrics registry of monotonic counters
//! plus log₂-bucketed cycle histograms with snapshot/delta semantics.
//!
//! ## Design rules
//!
//! * **Leaf crate.** No dependencies, not even on `sjmp-mem`: callers
//!   pass plain `u64` cycle timestamps (read from their `CycleClock`),
//!   so every other crate in the workspace can depend on this one.
//! * **Zero modeled cost.** Recording an event never advances the
//!   simulated clock — the tracer only *reads* timestamps handed to it.
//!   A run with tracing enabled therefore reports bit-identical modeled
//!   cycle counts to the same run with tracing disabled; this is an
//!   invariant tested in `tests/trace_invariants.rs` at the workspace
//!   root, not an aspiration.
//! * **Zero work when disabled.** [`Tracer`] is an `Option<Arc<..>>`;
//!   the disabled tracer (the [`Default`]) is `None` and every
//!   recording call is a single branch on it.
//! * **Paired spans.** Durations come from [`Phase::Begin`]/
//!   [`Phase::End`] pairs matched per `(core, kind)`; the matcher feeds
//!   the cycle histograms so per-syscall breakdowns (a trace-derived
//!   Table 2) fall out of the registry without offline processing —
//!   though the full event stream is also exportable as Chrome
//!   `trace_event` JSON for timeline inspection.
//!
//! ## Quick example
//!
//! ```
//! use sjmp_trace::{EventKind, Tracer};
//!
//! let t = Tracer::new(1024);
//! t.begin(100, 0, EventKind::VasSwitch, 7);
//! t.begin(110, 0, EventKind::Cr3Load, 0);
//! t.end(240, 0, EventKind::Cr3Load, 0);
//! t.end(300, 0, EventKind::VasSwitch, 7);
//! let snap = t.snapshot();
//! assert_eq!(snap.histogram("vas_switch").unwrap().sum, 200);
//! assert_eq!(snap.histogram("cr3_load").unwrap().sum, 130);
//! let chrome = t.chrome_trace_json(2.4e9); // ready for chrome://tracing
//! assert!(chrome.contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod request;
pub mod ring;
pub mod tracer;

pub use chrome::{chrome_trace, parse_chrome_trace, ParsedTrace};
pub use event::{Event, EventKind, Phase};
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::{fold_stacks, Profile, Subsystem, SubsystemRow};
pub use request::{assemble_requests, slowest_completed, ReqOutcome, ReqPhases, RequestSpan};
pub use ring::Ring;
pub use tracer::Tracer;
