//! Unified metrics registry: monotonic counters and log₂ cycle
//! histograms with snapshot/delta semantics.
//!
//! The scattered `*Stats` structs around the workspace are cumulative
//! since boot, which makes phase measurements ("how many TLB misses in
//! phase 2?") awkward: the caller has to subtract by hand, field by
//! field. The registry replaces that with two uniform primitives —
//! named `u64` counters and named [`Histogram`]s of cycle durations —
//! and a [`MetricsSnapshot`] that supports `delta(&earlier)`, so a
//! phase is measured by snapshotting before and after and subtracting
//! once.

use std::collections::BTreeMap;

use crate::json::Json;

/// Number of histogram buckets: bucket `i` counts values whose bit
/// length is `i` (value 0 lands in bucket 0, so `u64` needs 65).
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of cycle durations.
///
/// Bucket `i` counts values `v` with `2^(i-1) <= v < 2^i` (bucket 0
/// counts zeros), so the full `u64` range is covered in 65 buckets —
/// coarse at the top, precise where syscall costs actually live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log₂ buckets; see the type docs for the boundaries.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the bucket holding the inclusive one-based rank
    /// (`1..=count`).
    fn rank_bucket(&self, rank: u64) -> usize {
        debug_assert!(rank >= 1 && rank <= self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return i;
            }
        }
        HIST_BUCKETS - 1
    }

    /// Upper bound of the bucket holding the inclusive one-based rank
    /// (`1..=count`).
    fn rank_upper_bound(&self, rank: u64) -> u64 {
        // Bucket i holds values of bit length i: [2^(i-1), 2^i).
        match self.rank_bucket(rank) {
            i if i >= 64 => u64::MAX,
            0 => 0,
            i => (1u64 << i) - 1,
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) as a **conservative
    /// upper bound**: the log₂ bucket boundary at the percentile rank,
    /// clamped to the exact recorded `[min, max]`.
    ///
    /// The returned value `r` brackets the true percentile `v` as
    /// `v <= r < 2 * v` — the relative error of one power-of-two bucket
    /// — and is exact whenever the rank lands in the min or max bucket
    /// after clamping (in particular p0 and p100 are exact). Because `r`
    /// never under-reports, `r <= deadline` proves the true tail meets
    /// the deadline, which is how the overload benchmarks gate p999.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Inclusive nearest-rank definition: the smallest value with at
        // least ceil(p/100 * count) observations at or below it.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Rank 1 is the smallest recorded value and rank `count` the
        // largest — both are tracked exactly, so report them exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        self.rank_upper_bound(rank).clamp(self.min, self.max)
    }

    /// The exact `(lower, upper)` bracket of the `p`-th percentile.
    ///
    /// `upper` is exactly [`Histogram::percentile`]'s conservative
    /// bound; `lower` is the inclusive lower edge of the same log₂
    /// bucket (`2^(i-1)`, or 0 for the zero bucket), clamped to the
    /// recorded `[min, max]`. The true percentile `v` always satisfies
    /// `lower <= v <= upper`, and `lower == upper` whenever the rank is
    /// resolved exactly (min/max ranks, single-value histograms).
    /// Returns `(0, 0)` for an empty histogram.
    pub fn percentile_bounds(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return (self.min, self.min);
        }
        if rank == self.count {
            return (self.max, self.max);
        }
        let i = self.rank_bucket(rank);
        let upper = match i {
            i if i >= 64 => u64::MAX,
            0 => 0,
            i => (1u64 << i) - 1,
        }
        .clamp(self.min, self.max);
        // Inclusive lower edge of bucket i is 2^(i-1) (0 for bucket 0);
        // the recorded min tightens it further. The rank's bucket holds
        // at least one recorded value, so the edge never exceeds `max`.
        let lower = match i {
            0 => 0,
            i => 1u64 << (i - 1),
        }
        .clamp(self.min, upper);
        (lower, upper)
    }

    /// The counts recorded since `earlier` (which must be an older
    /// snapshot of the same histogram). Min/max cannot be subtracted,
    /// so the delta keeps `self`'s: they stay correct when all
    /// recording happened after `earlier`, which is the snapshot/delta
    /// contract.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: [0; HIST_BUCKETS],
        };
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        if out.count == 0 {
            out.min = u64::MAX;
            out.max = 0;
        }
        out
    }

    /// Flat JSON form (non-empty buckets only, keyed by upper bound).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("count".to_string(), Json::from_u64(self.count)),
            ("sum".to_string(), Json::from_u64(self.sum)),
            (
                "min".to_string(),
                Json::from_u64(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max".to_string(), Json::from_u64(self.max)),
            ("mean".to_string(), Json::Float(self.mean())),
        ];
        let mut buckets = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 holds 0).
                let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
                buckets.push(Json::Obj(vec![
                    ("le".to_string(), Json::Float(le as f64)),
                    ("n".to_string(), Json::from_u64(n)),
                ]));
            }
        }
        obj.push(("buckets".to_string(), Json::Arr(buckets)));
        Json::Obj(obj)
    }
}

/// Mutable registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Records a cycle duration into the histogram `name`.
    pub fn record(&mut self, name: &str, cycles: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(cycles);
        } else {
            let mut h = Histogram::default();
            h.record(cycles);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Drops all counters and histograms.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Cycle histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sets a counter directly (used when folding external `*Stats`
    /// structs into one consolidated snapshot).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// What happened between `earlier` and `self`: counters and
    /// histogram counts subtract; names present only in `self` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, &v) in &self.counters {
            let base = earlier.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name.clone(), v.saturating_sub(base));
        }
        for (name, h) in &self.histograms {
            let d = match earlier.histograms.get(name) {
                Some(e) => h.delta(e),
                None => *h,
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Flat JSON dump: `{"counters": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::from_u64(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_deltas() {
        let mut h = Histogram::default();
        h.record(100);
        h.record(700);
        let early = h;
        h.record(1127);
        let d = h.delta(&early);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1127);
        assert_eq!(d.buckets[Histogram::bucket_index(1127)], 1);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 1127);
    }

    #[test]
    fn percentiles_are_conservative_and_bucket_bounded() {
        let mut h = Histogram::default();
        // 90 fast ops at 1000 cycles, 9 at 5000, one straggler at 70000.
        for _ in 0..90 {
            h.record(1000);
        }
        for _ in 0..9 {
            h.record(5000);
        }
        h.record(70_000);
        // p50 rank lands in the 1000-cycle bucket: upper bound 1023.
        let p50 = h.percentile(50.0);
        assert!((1000..2000).contains(&p50), "p50 = {p50}");
        // p99 rank 99 lands in the 5000 bucket: bound within 2x.
        let p99 = h.percentile(99.0);
        assert!((5000..10_000).contains(&p99), "p99 = {p99}");
        // p100 clamps to the exact max; p0 to the exact min.
        assert_eq!(h.percentile(100.0), 70_000);
        assert_eq!(h.percentile(0.0), 1000);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(h.percentile(250.0), 70_000);
        assert_eq!(Histogram::default().percentile(99.0), 0);
    }

    #[test]
    fn percentile_bounds_bracket_the_truth() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1000);
        }
        for _ in 0..9 {
            h.record(5000);
        }
        h.record(70_000);
        // p50 rank lands in the 1000 bucket: [512, 1023] clamped to
        // min=1000 below.
        let (lo, hi) = h.percentile_bounds(50.0);
        assert!(lo <= 1000 && 1000 <= hi, "p50 bounds ({lo}, {hi})");
        assert_eq!(hi, h.percentile(50.0));
        // p99 (rank 99) is truly 5000: bucket 13 covers [4096, 8191].
        let (lo, hi) = h.percentile_bounds(99.0);
        assert!(lo <= 5000 && 5000 <= hi, "p99 bounds ({lo}, {hi})");
        assert!(lo >= 4096, "p99 lower bound {lo} below bucket edge");
        // Min and max ranks are exact: bounds collapse.
        assert_eq!(h.percentile_bounds(0.0), (1000, 1000));
        assert_eq!(h.percentile_bounds(100.0), (70_000, 70_000));
        assert_eq!(Histogram::default().percentile_bounds(99.0), (0, 0));
    }

    #[test]
    fn percentile_bounds_max_bucket_shared() {
        // Two values share the top bucket; a rank resolving there must
        // keep a lower bound at the bucket edge, not claim exactness.
        let mut h = Histogram::default();
        for _ in 0..8 {
            h.record(100);
        }
        h.record(70_000); // bucket 17: [65536, 131071]
        h.record(100_000); // same bucket; max = 100_000
        let (lo, hi) = h.percentile_bounds(90.0); // rank 9 -> 70_000
        assert!(lo <= 70_000 && 70_000 <= hi, "bounds ({lo}, {hi})");
        assert_eq!(lo, 65_536);
        assert_eq!(hi, 100_000); // bucket top 131071 clamps to max
    }

    #[test]
    fn percentile_single_value_is_exact() {
        let mut h = Histogram::default();
        h.record(1127);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 1127, "p{p}");
        }
    }

    #[test]
    fn p999_separates_the_tail() {
        let mut h = Histogram::default();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1 << 20);
        // Rank 999 of 1000 is still the fast bucket...
        assert!(h.percentile(99.8) < 200);
        // ...while p99.9 and above reach the straggler's bucket.
        assert!(h.percentile(99.95) >= 1 << 20);
    }

    #[test]
    fn registry_snapshot_delta() {
        let mut reg = MetricsRegistry::new();
        reg.add("tlb.misses", 5);
        reg.record("vas_switch", 1127);
        let s1 = reg.snapshot();
        reg.add("tlb.misses", 3);
        reg.add("tlb.hits", 10);
        reg.record("vas_switch", 807);
        let s2 = reg.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.counter("tlb.misses"), 3);
        assert_eq!(d.counter("tlb.hits"), 10);
        let h = d.histogram("vas_switch").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 807);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut reg = MetricsRegistry::new();
        reg.add("evictions", 2);
        reg.record("swap_out", 60_000);
        let j = reg.snapshot().to_json();
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters").and_then(|c| c.get("evictions")),
            Some(&Json::Int(2))
        );
        let hist = back.get("histograms").and_then(|h| h.get("swap_out"));
        assert!(hist.is_some());
        assert_eq!(hist.unwrap().get("count"), Some(&Json::Int(1)));
    }
}
