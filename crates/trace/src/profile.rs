//! Cycle-attribution profiler: collapsed stacks and a per-subsystem
//! cycle table from a recorded event stream.
//!
//! The tracer's ring holds `Begin`/`End` spans per core; this module
//! replays them through a per-core span stack and charges each span's
//! **self cycles** (duration minus the duration of its children) to the
//! stack it ran under. Two views come out:
//!
//! * [`Profile::collapsed`] — the semicolon-joined collapsed-stack
//!   format every flamegraph renderer eats (`core0;vas_switch;cr3_load
//!   130` per line), so any traced run can be turned into a flamegraph
//!   with stock tooling;
//! * [`Profile::subsystem_table`] — a `top`-style table folding kinds
//!   into subsystems (translation, switch, lock, blk-io, swap, kernel,
//!   rpc, request), answering "where do the cycles go" in eight rows.
//!
//! Spans of different kinds may interleave without strict nesting (the
//! tracer matches per `(core, kind)`); the folder closes the nearest
//! open frame of the ending kind and counts such out-of-order closes in
//! [`Profile::malformed`] rather than guessing silently.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind, Phase};

/// Coarse subsystem buckets for the `sjmp-top` view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// TLB lookups/flushes, page walks, CR3 loads.
    Translation,
    /// VAS switch/attach/detach and vmspace bookkeeping.
    Switch,
    /// Segment lock acquire/contention.
    Lock,
    /// Snapshot-disk block IO, journal, save/load.
    BlkIo,
    /// Swap device traffic and reclaim.
    Swap,
    /// Syscall entry, mmap/munmap, faults, teardown.
    Kernel,
    /// URPC send/receive.
    Rpc,
    /// Request lifecycle markers from the serving stack.
    Request,
}

impl Subsystem {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Translation => "translation",
            Subsystem::Switch => "switch",
            Subsystem::Lock => "lock",
            Subsystem::BlkIo => "blk_io",
            Subsystem::Swap => "swap",
            Subsystem::Kernel => "kernel",
            Subsystem::Rpc => "rpc",
            Subsystem::Request => "request",
        }
    }

    /// Which subsystem a kind's cycles belong to.
    pub fn of(kind: EventKind) -> Subsystem {
        use EventKind::*;
        match kind {
            TlbHit | TlbMiss | TlbFlush | PageWalk | Cr3Load => Subsystem::Translation,
            SwitchVmspace | SwitchBook | VasSwitch | VasAttach | VasDetach | VasEnter
            | SwitchRetry => Subsystem::Switch,
            LockAcquire | LockRelease | LockContention | LockSkip => Subsystem::Lock,
            BlkRead | BlkWrite | BlkFlush | JournalReplay | SnapshotCommit | SnapshotSave
            | SnapshotLoad => Subsystem::BlkIo,
            SwapIn | SwapOut | ReclaimPass | Evict | QuotaDenial | OomKill | MajorFault => {
                Subsystem::Swap
            }
            KernelEntry | Mmap | Munmap | PageFault | MemRead | MemWrite | Reap | SegRegister
            | SegExtent | SegAttach => Subsystem::Kernel,
            RpcSend | RpcRecv => Subsystem::Rpc,
            ReqArrive | ReqAdmit | ReqDispatch | ReqRetry | ReqShed | ReqComplete => {
                Subsystem::Request
            }
        }
    }
}

/// One row of the subsystem table.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsystemRow {
    /// The bucket.
    pub subsystem: Subsystem,
    /// Self cycles charged to spans of this subsystem.
    pub self_cycles: u64,
    /// Share of all attributed span cycles, in `[0, 1]`.
    pub share: f64,
    /// Instant events of this subsystem (no duration, still telling:
    /// TLB misses, sheds, evictions).
    pub instants: u64,
}

/// The folded result of one event stream.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Self cycles per collapsed stack (`core0;vas_switch;cr3_load`).
    pub stacks: BTreeMap<String, u64>,
    /// Self cycles per span kind.
    pub kind_self: BTreeMap<EventKind, u64>,
    /// Instant-event counts per kind.
    pub kind_instants: BTreeMap<EventKind, u64>,
    /// `End` events that closed out of stack order or had no open
    /// frame. Nonzero means the stacks are best-effort.
    pub malformed: u64,
    /// Total self cycles attributed across all stacks.
    pub total_self: u64,
}

struct Frame {
    kind: EventKind,
    begin: u64,
    child: u64,
}

/// Folds an event stream into a [`Profile`]. Events must be in
/// emission order (as [`crate::Tracer::events`] and
/// [`crate::parse_chrome_trace`] return them); cores fold
/// independently. Spans still open when the stream ends are charged
/// nothing — an unclosed span has no measured duration.
pub fn fold_stacks(events: &[Event]) -> Profile {
    let mut profile = Profile::default();
    let mut stacks: BTreeMap<u32, Vec<Frame>> = BTreeMap::new();
    for ev in events {
        match ev.phase {
            Phase::Instant => {
                *profile.kind_instants.entry(ev.kind).or_insert(0) += 1;
            }
            Phase::Begin => {
                stacks.entry(ev.core).or_default().push(Frame {
                    kind: ev.kind,
                    begin: ev.ts,
                    child: 0,
                });
            }
            Phase::End => {
                let stack = stacks.entry(ev.core).or_default();
                // Close the nearest open frame of this kind — matching
                // the tracer's per-(core, kind) pairing. Anything other
                // than the top is an out-of-order close.
                let Some(pos) = stack.iter().rposition(|f| f.kind == ev.kind) else {
                    profile.malformed += 1;
                    continue;
                };
                if pos != stack.len() - 1 {
                    profile.malformed += 1;
                }
                let frame = stack.remove(pos);
                let dur = ev.ts.saturating_sub(frame.begin);
                let self_cycles = dur.saturating_sub(frame.child);
                if let Some(parent) = stack.get_mut(pos.wrapping_sub(1)).filter(|_| pos > 0) {
                    parent.child += dur;
                }
                let mut line = format!("core{}", ev.core);
                for f in stack.iter().take(pos) {
                    line.push(';');
                    line.push_str(f.kind.name());
                }
                line.push(';');
                line.push_str(frame.kind.name());
                *profile.stacks.entry(line).or_insert(0) += self_cycles;
                *profile.kind_self.entry(frame.kind).or_insert(0) += self_cycles;
                profile.total_self += self_cycles;
            }
        }
    }
    profile
}

impl Profile {
    /// The collapsed-stack document: one `stack cycles` line per
    /// distinct stack, sorted by stack name (deterministic output for
    /// byte-compare CI gates). Feed straight to `flamegraph.pl` or
    /// speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, cycles) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// The per-subsystem cycle table, heaviest first. Subsystems with
    /// neither span cycles nor instants are omitted.
    pub fn subsystem_table(&self) -> Vec<SubsystemRow> {
        let mut cycles: BTreeMap<Subsystem, u64> = BTreeMap::new();
        let mut instants: BTreeMap<Subsystem, u64> = BTreeMap::new();
        for (&kind, &c) in &self.kind_self {
            *cycles.entry(Subsystem::of(kind)).or_insert(0) += c;
        }
        for (&kind, &n) in &self.kind_instants {
            *instants.entry(Subsystem::of(kind)).or_insert(0) += n;
        }
        let mut subsystems: Vec<Subsystem> =
            cycles.keys().chain(instants.keys()).copied().collect();
        subsystems.sort();
        subsystems.dedup();
        let mut rows: Vec<SubsystemRow> = subsystems
            .into_iter()
            .map(|s| {
                let c = cycles.get(&s).copied().unwrap_or(0);
                SubsystemRow {
                    subsystem: s,
                    self_cycles: c,
                    share: if self.total_self == 0 {
                        0.0
                    } else {
                        c as f64 / self.total_self as f64
                    },
                    instants: instants.get(&s).copied().unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_cycles
                .cmp(&a.self_cycles)
                .then(b.instants.cmp(&a.instants))
                .then(a.subsystem.cmp(&b.subsystem))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(core: u32, kind: EventKind, begin: u64, end: u64) -> [Event; 2] {
        [
            Event {
                ts: begin,
                core,
                phase: Phase::Begin,
                kind,
                arg0: 0,
                arg1: 0,
            },
            Event {
                ts: end,
                core,
                phase: Phase::End,
                kind,
                arg0: 0,
                arg1: 0,
            },
        ]
    }

    #[test]
    fn nested_spans_split_self_from_child() {
        // vas_switch 100..300 with cr3_load 110..240 inside.
        let [b0, e0] = span(0, EventKind::VasSwitch, 100, 300);
        let [b1, e1] = span(0, EventKind::Cr3Load, 110, 240);
        let p = fold_stacks(&[b0, b1, e1, e0]);
        assert_eq!(p.stacks.get("core0;vas_switch;cr3_load"), Some(&130));
        assert_eq!(p.stacks.get("core0;vas_switch"), Some(&70));
        assert_eq!(p.total_self, 200);
        assert_eq!(p.malformed, 0);
        assert_eq!(p.kind_self.get(&EventKind::Cr3Load), Some(&130));
    }

    #[test]
    fn cores_fold_independently() {
        let [b0, e0] = span(0, EventKind::RpcSend, 0, 100);
        let [b1, e1] = span(1, EventKind::RpcSend, 0, 40);
        let p = fold_stacks(&[b0, b1, e1, e0]);
        assert_eq!(p.stacks.get("core0;rpc_send"), Some(&100));
        assert_eq!(p.stacks.get("core1;rpc_send"), Some(&40));
    }

    #[test]
    fn out_of_order_close_is_counted_not_fatal() {
        // Begin A, Begin B, End A, End B: A closes from under B.
        let [ba, ea] = span(0, EventKind::Mmap, 0, 100);
        let [bb, eb] = span(0, EventKind::PageWalk, 10, 150);
        let p = fold_stacks(&[ba, bb, ea, eb]);
        assert_eq!(p.malformed, 1);
        // Both spans still get their duration attributed.
        assert_eq!(p.kind_self.get(&EventKind::PageWalk), Some(&140));
        assert!(p.stacks.contains_key("core0;mmap"));
        // An end with no open frame at all is also surfaced.
        let p2 = fold_stacks(&span(0, EventKind::Reap, 5, 9)[1..]);
        assert_eq!(p2.malformed, 1);
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let [b0, e0] = span(2, EventKind::VasSwitch, 0, 50);
        let p = fold_stacks(&[b0, e0]);
        assert_eq!(p.collapsed(), "core2;vas_switch 50\n");
    }

    #[test]
    fn subsystem_table_buckets_and_sorts() {
        let [b0, e0] = span(0, EventKind::PageWalk, 0, 1000);
        let [b1, e1] = span(0, EventKind::BlkRead, 2000, 2100);
        let mut events = vec![b0, e0, b1, e1];
        events.push(Event {
            ts: 5,
            core: 0,
            phase: Phase::Instant,
            kind: EventKind::TlbMiss,
            arg0: 0,
            arg1: 0,
        });
        let p = fold_stacks(&events);
        let table = p.subsystem_table();
        assert_eq!(table[0].subsystem, Subsystem::Translation);
        assert_eq!(table[0].self_cycles, 1000);
        assert_eq!(table[0].instants, 1);
        assert!((table[0].share - 1000.0 / 1100.0).abs() < 1e-12);
        assert_eq!(table[1].subsystem, Subsystem::BlkIo);
        // Subsystems that never appeared are omitted.
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn every_kind_has_a_subsystem() {
        // The match in Subsystem::of is exhaustive by construction;
        // this pins the bucket names used in reports.
        for kind in EventKind::ALL {
            assert!(!Subsystem::of(kind).name().is_empty());
        }
    }

    #[test]
    fn unclosed_spans_charge_nothing() {
        let [b0, _] = span(0, EventKind::SwapIn, 0, 10);
        let p = fold_stacks(&[b0]);
        assert_eq!(p.total_self, 0);
        assert!(p.stacks.is_empty());
    }
}
