//! The simulated kernel: processes, address spaces, and system calls.
//!
//! [`Kernel`] assembles the machine (physical memory plus a
//! [`Machine`] of hardware threads — one MMU and one cycle clock per
//! core) and implements the classical OS surface SpaceJMP builds on and
//! is compared against:
//!
//! * `mmap`/`munmap` with **eager page-table construction** — the legacy
//!   path whose cost Figure 1 measures and which the MAP design of the
//!   GUPS experiment (Section 5.2) uses to re-window memory;
//! * demand faulting for lazily-populated regions;
//! * vmspace creation/destruction and **vmspace switching** with the
//!   Table 2 cost structure (kernel entry + bookkeeping + CR3 load);
//! * per-flavor kernel-entry costs: DragonFly system calls vs Barrelfish
//!   capability invocations.
//!
//! The SpaceJMP object model (VASes, lockable segments) lives one layer up
//! in `spacejmp-core`, exactly as the paper layers it over the BSD memory
//! subsystem.
//!
//! # Core attribution
//!
//! Every syscall executes on an explicit hardware thread, named by a
//! [`CoreCtx`]. The pid-taking entry points resolve the context from the
//! process's pinned core ([`Kernel::ctx_of`]); the `*_on` variants take
//! it explicitly. All modeled costs — kernel entry, page-table walks and
//! construction, faults, swaps — accrue to the executing core's clock,
//! and every trace event is stamped with that core. The reclaim scan is
//! the one exception: it runs kswapd-style on the boot core
//! ([`CoreCtx::BOOT`]) regardless of who triggered it.

use std::collections::HashMap;

use sjmp_blk::{BlkError, BlkHooks, BlkStats, BlockDev, FlushFault, SnapshotStore, WriteFault};
use sjmp_mem::backend::{Backend, TranslationBackend};
use sjmp_mem::cost::{
    CoreClocks, CoreCtx, CostModel, CycleClock, KernelFlavor, MachineId, MachineProfile,
};
use sjmp_mem::machine::Machine;
use sjmp_mem::mmu::MmuStats;
use sjmp_mem::paging::{self, PteFlags};
use sjmp_mem::tlb::TlbStats;
use sjmp_mem::{Access, Asid, MemError, Mmu, Pfn, PhysMem, VirtAddr, PAGE_SIZE};
use sjmp_trace::{EventKind, MetricsSnapshot, Tracer};

use crate::acl::Creds;
use crate::error::OsError;
use crate::fault::{FaultOutcome, FaultPlan, FaultSite};
use crate::process::{Pid, Process};
use crate::vmobject::{PageSource, PageState, VmObject, VmObjectId};
use crate::vmspace::{MapPolicy, Region, Vmspace, VmspaceId};

/// Lowest address of the process-private range (text, stack, heap).
pub const PRIVATE_LO: VirtAddr = VirtAddr::new_unchecked(0x0000_0000_1000);
/// One past the highest private address. Global segments live above this,
/// which is how the DragonFly implementation "avoids \[collisions\] by
/// ensuring both globally visible and process-private segments are
/// created in disjoint address ranges" (Section 4.1).
pub const PRIVATE_HI: VirtAddr = VirtAddr::new_unchecked(0x1000_0000_0000);
/// Lowest address for globally shared segments.
pub const GLOBAL_LO: VirtAddr = VirtAddr::new_unchecked(0x1000_0000_0000);
/// One past the highest global address (top of the canonical lower half).
pub const GLOBAL_HI: VirtAddr = VirtAddr::new_unchecked(0x8000_0000_0000);

/// Default base of the process text segment.
pub const TEXT_BASE: VirtAddr = VirtAddr::new_unchecked(0x0000_0040_0000);
/// Default base of the process globals segment.
pub const DATA_BASE: VirtAddr = VirtAddr::new_unchecked(0x0000_0080_0000);
/// Top of the process stack (grows down).
pub const STACK_TOP: VirtAddr = VirtAddr::new_unchecked(0x0fff_ffff_f000);
/// Default stack size.
pub const STACK_SIZE: u64 = 256 * 1024;
/// Base of the private mmap/heap arena.
pub const MMAP_BASE: VirtAddr = VirtAddr::new_unchecked(0x0001_0000_0000);

/// Result alias for kernel operations.
pub type OsResult<T> = Result<T, OsError>;

/// Frames a single pressure-triggered reclaim pass tries to free: enough
/// to amortize the scan without purging the whole machine.
const RECLAIM_BATCH: u64 = 16;

/// Block size of the snapshot disk (matches the page size, like the
/// 4 KiB-sector NVMe devices the cost model is calibrated against).
pub const DISK_BLOCK_SIZE: u64 = 4096;

/// Counters for kernel events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// System calls / capability invocations serviced.
    pub kernel_entries: u64,
    /// vmspace switches performed.
    pub space_switches: u64,
    /// Page faults handled.
    pub faults_handled: u64,
    /// mmap calls serviced.
    pub mmaps: u64,
    /// munmap calls serviced.
    pub munmaps: u64,
    /// Pages evicted to swap by the reclaim scan.
    pub evictions: u64,
    /// Faults that had to read a page back from swap.
    pub major_faults: u64,
    /// Reclaim passes run (watermark, allocation-retry, or explicit).
    pub reclaim_passes: u64,
    /// Allocations denied because a process exceeded its memory quota.
    pub quota_denials: u64,
}

impl KernelStats {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same kernel), so benchmarks can measure a phase instead of
    /// cumulative-since-boot totals.
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            kernel_entries: self.kernel_entries - earlier.kernel_entries,
            space_switches: self.space_switches - earlier.space_switches,
            faults_handled: self.faults_handled - earlier.faults_handled,
            mmaps: self.mmaps - earlier.mmaps,
            munmaps: self.munmaps - earlier.munmaps,
            evictions: self.evictions - earlier.evictions,
            major_faults: self.major_faults - earlier.major_faults,
            reclaim_passes: self.reclaim_passes - earlier.reclaim_passes,
            quota_denials: self.quota_denials - earlier.quota_denials,
        }
    }
}

/// Free-frame multiple of the low watermark below which pressure reads
/// [`PressureLevel::Elevated`].
const PRESSURE_ELEVATED_FACTOR: u64 = 4;

/// Memory-pressure level derived from free frames vs. the low
/// watermark, reported by [`Kernel::mem_pressure`]. Overload-control
/// layers use it to degrade service (e.g. flip a shard read-only)
/// instead of running into quota denials and the OOM killer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PressureLevel {
    /// Free memory comfortably above the watermark.
    #[default]
    Normal,
    /// Free memory within [`PRESSURE_ELEVATED_FACTOR`]× the watermark:
    /// reclaim will start soon; shed optional work.
    Elevated,
    /// Free memory at or below the watermark: reclaim is active and the
    /// OOM killer is the next escalation; stop accepting writes.
    Critical,
}

impl PressureLevel {
    /// Short lowercase name (`normal`/`elevated`/`critical`).
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::Critical => "critical",
        }
    }
}

/// Snapshot of physical-memory and pressure state, returned by
/// [`Kernel::sys_phys_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhysStats {
    /// Machine capacity in frames (DRAM + NVM tiers).
    pub total_frames: u64,
    /// Frames currently allocated to objects or page tables.
    pub allocated_frames: u64,
    /// Frames the allocator can still supply (bump region + free list).
    pub free_frames: u64,
    /// Frames in the NVM capacity tier (0 when none is configured).
    pub nvm_frames: u64,
    /// Swap slots holding evicted page images.
    pub swap_slots_used: u64,
    /// Pages evicted to swap since boot.
    pub evictions: u64,
    /// Major faults (swap-ins) since boot.
    pub major_faults: u64,
    /// Reclaim passes since boot.
    pub reclaim_passes: u64,
    /// Quota denials since boot.
    pub quota_denials: u64,
}

/// One consolidated kernel-state snapshot, returned by
/// [`Kernel::sys_stats`]: every scattered counter family — kernel,
/// physical memory, per-core MMU/TLB (summed), injected faults — plus
/// the clock, in one syscall. Supports [`KernelSnapshot::delta_since`]
/// for phase measurement and flattens to a uniform
/// [`MetricsSnapshot`] for machine-readable export.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelSnapshot {
    /// Total CPU cycles: the per-core clocks summed over every hardware
    /// thread since boot (or the last clock reset). For wall-clock time
    /// under concurrency use [`Kernel::now`] (the per-core maximum);
    /// the two coincide for single-core workloads.
    pub cycles: u64,
    /// Kernel event counters.
    pub kernel: KernelStats,
    /// Physical-memory and pressure counters.
    pub phys: PhysStats,
    /// MMU counters summed over all cores.
    pub mmu: MmuStats,
    /// TLB counters summed over all cores.
    pub tlb: TlbStats,
    /// Injected-fault counters (zero when no plan is installed).
    pub faults: crate::fault::FaultStats,
    /// Block-device counters: snapshot disk plus swap device.
    pub blk: BlkStats,
}

impl KernelSnapshot {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same kernel). Gauge-like fields (`phys` occupancy, `cycles`…)
    /// keep `self`'s current values; monotonic counters subtract.
    pub fn delta_since(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        KernelSnapshot {
            cycles: self.cycles - earlier.cycles,
            kernel: self.kernel.delta_since(&earlier.kernel),
            phys: PhysStats {
                // Occupancy figures are gauges: report the current
                // values, not a meaningless difference.
                total_frames: self.phys.total_frames,
                allocated_frames: self.phys.allocated_frames,
                free_frames: self.phys.free_frames,
                nvm_frames: self.phys.nvm_frames,
                swap_slots_used: self.phys.swap_slots_used,
                evictions: self.phys.evictions - earlier.phys.evictions,
                major_faults: self.phys.major_faults - earlier.phys.major_faults,
                reclaim_passes: self.phys.reclaim_passes - earlier.phys.reclaim_passes,
                quota_denials: self.phys.quota_denials - earlier.phys.quota_denials,
            },
            mmu: self.mmu.delta_since(&earlier.mmu),
            tlb: self.tlb.delta_since(&earlier.tlb),
            faults: self.faults.delta_since(&earlier.faults),
            blk: self.blk.delta_since(&earlier.blk),
        }
    }

    /// Flattens every counter into a uniform [`MetricsSnapshot`]
    /// (names like `kernel.space_switches`, `tlb.misses`), the form
    /// the exporters serialize.
    pub fn to_metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        m.set_counter("clock.cycles", self.cycles);
        m.set_counter("kernel.entries", self.kernel.kernel_entries);
        m.set_counter("kernel.space_switches", self.kernel.space_switches);
        m.set_counter("kernel.faults_handled", self.kernel.faults_handled);
        m.set_counter("kernel.mmaps", self.kernel.mmaps);
        m.set_counter("kernel.munmaps", self.kernel.munmaps);
        m.set_counter("kernel.evictions", self.kernel.evictions);
        m.set_counter("kernel.major_faults", self.kernel.major_faults);
        m.set_counter("kernel.reclaim_passes", self.kernel.reclaim_passes);
        m.set_counter("kernel.quota_denials", self.kernel.quota_denials);
        m.set_counter("phys.total_frames", self.phys.total_frames);
        m.set_counter("phys.allocated_frames", self.phys.allocated_frames);
        m.set_counter("phys.free_frames", self.phys.free_frames);
        m.set_counter("phys.nvm_frames", self.phys.nvm_frames);
        m.set_counter("phys.swap_slots_used", self.phys.swap_slots_used);
        m.set_counter("mmu.cr3_loads", self.mmu.cr3_loads);
        m.set_counter("mmu.translations", self.mmu.translations);
        m.set_counter("mmu.walks", self.mmu.walks);
        m.set_counter("mmu.faults", self.mmu.faults);
        m.set_counter("tlb.hits", self.tlb.hits);
        m.set_counter("tlb.misses", self.tlb.misses);
        m.set_counter("tlb.flushes", self.tlb.flushes);
        m.set_counter("tlb.asid_flushes", self.tlb.asid_flushes);
        m.set_counter("tlb.evictions", self.tlb.evictions);
        m.set_counter("tlb.insertions", self.tlb.insertions);
        m.set_counter("fault_plan.failures", self.faults.failures);
        m.set_counter("fault_plan.crashes", self.faults.crashes);
        m.set_counter("blk.reads", self.blk.reads);
        m.set_counter("blk.writes", self.blk.writes);
        m.set_counter("blk.flushes", self.blk.flushes);
        m.set_counter("blk.torn_writes", self.blk.torn_writes);
        m.set_counter("blk.dropped_flushes", self.blk.dropped_flushes);
        m.set_counter("blk.journal_replays", self.blk.journal_replays);
        m
    }
}

/// The simulated kernel and machine.
pub struct Kernel {
    flavor: KernelFlavor,
    cost: CostModel,
    phys: PhysMem,
    /// The translation backend every address-space mutation goes through.
    /// The kernel's copy is authoritative; each core's MMU holds a clone
    /// (see [`Kernel::set_backend`]).
    backend: Backend,
    /// The hardware threads: one MMU (private TLB + CR3 + stats) and one
    /// cycle clock per core.
    machine: Machine,
    processes: HashMap<Pid, Process>,
    vmobjects: HashMap<VmObjectId, VmObject>,
    vmspaces: HashMap<VmspaceId, Vmspace>,
    next_pid: u64,
    next_obj: u64,
    next_space: u64,
    next_asid: u16,
    free_asids: Vec<u16>,
    tagging: bool,
    stats: KernelStats,
    fault: Option<FaultPlan>,
    /// Per-process memory quotas in resident frames.
    quotas: HashMap<Pid, u64>,
    /// Global low watermark: allocations reclaim until at least this many
    /// frames are free. `None` disables pressure handling entirely.
    low_watermark: Option<u64>,
    /// Clock hand of the second-chance reclaim scan: (object id, page).
    reclaim_cursor: (u64, u64),
    /// Mappings of objects through page-table roots the kernel does not
    /// own (the SpaceJMP layer's VAS templates). Eviction must clear the
    /// leaf PTEs there too; clearing the template leaf once covers every
    /// vmspace that links the shared subtree.
    external_maps: HashMap<VmObjectId, Vec<(Pfn, VirtAddr)>>,
    /// Structured event tracer (disabled by default; never advances
    /// the clock, so tracing cannot perturb modeled costs).
    tracer: Tracer,
    /// The snapshot disk: a crash-consistent store for serialized VAS
    /// images, surviving machine restarts via
    /// [`Kernel::take_disk`]/[`Kernel::attach_disk`].
    disk: SnapshotStore,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("flavor", &self.flavor)
            .field("machine", &self.machine.profile().name)
            .field("processes", &self.processes.len())
            .field("vmspaces", &self.vmspaces.len())
            .field("clock", &self.machine.clocks().now())
            .finish()
    }
}

impl Kernel {
    /// Boots a kernel of the given flavor on one of the paper's machines.
    pub fn new(flavor: KernelFlavor, machine: MachineId) -> Self {
        Self::with_profile(flavor, MachineProfile::of(machine), CostModel::default())
    }

    /// Boots with a custom machine profile and cost model.
    pub fn with_profile(flavor: KernelFlavor, profile: MachineProfile, cost: CostModel) -> Self {
        let phys = PhysMem::new(profile.mem_bytes);
        let machine = Machine::new(profile, &cost);
        Kernel {
            flavor,
            cost,
            phys,
            backend: Backend::four_level(),
            machine,
            processes: HashMap::new(),
            vmobjects: HashMap::new(),
            vmspaces: HashMap::new(),
            next_pid: 1,
            next_obj: 1,
            next_space: 1,
            next_asid: 1,
            free_asids: Vec::new(),
            tagging: false,
            stats: KernelStats::default(),
            fault: None,
            quotas: HashMap::new(),
            low_watermark: None,
            reclaim_cursor: (0, 0),
            external_maps: HashMap::new(),
            tracer: Tracer::disabled(),
            disk: SnapshotStore::new(BlockDev::new(DISK_BLOCK_SIZE)),
        }
    }

    /// Attaches a tracer to the kernel and every core's MMU. Pass
    /// [`Tracer::disabled`] to stop tracing. Recording events never
    /// advances the cycle clock, so modeled costs are bit-identical
    /// with tracing on or off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.machine.set_tracer(&tracer);
        self.tracer = tracer;
    }

    /// The attached tracer (disabled unless [`Self::set_tracer`] was
    /// called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    // ---- accessors -----------------------------------------------------

    /// The kernel flavor (DragonFly or Barrelfish).
    pub fn flavor(&self) -> KernelFlavor {
        self.flavor
    }

    /// The machine profile.
    pub fn profile(&self) -> &MachineProfile {
        self.machine.profile()
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The boot core's (core 0's) cycle clock. Single-actor workloads pin
    /// pid 1 to core 0, so this remains the natural clock for them; for
    /// multi-core workloads prefer [`Self::now`] / [`Self::total_cycles`].
    pub fn clock(&self) -> &CycleClock {
        self.machine.clocks().clock(CoreCtx::BOOT.core)
    }

    /// The full per-core clock set (clones share the counters).
    pub fn clocks(&self) -> &CoreClocks {
        self.machine.clocks()
    }

    /// The simulated machine: one MMU and one clock per hardware thread.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the simulated machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Number of hardware threads on this machine.
    pub fn num_cores(&self) -> usize {
        self.machine.num_cores()
    }

    /// Global wall-clock time: the maximum over the per-core clocks.
    pub fn now(&self) -> u64 {
        self.machine.clocks().now()
    }

    /// Total CPU cycles: the per-core clocks summed.
    pub fn total_cycles(&self) -> u64 {
        self.machine.clocks().total()
    }

    /// Resets every core's clock to zero (benchmark warm-up boundary).
    pub fn reset_clocks(&self) {
        self.machine.clocks().reset();
    }

    /// The executing-core context for `pid`: the core the scheduler
    /// pinned the process to at spawn.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown pids.
    pub fn ctx_of(&self, pid: Pid) -> OsResult<CoreCtx> {
        Ok(CoreCtx::new(self.process(pid)?.core()))
    }

    /// Kernel event counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Whether TLB tagging is enabled machine-wide.
    pub fn tagging(&self) -> bool {
        self.tagging
    }

    /// Enables or disables TLB tagging on every core.
    pub fn set_tagging(&mut self, enabled: bool) {
        self.tagging = enabled;
        self.machine.set_tagging(enabled);
    }

    /// The translation backend in use.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Installs a translation backend on the kernel and every core's MMU.
    ///
    /// Call right after boot, before any vmspace is created: backends
    /// observe mappings as they are made, so mappings performed under a
    /// previous backend are invisible to the new one.
    pub fn set_backend(&mut self, backend: Backend) {
        self.machine.set_backend(&backend);
        self.backend = backend;
    }

    /// Enables or disables the host-side flattened walk cache on every
    /// core (simulated costs are identical either way; only host wall
    /// time changes).
    pub fn set_host_walk_cache(&mut self, enabled: bool) {
        self.machine.set_host_walk_cache(enabled);
    }

    /// Drops every core's host-side walk-cache entries. Callers that
    /// free page tables directly through the backend (rather than via
    /// [`Kernel::destroy_vmspace`]) must invoke this alongside the free.
    pub fn flush_host_walk_caches(&mut self) {
        self.machine.flush_host_walk_caches();
    }

    /// Split borrow of one core's MMU and physical memory, for direct
    /// load/store simulation.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mem(&mut self, core: usize) -> (&mut Mmu, &mut PhysMem) {
        (self.machine.mmu_mut(core), &mut self.phys)
    }

    /// MMU and physical memory for the core `pid` is pinned to.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown pids.
    pub fn mem_of(&mut self, pid: Pid) -> OsResult<(&mut Mmu, &mut PhysMem)> {
        let core = self.process(pid)?.core();
        Ok((self.machine.mmu_mut(core), &mut self.phys))
    }

    /// Direct access to physical memory (kernel-internal work).
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// Immutable process lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown pids.
    pub fn process(&self, pid: Pid) -> OsResult<&Process> {
        self.processes.get(&pid).ok_or(OsError::NoSuchProcess)
    }

    /// Mutable process lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown pids.
    pub fn process_mut(&mut self, pid: Pid) -> OsResult<&mut Process> {
        self.processes.get_mut(&pid).ok_or(OsError::NoSuchProcess)
    }

    /// Immutable vmspace lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchSpace`] for unknown ids.
    pub fn vmspace(&self, id: VmspaceId) -> OsResult<&Vmspace> {
        self.vmspaces.get(&id).ok_or(OsError::NoSuchSpace)
    }

    /// Mutable vmspace lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchSpace`] for unknown ids.
    pub fn vmspace_mut(&mut self, id: VmspaceId) -> OsResult<&mut Vmspace> {
        self.vmspaces.get_mut(&id).ok_or(OsError::NoSuchSpace)
    }

    /// Immutable VM object lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] for unknown ids.
    pub fn vmobject(&self, id: VmObjectId) -> OsResult<&VmObject> {
        self.vmobjects.get(&id).ok_or(OsError::NoSuchObject)
    }

    /// Mutable VM object lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] for unknown ids.
    pub fn vmobject_mut(&mut self, id: VmObjectId) -> OsResult<&mut VmObject> {
        self.vmobjects.get_mut(&id).ok_or(OsError::NoSuchObject)
    }

    /// Every live process id, sorted. Offline audits (`sjmp-analyze`)
    /// walk these; sorting keeps their findings deterministic.
    pub fn process_ids(&self) -> Vec<Pid> {
        let mut ids: Vec<Pid> = self.processes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Every live vmspace id, sorted (see [`Self::process_ids`]).
    pub fn vmspace_ids(&self) -> Vec<VmspaceId> {
        let mut ids: Vec<VmspaceId> = self.vmspaces.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Every live VM object id, sorted (see [`Self::process_ids`]).
    pub fn vmobject_ids(&self) -> Vec<VmObjectId> {
        let mut ids: Vec<VmObjectId> = self.vmobjects.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Current time on the clock of `ctx`'s core.
    fn now_on(&self, ctx: CoreCtx) -> u64 {
        self.machine.clocks().now_on(ctx.core)
    }

    /// Advances the clock of `ctx`'s core — the single choke point for
    /// charging kernel work to the hardware thread that executes it.
    fn charge(&self, ctx: CoreCtx, cycles: u64) {
        self.machine.clocks().advance(ctx.core, cycles);
    }

    /// Charges page-table construction for an eager mapping of `len`
    /// bytes: the plain series of Figure 1, or the cheaper `cached` rate
    /// when the pages are already hot in the page cache. Superpages
    /// write proportionally fewer entries.
    fn charge_map_sized(
        &mut self,
        ctx: CoreCtx,
        len: u64,
        cached: bool,
        page_size: sjmp_mem::PageSize,
    ) {
        let pages = len / page_size.bytes();
        let levels_below = match page_size {
            sjmp_mem::PageSize::Size4K => pages / 512 + pages / (512 * 512) + 2,
            sjmp_mem::PageSize::Size2M => pages / 512 + 2,
            sjmp_mem::PageSize::Size1G => 2,
        };
        let per_pte = if cached {
            self.cost.pte_write_cached
        } else {
            self.cost.pte_construct(len)
        };
        self.charge(ctx, pages * per_pte + levels_below * self.cost.table_alloc);
    }

    fn charge_map(&mut self, ctx: CoreCtx, len: u64, cached: bool) {
        self.charge_map_sized(ctx, len, cached, sjmp_mem::PageSize::Size4K);
    }

    /// Charges one kernel entry (syscall or capability invocation) on the
    /// boot core. Prefer [`Self::charge_entry_on`] when the executing
    /// core is known.
    pub fn charge_entry(&mut self) {
        self.charge_entry_on(CoreCtx::BOOT);
    }

    /// Charges one kernel entry to `ctx`'s core, stamping the trace span
    /// with the executing core.
    pub fn charge_entry_on(&mut self, ctx: CoreCtx) {
        self.stats.kernel_entries += 1;
        self.tracer
            .begin(self.now_on(ctx), ctx.core as u32, EventKind::KernelEntry, 0);
        self.charge(ctx, self.cost.kernel_entry(self.flavor));
        self.tracer
            .end(self.now_on(ctx), ctx.core as u32, EventKind::KernelEntry, 0);
    }

    /// Installs (or clears) the crash-fault plan consulted at every
    /// [`FaultSite`]. With no plan installed, fault checks are free.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any (for reading injection counters).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Consults the fault plan at `site`. `Fail` maps to the site's
    /// natural resource error; `Crash` maps to [`OsError::Crashed`]
    /// (abrupt process death inside the kernel, no cleanup).
    fn fault_gate(&mut self, site: FaultSite) -> OsResult<()> {
        let Some(plan) = self.fault.as_mut() else {
            return Ok(());
        };
        match plan.check(site) {
            FaultOutcome::Pass => Ok(()),
            FaultOutcome::Crash => Err(OsError::Crashed),
            FaultOutcome::Fail => match site {
                FaultSite::ObjectAlloc
                | FaultSite::SpaceAlloc
                | FaultSite::MapRegion
                | FaultSite::Mmap
                | FaultSite::FrameAlloc => Err(OsError::Mem(MemError::OutOfFrames)),
                FaultSite::Munmap
                | FaultSite::Switch
                | FaultSite::SegLock
                | FaultSite::BlkWrite
                | FaultSite::BlkFlush => Err(OsError::WouldBlock),
            },
        }
    }

    /// Consults the fault plan at `site` and hands the raw outcome to
    /// the caller, for sites whose injected behavior is not an error
    /// return (e.g. [`FaultSite::SegLock`], where a `Fail` elides a
    /// lock acquisition in the SpaceJMP layer rather than failing the
    /// switch). With no plan installed this is free and always `Pass`.
    pub fn fault_outcome(&mut self, site: FaultSite) -> FaultOutcome {
        match self.fault.as_mut() {
            Some(plan) => plan.check(site),
            None => FaultOutcome::Pass,
        }
    }

    /// Consults the fault plan at [`FaultSite::FrameAlloc`]. An injected
    /// `Fail` is *transient* frame exhaustion: the kernel absorbs it by
    /// running a reclaim pass before proceeding, so the eviction path is
    /// exercised deterministically even with memory to spare.
    fn frame_alloc_gate(&mut self) -> OsResult<()> {
        let Some(plan) = self.fault.as_mut() else {
            return Ok(());
        };
        match plan.check(FaultSite::FrameAlloc) {
            FaultOutcome::Pass => Ok(()),
            FaultOutcome::Crash => Err(OsError::Crashed),
            FaultOutcome::Fail => {
                self.reclaim(RECLAIM_BATCH);
                Ok(())
            }
        }
    }

    /// Whether the fault plan injects a mid-map failure for this
    /// `map_region` call (checked separately so the partial-progress
    /// simulation can run before the error is raised).
    fn fault_mid_map(&mut self) -> bool {
        self.fault
            .as_mut()
            .is_some_and(|p| p.check(FaultSite::MapRegion) != FaultOutcome::Pass)
    }

    /// Allocates a TLB tag. Used by `vas_ctl` tag hints.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfAsids`] when all 4095 tags are in use.
    pub fn alloc_asid(&mut self) -> OsResult<Asid> {
        if let Some(a) = self.free_asids.pop() {
            return Ok(Asid(a));
        }
        if self.next_asid > sjmp_mem::tlb::Asid::MAX {
            return Err(OsError::OutOfAsids);
        }
        let a = self.next_asid;
        self.next_asid += 1;
        Ok(Asid(a))
    }

    /// Returns a TLB tag to the pool.
    pub fn free_asid(&mut self, asid: Asid) {
        if asid.is_tagged() {
            self.free_asids.push(asid.0);
        }
    }

    // ---- process lifecycle ----------------------------------------------

    /// Spawns a process: allocates its initial vmspace and maps the
    /// private text/data/stack segments ("A spawned process will still
    /// receive its initial VAS by the OS", Section 3.2).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn spawn(&mut self, name: &str, creds: Creds) -> OsResult<Pid> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let space = self.create_vmspace()?;
        let mut process = Process::new(pid, name, creds, space);
        process.set_core(((pid.0 - 1) as usize) % self.machine.num_cores());
        self.processes.insert(pid, process);
        if let Err(e) = self.spawn_map_private(pid, space) {
            // A failed spawn must leave no trace: no half-built process,
            // no stranded private objects.
            self.processes.remove(&pid);
            let objects: Vec<VmObjectId> = self
                .vmspaces
                .get(&space)
                .map(|vs| vs.regions().map(|r| r.object).collect())
                .unwrap_or_default();
            let _ = self.destroy_vmspace(space);
            for obj in objects {
                if self
                    .vmobjects
                    .get(&obj)
                    .is_some_and(|o| o.refs() == 0 && !o.persistent())
                {
                    let _ = self.free_object(obj);
                }
            }
            return Err(e);
        }
        Ok(pid)
    }

    /// Maps the private segments (text, globals, stack) into a fresh
    /// process's home vmspace. Construction is charged to the core the
    /// process is pinned to.
    fn spawn_map_private(&mut self, pid: Pid, space: VmspaceId) -> OsResult<()> {
        let ctx = self.ctx_of(pid)?;
        for (base, len, flags) in [
            (TEXT_BASE, 64 * 1024, PteFlags::USER),
            (
                DATA_BASE,
                64 * 1024,
                PteFlags::USER | PteFlags::WRITABLE | PteFlags::NO_EXECUTE,
            ),
            (
                VirtAddr::new(STACK_TOP.raw() - STACK_SIZE),
                STACK_SIZE,
                PteFlags::USER | PteFlags::WRITABLE | PteFlags::NO_EXECUTE,
            ),
        ] {
            let obj = self.alloc_object_owned(Some(pid), len)?;
            if let Err(e) =
                self.map_object(space, obj, base, 0, len, flags, MapPolicy::Eager, Some(ctx))
            {
                // map_object rolled back its own region and reference;
                // the object now has no mappings left — free it.
                let _ = self.free_object(obj);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Terminates a process, destroying its private vmspaces. Shared
    /// objects survive (their lifetime is managed by the SpaceJMP layer).
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown pids.
    pub fn exit(&mut self, pid: Pid) -> OsResult<()> {
        self.teardown_process(pid)
    }

    /// Reclaims an abruptly-dead process — the kernel-side answer to a
    /// crash: no cooperation from the process is required or possible.
    /// Its vmspaces are destroyed (unless another live process still
    /// holds them), their ASIDs return to the pool, any core still
    /// running one of the destroyed spaces is parked, and process-private
    /// objects whose last mapping died with the process are freed.
    ///
    /// Segment locks and SpaceJMP attachments are *not* visible at this
    /// layer; `SpaceJmp::reap_process` revokes those first and then calls
    /// here.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] for unknown (or already-reaped) pids.
    pub fn kill(&mut self, pid: Pid) -> OsResult<()> {
        self.teardown_process(pid)
    }

    /// Shared teardown behind [`Self::exit`] and [`Self::kill`]. Never
    /// consults the fault plan: reclamation must always run to
    /// completion.
    fn teardown_process(&mut self, pid: Pid) -> OsResult<()> {
        let process = self.processes.remove(&pid).ok_or(OsError::NoSuchProcess)?;
        let mut touched: Vec<VmObjectId> = Vec::new();
        for space in process.spaces() {
            // A vmspace may be attached to several processes; destroy it
            // only once no live process still holds it.
            if self.processes.values().any(|p| p.holds_space(*space)) {
                continue;
            }
            let Some(vs) = self.vmspaces.get(space) else {
                continue;
            };
            let root = vs.root();
            touched.extend(vs.regions().map(|r| r.object));
            self.destroy_vmspace(*space)?;
            // Park any core whose CR3 still points at the freed tables.
            for mmu in self.machine.mmus_mut() {
                if mmu.cr3() == Some(root) {
                    mmu.clear_cr3();
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for obj in touched {
            if self
                .vmobjects
                .get(&obj)
                .is_some_and(|o| o.refs() == 0 && !o.persistent())
            {
                self.free_object(obj)?;
            }
        }
        self.quotas.remove(&pid);
        Ok(())
    }

    // ---- vm objects ------------------------------------------------------

    /// Allocates an anonymous VM object of `len` bytes.
    ///
    /// # Errors
    ///
    /// Propagates physical allocation failure.
    pub fn alloc_object(&mut self, len: u64) -> OsResult<VmObjectId> {
        self.alloc_object_owned(None, len)
    }

    /// Allocates an anonymous VM object of `len` bytes, charged to
    /// `owner`'s memory quota. This is the pressure-checked allocation
    /// path: it consults the `FrameAlloc` fault site, enforces the
    /// owner's quota, and reclaims toward the low watermark before
    /// touching the frame allocator.
    ///
    /// # Errors
    ///
    /// * [`OsError::QuotaExceeded`] if the owner is over quota even after
    ///   reclaiming its own pages.
    /// * [`OsError::OutOfMemory`] if reclaim cannot free enough frames.
    pub fn alloc_object_owned(&mut self, owner: Option<Pid>, len: u64) -> OsResult<VmObjectId> {
        self.fault_gate(FaultSite::ObjectAlloc)?;
        let pages = len.div_ceil(PAGE_SIZE);
        let space = owner.and_then(|p| self.process(p).ok().map(|pr| pr.current_space()));
        self.ensure_frames(owner, space, pages, len)?;
        let id = VmObjectId(self.next_obj);
        self.next_obj += 1;
        let mut obj = VmObject::alloc(&mut self.phys, id, len)?;
        obj.set_owner(owner);
        self.vmobjects.insert(id, obj);
        Ok(id)
    }

    /// Allocates a contiguous VM object whose physical base is naturally
    /// aligned to `page_size` — the backing huge-page mappings require.
    /// Goes through the same pressure/quota gate as
    /// [`Self::alloc_object_owned`] but never falls back to a paged
    /// object (a fragmented free list cannot satisfy the alignment).
    ///
    /// # Errors
    ///
    /// As [`Self::alloc_object_owned`].
    pub fn alloc_object_aligned(
        &mut self,
        owner: Option<Pid>,
        len: u64,
        page_size: sjmp_mem::PageSize,
    ) -> OsResult<VmObjectId> {
        self.fault_gate(FaultSite::ObjectAlloc)?;
        let pages = len.div_ceil(PAGE_SIZE);
        let space = owner.and_then(|p| self.process(p).ok().map(|pr| pr.current_space()));
        self.ensure_frames(owner, space, pages, len)?;
        let id = VmObjectId(self.next_obj);
        self.next_obj += 1;
        let mut obj = VmObject::alloc_aligned(&mut self.phys, id, len, page_size.bytes())?;
        obj.set_owner(owner);
        self.vmobjects.insert(id, obj);
        Ok(id)
    }

    /// Allocates a demand-zero, swappable VM object: no frames until
    /// pages are touched, and the reclaim scan may evict them. This is
    /// the backing for swappable segments, which is how workloads
    /// oversubscribe physical memory.
    ///
    /// # Errors
    ///
    /// `BadMapping` for a zero length.
    pub fn alloc_object_demand(&mut self, owner: Option<Pid>, len: u64) -> OsResult<VmObjectId> {
        self.fault_gate(FaultSite::ObjectAlloc)?;
        let id = VmObjectId(self.next_obj);
        self.next_obj += 1;
        let mut obj = VmObject::alloc_demand(id, len)?;
        obj.set_swappable(true);
        obj.set_owner(owner);
        self.vmobjects.insert(id, obj);
        Ok(id)
    }

    /// Configures an NVM tier covering the top `nvm_bytes` of physical
    /// memory (the paper's Section 7: "a co-packaged volatile performance
    /// tier, a persistent capacity tier").
    pub fn set_nvm_tier(&mut self, nvm_bytes: u64) {
        self.phys.set_nvm_tier(nvm_bytes);
    }

    /// Allocates an anonymous VM object from the NVM tier.
    ///
    /// # Errors
    ///
    /// [`OsError::Mem`] if no NVM tier is configured or it is exhausted.
    pub fn alloc_object_nvm(&mut self, len: u64) -> OsResult<VmObjectId> {
        let id = VmObjectId(self.next_obj);
        self.next_obj += 1;
        let obj = VmObject::alloc_nvm(&mut self.phys, id, len)?;
        self.vmobjects.insert(id, obj);
        Ok(id)
    }

    /// Frees an unreferenced VM object.
    ///
    /// # Errors
    ///
    /// * [`OsError::NoSuchObject`] for unknown ids.
    /// * [`OsError::Conflict`] if still mapped somewhere.
    pub fn free_object(&mut self, id: VmObjectId) -> OsResult<()> {
        let obj = self.vmobjects.remove(&id).ok_or(OsError::NoSuchObject)?;
        if obj.refs() > 0 {
            let err = OsError::Conflict(format!("object {id:?} still mapped"));
            self.vmobjects.insert(id, obj);
            return Err(err);
        }
        self.external_maps.remove(&id);
        obj.free(&mut self.phys);
        Ok(())
    }

    // ---- vmspaces --------------------------------------------------------

    /// Creates an empty vmspace with a fresh root table.
    ///
    /// # Errors
    ///
    /// Propagates physical allocation failure.
    pub fn create_vmspace(&mut self) -> OsResult<VmspaceId> {
        self.fault_gate(FaultSite::SpaceAlloc)?;
        let id = VmspaceId(self.next_space);
        self.next_space += 1;
        let root = self.backend.new_root(&mut self.phys)?;
        self.vmspaces.insert(id, Vmspace::new(id, root));
        Ok(id)
    }

    /// Destroys a vmspace, dropping object references and freeing its
    /// private page tables (shared subtrees are left alone).
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchSpace`] for unknown ids.
    pub fn destroy_vmspace(&mut self, id: VmspaceId) -> OsResult<()> {
        let space = self.vmspaces.remove(&id).ok_or(OsError::NoSuchSpace)?;
        for region in space.regions() {
            if let Some(obj) = self.vmobjects.get_mut(&region.object) {
                obj.drop_ref();
            }
        }
        self.free_asid(space.asid());
        self.backend
            .free_tables(&mut self.phys, space.root(), space.shared_slots());
        // The freed frames may be recycled into a new space's tables;
        // drop any host-side walks memoized under this root.
        self.machine.flush_host_walk_caches();
        Ok(())
    }

    /// Maps `len` bytes of `obj` starting at `obj_offset` into `space` at
    /// `va`. With [`MapPolicy::Eager`] the page tables are constructed
    /// immediately; `charge` names the core billed for construction
    /// cycles (setup code passes `None`, measured paths the executing
    /// core).
    ///
    /// # Errors
    ///
    /// * Overlap/alignment errors from the region map.
    /// * [`OsError::NoSuchObject`] / [`OsError::NoSuchSpace`].
    /// * [`OsError::InvalidArgument`] if the range exceeds the object.
    #[allow(clippy::too_many_arguments)]
    pub fn map_object(
        &mut self,
        space: VmspaceId,
        obj: VmObjectId,
        va: VirtAddr,
        obj_offset: u64,
        len: u64,
        flags: PteFlags,
        policy: MapPolicy,
        charge: Option<CoreCtx>,
    ) -> OsResult<()> {
        let contiguous_pa = {
            let o = self.vmobject(obj)?;
            if obj_offset + len > o.len() {
                return Err(OsError::InvalidArgument("mapping exceeds object size"));
            }
            if o.is_contiguous() {
                Some(o.pa(obj_offset))
            } else {
                None
            }
        };
        {
            let vs = self.vmspaces.get_mut(&space).ok_or(OsError::NoSuchSpace)?;
            vs.insert_region(Region {
                start: va,
                len,
                object: obj,
                object_offset: obj_offset,
                flags,
                policy,
            })?;
        }
        self.vmobject_mut(obj)?.add_ref();
        if policy == MapPolicy::Eager {
            let root = self.vmspace(space)?.root();
            // An injected mid-map fault mimics frame exhaustion partway
            // through eager construction: the first half of the region
            // gets mapped, then the call must fail — without leaking the
            // half-built mapping.
            let mid_map_fault = self.fault_mid_map();
            let attempt = match contiguous_pa {
                Some(pa) if mid_map_fault => {
                    let half = ((len / 2 / PAGE_SIZE).max(1) * PAGE_SIZE).min(len);
                    let _ = self.backend.map_region(
                        &mut self.phys,
                        root,
                        va,
                        pa,
                        half,
                        sjmp_mem::PageSize::Size4K,
                        flags,
                    );
                    Err(MemError::OutOfFrames)
                }
                Some(pa) => self.backend.map_region(
                    &mut self.phys,
                    root,
                    va,
                    pa,
                    len,
                    sjmp_mem::PageSize::Size4K,
                    flags,
                ),
                None => self.map_paged_eager(root, obj, va, obj_offset, len, flags, mid_map_fault),
            };
            match attempt {
                Ok(stats) => {
                    if let Some(ctx) = charge {
                        let per_pte = self.cost.pte_construct(len);
                        self.charge(
                            ctx,
                            stats.ptes_written * per_pte
                                + stats.tables_allocated * self.cost.table_alloc,
                        );
                    }
                }
                Err(e) => {
                    // Transactional rollback: clear whatever portion got
                    // mapped (holes are skipped), remove the region, and
                    // drop the object reference, so a failed map leaves
                    // no trace.
                    let _ = self.backend.unmap_region(&mut self.phys, root, va, len);
                    if let Some(vs) = self.vmspaces.get_mut(&space) {
                        vs.remove_region(va);
                    }
                    if let Some(o) = self.vmobjects.get_mut(&obj) {
                        o.drop_ref();
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Eagerly maps the *resident* pages of a paged object; non-resident
    /// pages (demand-zero or swapped) are left to the fault path. With
    /// `mid_map_fault` set, maps half the range and then reports frame
    /// exhaustion (the injected partial-progress failure).
    #[allow(clippy::too_many_arguments)]
    fn map_paged_eager(
        &mut self,
        root: Pfn,
        obj: VmObjectId,
        va: VirtAddr,
        obj_offset: u64,
        len: u64,
        flags: PteFlags,
        mid_map_fault: bool,
    ) -> Result<paging::MapStats, MemError> {
        let pages = len.div_ceil(PAGE_SIZE);
        let limit = if mid_map_fault {
            (pages / 2).max(1).min(pages)
        } else {
            pages
        };
        let mut total = paging::MapStats::default();
        for i in 0..limit {
            let index = obj_offset / PAGE_SIZE + i;
            let Some(pfn) = self
                .vmobjects
                .get(&obj)
                .ok_or(MemError::OutOfFrames)?
                .frame_of_page(index)
            else {
                continue;
            };
            let s = self.backend.map(
                &mut self.phys,
                root,
                va.add(i * PAGE_SIZE),
                pfn.base(),
                sjmp_mem::PageSize::Size4K,
                flags,
            )?;
            total.ptes_written += s.ptes_written;
            total.tables_allocated += s.tables_allocated;
        }
        if mid_map_fault {
            return Err(MemError::OutOfFrames);
        }
        Ok(total)
    }

    /// Removes the mapping starting at `va` from `space`, clearing its
    /// page-table entries. `charge` names the core billed for the PTE
    /// clears (`None` for uncharged setup/teardown).
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidArgument`] if no region starts at `va`.
    pub fn unmap_object(
        &mut self,
        space: VmspaceId,
        va: VirtAddr,
        charge: Option<CoreCtx>,
    ) -> OsResult<()> {
        let (len, obj, root) = {
            let vs = self.vmspaces.get_mut(&space).ok_or(OsError::NoSuchSpace)?;
            let region = vs
                .remove_region(va)
                .ok_or(OsError::InvalidArgument("no region starts here"))?;
            (region.len, region.object, vs.root())
        };
        if let Some(o) = self.vmobjects.get_mut(&obj) {
            o.drop_ref();
        }
        let stats = self.backend.unmap_region(&mut self.phys, root, va, len)?;
        if let Some(ctx) = charge {
            self.charge(ctx, stats.ptes_cleared * self.cost.pte_clear);
        }
        // Invalidate stale TLB entries on every core (shootdown).
        self.flush_all_tlbs();
        Ok(())
    }

    // ---- legacy mmap/munmap (the Figure 1 path) --------------------------

    /// `mmap`-style call: allocates backing memory and eagerly constructs
    /// page tables in the caller's *current* vmspace.
    ///
    /// `cached` models mapping pages that are already hot in the page
    /// cache (Figure 1's cheaper `cached` series, charged at the
    /// cached per-PTE rate); uncached mappings pay the full
    /// construction cost per page.
    ///
    /// # Errors
    ///
    /// Address-space exhaustion or physical memory exhaustion.
    pub fn sys_mmap(
        &mut self,
        pid: Pid,
        len: u64,
        flags: PteFlags,
        cached: bool,
    ) -> OsResult<VirtAddr> {
        let ctx = self.ctx_of(pid)?;
        self.sys_mmap_on(ctx, pid, len, flags, cached)
    }

    /// [`Self::sys_mmap`] with an explicit executing core.
    ///
    /// # Errors
    ///
    /// As [`Self::sys_mmap`].
    pub fn sys_mmap_on(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        len: u64,
        flags: PteFlags,
        cached: bool,
    ) -> OsResult<VirtAddr> {
        self.tracer
            .begin(self.now_on(ctx), ctx.core as u32, EventKind::Mmap, pid.0);
        let result = self.sys_mmap_inner(ctx, pid, len, flags, cached);
        self.tracer
            .end(self.now_on(ctx), ctx.core as u32, EventKind::Mmap, pid.0);
        result
    }

    fn sys_mmap_inner(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        len: u64,
        flags: PteFlags,
        cached: bool,
    ) -> OsResult<VirtAddr> {
        self.charge_entry_on(ctx);
        self.stats.mmaps += 1;
        self.fault_gate(FaultSite::Mmap)?;
        let space = self.process(pid)?.current_space();
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let va = self
            .vmspace(space)?
            .find_free(MMAP_BASE, PRIVATE_HI, len)
            .ok_or(OsError::InvalidArgument("out of private address space"))?;
        let obj = self.alloc_object_owned(Some(pid), len)?;
        if let Err(e) = self.map_object(space, obj, va, 0, len, flags, MapPolicy::Eager, None) {
            // map_object rolled its own state back; the fresh object has
            // no other referents, so reclaim it too.
            let _ = self.free_object(obj);
            return Err(e);
        }
        self.charge_map(ctx, len, cached);
        Ok(va)
    }

    /// Like [`Self::sys_mmap`], but mapping with superpages (2 MiB or
    /// 1 GiB), the mitigation for page-table construction cost that the
    /// paper's Section 6 discusses ("large pages have been touted as a
    /// way to mitigate TLB flushing cost"). The length must be a multiple
    /// of the page size.
    ///
    /// # Errors
    ///
    /// As [`Self::sys_mmap`], plus alignment errors.
    pub fn sys_mmap_sized(
        &mut self,
        pid: Pid,
        len: u64,
        flags: PteFlags,
        cached: bool,
        page_size: sjmp_mem::PageSize,
    ) -> OsResult<VirtAddr> {
        let ctx = self.ctx_of(pid)?;
        self.sys_mmap_sized_on(ctx, pid, len, flags, cached, page_size)
    }

    /// [`Self::sys_mmap_sized`] with an explicit executing core.
    ///
    /// # Errors
    ///
    /// As [`Self::sys_mmap_sized`].
    #[allow(clippy::too_many_arguments)]
    pub fn sys_mmap_sized_on(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        len: u64,
        flags: PteFlags,
        cached: bool,
        page_size: sjmp_mem::PageSize,
    ) -> OsResult<VirtAddr> {
        self.charge_entry_on(ctx);
        self.stats.mmaps += 1;
        self.fault_gate(FaultSite::Mmap)?;
        if len == 0 {
            return Err(OsError::InvalidArgument(
                "length must be a page-size multiple",
            ));
        }
        if !len.is_multiple_of(page_size.bytes()) {
            // Huge-page requests are rejected with a typed error so
            // callers can tell an alignment violation from other malformed
            // arguments and retry with base pages.
            if page_size != sjmp_mem::PageSize::Size4K {
                return Err(OsError::Misaligned {
                    requested: len,
                    page_size,
                });
            }
            return Err(OsError::InvalidArgument(
                "length must be a page-size multiple",
            ));
        }
        let space = self.process(pid)?.current_space();
        let va = self
            .vmspace(space)?
            .find_free(MMAP_BASE, PRIVATE_HI, len + page_size.bytes())
            .ok_or(OsError::InvalidArgument("out of private address space"))?
            .align_up(page_size.bytes());
        // Superpage mappings need naturally aligned, physically contiguous
        // backing; such objects are never candidates for the paged
        // fallback or the reclaim scan.
        let obj = self.alloc_object_aligned(Some(pid), len, page_size)?;
        let pa = self.vmobject(obj)?.base();
        {
            let vs = self.vmspaces.get_mut(&space).ok_or(OsError::NoSuchSpace)?;
            vs.insert_region(Region {
                start: va,
                len,
                object: obj,
                object_offset: 0,
                flags,
                policy: MapPolicy::Eager,
            })?;
        }
        self.vmobject_mut(obj)?.add_ref();
        let root = self.vmspace(space)?.root();
        if let Err(e) = self
            .backend
            .map_region(&mut self.phys, root, va, pa, len, page_size, flags)
        {
            // Transactional rollback, as in map_object: clear the partial
            // mapping and reclaim the region and the fresh object.
            let _ = self.backend.unmap_region(&mut self.phys, root, va, len);
            if let Some(vs) = self.vmspaces.get_mut(&space) {
                vs.remove_region(va);
            }
            if let Some(o) = self.vmobjects.get_mut(&obj) {
                o.drop_ref();
            }
            let _ = self.free_object(obj);
            return Err(e.into());
        }
        self.charge_map_sized(ctx, len, cached, page_size);
        Ok(va)
    }

    /// Maps an *existing* object into the caller's current vmspace at a
    /// kernel-chosen address — the remap path the GUPS MAP design uses to
    /// re-window a large physical table.
    ///
    /// # Errors
    ///
    /// As in [`Self::sys_mmap`].
    pub fn sys_mmap_object(
        &mut self,
        pid: Pid,
        obj: VmObjectId,
        obj_offset: u64,
        len: u64,
        flags: PteFlags,
        cached: bool,
    ) -> OsResult<VirtAddr> {
        let ctx = self.ctx_of(pid)?;
        self.sys_mmap_object_on(ctx, pid, obj, obj_offset, len, flags, cached)
    }

    /// [`Self::sys_mmap_object`] with an explicit executing core.
    ///
    /// # Errors
    ///
    /// As [`Self::sys_mmap`].
    #[allow(clippy::too_many_arguments)]
    pub fn sys_mmap_object_on(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        obj: VmObjectId,
        obj_offset: u64,
        len: u64,
        flags: PteFlags,
        cached: bool,
    ) -> OsResult<VirtAddr> {
        self.charge_entry_on(ctx);
        self.stats.mmaps += 1;
        self.fault_gate(FaultSite::Mmap)?;
        let space = self.process(pid)?.current_space();
        let va = self
            .vmspace(space)?
            .find_free(MMAP_BASE, PRIVATE_HI, len)
            .ok_or(OsError::InvalidArgument("out of private address space"))?;
        self.map_object(
            space,
            obj,
            va,
            obj_offset,
            len,
            flags,
            MapPolicy::Eager,
            None,
        )?;
        self.charge_map(ctx, len, cached);
        Ok(va)
    }

    /// `munmap`-style call on the caller's current vmspace.
    ///
    /// `cached` skips the page-putback accounting, mirroring Figure 1's
    /// cheaper `unmap (cached)` series.
    ///
    /// # Errors
    ///
    /// [`OsError::InvalidArgument`] if `va` does not start a mapping.
    pub fn sys_munmap(&mut self, pid: Pid, va: VirtAddr, cached: bool) -> OsResult<()> {
        let ctx = self.ctx_of(pid)?;
        self.sys_munmap_on(ctx, pid, va, cached)
    }

    /// [`Self::sys_munmap`] with an explicit executing core.
    ///
    /// # Errors
    ///
    /// As [`Self::sys_munmap`].
    pub fn sys_munmap_on(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        va: VirtAddr,
        cached: bool,
    ) -> OsResult<()> {
        self.tracer
            .begin(self.now_on(ctx), ctx.core as u32, EventKind::Munmap, pid.0);
        let result = self.sys_munmap_inner(ctx, pid, va, cached);
        self.tracer
            .end(self.now_on(ctx), ctx.core as u32, EventKind::Munmap, pid.0);
        result
    }

    fn sys_munmap_inner(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        va: VirtAddr,
        cached: bool,
    ) -> OsResult<()> {
        self.charge_entry_on(ctx);
        self.stats.munmaps += 1;
        self.fault_gate(FaultSite::Munmap)?;
        let space = self.process(pid)?.current_space();
        let len = self
            .vmspace(space)?
            .find_region(va)
            .filter(|r| r.start == va)
            .map(|r| r.len)
            .ok_or(OsError::InvalidArgument("no region starts here"))?;
        self.unmap_object(space, va, Some(ctx))?;
        if !cached {
            self.charge(ctx, (len / PAGE_SIZE) * self.cost.page_putback);
        }
        Ok(())
    }

    // ---- faults ----------------------------------------------------------

    /// Handles a page fault in `pid`'s current vmspace: consults the
    /// region map and installs the missing translation (lazy policy).
    ///
    /// For paged objects this is also the major-fault path: demand-zero
    /// pages get a fresh frame, swapped pages are read back from the swap
    /// device (charging the swap-in cost), and frame exhaustion triggers a
    /// reclaim pass before the fault is retried.
    ///
    /// # Errors
    ///
    /// * [`OsError::Mem`] wrapping the original fault for true violations
    ///   (no region, or access not permitted).
    /// * [`OsError::QuotaExceeded`] if materializing the page would push
    ///   the object's owner past its quota.
    /// * [`OsError::OutOfMemory`] if reclaim cannot produce a frame.
    pub fn handle_fault(&mut self, pid: Pid, va: VirtAddr, access: Access) -> OsResult<()> {
        let ctx = self.ctx_of(pid)?;
        self.handle_fault_on(ctx, pid, va, access)
    }

    /// [`Self::handle_fault`] with an explicit executing core.
    ///
    /// # Errors
    ///
    /// As [`Self::handle_fault`].
    pub fn handle_fault_on(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        va: VirtAddr,
        access: Access,
    ) -> OsResult<()> {
        self.tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::PageFault,
            pid.0,
        );
        let result = self.handle_fault_inner(ctx, pid, va, access);
        self.tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::PageFault,
            pid.0,
        );
        result
    }

    fn handle_fault_inner(
        &mut self,
        ctx: CoreCtx,
        pid: Pid,
        va: VirtAddr,
        access: Access,
    ) -> OsResult<()> {
        self.charge_entry_on(ctx);
        self.stats.faults_handled += 1;
        let space = self.process(pid)?.current_space();
        let (obj_id, page_index, flags, root) = {
            let vs = self.vmspace(space)?;
            let region = vs
                .find_region(va)
                .ok_or(OsError::Mem(MemError::PageFault { va, access }))?;
            if !region.permits(access) {
                return Err(OsError::Mem(MemError::ProtectionFault { va, access }));
            }
            let page_va = va.align_down(PAGE_SIZE);
            let offset = region.object_offset + page_va.offset_from(region.start);
            (region.object, offset / PAGE_SIZE, region.flags, vs.root())
        };
        let (is_contiguous, needs_frame, owner) = {
            let obj = self.vmobject(obj_id)?;
            (
                obj.is_contiguous(),
                !matches!(obj.page_state(page_index), PageState::Resident { .. }),
                obj.owner(),
            )
        };
        let pa = if is_contiguous {
            self.vmobject(obj_id)?.pa(page_index * PAGE_SIZE)
        } else {
            if needs_frame {
                self.frame_alloc_gate()?;
                if let Some(owner) = owner {
                    self.enforce_quota(owner, 1)?;
                }
                self.reclaim_to_watermark(1);
            }
            let (pfn, source) = self.fault_in_with_reclaim(pid, space, obj_id, page_index)?;
            if source == PageSource::SwappedIn {
                self.stats.major_faults += 1;
                self.tracer.instant(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::MajorFault,
                    pid.0,
                    page_index,
                );
                self.tracer.begin(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::SwapIn,
                    obj_id.0,
                );
                self.charge(ctx, self.cost.swap_in_page);
                self.tracer.end(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::SwapIn,
                    obj_id.0,
                );
            }
            pfn.base()
        };
        let page_va = va.align_down(PAGE_SIZE);
        let stats = self.backend.map(
            &mut self.phys,
            root,
            page_va,
            pa,
            sjmp_mem::PageSize::Size4K,
            flags,
        )?;
        self.charge(
            ctx,
            stats.ptes_written * self.cost.pte_write
                + stats.tables_allocated * self.cost.table_alloc,
        );
        Ok(())
    }

    /// Makes `page_index` of `obj_id` resident, running a reclaim pass and
    /// retrying once if the frame allocator is exhausted.
    fn fault_in_with_reclaim(
        &mut self,
        pid: Pid,
        space: VmspaceId,
        obj_id: VmObjectId,
        page_index: u64,
    ) -> OsResult<(Pfn, PageSource)> {
        // The object is temporarily removed from the table so it can be
        // mutated alongside physical memory; reclaim runs between the
        // attempts, while the object is back in place.
        for attempt in 0..2 {
            let mut obj = self
                .vmobjects
                .remove(&obj_id)
                .ok_or(OsError::NoSuchObject)?;
            let result = obj.fault_in_page(page_index, &mut self.phys);
            self.vmobjects.insert(obj_id, obj);
            match result {
                Ok(hit) => return Ok(hit),
                Err(MemError::OutOfFrames) if attempt == 0 => {
                    self.reclaim(RECLAIM_BATCH);
                }
                Err(MemError::OutOfFrames) => {
                    return Err(OsError::OutOfMemory {
                        pid: Some(pid),
                        space: Some(space),
                        bytes: PAGE_SIZE,
                        frames_free: self.phys.free_frames(),
                    });
                }
                Err(e) => return Err(e.into()),
            }
        }
        unreachable!("fault_in_with_reclaim loop always returns");
    }

    /// Reads a `u64` at `va` in `pid`'s current space, faulting pages in
    /// as needed — the convenience load path for workloads.
    ///
    /// # Errors
    ///
    /// Unresolvable faults.
    pub fn load_u64(&mut self, pid: Pid, va: VirtAddr) -> OsResult<u64> {
        loop {
            let (mmu, phys) = self.mem_of(pid)?;
            match mmu.read_u64(phys, va) {
                Ok(v) => {
                    self.trace_mem_access(pid, va, EventKind::MemRead);
                    return Ok(v);
                }
                Err(MemError::PageFault { .. }) => self.handle_fault(pid, va, Access::Read)?,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Writes a `u64` at `va` in `pid`'s current space, faulting pages in
    /// as needed.
    ///
    /// # Errors
    ///
    /// Unresolvable faults.
    pub fn store_u64(&mut self, pid: Pid, va: VirtAddr, value: u64) -> OsResult<()> {
        loop {
            let (mmu, phys) = self.mem_of(pid)?;
            match mmu.write_u64(phys, va, value) {
                Ok(()) => {
                    self.trace_mem_access(pid, va, EventKind::MemWrite);
                    return Ok(());
                }
                Err(MemError::PageFault { .. }) => self.handle_fault(pid, va, Access::Write)?,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Records a committed word access for replay analysis. Only global
    /// (shared-segment) addresses are recorded — private traffic cannot
    /// race across processes and would swamp the ring — and recording
    /// charges no modeled cycles, preserving the zero-cost-tracing
    /// invariant.
    fn trace_mem_access(&mut self, pid: Pid, va: VirtAddr, kind: EventKind) {
        if !self.tracer.enabled() || va < GLOBAL_LO || va >= GLOBAL_HI {
            return;
        }
        let Ok(ctx) = self.ctx_of(pid) else { return };
        self.tracer
            .instant(self.now_on(ctx), ctx.core as u32, kind, va.raw(), pid.0);
    }

    /// Reads `buf.len()` bytes at `va` in `pid`'s current space, faulting
    /// pages in as needed.
    ///
    /// # Errors
    ///
    /// Unresolvable faults.
    pub fn load_bytes(&mut self, pid: Pid, va: VirtAddr, buf: &mut [u8]) -> OsResult<()> {
        loop {
            let (mmu, phys) = self.mem_of(pid)?;
            match mmu.read_bytes(phys, va, buf) {
                Ok(()) => return Ok(()),
                Err(MemError::PageFault { va: fva, .. }) => {
                    self.handle_fault(pid, fva, Access::Read)?
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Writes `buf` at `va` in `pid`'s current space, faulting pages in
    /// as needed.
    ///
    /// # Errors
    ///
    /// Unresolvable faults.
    pub fn store_bytes(&mut self, pid: Pid, va: VirtAddr, buf: &[u8]) -> OsResult<()> {
        loop {
            let (mmu, phys) = self.mem_of(pid)?;
            match mmu.write_bytes(phys, va, buf) {
                Ok(()) => return Ok(()),
                Err(MemError::PageFault { va: fva, .. }) => {
                    self.handle_fault(pid, fva, Access::Write)?
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    // ---- switching ---------------------------------------------------------

    /// Switches `pid` to one of its attached vmspaces: kernel entry +
    /// bookkeeping + CR3 load, the Table 2 decomposition. The SpaceJMP
    /// layer calls this after acquiring segment locks.
    ///
    /// # Errors
    ///
    /// * [`OsError::PermissionDenied`] if the process does not hold the
    ///   space.
    pub fn switch_vmspace(&mut self, pid: Pid, space: VmspaceId) -> OsResult<()> {
        let ctx = self.ctx_of(pid)?;
        self.switch_vmspace_on(ctx, pid, space)
    }

    /// [`Self::switch_vmspace`] with an explicit executing core. The CR3
    /// load (and any TLB flush it implies) lands on `ctx`'s core only —
    /// switching on core A can neither warm nor flush core B's TLB.
    ///
    /// # Errors
    ///
    /// As [`Self::switch_vmspace`].
    pub fn switch_vmspace_on(&mut self, ctx: CoreCtx, pid: Pid, space: VmspaceId) -> OsResult<()> {
        self.tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SwitchVmspace,
            pid.0,
        );
        let result = self.switch_vmspace_inner(ctx, pid, space);
        self.tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SwitchVmspace,
            pid.0,
        );
        result
    }

    fn switch_vmspace_inner(&mut self, ctx: CoreCtx, pid: Pid, space: VmspaceId) -> OsResult<()> {
        self.charge_entry_on(ctx);
        self.stats.space_switches += 1;
        self.fault_gate(FaultSite::Switch)?;
        {
            let p = self.process(pid)?;
            if !p.holds_space(space) {
                return Err(OsError::PermissionDenied);
            }
        }
        let (root, asid) = {
            let vs = self.vmspace(space)?;
            (vs.root(), vs.asid())
        };
        let tagged = self.tagging && asid.is_tagged();
        self.tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SwitchBook,
            pid.0,
        );
        self.charge(ctx, self.cost.switch_bookkeeping(self.flavor, tagged));
        self.tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SwitchBook,
            pid.0,
        );
        self.machine.mmu_mut(ctx.core).load_cr3(root, asid); // charges the CR3 cost
        self.process_mut(pid)?.set_current_space(space);
        Ok(())
    }

    /// Flushes every core's TLB (global shootdown after shared-mapping
    /// changes).
    pub fn flush_all_tlbs(&mut self) {
        for mmu in self.machine.mmus_mut() {
            mmu.flush_tlb();
        }
    }

    /// Ensures `pid`'s current vmspace is loaded on its core without
    /// charging switch costs (scheduler-style activation for tests and
    /// setup code).
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] / [`OsError::NoSuchSpace`].
    pub fn activate(&mut self, pid: Pid) -> OsResult<()> {
        let (core, space) = {
            let p = self.process(pid)?;
            (p.core(), p.current_space())
        };
        let (root, asid) = {
            let vs = self.vmspace(space)?;
            (vs.root(), vs.asid())
        };
        if self.machine.mmu(core).cr3() != Some(root) {
            self.machine.mmu_mut(core).load_cr3(root, asid);
        }
        Ok(())
    }

    // ---- memory pressure -------------------------------------------------

    /// Enables the global reclaim loop: allocations that would leave fewer
    /// than `frames` free trigger eviction of unpinned pages first.
    pub fn set_low_watermark(&mut self, frames: Option<u64>) {
        self.low_watermark = frames;
    }

    /// The configured low watermark, if pressure handling is enabled.
    pub fn low_watermark(&self) -> Option<u64> {
        self.low_watermark
    }

    /// The current memory-pressure level, the health signal admission
    /// control polls to flip shards into degraded (read-only) mode
    /// before the OOM killer has to act.
    ///
    /// Reading the signal is free: it is a pure function of allocator
    /// state (free frames vs. the low watermark), charged to no clock,
    /// so pollers cannot perturb modeled costs. With pressure handling
    /// disabled (`low_watermark = None`) the level is always
    /// [`PressureLevel::Normal`]: nothing ever reclaims, so nothing can
    /// meaningfully be "under pressure".
    pub fn mem_pressure(&self) -> PressureLevel {
        let Some(lw) = self.low_watermark else {
            return PressureLevel::Normal;
        };
        let free = self.phys.free_frames();
        if free <= lw {
            // The reclaim loop is (or is about to be) scanning on every
            // allocation; the next step up is the OOM killer.
            PressureLevel::Critical
        } else if free <= lw.saturating_mul(PRESSURE_ELEVATED_FACTOR) {
            PressureLevel::Elevated
        } else {
            PressureLevel::Normal
        }
    }

    /// Sets (or clears) `pid`'s memory quota in resident frames.
    pub fn set_quota(&mut self, pid: Pid, frames: Option<u64>) {
        match frames {
            Some(f) => {
                self.quotas.insert(pid, f);
            }
            None => {
                self.quotas.remove(&pid);
            }
        }
    }

    /// `pid`'s quota in frames, if one is set.
    pub fn quota_of(&self, pid: Pid) -> Option<u64> {
        self.quotas.get(&pid).copied()
    }

    /// Frames currently resident across the objects `pid` owns — the
    /// quota charge and the OOM badness score. Computed on demand from
    /// object metadata, so it cannot drift from reality.
    pub fn resident_frames_of(&self, pid: Pid) -> u64 {
        self.vmobjects
            .values()
            .filter(|o| o.owner() == Some(pid))
            .map(|o| o.resident_pages())
            .sum()
    }

    /// Registers a mapping of `obj` through a page-table root the kernel
    /// does not own (a VAS template). Eviction clears the leaf PTEs
    /// there; because attached vmspaces link the template's subtrees,
    /// clearing the template leaf once covers all of them.
    pub fn register_external_mapping(&mut self, obj: VmObjectId, root: Pfn, base: VirtAddr) {
        let maps = self.external_maps.entry(obj).or_default();
        if !maps.contains(&(root, base)) {
            maps.push((root, base));
        }
    }

    /// Removes the external-mapping registrations of `obj` under `root`.
    pub fn unregister_external_mapping(&mut self, obj: VmObjectId, root: Pfn) {
        if let Some(maps) = self.external_maps.get_mut(&obj) {
            maps.retain(|(r, _)| *r != root);
            if maps.is_empty() {
                self.external_maps.remove(&obj);
            }
        }
    }

    /// Clears every leaf PTE translating page `page` of `obj`: regions in
    /// ordinary vmspaces (skipping PML4 slots linked from a template —
    /// the template covers those) and registered external template
    /// mappings. A `SWAPPED` software marker is left behind so a later
    /// walk can tell "evicted" from "never mapped"; the authoritative
    /// state lives in the object.
    fn clear_page_mappings(&mut self, obj: VmObjectId, page: u64) {
        let offset = page * PAGE_SIZE;
        let mut targets: Vec<(Pfn, VirtAddr)> = Vec::new();
        for vs in self.vmspaces.values() {
            for r in vs.regions() {
                if r.object != obj || offset < r.object_offset || offset >= r.object_offset + r.len
                {
                    continue;
                }
                let va = r.start.add(offset - r.object_offset);
                if vs.shared_slots().contains(&va.pml4_index()) {
                    continue;
                }
                targets.push((vs.root(), va));
            }
        }
        if let Some(maps) = self.external_maps.get(&obj) {
            for (root, base) in maps {
                targets.push((*root, base.add(offset)));
            }
        }
        for (root, va) in targets {
            let _ = self.backend.clear_leaf(&mut self.phys, root, va);
        }
    }

    /// One reclaim pass of the second-chance clock over swappable
    /// objects: referenced resident pages lose their reference bit and
    /// their translations (the "soft" accessed-bit emulation — a page
    /// that is touched again re-references itself through the fault
    /// path); unreferenced pages are evicted to swap. Scans at most two
    /// full revolutions and returns the number of frames freed.
    pub fn reclaim(&mut self, target_frames: u64) -> u64 {
        // The reclaim scan runs kswapd-style on the boot core, whichever
        // core's allocation triggered it.
        let ctx = CoreCtx::BOOT;
        self.tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::ReclaimPass,
            target_frames,
        );
        let freed = self.reclaim_inner(target_frames);
        self.tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::ReclaimPass,
            freed,
        );
        freed
    }

    fn reclaim_inner(&mut self, target_frames: u64) -> u64 {
        self.stats.reclaim_passes += 1;
        let mut candidates: Vec<(VmObjectId, u64)> = self
            .vmobjects
            .iter()
            .filter(|(_, o)| o.swappable() && !o.pinned())
            .map(|(id, o)| (*id, o.pages()))
            .collect();
        candidates.sort_unstable();
        let total_pages: u64 = candidates.iter().map(|(_, p)| *p).sum();
        if total_pages == 0 {
            return 0;
        }
        let (cur_obj, cur_page) = self.reclaim_cursor;
        let mut ci = candidates
            .iter()
            .position(|(id, _)| id.0 >= cur_obj)
            .unwrap_or(0);
        let mut page = if ci < candidates.len() && candidates[ci].0 .0 == cur_obj {
            cur_page
        } else {
            0
        };
        let mut freed = 0u64;
        let mut cleared = false;
        let mut steps = 0u64;
        let max_steps = 2 * total_pages;
        while freed < target_frames && steps < max_steps {
            if ci >= candidates.len() {
                ci = 0;
                page = 0;
            }
            let (id, pages) = candidates[ci];
            if page >= pages {
                ci += 1;
                page = 0;
                continue;
            }
            steps += 1;
            self.charge(CoreCtx::BOOT, self.cost.reclaim_scan_page);
            let Some(mut obj) = self.vmobjects.remove(&id) else {
                ci += 1;
                page = 0;
                continue;
            };
            obj.make_paged();
            if obj.take_reference(page) {
                // Second chance: drop the translations so a page that is
                // still hot re-references itself before the hand returns.
                self.clear_page_mappings(id, page);
                cleared = true;
            } else if obj.frame_of_page(page).is_some() {
                self.clear_page_mappings(id, page);
                self.record_eviction(obj.owner(), id);
                obj.evict_page(page, &mut self.phys);
                self.stats.evictions += 1;
                self.charge(CoreCtx::BOOT, self.cost.swap_out_page);
                self.tracer.end(
                    self.now_on(CoreCtx::BOOT),
                    CoreCtx::BOOT.core as u32,
                    EventKind::SwapOut,
                    id.0,
                );
                freed += 1;
                cleared = true;
            }
            self.vmobjects.insert(id, obj);
            page += 1;
        }
        if ci >= candidates.len() {
            ci = 0;
            page = 0;
        }
        self.reclaim_cursor = (candidates[ci].0 .0, page);
        if cleared {
            // One shootdown per pass, not per page.
            self.flush_all_tlbs();
        }
        freed
    }

    /// Forcibly evicts up to `target` resident pages from objects `pid`
    /// owns, ignoring reference bits — the self-reclaim a quota breach
    /// attempts before giving up.
    pub fn reclaim_owned(&mut self, pid: Pid, target: u64) -> u64 {
        let mut ids: Vec<VmObjectId> = self
            .vmobjects
            .iter()
            .filter(|(_, o)| o.owner() == Some(pid) && o.swappable() && !o.pinned())
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        let mut freed = 0u64;
        let mut cleared = false;
        'outer: for id in ids {
            let pages = match self.vmobjects.get(&id) {
                Some(o) => o.pages(),
                None => continue,
            };
            for page in 0..pages {
                if freed >= target {
                    break 'outer;
                }
                self.charge(CoreCtx::BOOT, self.cost.reclaim_scan_page);
                let Some(mut obj) = self.vmobjects.remove(&id) else {
                    continue 'outer;
                };
                obj.make_paged();
                if obj.frame_of_page(page).is_some() {
                    self.clear_page_mappings(id, page);
                    self.record_eviction(obj.owner(), id);
                    obj.evict_page(page, &mut self.phys);
                    self.stats.evictions += 1;
                    self.charge(CoreCtx::BOOT, self.cost.swap_out_page);
                    self.tracer.end(
                        self.now_on(CoreCtx::BOOT),
                        CoreCtx::BOOT.core as u32,
                        EventKind::SwapOut,
                        id.0,
                    );
                    freed += 1;
                    cleared = true;
                }
                self.vmobjects.insert(id, obj);
            }
        }
        if cleared {
            self.flush_all_tlbs();
        }
        freed
    }

    /// Per-victim eviction telemetry: an [`EventKind::Evict`] instant
    /// naming the owning process and object, a per-victim page
    /// counter, and the opening of the [`EventKind::SwapOut`] span the
    /// caller closes after charging the swap-write cost. Eviction and
    /// OOM decisions were previously invisible per victim; this is
    /// what makes them auditable from the trace.
    fn record_eviction(&mut self, owner: Option<Pid>, obj: VmObjectId) {
        if !self.tracer.enabled() {
            return;
        }
        let core = CoreCtx::BOOT.core as u32;
        let now = self.now_on(CoreCtx::BOOT);
        let owner_pid = owner.map_or(0, |p| p.0);
        self.tracer
            .instant(now, core, EventKind::Evict, owner_pid, obj.0);
        self.tracer.add(&format!("evict.pages.pid{owner_pid}"), 1);
        self.tracer.begin(now, core, EventKind::SwapOut, obj.0);
    }

    /// Runs reclaim if free frames would dip below the low watermark
    /// after an allocation of `upcoming_pages`.
    fn reclaim_to_watermark(&mut self, upcoming_pages: u64) {
        let Some(lw) = self.low_watermark else {
            return;
        };
        let free = self.phys.free_frames();
        let need = lw + upcoming_pages;
        if free < need {
            self.reclaim(need - free);
        }
    }

    /// Enforces `pid`'s quota for `pages` more resident frames, evicting
    /// the process's own pages first.
    ///
    /// # Errors
    ///
    /// [`OsError::QuotaExceeded`] when the quota cannot be met.
    fn enforce_quota(&mut self, pid: Pid, pages: u64) -> OsResult<()> {
        let Some(limit) = self.quotas.get(&pid).copied() else {
            return Ok(());
        };
        let used = self.resident_frames_of(pid);
        if used + pages <= limit {
            return Ok(());
        }
        self.reclaim_owned(pid, used + pages - limit);
        let used = self.resident_frames_of(pid);
        if used + pages <= limit {
            return Ok(());
        }
        self.stats.quota_denials += 1;
        let ctx = self.ctx_of(pid).unwrap_or(CoreCtx::BOOT);
        self.tracer.instant(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::QuotaDenial,
            pid.0,
            used,
        );
        Err(OsError::QuotaExceeded {
            pid,
            limit_frames: limit,
            used_frames: used,
            requested_frames: pages,
        })
    }

    /// The pressure-checked admission path for allocations of `pages`
    /// frames: consults the `FrameAlloc` fault site, enforces the
    /// caller's quota, honors the low watermark, and as a last resort
    /// reclaims directly for the request.
    ///
    /// # Errors
    ///
    /// [`OsError::QuotaExceeded`] / [`OsError::OutOfMemory`].
    fn ensure_frames(
        &mut self,
        pid: Option<Pid>,
        space: Option<VmspaceId>,
        pages: u64,
        bytes: u64,
    ) -> OsResult<()> {
        self.frame_alloc_gate()?;
        if let Some(p) = pid {
            self.enforce_quota(p, pages)?;
        }
        self.reclaim_to_watermark(pages);
        let free = self.phys.free_frames();
        if free < pages {
            self.reclaim(pages - free);
            let free = self.phys.free_frames();
            if free < pages {
                return Err(OsError::OutOfMemory {
                    pid,
                    space,
                    bytes,
                    frames_free: free,
                });
            }
        }
        Ok(())
    }

    /// Picks the process with the largest resident set (by owned-object
    /// accounting) as the OOM victim, excluding `protect`. Ties go to the
    /// younger (higher) pid. Returns `None` if no unprotected process
    /// owns resident memory.
    pub fn select_oom_victim(&self, protect: &[Pid]) -> Option<Pid> {
        self.processes
            .keys()
            .filter(|p| !protect.contains(p))
            .map(|p| (self.resident_frames_of(*p), p.0))
            .filter(|(badness, _)| *badness > 0)
            .max()
            .map(|(_, pid)| Pid(pid))
    }

    /// Reports physical-memory and pressure counters (a syscall, so the
    /// entry cost is charged).
    pub fn sys_phys_stats(&mut self) -> PhysStats {
        self.charge_entry();
        PhysStats {
            total_frames: self.phys.capacity_frames(),
            allocated_frames: self.phys.allocated_frames(),
            free_frames: self.phys.free_frames(),
            nvm_frames: self.phys.nvm_frames(),
            swap_slots_used: self.phys.swap_slots_used(),
            evictions: self.stats.evictions,
            major_faults: self.stats.major_faults,
            reclaim_passes: self.stats.reclaim_passes,
            quota_denials: self.stats.quota_denials,
        }
    }

    /// Explicitly requests reclamation of up to `frames` frames (the
    /// retry valve for workloads that hit a quota or OOM error).
    pub fn sys_reclaim(&mut self, frames: u64) -> u64 {
        self.charge_entry();
        self.reclaim(frames)
    }

    /// Reports one consolidated snapshot of every kernel counter
    /// family — the `sys_stats` syscall. Pairs of snapshots subtract
    /// with [`KernelSnapshot::delta_since`] to measure a phase;
    /// [`KernelSnapshot::to_metrics`] flattens one for export.
    pub fn sys_stats(&mut self) -> KernelSnapshot {
        self.charge_entry();
        self.stats_snapshot()
    }

    /// The same consolidated snapshot as [`Self::sys_stats`] without
    /// the kernel-entry charge, for observers that must not perturb
    /// the clock (exporters, invariant checks, tests).
    pub fn stats_snapshot(&self) -> KernelSnapshot {
        let mut mmu = MmuStats::default();
        let mut tlb = TlbStats::default();
        for m in self.machine.mmus() {
            let ms = m.stats();
            mmu.cr3_loads += ms.cr3_loads;
            mmu.translations += ms.translations;
            mmu.walks += ms.walks;
            mmu.faults += ms.faults;
            let ts = m.tlb_stats();
            tlb.hits += ts.hits;
            tlb.misses += ts.misses;
            tlb.flushes += ts.flushes;
            tlb.asid_flushes += ts.asid_flushes;
            tlb.evictions += ts.evictions;
            tlb.insertions += ts.insertions;
        }
        KernelSnapshot {
            // Total CPU cycles over every hardware thread; equals the
            // boot-core clock for single-core workloads.
            cycles: self.machine.clocks().total(),
            kernel: self.stats,
            phys: PhysStats {
                total_frames: self.phys.capacity_frames(),
                allocated_frames: self.phys.allocated_frames(),
                free_frames: self.phys.free_frames(),
                nvm_frames: self.phys.nvm_frames(),
                swap_slots_used: self.phys.swap_slots_used(),
                evictions: self.stats.evictions,
                major_faults: self.stats.major_faults,
                reclaim_passes: self.stats.reclaim_passes,
                quota_denials: self.stats.quota_denials,
            },
            mmu,
            tlb,
            faults: self.fault.as_ref().map(|p| p.stats()).unwrap_or_default(),
            blk: self.disk.stats().combined(&self.phys.swap_blk_stats()),
        }
    }

    // ---- durability: the snapshot disk -----------------------------------

    /// Commits `payload` as the next snapshot generation on the disk,
    /// returning the generation number. Every block write, journal
    /// record, and flush barrier is cycle-charged to `ctx`'s core and
    /// consults the fault plan's [`FaultSite::BlkWrite`] /
    /// [`FaultSite::BlkFlush`] sites: an injected `Fail` silently tears
    /// the write (or drops the barrier), an injected `Crash` aborts the
    /// commit mid-sequence.
    ///
    /// # Errors
    ///
    /// [`OsError::Crashed`] when a crash fault fires; the device then
    /// holds a partial commit that recovery resolves to exactly the old
    /// or the new snapshot.
    pub fn disk_commit(&mut self, ctx: CoreCtx, payload: &[u8]) -> OsResult<u64> {
        let mut disk = std::mem::replace(
            &mut self.disk,
            SnapshotStore::new(BlockDev::new(DISK_BLOCK_SIZE)),
        );
        let result = disk.commit(payload, &mut KernelBlkHooks { k: self, ctx });
        self.disk = disk;
        match result {
            Ok(generation) => {
                self.tracer.instant(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::SnapshotCommit,
                    generation,
                    payload.len() as u64,
                );
                Ok(generation)
            }
            Err(BlkError::Crashed) => Err(OsError::Crashed),
        }
    }

    /// Reads back the current snapshot payload, charging block reads
    /// to `ctx`'s core. Empty before the first commit.
    pub fn disk_read(&mut self, ctx: CoreCtx) -> Vec<u8> {
        let mut disk = std::mem::replace(
            &mut self.disk,
            SnapshotStore::new(BlockDev::new(DISK_BLOCK_SIZE)),
        );
        let payload = disk.read_payload(&mut KernelBlkHooks { k: self, ctx });
        self.disk = disk;
        payload
    }

    /// The current committed snapshot generation (0 = nothing saved).
    pub fn disk_generation(&self) -> u64 {
        self.disk.generation()
    }

    /// Block counters of the snapshot disk alone (the `blk` group in
    /// [`KernelSnapshot`] also folds in the swap device).
    pub fn disk_stats(&self) -> BlkStats {
        self.disk.stats()
    }

    /// Detaches the snapshot disk, leaving the kernel with a fresh
    /// empty one. The restart protocol: `take_disk()`, then
    /// [`BlockDev::crash`] to drop unflushed blocks, then
    /// [`Kernel::attach_disk`] on a newly booted kernel.
    pub fn take_disk(&mut self) -> BlockDev {
        std::mem::replace(
            &mut self.disk,
            SnapshotStore::new(BlockDev::new(DISK_BLOCK_SIZE)),
        )
        .into_dev()
    }

    /// Attaches `dev` and runs snapshot recovery on the boot core:
    /// candidate superblocks and journal records are checksum-validated
    /// (reading their payloads), the highest surviving generation wins,
    /// and a journal-sourced winner is replayed into its superblock.
    /// Returns the number of journal replays performed (0 or 1).
    pub fn attach_disk(&mut self, dev: BlockDev) -> u64 {
        let ctx = CoreCtx::BOOT;
        let (disk, replays) = SnapshotStore::open(dev, &mut KernelBlkHooks { k: self, ctx });
        self.disk = disk;
        if replays > 0 {
            self.tracer.instant(
                self.now_on(ctx),
                ctx.core as u32,
                EventKind::JournalReplay,
                replays,
                self.disk.generation(),
            );
        }
        replays
    }

    // ---- object page IO (snapshot serialization) -------------------------

    /// Reads one page of a VM object into `buf` without changing its
    /// page state: resident pages (and contiguous objects) read from
    /// DRAM, swapped pages read back through the swap device, zero
    /// pages zero-fill. `buf` must be exactly one page.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] for unknown ids.
    pub fn read_object_page(
        &mut self,
        id: VmObjectId,
        page_index: u64,
        buf: &mut [u8],
    ) -> OsResult<()> {
        assert_eq!(buf.len() as u64, PAGE_SIZE, "buf must be one page");
        match self.vmobject(id)?.page_state(page_index) {
            PageState::Resident { pfn, .. } => self.phys.read_bytes(pfn.base(), buf)?,
            PageState::Zero => buf.fill(0),
            PageState::Swapped { slot } => {
                let found = self.phys.read_swap_slot(slot, buf);
                assert!(found, "swapped page names empty slot {slot}");
            }
        }
        Ok(())
    }

    /// Writes one page of data into a VM object, faulting the page in
    /// first when it is not resident — the snapshot restore path.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] for unknown ids; allocation errors
    /// from the fault-in.
    pub fn write_object_page(
        &mut self,
        id: VmObjectId,
        page_index: u64,
        data: &[u8],
    ) -> OsResult<()> {
        assert!(data.len() as u64 <= PAGE_SIZE, "data exceeds one page");
        let pa = match self.vmobject(id)?.page_state(page_index) {
            PageState::Resident { pfn, .. } => pfn.base(),
            _ => {
                let mut obj = self.vmobjects.remove(&id).ok_or(OsError::NoSuchObject)?;
                let result = obj.fault_in_page(page_index, &mut self.phys);
                self.vmobjects.insert(id, obj);
                result?.0.base()
            }
        };
        self.phys.write_bytes(pa, data)?;
        Ok(())
    }

    /// Duplicates a demand-paged object page by page, preserving each
    /// page's state: `Zero` stays zero (no frame), `Resident` copies
    /// the frame, `Swapped` copies the swap image into a fresh slot —
    /// neither side is faulted in, so cloning a partially-evicted
    /// segment does not disturb memory pressure. The new object is
    /// demand-paged, unowned, and unmapped; the caller sets
    /// preserved/swappable/owner flags.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchObject`] for unknown ids; frame exhaustion
    /// while copying resident pages (already-copied pages are freed).
    pub fn duplicate_paged_object(&mut self, src: VmObjectId) -> OsResult<VmObjectId> {
        self.fault_gate(FaultSite::ObjectAlloc)?;
        let (pages, len) = {
            let o = self.vmobject(src)?;
            (o.pages(), o.len())
        };
        let id = VmObjectId(self.next_obj);
        self.next_obj += 1;
        let mut dst = VmObject::alloc_demand(id, len)?;
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        for i in 0..pages {
            match self.vmobject(src)?.page_state(i) {
                PageState::Zero => {}
                PageState::Resident { pfn, .. } => {
                    let new = match self.phys.alloc_frame() {
                        Ok(f) => f,
                        Err(e) => {
                            dst.free(&mut self.phys);
                            return Err(e.into());
                        }
                    };
                    self.phys.read_bytes(pfn.base(), &mut buf)?;
                    self.phys.write_bytes(new.base(), &buf)?;
                    dst.install_page_state(
                        i,
                        PageState::Resident {
                            pfn: new,
                            referenced: true,
                        },
                    );
                }
                PageState::Swapped { slot } => {
                    let materialized = self.phys.read_swap_slot(slot, &mut buf);
                    assert!(materialized, "swapped page names empty slot {slot}");
                    // An all-zero image stays sparse in the new slot,
                    // like the original zero-page eviction did.
                    let image = if buf.iter().all(|&b| b == 0) {
                        None
                    } else {
                        Some(buf.as_slice())
                    };
                    let new_slot = self.phys.store_swap_slot(image);
                    dst.install_page_state(i, PageState::Swapped { slot: new_slot });
                }
            }
        }
        self.vmobjects.insert(id, dst);
        Ok(id)
    }

    // ---- invariant audit -------------------------------------------------

    /// Audits kernel bookkeeping — the crash-recovery acceptance check.
    /// Returns a human-readable list of violations (empty = consistent):
    ///
    /// * every region maps a live object, and each object's refcount
    ///   equals the number of regions mapping it;
    /// * no unpinned object sits unmapped (leaked frames after teardown);
    /// * every process references only live vmspaces and is current in a
    ///   space it holds;
    /// * every allocated physical frame is owned by exactly one of: a VM
    ///   object, a vmspace's private page tables, or an
    ///   `external_roots` tree (the SpaceJMP layer's VAS templates,
    ///   which own the shared subtrees linked into attached vmspaces).
    pub fn check_invariants(&mut self, external_roots: &[Pfn]) -> Vec<String> {
        let mut problems = Vec::new();

        let mut region_refs: HashMap<VmObjectId, u64> = HashMap::new();
        for vs in self.vmspaces.values() {
            for r in vs.regions() {
                *region_refs.entry(r.object).or_insert(0) += 1;
                if !self.vmobjects.contains_key(&r.object) {
                    problems.push(format!(
                        "space {:?} maps object {:?} which does not exist",
                        vs.id(),
                        r.object
                    ));
                }
            }
        }
        for (id, obj) in &self.vmobjects {
            let mapped = region_refs.get(id).copied().unwrap_or(0);
            if obj.refs() != mapped {
                problems.push(format!(
                    "object {id:?} refcount {} but {mapped} region(s) map it",
                    obj.refs()
                ));
            }
            if !obj.persistent() && mapped == 0 {
                problems.push(format!(
                    "unpinned object {id:?} has no mappings (leaked frames)"
                ));
            }
        }

        for (pid, p) in &self.processes {
            for s in p.spaces() {
                if !self.vmspaces.contains_key(s) {
                    problems.push(format!("process {pid:?} holds destroyed space {s:?}"));
                }
            }
            if !p.holds_space(p.current_space()) {
                problems.push(format!(
                    "process {pid:?} current space is not in its space list"
                ));
            }
        }

        // Frame accounting must balance exactly even mid-pressure: only
        // *resident* pages own frames, and every swapped page owns
        // exactly one swap slot.
        let mut owned_frames = 0u64;
        let mut swapped_pages = 0u64;
        for obj in self.vmobjects.values() {
            owned_frames += obj.resident_pages();
            swapped_pages += obj.swapped_pages();
        }
        let slots = self.phys.swap_slots_used();
        if swapped_pages != slots {
            problems.push(format!(
                "swap accounting mismatch: {slots} slot(s) used, {swapped_pages} page(s) swapped"
            ));
        }
        let roots: Vec<(Pfn, Vec<usize>)> = self
            .vmspaces
            .values()
            .map(|vs| (vs.root(), vs.shared_slots().to_vec()))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for root in external_roots {
            owned_frames +=
                self.backend
                    .collect_table_frames(&mut self.phys, *root, &[], &mut seen);
        }
        for (root, skip) in roots {
            owned_frames +=
                self.backend
                    .collect_table_frames(&mut self.phys, root, &skip, &mut seen);
        }
        let allocated = self.phys.allocated_frames();
        if owned_frames != allocated {
            problems.push(format!(
                "frame accounting mismatch: {allocated} frames allocated, {owned_frames} owned"
            ));
        }
        problems
    }
}

/// Kernel-side interposition on snapshot-disk IO: every block read,
/// write, and flush barrier issued by [`SnapshotStore`] is charged to
/// the executing core, wrapped in a trace span, and (for writes and
/// flushes) run past the fault plan. Crash outcomes are returned to
/// the store as [`WriteFault::Crash`] / [`FlushFault::Crash`] — power
/// died, so nothing is charged and no span is emitted.
struct KernelBlkHooks<'a> {
    k: &'a mut Kernel,
    ctx: CoreCtx,
}

impl BlkHooks for KernelBlkHooks<'_> {
    fn on_read(&mut self, lba: u64) {
        let ctx = self.ctx;
        let core = ctx.core as u32;
        self.k
            .tracer
            .begin(self.k.now_on(ctx), core, EventKind::BlkRead, lba);
        self.k.charge(ctx, self.k.cost.blk_read_block);
        self.k
            .tracer
            .end(self.k.now_on(ctx), core, EventKind::BlkRead, lba);
    }

    fn on_write(&mut self, lba: u64) -> WriteFault {
        let ctx = self.ctx;
        let core = ctx.core as u32;
        match self.k.fault_outcome(FaultSite::BlkWrite) {
            FaultOutcome::Crash => WriteFault::Crash,
            outcome => {
                self.k
                    .tracer
                    .begin(self.k.now_on(ctx), core, EventKind::BlkWrite, lba);
                self.k.charge(ctx, self.k.cost.blk_write_block);
                self.k
                    .tracer
                    .end(self.k.now_on(ctx), core, EventKind::BlkWrite, lba);
                if outcome == FaultOutcome::Fail {
                    WriteFault::Torn
                } else {
                    WriteFault::None
                }
            }
        }
    }

    fn on_flush(&mut self) -> FlushFault {
        let ctx = self.ctx;
        let core = ctx.core as u32;
        match self.k.fault_outcome(FaultSite::BlkFlush) {
            FaultOutcome::Crash => FlushFault::Crash,
            outcome => {
                self.k
                    .tracer
                    .begin(self.k.now_on(ctx), core, EventKind::BlkFlush, 0);
                self.k.charge(ctx, self.k.cost.blk_flush);
                self.k
                    .tracer
                    .end(self.k.now_on(ctx), core, EventKind::BlkFlush, 0);
                if outcome == FaultOutcome::Fail {
                    FlushFault::Dropped
                } else {
                    FlushFault::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(KernelFlavor::DragonFly, MachineId::M2)
    }

    fn user() -> Creds {
        Creds::new(100, 100)
    }

    #[test]
    fn spawn_creates_private_segments() {
        let mut k = kernel();
        let pid = k.spawn("init", user()).unwrap();
        let space = k.process(pid).unwrap().current_space();
        let vs = k.vmspace(space).unwrap();
        assert_eq!(vs.region_count(), 3, "text + data + stack");
        assert!(vs.find_region(TEXT_BASE).is_some());
        assert!(vs.find_region(VirtAddr::new(STACK_TOP.raw() - 8)).is_some());
    }

    #[test]
    fn load_store_through_current_space() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let sp = VirtAddr::new(STACK_TOP.raw() - 64);
        k.store_u64(pid, sp, 0xabcd).unwrap();
        assert_eq!(k.load_u64(pid, sp).unwrap(), 0xabcd);
    }

    #[test]
    fn mmap_munmap_round_trip() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let va = k
            .sys_mmap(pid, 64 * 1024, PteFlags::USER | PteFlags::WRITABLE, false)
            .unwrap();
        assert!(va >= MMAP_BASE);
        k.store_u64(pid, va.add(4096), 7).unwrap();
        assert_eq!(k.load_u64(pid, va.add(4096)).unwrap(), 7);
        k.sys_munmap(pid, va, false).unwrap();
        assert!(matches!(
            k.load_u64(pid, va.add(4096)),
            Err(OsError::Mem(MemError::PageFault { .. }))
        ));
        assert_eq!(k.stats().mmaps, 1);
        assert_eq!(k.stats().munmaps, 1);
    }

    #[test]
    fn mmap_cost_scales_with_size_and_cached_is_cheaper() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        let t0 = k.clock().now();
        let a = k.sys_mmap(pid, 1 << 20, PteFlags::WRITABLE, false).unwrap();
        let small = k.clock().since(t0);
        let t1 = k.clock().now();
        let b = k
            .sys_mmap(pid, 16 << 20, PteFlags::WRITABLE, false)
            .unwrap();
        let large = k.clock().since(t1);
        assert!(
            large > 10 * small,
            "16x size should cost >10x ({small} vs {large})"
        );
        let t2 = k.clock().now();
        k.sys_mmap(pid, 16 << 20, PteFlags::WRITABLE, true).unwrap();
        let cached = k.clock().since(t2);
        assert!(
            cached < large / 2,
            "cached map should be much cheaper ({cached} vs {large})"
        );
        let _ = (a, b);
    }

    #[test]
    fn lazy_mapping_faults_in() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let space = k.process(pid).unwrap().current_space();
        let obj = k.alloc_object(8192).unwrap();
        let va = VirtAddr::new(0x2_0000_0000);
        k.map_object(
            space,
            obj,
            va,
            0,
            8192,
            PteFlags::USER | PteFlags::WRITABLE,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        assert_eq!(k.stats().faults_handled, 0);
        k.store_u64(pid, va, 1).unwrap();
        assert_eq!(k.stats().faults_handled, 1);
        k.store_u64(pid, va.add(8), 2).unwrap();
        assert_eq!(k.stats().faults_handled, 1, "same page, no second fault");
    }

    #[test]
    fn protection_fault_not_resolved_by_fault_handler() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let space = k.process(pid).unwrap().current_space();
        let obj = k.alloc_object(4096).unwrap();
        let va = VirtAddr::new(0x2_0000_0000);
        k.map_object(
            space,
            obj,
            va,
            0,
            4096,
            PteFlags::USER,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        assert!(matches!(
            k.store_u64(pid, va, 1),
            Err(OsError::Mem(MemError::ProtectionFault { .. }))
        ));
    }

    #[test]
    fn switch_vmspace_costs_match_table2() {
        for (flavor, tagged, expect) in [
            (KernelFlavor::DragonFly, false, 1127u64),
            (KernelFlavor::DragonFly, true, 807),
            (KernelFlavor::Barrelfish, false, 664),
            (KernelFlavor::Barrelfish, true, 462),
        ] {
            let mut k = Kernel::new(flavor, MachineId::M2);
            k.set_tagging(tagged);
            let pid = k.spawn("p", user()).unwrap();
            let second = k.create_vmspace().unwrap();
            if tagged {
                let asid = k.alloc_asid().unwrap();
                k.vmspace_mut(second).unwrap().set_asid(asid);
            }
            k.process_mut(pid).unwrap().add_space(second);
            let t0 = k.clock().now();
            k.switch_vmspace(pid, second).unwrap();
            assert_eq!(k.clock().since(t0), expect, "{flavor:?} tagged={tagged}");
        }
    }

    #[test]
    fn switch_requires_attachment() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        let other = k.create_vmspace().unwrap();
        assert_eq!(k.switch_vmspace(pid, other), Err(OsError::PermissionDenied));
    }

    #[test]
    fn object_lifecycle_and_refs() {
        let mut k = kernel();
        let obj = k.alloc_object(4096).unwrap();
        let space = k.create_vmspace().unwrap();
        k.map_object(
            space,
            obj,
            VirtAddr::new(0x1000),
            0,
            4096,
            PteFlags::USER,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        assert!(matches!(k.free_object(obj), Err(OsError::Conflict(_))));
        k.unmap_object(space, VirtAddr::new(0x1000), None).unwrap();
        k.free_object(obj).unwrap();
        assert!(matches!(k.free_object(obj), Err(OsError::NoSuchObject)));
    }

    #[test]
    fn mapping_beyond_object_rejected() {
        let mut k = kernel();
        let obj = k.alloc_object(4096).unwrap();
        let space = k.create_vmspace().unwrap();
        assert!(matches!(
            k.map_object(
                space,
                obj,
                VirtAddr::new(0),
                0,
                8192,
                PteFlags::USER,
                MapPolicy::Lazy,
                None
            ),
            Err(OsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn asid_pool_recycles() {
        let mut k = kernel();
        let a = k.alloc_asid().unwrap();
        let b = k.alloc_asid().unwrap();
        assert_ne!(a, b);
        k.free_asid(a);
        assert_eq!(k.alloc_asid().unwrap(), a);
        k.free_asid(Asid::UNTAGGED); // no-op, never pooled
        assert_eq!(k.alloc_asid().unwrap().0, 3);
    }

    #[test]
    fn exit_releases_spaces() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        let space = k.process(pid).unwrap().current_space();
        k.exit(pid).unwrap();
        assert!(k.process(pid).is_err());
        assert!(k.vmspace(space).is_err());
        assert!(matches!(k.exit(pid), Err(OsError::NoSuchProcess)));
    }

    #[test]
    fn kernel_entry_cost_differs_by_flavor() {
        let mut bsd = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
        let mut bf = Kernel::new(KernelFlavor::Barrelfish, MachineId::M2);
        let t0 = bsd.clock().now();
        bsd.charge_entry();
        assert_eq!(bsd.clock().since(t0), 357);
        let t1 = bf.clock().now();
        bf.charge_entry();
        assert_eq!(bf.clock().since(t1), 130);
    }

    #[test]
    fn superpage_mmap_works_and_is_cheaper_to_construct() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let flags = PteFlags::USER | PteFlags::WRITABLE;
        let t0 = k.clock().now();
        let small = k.sys_mmap(pid, 32 << 20, flags, false).unwrap();
        let cost_4k = k.clock().since(t0);
        let t1 = k.clock().now();
        let huge = k
            .sys_mmap_sized(pid, 32 << 20, flags, false, sjmp_mem::PageSize::Size2M)
            .unwrap();
        let cost_2m = k.clock().since(t1);
        assert!(
            cost_2m * 20 < cost_4k,
            "2 MiB pages: {cost_2m} vs 4 KiB: {cost_4k}"
        );
        // Both mappings are readable/writable across their extent.
        for va in [small, huge] {
            k.store_u64(pid, va.add((32 << 20) - 8), 7).unwrap();
            assert_eq!(k.load_u64(pid, va.add((32 << 20) - 8)).unwrap(), 7);
        }
        assert!(
            huge.is_aligned(2 << 20),
            "superpage mapping must be aligned"
        );
        // Misaligned huge-page length rejected with the typed error.
        assert_eq!(
            k.sys_mmap_sized(
                pid,
                (2 << 20) + 4096,
                flags,
                false,
                sjmp_mem::PageSize::Size2M
            ),
            Err(OsError::Misaligned {
                requested: (2 << 20) + 4096,
                page_size: sjmp_mem::PageSize::Size2M,
            })
        );
        // A 4 KiB request with a ragged length stays a plain argument
        // error — base pages have no alignment story to tell.
        assert!(matches!(
            k.sys_mmap_sized(pid, 100, flags, false, sjmp_mem::PageSize::Size4K),
            Err(OsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn mixed_page_size_vmspace_accounts_tlb_reach() {
        // One address space holding both 4 KiB and 2 MiB mappings: the
        // TLB must track each entry at its own size, and reach must sum
        // the true bytes covered.
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let flags = PteFlags::USER | PteFlags::WRITABLE;
        let small = k.sys_mmap(pid, 2 * PAGE_SIZE, flags, false).unwrap();
        let huge = k
            .sys_mmap_sized(pid, 4 << 20, flags, false, sjmp_mem::PageSize::Size2M)
            .unwrap();
        // Touch both 4K pages and both 2M pages (interior offsets).
        k.store_u64(pid, small, 1).unwrap();
        k.store_u64(pid, small.add(PAGE_SIZE), 2).unwrap();
        k.store_u64(pid, huge.add(0x1234 * 8), 3).unwrap();
        k.store_u64(pid, huge.add((2 << 20) + 64), 4).unwrap();
        let core = k.process(pid).unwrap().core();
        let (mmu, _) = k.core_mem(core);
        assert_eq!(mmu.stats().walks, 4, "four distinct pages walked");
        assert_eq!(
            mmu.tlb_mut().reach_bytes(),
            2 * PAGE_SIZE + 2 * (2u64 << 20),
            "reach counts each entry at its own page size"
        );
        // Re-touching interior addresses of the superpages hits the TLB.
        let walks_before = {
            let (mmu, _) = k.core_mem(core);
            mmu.stats().walks
        };
        k.store_u64(pid, huge.add(0x660), 5).unwrap();
        k.store_u64(pid, huge.add((2 << 20) + 0x4000), 6).unwrap();
        let (mmu, _) = k.core_mem(core);
        assert_eq!(mmu.stats().walks, walks_before, "superpage entries hit");
    }

    #[test]
    fn huge_page_flush_and_invalidate_are_size_aware() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let flags = PteFlags::USER | PteFlags::WRITABLE;
        let huge = k
            .sys_mmap_sized(pid, 2 << 20, flags, false, sjmp_mem::PageSize::Size2M)
            .unwrap();
        k.store_u64(pid, huge.add(0x8000), 1).unwrap();
        let core = k.process(pid).unwrap().core();
        // invlpg on an *interior* 4K page of the superpage must drop the
        // whole covering entry.
        {
            let (mmu, _) = k.core_mem(core);
            assert_eq!(mmu.tlb_mut().reach_bytes(), 2 << 20);
            mmu.invlpg(huge.add(0x8000));
            assert_eq!(mmu.tlb_mut().reach_bytes(), 0, "covering entry dropped");
        }
        k.store_u64(pid, huge.add(0x8000), 2).unwrap();
        let (mmu, _) = k.core_mem(core);
        assert_eq!(mmu.stats().walks, 2, "rewalked after size-aware invlpg");
    }

    #[test]
    fn processes_round_robin_cores() {
        let mut k = kernel();
        let p1 = k.spawn("a", user()).unwrap();
        let p2 = k.spawn("b", user()).unwrap();
        assert_eq!(k.process(p1).unwrap().core(), 0);
        assert_eq!(k.process(p2).unwrap().core(), 1);
    }

    #[test]
    fn exit_reclaims_private_objects_and_frames() {
        let mut k = kernel();
        let before = k.phys_mut().allocated_frames();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        k.sys_mmap(pid, 1 << 20, PteFlags::USER | PteFlags::WRITABLE, false)
            .unwrap();
        k.exit(pid).unwrap();
        assert_eq!(
            k.phys_mut().allocated_frames(),
            before,
            "spawn + mmap + exit must return every frame"
        );
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn exit_spares_vmspaces_other_processes_hold() {
        let mut k = kernel();
        let p1 = k.spawn("a", user()).unwrap();
        let p2 = k.spawn("b", user()).unwrap();
        let shared = k.create_vmspace().unwrap();
        k.process_mut(p1).unwrap().add_space(shared);
        k.process_mut(p2).unwrap().add_space(shared);
        k.exit(p1).unwrap();
        assert!(k.vmspace(shared).is_ok(), "p2 still holds the space");
        k.switch_vmspace(p2, shared).unwrap();
        k.exit(p2).unwrap();
        assert!(k.vmspace(shared).is_err(), "last holder's exit destroys it");
    }

    #[test]
    fn kill_reclaims_without_process_cooperation() {
        let mut k = kernel();
        let before = k.phys_mut().allocated_frames();
        let pid = k.spawn("victim", user()).unwrap();
        k.activate(pid).unwrap();
        let va = k
            .sys_mmap(pid, 256 * 1024, PteFlags::USER | PteFlags::WRITABLE, false)
            .unwrap();
        k.store_u64(pid, va, 1).unwrap();
        let second = k.create_vmspace().unwrap();
        k.process_mut(pid).unwrap().add_space(second);
        k.switch_vmspace(pid, second).unwrap();
        // Abrupt death: no unmap, no munmap, CR3 still loaded.
        k.kill(pid).unwrap();
        assert!(k.process(pid).is_err());
        assert!(k.vmspace(second).is_err());
        assert_eq!(k.phys_mut().allocated_frames(), before);
        assert!(k.check_invariants(&[]).is_empty());
        assert!(
            matches!(k.kill(pid), Err(OsError::NoSuchProcess)),
            "double kill"
        );
    }

    #[test]
    fn mid_map_fault_rolls_back_cleanly() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let frames_before = k.phys_mut().allocated_frames();
        let mmaps_before = k.stats().mmaps;
        k.set_fault_plan(Some(
            crate::fault::FaultPlan::new(1).fail_nth(FaultSite::MapRegion, 1),
        ));
        let err = k.sys_mmap(pid, 4 << 20, PteFlags::USER | PteFlags::WRITABLE, false);
        assert_eq!(err, Err(OsError::Mem(MemError::OutOfFrames)));
        k.set_fault_plan(None);
        assert_eq!(
            k.phys_mut().allocated_frames(),
            frames_before,
            "failed mmap must leak no frames"
        );
        assert!(k.check_invariants(&[]).is_empty());
        // The address space is unchanged: the same mmap now succeeds.
        let va = k
            .sys_mmap(pid, 4 << 20, PteFlags::USER | PteFlags::WRITABLE, false)
            .unwrap();
        k.store_u64(pid, va.add((4 << 20) - 8), 9).unwrap();
        assert_eq!(k.stats().mmaps, mmaps_before + 2);
    }

    #[test]
    fn injected_crash_leaves_zombie_until_killed() {
        let mut k = kernel();
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        k.set_fault_plan(Some(
            crate::fault::FaultPlan::new(1).crash_nth(FaultSite::Mmap, 1),
        ));
        assert_eq!(
            k.sys_mmap(pid, 4096, PteFlags::USER | PteFlags::WRITABLE, false),
            Err(OsError::Crashed)
        );
        // No cleanup happened: the process is still registered.
        assert!(k.process(pid).is_ok());
        assert!(
            k.check_invariants(&[]).is_empty(),
            "crash at syscall entry is atomic"
        );
        k.kill(pid).unwrap();
        assert!(k.check_invariants(&[]).is_empty());
    }

    /// A tiny machine for pressure tests: `frames` frames of DRAM total
    /// (page tables included), single core.
    fn small_kernel(frames: u64) -> Kernel {
        let profile = MachineProfile {
            name: "tiny",
            mem_bytes: frames * PAGE_SIZE,
            sockets: 1,
            cores_per_socket: 1,
            freq_hz: 2_000_000_000,
            tlb_entries: 64,
            tlb_ways: 4,
        };
        Kernel::with_profile(KernelFlavor::DragonFly, profile, CostModel::default())
    }

    /// Maps a demand-zero swappable object into a fresh vmspace and
    /// returns (pid, va). The object oversubscribes: `obj_pages` can
    /// exceed the machine's frame count.
    fn pressured_setup(k: &mut Kernel, obj_pages: u64) -> (Pid, VirtAddr) {
        let pid = k.spawn("p", user()).unwrap();
        k.activate(pid).unwrap();
        let space = k.process(pid).unwrap().current_space();
        let obj = k
            .alloc_object_demand(Some(pid), obj_pages * PAGE_SIZE)
            .unwrap();
        let va = VirtAddr::new(0x2_0000_0000);
        k.map_object(
            space,
            obj,
            va,
            0,
            obj_pages * PAGE_SIZE,
            PteFlags::USER | PteFlags::WRITABLE,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        (pid, va)
    }

    #[test]
    fn oversubscribed_object_survives_via_swap() {
        // 160-frame machine; spawn takes ~104 (96 segment pages plus
        // tables), leaving ~50 free. A 112-page object touched end to
        // end oversubscribes that 2×. Reclaim must keep it running.
        let mut k = small_kernel(160);
        k.set_low_watermark(Some(4));
        let (pid, va) = pressured_setup(&mut k, 112);
        for i in 0..112u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i ^ 0xdead).unwrap();
        }
        assert!(k.stats().evictions > 0, "pressure must evict");
        // Re-read everything: swapped pages fault back in with content.
        for i in 0..112u64 {
            assert_eq!(
                k.load_u64(pid, va.add(i * PAGE_SIZE)).unwrap(),
                i ^ 0xdead,
                "page {i} lost its content"
            );
        }
        assert!(k.stats().major_faults > 0, "re-reads must swap back in");
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn swap_costs_are_charged() {
        let mut k = small_kernel(160);
        k.set_low_watermark(Some(4));
        let (pid, va) = pressured_setup(&mut k, 112);
        for i in 0..112u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i).unwrap();
        }
        let t0 = k.clock().now();
        let faults0 = k.stats().major_faults;
        // Touch a page that was certainly evicted (the clock hand moved
        // beyond the early pages long ago).
        let mut hit = None;
        for i in 0..112u64 {
            let before = k.stats().major_faults;
            k.load_u64(pid, va.add(i * PAGE_SIZE)).unwrap();
            if k.stats().major_faults > before {
                hit = Some(i);
                break;
            }
        }
        assert!(hit.is_some(), "no page was swapped out?");
        assert!(
            k.clock().since(t0) >= k.cost().swap_in_page,
            "major fault must charge the swap-in cost"
        );
        assert!(k.stats().major_faults > faults0);
    }

    #[test]
    fn quota_enforced_with_typed_error_and_self_reclaim() {
        let mut k = small_kernel(256);
        let pid = k.spawn("q", user()).unwrap();
        k.activate(pid).unwrap();
        let spawn_resident = k.resident_frames_of(pid);
        // Allow 8 frames beyond the spawn footprint.
        k.set_quota(pid, Some(spawn_resident + 8));
        // Unswappable private memory cannot be self-reclaimed, so the
        // 9th frame must be a clean typed denial.
        let err = k.sys_mmap(
            pid,
            16 * PAGE_SIZE,
            PteFlags::USER | PteFlags::WRITABLE,
            false,
        );
        match err {
            Err(OsError::QuotaExceeded {
                pid: p,
                limit_frames,
                requested_frames,
                ..
            }) => {
                assert_eq!(p, pid);
                assert_eq!(limit_frames, spawn_resident + 8);
                assert_eq!(requested_frames, 16);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert_eq!(k.stats().quota_denials, 1);
        // Within quota still works.
        k.sys_mmap(
            pid,
            4 * PAGE_SIZE,
            PteFlags::USER | PteFlags::WRITABLE,
            false,
        )
        .unwrap();
        assert!(k.check_invariants(&[]).is_empty());

        // Swappable memory self-reclaims instead of failing: a demand
        // object larger than quota can still be walked because its own
        // cold pages get evicted to stay under the limit.
        let space = k.process(pid).unwrap().current_space();
        let obj = k.alloc_object_demand(Some(pid), 32 * PAGE_SIZE).unwrap();
        let va = VirtAddr::new(0x3_0000_0000);
        k.map_object(
            space,
            obj,
            va,
            0,
            32 * PAGE_SIZE,
            PteFlags::USER | PteFlags::WRITABLE,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        for i in 0..32u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i).unwrap();
        }
        assert!(k.stats().evictions > 0, "quota pressure must self-evict");
        assert!(
            k.resident_frames_of(pid) <= spawn_resident + 8 + 4,
            "resident set must track the quota"
        );
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn frame_alloc_fault_site_forces_reclaim_not_error() {
        let mut k = small_kernel(256);
        k.set_low_watermark(Some(2));
        let (pid, va) = pressured_setup(&mut k, 8);
        for i in 0..8u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i).unwrap();
        }
        let passes0 = k.stats().reclaim_passes;
        k.set_fault_plan(Some(
            crate::fault::FaultPlan::new(3).fail_nth(FaultSite::FrameAlloc, 1),
        ));
        // The injected transient exhaustion is absorbed: the mmap still
        // succeeds, but a reclaim pass ran.
        let got = k
            .sys_mmap(pid, PAGE_SIZE, PteFlags::USER | PteFlags::WRITABLE, false)
            .unwrap();
        let _ = got;
        assert!(
            k.stats().reclaim_passes > passes0,
            "FrameAlloc fail must trigger reclaim"
        );
        k.set_fault_plan(None);
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn oom_victim_is_biggest_resident_set() {
        let mut k = small_kernel(512);
        let small = k.spawn("small", user()).unwrap();
        let big = k.spawn("big", user()).unwrap();
        k.activate(big).unwrap();
        k.sys_mmap(
            big,
            64 * PAGE_SIZE,
            PteFlags::USER | PteFlags::WRITABLE,
            false,
        )
        .unwrap();
        assert_eq!(k.select_oom_victim(&[]), Some(big));
        assert_eq!(k.select_oom_victim(&[big]), Some(small));
        assert_eq!(k.select_oom_victim(&[small, big]), None);
    }

    #[test]
    fn phys_stats_snapshot_is_consistent() {
        let mut k = small_kernel(160);
        k.set_low_watermark(Some(4));
        let (pid, va) = pressured_setup(&mut k, 112);
        for i in 0..112u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i).unwrap();
        }
        let s = k.sys_phys_stats();
        assert_eq!(s.total_frames, 160);
        assert!(s.allocated_frames + s.free_frames <= 160);
        assert!(s.swap_slots_used > 0);
        assert_eq!(s.evictions, k.stats().evictions);
        assert_eq!(s.major_faults, k.stats().major_faults);
        assert!(s.reclaim_passes > 0);
        // The audit cross-checks the same numbers exactly.
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn explicit_reclaim_frees_frames() {
        let mut k = small_kernel(256);
        let (pid, va) = pressured_setup(&mut k, 32);
        for i in 0..32u64 {
            k.store_u64(pid, va.add(i * PAGE_SIZE), i).unwrap();
        }
        let free0 = k.sys_phys_stats().free_frames;
        // Two passes: the first strips reference bits, the second evicts.
        k.sys_reclaim(16);
        let freed = k.sys_reclaim(16);
        assert!(freed > 0, "second pass must evict unreferenced pages");
        assert!(k.sys_phys_stats().free_frames > free0);
        // Evicted pages still read back correctly.
        for i in 0..32u64 {
            assert_eq!(k.load_u64(pid, va.add(i * PAGE_SIZE)).unwrap(), i);
        }
        assert!(k.check_invariants(&[]).is_empty());
    }

    #[test]
    fn audit_flags_refcount_drift() {
        let mut k = kernel();
        let obj = k.alloc_object(4096).unwrap();
        let space = k.create_vmspace().unwrap();
        k.map_object(
            space,
            obj,
            VirtAddr::new(0x1000),
            0,
            4096,
            PteFlags::USER,
            MapPolicy::Lazy,
            None,
        )
        .unwrap();
        assert!(k.check_invariants(&[]).is_empty());
        k.vmobject_mut(obj).unwrap().add_ref(); // sabotage
        let problems = k.check_invariants(&[]);
        assert!(
            problems.iter().any(|p| p.contains("refcount")),
            "{problems:?}"
        );
    }
}
