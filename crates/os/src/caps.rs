//! A miniature seL4-style capability system (Barrelfish flavor).
//!
//! Barrelfish "prohibits dynamic memory allocation in the kernel"; every
//! memory region is *typed* by a capability, and "retyping of memory is
//! checked by the kernel and performed by system calls" (Section 4.2).
//! SpaceJMP on Barrelfish is therefore implemented almost entirely in user
//! space: VAS management operations become explicit capability
//! invocations, and switching into a VAS is "a capability invocation to
//! replace the thread's root page table."
//!
//! This module reproduces the parts of that model SpaceJMP relies on:
//!
//! * typed capabilities over physical frames, page tables, and kernel
//!   objects (VASes, segments — identified by class + id);
//! * checked **retype** (RAM -> Frame / PageTable) with descendant
//!   tracking;
//! * **revocation** that invalidates all descendants, the mechanism the
//!   paper uses to reclaim a VAS ("revoking the process' root page table
//!   prohibits the process from switching into the VAS").

use crate::error::CapError;
use sjmp_mem::Pfn;

/// Kernel-object classes referenced by object capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjClass {
    /// A SpaceJMP virtual address space.
    Vas,
    /// A SpaceJMP segment.
    Segment,
}

/// What a capability refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapKind {
    /// Untyped RAM: `frames` physical frames starting at `base`.
    Ram {
        /// First frame.
        base: Pfn,
        /// Number of frames.
        frames: u64,
    },
    /// Mappable frame memory (retyped from RAM).
    Frame {
        /// First frame.
        base: Pfn,
        /// Number of frames.
        frames: u64,
    },
    /// A page-table node (retyped from RAM); `level` 4 = root (PML4).
    PageTable {
        /// Backing frame.
        frame: Pfn,
        /// Table level, 1 (PT) to 4 (PML4).
        level: u8,
    },
    /// A reference to a kernel/service object (VAS, segment).
    Object {
        /// Object class.
        class: ObjClass,
        /// Object identifier in the owning registry.
        id: u64,
    },
}

/// Rights carried by a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapRights {
    /// May read / map read-only.
    pub read: bool,
    /// May write / map writable.
    pub write: bool,
    /// May retype, mint, or revoke.
    pub grant: bool,
}

impl CapRights {
    /// Full rights.
    pub const ALL: CapRights = CapRights {
        read: true,
        write: true,
        grant: true,
    };
    /// Read-only rights.
    pub const READ: CapRights = CapRights {
        read: true,
        write: false,
        grant: false,
    };

    /// Whether `self` covers everything `other` asks for.
    pub fn covers(self, other: CapRights) -> bool {
        (!other.read || self.read) && (!other.write || self.write) && (!other.grant || self.grant)
    }
}

/// A capability: a typed reference plus rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capability {
    /// What the capability names.
    pub kind: CapKind,
    /// What the holder may do with it.
    pub rights: CapRights,
    /// Generation for revocation: a capability is live only while its
    /// generation matches the slot's.
    revoked: bool,
}

impl Capability {
    /// Creates a live capability.
    pub fn new(kind: CapKind, rights: CapRights) -> Self {
        Capability {
            kind,
            rights,
            revoked: false,
        }
    }

    /// Whether the capability is still valid.
    pub fn is_live(&self) -> bool {
        !self.revoked
    }
}

/// A slot index in a [`CSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapSlot(pub usize);

/// A process's capability space: a flat array of slots (a one-level
/// CNode), with parent/child edges for revocation.
#[derive(Debug)]
pub struct CSpace {
    slots: Vec<Option<Capability>>,
    /// children[i] = slots retyped or minted from slot i.
    children: Vec<Vec<usize>>,
}

impl CSpace {
    /// Creates a CSpace with `n` slots.
    pub fn new(n: usize) -> Self {
        CSpace {
            slots: vec![None; n],
            children: vec![Vec::new(); n],
        }
    }

    /// Finds a free slot.
    fn free_slot(&self) -> Result<usize, CapError> {
        self.slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(CapError::NoSlots)
    }

    /// Installs a capability, returning its slot.
    ///
    /// # Errors
    ///
    /// [`CapError::NoSlots`] when the CSpace is full.
    pub fn insert(&mut self, cap: Capability) -> Result<CapSlot, CapError> {
        let i = self.free_slot()?;
        self.slots[i] = Some(cap);
        self.children[i].clear();
        Ok(CapSlot(i))
    }

    /// Reads the capability in `slot`.
    ///
    /// # Errors
    ///
    /// * [`CapError::EmptySlot`] if nothing is there.
    /// * [`CapError::Revoked`] if it was revoked.
    pub fn lookup(&self, slot: CapSlot) -> Result<&Capability, CapError> {
        let cap = self
            .slots
            .get(slot.0)
            .and_then(|s| s.as_ref())
            .ok_or(CapError::EmptySlot)?;
        if !cap.is_live() {
            return Err(CapError::Revoked);
        }
        Ok(cap)
    }

    /// Checks that `slot` holds a live capability with at least `rights`.
    ///
    /// # Errors
    ///
    /// Lookup errors, plus [`CapError::InsufficientRights`].
    pub fn check(&self, slot: CapSlot, rights: CapRights) -> Result<&Capability, CapError> {
        let cap = self.lookup(slot)?;
        if !cap.rights.covers(rights) {
            return Err(CapError::InsufficientRights);
        }
        Ok(cap)
    }

    /// Mints a copy of `slot` with (possibly reduced) `rights` into a new
    /// slot. The copy is a revocation descendant of the original.
    ///
    /// # Errors
    ///
    /// Lookup errors; [`CapError::InsufficientRights`] if the source lacks
    /// grant rights or the requested rights exceed the source's.
    pub fn mint(&mut self, slot: CapSlot, rights: CapRights) -> Result<CapSlot, CapError> {
        let src = *self.lookup(slot)?;
        if !src.rights.grant || !src.rights.covers(rights) {
            return Err(CapError::InsufficientRights);
        }
        let new = self.insert(Capability::new(src.kind, rights))?;
        self.children[slot.0].push(new.0);
        Ok(new)
    }

    /// Retypes untyped RAM into a frame or page-table capability.
    ///
    /// This is the Barrelfish security model's core rule: "a user-space
    /// process can allocate memory for its own page tables ... and frames
    /// for mapping memory into the virtual address spaces", with the
    /// kernel checking the retype.
    ///
    /// # Errors
    ///
    /// * [`CapError::BadRetype`] if the source is not RAM, is too small,
    ///   or the target kind is not RAM-derivable.
    /// * Lookup/rights errors as in [`Self::check`].
    pub fn retype(&mut self, slot: CapSlot, target: CapKind) -> Result<CapSlot, CapError> {
        let src = *self.check(
            slot,
            CapRights {
                read: false,
                write: false,
                grant: true,
            },
        )?;
        let (base, frames) = match src.kind {
            CapKind::Ram { base, frames } => (base, frames),
            _ => return Err(CapError::BadRetype),
        };
        let ok = match target {
            CapKind::Frame { base: b, frames: f } => b.0 >= base.0 && b.0 + f <= base.0 + frames,
            CapKind::PageTable { frame, .. } => frame.0 >= base.0 && frame.0 < base.0 + frames,
            _ => false,
        };
        if !ok {
            return Err(CapError::BadRetype);
        }
        let new = self.insert(Capability::new(target, src.rights))?;
        self.children[slot.0].push(new.0);
        Ok(new)
    }

    /// Revokes `slot` and, transitively, every descendant minted or
    /// retyped from it.
    ///
    /// # Errors
    ///
    /// [`CapError::EmptySlot`] if nothing is there.
    pub fn revoke(&mut self, slot: CapSlot) -> Result<(), CapError> {
        if self.slots.get(slot.0).and_then(|s| s.as_ref()).is_none() {
            return Err(CapError::EmptySlot);
        }
        let mut stack = vec![slot.0];
        while let Some(i) = stack.pop() {
            if let Some(cap) = self.slots[i].as_mut() {
                cap.revoked = true;
            }
            stack.append(&mut self.children[i]);
        }
        Ok(())
    }

    /// Deletes a capability from its slot (the object survives).
    pub fn delete(&mut self, slot: CapSlot) {
        if let Some(s) = self.slots.get_mut(slot.0) {
            *s = None;
        }
    }

    /// Number of live capabilities.
    pub fn live_count(&self) -> usize {
        self.slots.iter().flatten().filter(|c| c.is_live()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ram(frames: u64) -> Capability {
        Capability::new(
            CapKind::Ram {
                base: Pfn(100),
                frames,
            },
            CapRights::ALL,
        )
    }

    #[test]
    fn insert_lookup_delete() {
        let mut cs = CSpace::new(4);
        let slot = cs.insert(ram(8)).unwrap();
        assert!(cs.lookup(slot).is_ok());
        cs.delete(slot);
        assert_eq!(cs.lookup(slot).unwrap_err(), CapError::EmptySlot);
    }

    #[test]
    fn cspace_fills_up() {
        let mut cs = CSpace::new(2);
        cs.insert(ram(1)).unwrap();
        cs.insert(ram(1)).unwrap();
        assert_eq!(cs.insert(ram(1)).unwrap_err(), CapError::NoSlots);
    }

    #[test]
    fn retype_ram_to_frame_and_table() {
        let mut cs = CSpace::new(8);
        let r = cs.insert(ram(8)).unwrap();
        let f = cs
            .retype(
                r,
                CapKind::Frame {
                    base: Pfn(100),
                    frames: 4,
                },
            )
            .unwrap();
        let t = cs
            .retype(
                r,
                CapKind::PageTable {
                    frame: Pfn(104),
                    level: 4,
                },
            )
            .unwrap();
        assert!(matches!(cs.lookup(f).unwrap().kind, CapKind::Frame { .. }));
        assert!(matches!(
            cs.lookup(t).unwrap().kind,
            CapKind::PageTable { level: 4, .. }
        ));
    }

    #[test]
    fn retype_checked_bounds() {
        let mut cs = CSpace::new(8);
        let r = cs.insert(ram(4)).unwrap();
        // Out of the RAM region.
        assert_eq!(
            cs.retype(
                r,
                CapKind::Frame {
                    base: Pfn(102),
                    frames: 4
                }
            )
            .unwrap_err(),
            CapError::BadRetype
        );
        // Frame caps cannot be retyped further.
        let f = cs
            .retype(
                r,
                CapKind::Frame {
                    base: Pfn(100),
                    frames: 1,
                },
            )
            .unwrap();
        assert_eq!(
            cs.retype(
                f,
                CapKind::PageTable {
                    frame: Pfn(100),
                    level: 1
                }
            )
            .unwrap_err(),
            CapError::BadRetype
        );
        // Object kinds are not RAM-derivable.
        assert_eq!(
            cs.retype(
                r,
                CapKind::Object {
                    class: ObjClass::Vas,
                    id: 1
                }
            )
            .unwrap_err(),
            CapError::BadRetype
        );
    }

    #[test]
    fn mint_reduces_rights() {
        let mut cs = CSpace::new(8);
        let r = cs.insert(ram(4)).unwrap();
        let ro = cs.mint(r, CapRights::READ).unwrap();
        assert_eq!(cs.lookup(ro).unwrap().rights, CapRights::READ);
        // A read-only cap cannot mint (no grant right).
        assert_eq!(
            cs.mint(ro, CapRights::READ).unwrap_err(),
            CapError::InsufficientRights
        );
        // Cannot mint rights you do not have.
        let obj = cs
            .insert(Capability::new(
                CapKind::Object {
                    class: ObjClass::Segment,
                    id: 9,
                },
                CapRights {
                    read: true,
                    write: false,
                    grant: true,
                },
            ))
            .unwrap();
        assert_eq!(
            cs.mint(obj, CapRights::ALL).unwrap_err(),
            CapError::InsufficientRights
        );
    }

    #[test]
    fn revoke_cascades_to_descendants() {
        let mut cs = CSpace::new(16);
        let r = cs.insert(ram(8)).unwrap();
        let f = cs
            .retype(
                r,
                CapKind::Frame {
                    base: Pfn(100),
                    frames: 2,
                },
            )
            .unwrap();
        let m = cs.mint(f, CapRights::READ).unwrap();
        assert_eq!(cs.live_count(), 3);
        cs.revoke(r).unwrap();
        assert_eq!(cs.lookup(r).unwrap_err(), CapError::Revoked);
        assert_eq!(cs.lookup(f).unwrap_err(), CapError::Revoked);
        assert_eq!(cs.lookup(m).unwrap_err(), CapError::Revoked);
        assert_eq!(cs.live_count(), 0);
    }

    #[test]
    fn check_rights() {
        let mut cs = CSpace::new(4);
        let slot = cs
            .insert(Capability::new(
                CapKind::Object {
                    class: ObjClass::Vas,
                    id: 3,
                },
                CapRights::READ,
            ))
            .unwrap();
        assert!(cs.check(slot, CapRights::READ).is_ok());
        assert_eq!(
            cs.check(
                slot,
                CapRights {
                    read: true,
                    write: true,
                    grant: false
                }
            )
            .unwrap_err(),
            CapError::InsufficientRights
        );
    }
}
