//! Deterministic crash-fault injection for the simulated kernel.
//!
//! SpaceJMP's value proposition — shared address spaces with kernel-held
//! locks — is only credible if the kernel survives processes dying at
//! arbitrary points *inside* those shared structures. This module
//! provides the fault source: a seeded [`FaultPlan`] that the kernel
//! consults at each [`FaultSite`] (syscall entry points and the
//! mid-`mmap` page-table construction path) and that deterministically
//! decides whether the call proceeds, fails with the site's natural
//! resource error, or kills the calling process on the spot.
//!
//! Determinism is the point: a plan is built from an explicit seed, so a
//! harness run that trips an invariant can be replayed exactly by
//! re-running with the same seed. Probabilistic rules draw from the
//! plan's own [`SimRng`]; scheduled rules (`fail_nth`, `crash_nth`)
//! trigger on exact per-site call counts.
//!
//! Injected outcomes:
//!
//! * [`FaultOutcome::Fail`] — the operation fails cleanly. Allocation
//!   sites report frame exhaustion ([`sjmp_mem::MemError::OutOfFrames`]);
//!   the switch and munmap sites report a transient
//!   [`crate::OsError::WouldBlock`]. The kernel must leave no partial
//!   state behind (the transactional-`mmap` obligation). The
//!   [`FaultSite::FrameAlloc`] site is special: its failures simulate
//!   *transient* frame exhaustion, which the kernel absorbs by running a
//!   reclaim pass and retrying instead of surfacing an error.
//! * [`FaultOutcome::Crash`] — the calling process dies abruptly inside
//!   the kernel. The call returns [`crate::OsError::Crashed`] and the
//!   kernel performs *no* cleanup: the process is a zombie holding
//!   vmspaces, locks, and frames until someone calls
//!   [`crate::Kernel::kill`] (or the SpaceJMP layer's `reap_process`).

use std::collections::HashMap;

use sjmp_sim::SimRng;

/// Kernel code paths where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// VM object allocation (`alloc_object`): frame exhaustion.
    ObjectAlloc,
    /// vmspace creation (`create_vmspace`): root-table allocation failure.
    SpaceAlloc,
    /// Eager page-table construction inside `map_object`: the mid-`mmap`
    /// failure, after some pages of the region are already mapped.
    MapRegion,
    /// `sys_mmap` / `sys_mmap_sized` entry.
    Mmap,
    /// `sys_munmap` entry.
    Munmap,
    /// `switch_vmspace` entry.
    Switch,
    /// Physical frame allocation inside the kernel's pressure-checked
    /// paths: a `Fail` injects a *transient* `OutOfFrames` that forces a
    /// reclaim pass before the allocation is retried, exercising eviction
    /// deterministically even when memory is plentiful.
    FrameAlloc,
    /// Per-segment lock acquisition inside `vas_switch`: a `Fail` does
    /// not fail the switch — it *elides* the acquisition, so the caller
    /// proceeds into the shared VAS without holding that segment's
    /// lock. This is a seeded race injector: the resulting unguarded
    /// accesses are exactly what `sjmp-analyze`'s trace-replay detector
    /// must find.
    SegLock,
    /// One block write on the snapshot disk (`vas_save`'s commit path):
    /// a `Fail` does not fail the call — it *tears* the write (new
    /// first half, old second half) while the device reports success,
    /// so the corruption is only discoverable by recovery's checksums.
    /// A `Crash` is power loss after the n-th block: the commit aborts
    /// mid-sequence with [`crate::OsError::Crashed`].
    BlkWrite,
    /// One flush barrier on the snapshot disk: a `Fail` silently drops
    /// the barrier (pending blocks stay volatile); a `Crash` is power
    /// loss at the barrier.
    BlkFlush,
}

impl FaultSite {
    /// All sites, for iteration in reports.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::ObjectAlloc,
        FaultSite::SpaceAlloc,
        FaultSite::MapRegion,
        FaultSite::Mmap,
        FaultSite::Munmap,
        FaultSite::Switch,
        FaultSite::FrameAlloc,
        FaultSite::SegLock,
        FaultSite::BlkWrite,
        FaultSite::BlkFlush,
    ];
}

/// What happens at a visited fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Proceed normally.
    Pass,
    /// Fail with the site's natural resource error, leaving no partial
    /// state.
    Fail,
    /// The calling process dies inside the kernel with no cleanup.
    Crash,
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Trigger on exactly the n-th call (1-based) to the site, once.
    Nth(u64),
    /// Trigger independently with probability `p` on every call.
    Probability(f64),
}

#[derive(Debug, Clone)]
struct Rule {
    site: FaultSite,
    trigger: Trigger,
    outcome: FaultOutcome,
    spent: bool,
}

/// Counters of what a plan actually injected, for harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Clean failures injected.
    pub failures: u64,
    /// Crashes injected.
    pub crashes: u64,
}

impl FaultStats {
    /// Total injected faults of either kind.
    pub fn total(&self) -> u64 {
        self.failures + self.crashes
    }

    /// Faults injected since `earlier` (an older snapshot of the same
    /// plan), for phase measurements.
    pub fn delta_since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            failures: self.failures - earlier.failures,
            crashes: self.crashes - earlier.crashes,
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// Rules are evaluated in insertion order; the first that triggers on a
/// call decides the outcome. `fail_nth`/`crash_nth` rules are one-shot;
/// probability rules re-roll on every call from the plan's own seeded
/// generator.
///
/// # Examples
///
/// ```
/// use sjmp_os::fault::{FaultOutcome, FaultPlan, FaultSite};
///
/// let mut plan = FaultPlan::new(7).fail_nth(FaultSite::ObjectAlloc, 2);
/// assert_eq!(plan.check(FaultSite::ObjectAlloc), FaultOutcome::Pass);
/// assert_eq!(plan.check(FaultSite::ObjectAlloc), FaultOutcome::Fail);
/// assert_eq!(plan.check(FaultSite::ObjectAlloc), FaultOutcome::Pass);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SimRng,
    rules: Vec<Rule>,
    calls: HashMap<FaultSite, u64>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing) with the given seed for
    /// probabilistic rules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: SimRng::seed_from_u64(seed),
            rules: Vec::new(),
            calls: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Fails the `n`-th call (1-based) to `site`, once.
    #[must_use]
    pub fn fail_nth(mut self, site: FaultSite, n: u64) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Nth(n),
            outcome: FaultOutcome::Fail,
            spent: false,
        });
        self
    }

    /// Crashes the calling process on the `n`-th call (1-based) to
    /// `site`, once.
    #[must_use]
    pub fn crash_nth(mut self, site: FaultSite, n: u64) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Nth(n),
            outcome: FaultOutcome::Crash,
            spent: false,
        });
        self
    }

    /// Fails each call to `site` independently with probability `p`.
    #[must_use]
    pub fn fail_with_probability(mut self, site: FaultSite, p: f64) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Probability(p),
            outcome: FaultOutcome::Fail,
            spent: false,
        });
        self
    }

    /// Crashes the caller of `site` independently with probability `p`.
    #[must_use]
    pub fn crash_with_probability(mut self, site: FaultSite, p: f64) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Probability(p),
            outcome: FaultOutcome::Crash,
            spent: false,
        });
        self
    }

    /// Records a visit to `site` and decides its outcome.
    pub fn check(&mut self, site: FaultSite) -> FaultOutcome {
        let count = self.calls.entry(site).or_insert(0);
        *count += 1;
        let count = *count;
        for rule in &mut self.rules {
            if rule.site != site || rule.spent {
                continue;
            }
            let hit = match rule.trigger {
                Trigger::Nth(n) => {
                    if count == n {
                        rule.spent = true;
                        true
                    } else {
                        false
                    }
                }
                Trigger::Probability(p) => self.rng.gen_bool(p),
            };
            if hit {
                match rule.outcome {
                    FaultOutcome::Fail => self.stats.failures += 1,
                    FaultOutcome::Crash => self.stats.crashes += 1,
                    FaultOutcome::Pass => {}
                }
                return rule.outcome;
            }
        }
        FaultOutcome::Pass
    }

    /// How many times `site` has been visited.
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.calls.get(&site).copied().unwrap_or(0)
    }

    /// Counters of injected faults.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_passes() {
        let mut plan = FaultPlan::new(1);
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert_eq!(plan.check(site), FaultOutcome::Pass);
            }
            assert_eq!(plan.calls(site), 100);
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn nth_rules_are_one_shot_and_per_site() {
        let mut plan = FaultPlan::new(1)
            .fail_nth(FaultSite::Mmap, 3)
            .crash_nth(FaultSite::Switch, 1);
        assert_eq!(plan.check(FaultSite::Switch), FaultOutcome::Crash);
        assert_eq!(plan.check(FaultSite::Switch), FaultOutcome::Pass);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Pass);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Pass);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Fail);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Pass);
        assert_eq!(
            plan.stats(),
            FaultStats {
                failures: 1,
                crashes: 1
            }
        );
    }

    #[test]
    fn probability_rules_are_deterministic_per_seed() {
        let outcomes = |seed: u64| -> Vec<FaultOutcome> {
            let mut plan = FaultPlan::new(seed).fail_with_probability(FaultSite::ObjectAlloc, 0.3);
            (0..50)
                .map(|_| plan.check(FaultSite::ObjectAlloc))
                .collect()
        };
        assert_eq!(outcomes(9), outcomes(9));
        let hits = outcomes(9)
            .iter()
            .filter(|o| **o == FaultOutcome::Fail)
            .count();
        assert!(
            hits > 0 && hits < 50,
            "p=0.3 over 50 calls should be mixed, got {hits}"
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut plan = FaultPlan::new(1)
            .crash_nth(FaultSite::Mmap, 1)
            .fail_with_probability(FaultSite::Mmap, 1.0);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Crash);
        assert_eq!(plan.check(FaultSite::Mmap), FaultOutcome::Fail);
    }
}
